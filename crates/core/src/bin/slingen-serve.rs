//! `slingen-serve` — the kernel-generation service front-end.
//!
//! Reads line-delimited JSON requests (see `slingen::serve`) from stdin
//! (default) or a Unix socket, answers each with one JSON response line,
//! and keeps every tuning result in one shared sharded cache so repeated
//! and concurrent requests replay instead of re-searching.
//!
//! ```text
//! slingen-serve [--workers N] [--cache-file PATH] [--cache-max-entries N]
//!               [--socket PATH] [--target T] [--measure]
//! ```
//!
//! * `--workers N`    worker threads sharing the cache (default 4)
//! * `--cache-file P` warm-load the tuning cache from P at startup and
//!   atomically save it back on shutdown (stdin mode) or after every
//!   connection (socket mode); a missing/corrupt file starts empty
//! * `--cache-max-entries N` cap the cache at N entries: every save
//!   evicts the least-recently-hit surplus (memory and file), so a
//!   long-running service keeps its hot working set bounded
//! * `--socket P`     listen on a Unix socket instead of stdin; each
//!   connection is served with the worker pool, responses go back on
//!   the same connection
//! * `--target T`     default ISA for requests without a `target` field
//!   (scalar | sse2 | avx2 | avx2fma; default avx2)
//! * `--measure`      rank winners by hardware timing (two-stage
//!   measured autotuning); falls back to the model per request, with a
//!   logged reason, when no C compiler works. Responses carry
//!   `"cycles_source":"model"|"measured"` either way.
//!
//! On shutdown a one-line JSON stats summary is written to stderr, e.g.
//! `{"cache_entries": 5, ..., "searches": 0, "served_model": 3,
//! "served_measured": 2}`.

use slingen::serve::{serve_lines, Engine, ServeSummary};
use slingen::{MeasureConfig, Target, TuneCache};
use std::io::{BufReader, Write};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    workers: usize,
    cache_file: Option<PathBuf>,
    cache_max_entries: Option<usize>,
    socket: Option<PathBuf>,
    target: Target,
    measure: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workers: 4,
        cache_file: None,
        cache_max_entries: None,
        socket: None,
        target: Target::Avx2,
        measure: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .ok()
                    .filter(|w| (1..=256).contains(w))
                    .ok_or("--workers must be an integer in 1..=256")?;
            }
            "--cache-file" => args.cache_file = Some(PathBuf::from(value("--cache-file")?)),
            "--cache-max-entries" => {
                args.cache_max_entries = Some(
                    value("--cache-max-entries")?
                        .parse()
                        .ok()
                        .filter(|n| *n >= 1)
                        .ok_or("--cache-max-entries must be a positive integer")?,
                );
            }
            "--socket" => args.socket = Some(PathBuf::from(value("--socket")?)),
            "--target" => {
                let t = value("--target")?;
                args.target = Target::parse(&t).ok_or(format!("unknown target `{t}`"))?;
            }
            "--measure" => args.measure = true,
            "--help" | "-h" => {
                println!(
                    "usage: slingen-serve [--workers N] [--cache-file PATH] \
                     [--cache-max-entries N] [--socket PATH] [--target T] [--measure]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn save_cache(engine: &Engine, path: &std::path::Path, max_entries: Option<usize>) {
    match engine.cache().save_capped(path, max_entries) {
        Ok(n) => eprintln!("slingen-serve: saved {n} cache entries to {}", path.display()),
        Err(e) => eprintln!("slingen-serve: cache save to {} failed: {e}", path.display()),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("slingen-serve: {e}");
            return ExitCode::FAILURE;
        }
    };

    let cache = match &args.cache_file {
        Some(path) => TuneCache::load(path),
        None => TuneCache::new(),
    };
    let mut engine = Engine::new(cache, args.target);
    if args.measure {
        engine = engine.with_measure(MeasureConfig::hardware());
    }
    let engine = engine;

    let result: std::io::Result<ServeSummary> = match &args.socket {
        None => {
            let stdin = std::io::stdin();
            serve_lines(&engine, stdin.lock(), std::io::stdout(), args.workers)
        }
        Some(path) => serve_socket(
            &engine,
            path,
            args.workers,
            args.cache_file.as_deref(),
            args.cache_max_entries,
        ),
    };

    if let Some(path) = &args.cache_file {
        save_cache(&engine, path, args.cache_max_entries);
    }
    eprintln!("{}", engine.stats_json());

    match result {
        Ok(summary) => {
            eprintln!(
                "slingen-serve: handled {} requests ({} errors)",
                summary.requests, summary.errors
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("slingen-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Accept connections on a Unix socket; each connection's request lines
/// are pumped through the shared worker pool and answered on the same
/// connection. Serves until the process is killed (or accept fails).
fn serve_socket(
    engine: &Engine,
    path: &std::path::Path,
    workers: usize,
    cache_file: Option<&std::path::Path>,
    cache_max_entries: Option<usize>,
) -> std::io::Result<ServeSummary> {
    use std::os::unix::net::UnixListener;

    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    eprintln!("slingen-serve: listening on {}", path.display());
    let mut total = ServeSummary::default();
    for stream in listener.incoming() {
        let stream = stream?;
        let reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream;
        match serve_lines(engine, reader, &mut writer, workers) {
            Ok(s) => {
                total.requests += s.requests;
                total.errors += s.errors;
            }
            Err(e) => eprintln!("slingen-serve: connection error: {e}"),
        }
        let _ = writer.flush();
        // Persist eagerly so a kill between connections loses nothing.
        if let Some(p) = cache_file {
            save_cache(engine, p, cache_max_entries);
        }
    }
    Ok(total)
}
