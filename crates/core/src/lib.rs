//! # slingen
//!
//! SLinGen: program generation for small-scale linear algebra applications
//! — the top-level driver reproducing the system of Spampinato et al.,
//! CGO 2018.
//!
//! The pipeline (paper Fig. 6):
//!
//! 1. **Stage 1** — every HLAC in the input LA program is expanded into a
//!    *basic* program (sBLACs over regions + scalar ops) by the Cl1ck-style
//!    synthesis engine (`slingen-synth`), with algorithmic variants given
//!    by the loop-invariant policy;
//! 2. **Stage 2** — the basic program is tiled and vectorized into C-IR
//!    (`slingen-lgen`);
//! 3. **Stage 3** — code-level optimization: unrolling, scalar
//!    replacement, the load/store analysis that converts memory
//!    round-trips into shuffles and blends, CSE/DCE (`slingen-cir`), and
//!    unparsing to single-source C with intrinsics;
//! 4. **autotuning** — the variant with the lowest modeled cycle count on
//!    the Sandy Bridge machine model is selected (the paper's
//!    "algorithmic autotuning").
//!
//! ```
//! use slingen::{apps, Options};
//!
//! let program = apps::gpr(4);
//! let generated = slingen::generate(&program, &Options::default())?;
//! assert!(generated.c_code.contains("void gpr"));
//! # Ok::<(), slingen::Error>(())
//! ```

pub mod apps;
pub mod cache;
pub mod measure;
pub mod pipeline;
pub mod serve;
pub mod tuner;
pub mod verify;
pub mod workload;

pub use cache::{CacheTotals, ShardStats, TuneCache, SHARD_COUNT};
pub use measure::{
    calibrate, Calibration, HardwareMeasurer, HwError, MeasureConfig, MeasureMode, Measurer,
    ModelMeasurer, OpCost,
};
pub use pipeline::{generate, generate_with_policy, generate_with_spec, Generated, Options};
pub use slingen_cir::Target;
pub use tuner::{HwTrial, RepCost, SearchSpace, Strategy, TuneStats, VariantSpec};
pub use verify::verify;

use std::fmt;

/// Top-level driver errors.
#[derive(Debug, Clone)]
pub enum Error {
    /// Synthesis failed (Stage 1).
    Synth(slingen_synth::SynthError),
    /// Lowering failed (Stage 2).
    Lgen(slingen_lgen::LgenError),
    /// Execution failed during autotuning/verification.
    Vm(slingen_vm::VmError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Synth(e) => write!(f, "synthesis: {e}"),
            Error::Lgen(e) => write!(f, "lowering: {e}"),
            Error::Vm(e) => write!(f, "execution: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<slingen_synth::SynthError> for Error {
    fn from(e: slingen_synth::SynthError) -> Self {
        Error::Synth(e)
    }
}

impl From<slingen_lgen::LgenError> for Error {
    fn from(e: slingen_lgen::LgenError) -> Self {
        Error::Lgen(e)
    }
}

impl From<slingen_vm::VmError> for Error {
    fn from(e: slingen_vm::VmError) -> Self {
        Error::Vm(e)
    }
}
