//! The SLinGen driver: Stages 1–3 plus autotuning (paper Fig. 6).

use crate::workload;
use crate::Error;
use slingen_cir::passes::{optimize, PassConfig};
use slingen_cir::Function;
use slingen_ir::Program;
use slingen_lgen::{lower_program, BufferMap, LowerOptions};
use slingen_perf::{Machine, Report};
use slingen_synth::{synthesize_program, AlgorithmDb, Policy};
use slingen_vm::BufferSet;

/// Generation options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Vector width ν (4 = AVX double, 2 = SSE2, 1 = scalar).
    pub nu: usize,
    /// Fix the algorithmic variant instead of autotuning over all.
    pub policy: Option<Policy>,
    /// Stage-3 pass configuration.
    pub passes: PassConfig,
    /// Stage-2 loop threshold (see [`LowerOptions`]).
    pub loop_threshold: usize,
    /// Machine model used for autotuning.
    pub machine: Machine,
    /// Workload seed for the autotuning measurement.
    pub seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            nu: 4,
            policy: None,
            passes: PassConfig::default(),
            loop_threshold: 64,
            machine: Machine::sandy_bridge(),
            seed: 0x51,
        }
    }
}

/// The result of generation.
#[derive(Debug)]
pub struct Generated {
    /// The optimized C-IR function.
    pub function: Function,
    /// The emitted single-source C code.
    pub c_code: String,
    /// The algorithmic variant that won the autotuning.
    pub policy: Policy,
    /// The performance report of the winning variant (on the autotuning
    /// workload).
    pub report: Report,
    /// Stage-1a algorithm database statistics: (hits, misses).
    pub db_stats: (usize, usize),
}

impl Generated {
    /// Modeled performance in flops/cycle using the function's own dynamic
    /// flop count.
    pub fn flops_per_cycle(&self) -> f64 {
        self.report.flops_per_cycle()
    }
}

/// Generate code for one fixed policy (no autotuning).
///
/// # Errors
///
/// Returns [`Error`] if any stage rejects the program.
pub fn generate_with_policy(
    program: &Program,
    policy: Policy,
    options: &Options,
) -> Result<Generated, Error> {
    let mut db = AlgorithmDb::new();
    let basic = synthesize_program(program, policy, options.nu, &mut db)?;
    let opts = LowerOptions { nu: options.nu, loop_threshold: options.loop_threshold };
    let mut function = lower_program(program, &basic, program.name(), &opts)?;
    optimize(&mut function, &options.passes);
    let report = measure(program, &function, &options.machine, options.seed)?;
    let c_code = slingen_cir::unparse::to_c(&function);
    Ok(Generated {
        function,
        c_code,
        policy,
        report,
        db_stats: (db.hits(), db.misses()),
    })
}

/// Measure a generated function on a valid random workload.
fn measure(
    program: &Program,
    function: &Function,
    machine: &Machine,
    seed: u64,
) -> Result<Report, Error> {
    let mut fb = slingen_cir::FunctionBuilder::new("probe", function.width);
    let map = BufferMap::build(program, &mut fb);
    let mut bufs = BufferSet::for_function(function);
    for (op, data) in workload::inputs(program, seed) {
        bufs.set(map.buf(op), &data);
    }
    Ok(slingen_perf::measure(function, &mut bufs, None, machine)?)
}

/// Full generation with algorithmic autotuning: derive one implementation
/// per loop-invariant policy, measure each on the machine model, and keep
/// the fastest (paper §3.3 "Autotuning" and the dashed lines of Fig. 14).
///
/// # Errors
///
/// Returns [`Error`] if every variant fails; individual variant failures
/// are tolerated as long as one succeeds.
pub fn generate(program: &Program, options: &Options) -> Result<Generated, Error> {
    if let Some(p) = options.policy {
        return generate_with_policy(program, p, options);
    }
    let mut best: Option<Generated> = None;
    let mut last_err: Option<Error> = None;
    for policy in Policy::ALL {
        match generate_with_policy(program, policy, options) {
            Ok(g) => {
                let better = match &best {
                    None => true,
                    Some(b) => g.report.cycles < b.report.cycles,
                };
                if better {
                    best = Some(g);
                }
            }
            Err(e) => last_err = Some(e),
        }
    }
    best.ok_or_else(|| last_err.expect("at least one variant attempted"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;

    #[test]
    fn generates_potrf_with_autotuning() {
        let p = apps::potrf(8);
        let g = generate(&p, &Options::default()).unwrap();
        assert!(g.report.cycles > 0.0);
        assert!(g.c_code.contains("void potrf"));
        assert!(g.c_code.contains("_mm256"), "vectorized output expected");
        assert!(g.flops_per_cycle() > 0.0);
    }

    #[test]
    fn policy_pinning_respected() {
        let p = apps::potrf(8);
        let mut opts = Options::default();
        opts.policy = Some(Policy::Eager);
        let g = generate(&p, &opts).unwrap();
        assert_eq!(g.policy, Policy::Eager);
    }

    #[test]
    fn scalar_width_generates_plain_c() {
        let p = apps::gpr(4);
        let opts = Options { nu: 1, ..Options::default() };
        let g = generate(&p, &opts).unwrap();
        assert!(!g.c_code.contains("_mm256"));
        assert!(g.c_code.contains("sqrt("));
    }

    #[test]
    fn autotuner_returns_min_cycle_variant() {
        let p = apps::trsyl(8);
        let opts = Options::default();
        let auto = generate(&p, &opts).unwrap();
        for policy in slingen_synth::Policy::ALL {
            let fixed = generate_with_policy(&p, policy, &opts).unwrap();
            assert!(
                auto.report.cycles <= fixed.report.cycles + 1e-9,
                "autotuned {} must not lose to {policy} ({})",
                auto.report.cycles,
                fixed.report.cycles
            );
        }
    }
}
