//! The SLinGen driver: Stages 1–3 plus autotuning (paper Fig. 6).
//!
//! `generate()` drives the variant-space autotuner in [`crate::tuner`]:
//! the search space (policy × ν × loop-threshold), strategy, and cache
//! live in [`Options`]; this module owns the option/result types and the
//! single-variant path used when the policy is pinned.

use crate::measure::MeasureConfig;
use crate::tuner::{
    self, HwTrial, RepCost, SearchSpace, TuneCache, TuneStats, Variant, VariantSpec,
};
use crate::workload;
use crate::Error;
use slingen_cir::passes::PassConfig;
use slingen_cir::{Function, Target};
use slingen_ir::Program;
use slingen_lgen::BufferMap;
use slingen_perf::{Machine, Report};
use slingen_synth::Policy;
use slingen_vm::BufferSet;

/// Generation options.
#[derive(Debug, Clone)]
pub struct Options {
    /// The instruction-set target: supported ν widths, capabilities
    /// (FMA, masked memory, blends), and the cost tables behind
    /// [`Options::machine`]. The ν axis of the search space is derived
    /// from [`Target::widths`], the Stage-3 pipeline contracts
    /// multiply–add chains exactly when the target has FMA, and the
    /// unparser emits the target's intrinsic families.
    pub target: Target,
    /// Vector width ν of the target machine (4 = AVX double, 2 = SSE2,
    /// 1 = scalar). Acts as an upper bound on the ν axis of the search
    /// space, and as the pinned width when `policy` is fixed.
    pub nu: usize,
    /// Fix the algorithmic variant instead of autotuning over the space.
    pub policy: Option<Policy>,
    /// Stage-3 pass configuration (specialized per target at use: FMA
    /// contraction turns on when [`Options::target`] has FMA).
    pub passes: PassConfig,
    /// Stage-2 loop threshold (see [`slingen_lgen::LowerOptions`]) used
    /// when `policy` is pinned. The tuned path deliberately does *not*
    /// seed from it: the greedy search seeds at canonical coordinates
    /// derived from the space alone, so every equivalent request shares
    /// one [`TuneCache`] entry (see `tuner::cache_key`).
    pub loop_threshold: usize,
    /// Machine model used for autotuning.
    pub machine: Machine,
    /// Workload seed for the autotuning measurement.
    pub seed: u64,
    /// The autotuner's search space and strategy.
    pub search: SearchSpace,
    /// Tuning cache consulted by `generate()`. Fresh per `Options` by
    /// default; clone one `Options` (or the cache handle) to share it.
    pub cache: TuneCache,
    /// Measured-autotuning configuration: model-only by default; in
    /// hardware mode the tuner re-ranks the top-K model survivors by
    /// compiling and timing their emitted C (see [`crate::measure`]).
    pub measure: MeasureConfig,
}

/// The default Stage-2 loop threshold — also the canonical greedy seed
/// threshold: the tuned search always seeds at the axis member nearest
/// this value, independent of the caller's raw `loop_threshold`.
pub(crate) const DEFAULT_LOOP_THRESHOLD: usize = 64;

impl Default for Options {
    /// The historical default: the AVX2 (Sandy Bridge model) target at
    /// ν = 4.
    fn default() -> Self {
        Options::for_target(Target::Avx2)
    }
}

impl Options {
    /// Options specialized for a target: ν bounded by the target's widest
    /// vector unit, machine model built from the target's cost tables.
    pub fn for_target(target: Target) -> Options {
        Options {
            target,
            nu: target.max_width(),
            policy: None,
            passes: PassConfig::default(),
            loop_threshold: DEFAULT_LOOP_THRESHOLD,
            machine: Machine::from_target(target),
            seed: 0x51,
            search: SearchSpace::default(),
            cache: TuneCache::new(),
            measure: MeasureConfig::default(),
        }
    }

    /// The Stage-3 pass configuration specialized for this target.
    pub(crate) fn passes_for_target(&self) -> PassConfig {
        self.passes.for_target(self.target)
    }
}

/// The result of generation.
#[derive(Debug)]
pub struct Generated {
    /// The optimized C-IR function.
    pub function: Function,
    /// The emitted single-source C code.
    pub c_code: String,
    /// The algorithmic variant that won the autotuning (the policy axis
    /// of [`Generated::spec`], kept for convenience).
    pub policy: Policy,
    /// The full variant that won: policy, ν, loop threshold.
    pub spec: VariantSpec,
    /// The performance report of the winning variant (on the autotuning
    /// workload).
    pub report: Report,
    /// Stage-1a algorithm database statistics: (hits, misses).
    pub db_stats: (usize, usize),
    /// How the winner was found: variants explored/pruned, cache hit.
    pub tuning: TuneStats,
    /// Per-representative cold-time breakdown (lower/opt/measure, ms),
    /// in the order the search ran them. Empty on cache hits and on
    /// fixed-spec generation — only a real search pays these costs.
    pub rep_costs: Vec<RepCost>,
    /// Stage-two hardware timings in model-ranking order (the first
    /// entry is the model-ranked winner), when the measured flow ran.
    /// Empty in model mode, on hardware fallback, and on cache hits —
    /// the winner's own timing survives cache hits on
    /// `report.measured`.
    pub hw_trials: Vec<HwTrial>,
}

impl Generated {
    /// Modeled performance in flops/cycle using the function's own dynamic
    /// flop count.
    pub fn flops_per_cycle(&self) -> f64 {
        self.report.flops_per_cycle()
    }

    /// Which signal ranked this winner: `"measured"` when hardware
    /// timing produced it, `"model"` otherwise (including hardware-mode
    /// fallbacks).
    pub fn cycles_source(&self) -> &'static str {
        if self.report.measured.is_some() {
            "measured"
        } else {
            "model"
        }
    }
}

/// Emit the winner: unparse to C for the target and assemble the public
/// result.
pub(crate) fn emit(
    variant: Variant,
    target: Target,
    db_stats: (usize, usize),
    tuning: TuneStats,
    rep_costs: Vec<RepCost>,
    hw_trials: Vec<HwTrial>,
) -> Generated {
    let c_code = slingen_cir::unparse::to_c_for(&variant.function, target);
    Generated {
        function: variant.function,
        c_code,
        policy: variant.spec.policy,
        spec: variant.spec,
        report: variant.report,
        db_stats,
        tuning,
        rep_costs,
        hw_trials,
    }
}

/// Generate code for one fixed variant (no search).
///
/// # Errors
///
/// Returns [`Error`] if any stage rejects the program.
pub fn generate_with_spec(
    program: &Program,
    spec: VariantSpec,
    options: &Options,
) -> Result<Generated, Error> {
    let mut db = slingen_synth::AlgorithmDb::new();
    let basic = slingen_synth::synthesize_program(program, spec.policy, spec.nu, &mut db)?;
    let function = tuner::lower_variant(program, spec, &basic, options)?;
    let report = measure(program, &function, options, None)?.expect("no budget, no cutoff");
    let variant = Variant { function, spec, report };
    Ok(emit(
        variant,
        options.target,
        (db.hits(), db.misses()),
        TuneStats { explored: 1, ..TuneStats::default() },
        Vec::new(),
        Vec::new(),
    ))
}

/// Generate code for one fixed policy (no autotuning), at the options'
/// ν and loop threshold.
///
/// # Errors
///
/// Returns [`Error`] if any stage rejects the program.
pub fn generate_with_policy(
    program: &Program,
    policy: Policy,
    options: &Options,
) -> Result<Generated, Error> {
    let spec = VariantSpec { policy, nu: options.nu, loop_threshold: options.loop_threshold };
    generate_with_spec(program, spec, options)
}

/// Measure a generated function on a valid random workload, under an
/// optional cycle budget (`None` if the budget was exceeded).
pub(crate) fn measure(
    program: &Program,
    function: &Function,
    options: &Options,
    budget: Option<f64>,
) -> Result<Option<Report>, Error> {
    let mut fb = slingen_cir::FunctionBuilder::new("probe", function.width);
    let map = BufferMap::build(program, &mut fb);
    let mut bufs = BufferSet::for_function(function);
    for (op, data) in workload::inputs(program, options.seed) {
        bufs.set(map.buf(op), &data);
    }
    Ok(slingen_perf::measure_budgeted(function, &mut bufs, None, &options.machine, budget)?)
}

/// Full generation with variant-space autotuning: search the configured
/// [`SearchSpace`] (policy × ν × loop-threshold) with the configured
/// strategy, measure candidates on the machine model, and keep the
/// fastest (paper §3.3 "Autotuning" and the dashed lines of Fig. 14).
///
/// Throughput: Stage 1 runs once per distinct (policy, ν) through a
/// *single shared* [`slingen_synth::AlgorithmDb`] — policy- and
/// ν-independent derivations (the scalar leaf cases) are cached under
/// fully neutral signatures and shared across the entire space. The
/// expensive per-variant work — lowering, Stage-3 optimization, and the
/// model measurement — fans out across OS threads; the greedy strategy
/// additionally abandons variants the model proves dominated
/// (cycle-budget early-cutoff). Selection is deterministic: strict
/// minimum modeled cycles, ties broken in canonical space-enumeration
/// order, so the winning C is bit-identical across runs.
///
/// Results are cached in `options.cache` keyed by (program, machine,
/// space, options): repeating a generation through the same cache (or a
/// clone of it) is a lookup, not a search.
///
/// # Errors
///
/// Returns [`Error`] if every variant fails; individual variant failures
/// are tolerated as long as one succeeds.
pub fn generate(program: &Program, options: &Options) -> Result<Generated, Error> {
    if let Some(p) = options.policy {
        return generate_with_policy(program, p, options);
    }
    tuner::tune(program, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;
    use crate::tuner::Strategy;

    #[test]
    fn generates_potrf_with_autotuning() {
        let p = apps::potrf(8);
        let g = generate(&p, &Options::default()).unwrap();
        assert!(g.report.cycles > 0.0);
        assert!(g.c_code.contains("void potrf"));
        assert!(g.flops_per_cycle() > 0.0);
        // the default search explores all three dimensions
        assert!(g.tuning.explored >= 3, "explored {}", g.tuning.explored);
        assert_eq!(g.policy, g.spec.policy);
        // the winner's width is reflected in the emitted C
        if g.spec.nu == 4 {
            assert!(g.c_code.contains("_mm256"), "nu=4 winner must emit AVX");
        }
    }

    #[test]
    fn pinned_width_emits_avx() {
        let p = apps::potrf(8);
        let opts = Options { policy: Some(Policy::Lazy), ..Options::default() };
        let g = generate(&p, &opts).unwrap();
        assert!(g.c_code.contains("_mm256"), "vectorized output expected");
    }

    #[test]
    fn policy_pinning_respected() {
        let p = apps::potrf(8);
        let opts = Options { policy: Some(Policy::Eager), ..Options::default() };
        let g = generate(&p, &opts).unwrap();
        assert_eq!(g.policy, Policy::Eager);
        assert_eq!(g.spec.nu, 4);
    }

    #[test]
    fn scalar_width_generates_plain_c() {
        let p = apps::gpr(4);
        let opts = Options { nu: 1, ..Options::default() };
        let g = generate(&p, &opts).unwrap();
        assert!(!g.c_code.contains("_mm256"));
        assert!(g.c_code.contains("sqrt("));
        assert_eq!(g.spec.nu, 1, "machine width bounds the search");
    }

    #[test]
    fn scalar_target_never_emits_intrinsics() {
        let p = apps::potrf(8);
        let g = generate(&p, &Options::for_target(slingen_cir::Target::Scalar)).unwrap();
        assert_eq!(g.spec.nu, 1, "scalar target has no vector widths");
        assert!(!g.c_code.contains("_mm"), "{}", g.c_code);
    }

    #[test]
    fn fma_target_contracts_through_the_pinned_path() {
        // generate_with_spec must apply the target-specialized pass
        // pipeline too, not only the tuned path
        let p = apps::kf(4);
        let opts = Options::for_target(slingen_cir::Target::Avx2Fma);
        let spec = crate::tuner::VariantSpec { policy: Policy::Lazy, nu: 4, loop_threshold: 64 };
        let g = generate_with_spec(&p, spec, &opts).unwrap();
        let mut fmas = 0;
        g.function.for_each_instr(&mut |i| {
            if matches!(i, slingen_cir::Instr::SFma { .. } | slingen_cir::Instr::VFma { .. }) {
                fmas += 1;
            }
        });
        assert!(fmas > 0, "pinned FMA-target generation must contract");
        assert!(
            g.c_code.contains("fmadd") || g.c_code.contains("fnmadd") || g.c_code.contains("fma("),
            "emitted C must use fused forms"
        );
    }

    #[test]
    fn autotuner_returns_min_cycle_variant() {
        let p = apps::trsyl(8);
        let opts = Options::default();
        let auto = generate(&p, &opts).unwrap();
        for policy in slingen_synth::Policy::ALL {
            let fixed = generate_with_policy(&p, policy, &opts).unwrap();
            assert!(
                auto.report.cycles <= fixed.report.cycles + 1e-9,
                "autotuned {} must not lose to {policy} ({})",
                auto.report.cycles,
                fixed.report.cycles
            );
        }
    }

    #[test]
    fn greedy_never_loses_to_exhaustive_seed_row() {
        // the greedy seed sweep is the historical 2-policy fan-out; the
        // final winner must be at least as good as the best seed
        let p = apps::kf(4);
        let greedy = generate(&p, &Options::default()).unwrap();
        let exhaustive_opts = Options {
            search: SearchSpace::default().with_strategy(Strategy::Exhaustive),
            ..Options::default()
        };
        let exhaustive = generate(&p, &exhaustive_opts).unwrap();
        assert!(
            greedy.report.cycles <= exhaustive.report.cycles * 1.5,
            "greedy {} wildly worse than exhaustive {}",
            greedy.report.cycles,
            exhaustive.report.cycles
        );
    }

    #[test]
    fn repeated_generation_hits_the_cache() {
        let p = apps::potrf(8);
        let opts = Options::default();
        let first = generate(&p, &opts).unwrap();
        assert!(!first.tuning.cache_hit);
        let second = generate(&p, &opts).unwrap();
        assert!(second.tuning.cache_hit);
        assert_eq!(first.c_code, second.c_code);
        assert_eq!(first.spec, second.spec);
        assert_eq!(opts.cache.stats(), (1, 1));
        assert_eq!(opts.cache.len(), 1);
    }
}
