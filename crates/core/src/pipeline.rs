//! The SLinGen driver: Stages 1–3 plus autotuning (paper Fig. 6).

use crate::workload;
use crate::Error;
use slingen_cir::passes::{optimize, PassConfig};
use slingen_cir::Function;
use slingen_ir::Program;
use slingen_lgen::{lower_program, BufferMap, LowerOptions};
use slingen_perf::{Machine, Report};
use slingen_synth::{synthesize_program, AlgorithmDb, BasicProgram, Policy};
use slingen_vm::BufferSet;

/// Generation options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Vector width ν (4 = AVX double, 2 = SSE2, 1 = scalar).
    pub nu: usize,
    /// Fix the algorithmic variant instead of autotuning over all.
    pub policy: Option<Policy>,
    /// Stage-3 pass configuration.
    pub passes: PassConfig,
    /// Stage-2 loop threshold (see [`LowerOptions`]).
    pub loop_threshold: usize,
    /// Machine model used for autotuning.
    pub machine: Machine,
    /// Workload seed for the autotuning measurement.
    pub seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            nu: 4,
            policy: None,
            passes: PassConfig::default(),
            loop_threshold: 64,
            machine: Machine::sandy_bridge(),
            seed: 0x51,
        }
    }
}

/// The result of generation.
#[derive(Debug)]
pub struct Generated {
    /// The optimized C-IR function.
    pub function: Function,
    /// The emitted single-source C code.
    pub c_code: String,
    /// The algorithmic variant that won the autotuning.
    pub policy: Policy,
    /// The performance report of the winning variant (on the autotuning
    /// workload).
    pub report: Report,
    /// Stage-1a algorithm database statistics: (hits, misses).
    pub db_stats: (usize, usize),
}

impl Generated {
    /// Modeled performance in flops/cycle using the function's own dynamic
    /// flop count.
    pub fn flops_per_cycle(&self) -> f64 {
        self.report.flops_per_cycle()
    }
}

/// A measured variant before the winner's C code is emitted.
struct Variant {
    function: Function,
    policy: Policy,
    report: Report,
}

impl Variant {
    fn into_generated(self, db_stats: (usize, usize)) -> Generated {
        let c_code = slingen_cir::unparse::to_c(&self.function);
        Generated {
            function: self.function,
            c_code,
            policy: self.policy,
            report: self.report,
            db_stats,
        }
    }
}

/// Stages 2–3 plus measurement for one already-synthesized variant.
fn finish_variant(
    program: &Program,
    policy: Policy,
    basic: &BasicProgram,
    options: &Options,
) -> Result<Variant, Error> {
    let opts = LowerOptions { nu: options.nu, loop_threshold: options.loop_threshold };
    let mut function = lower_program(program, basic, program.name(), &opts)?;
    optimize(&mut function, &options.passes);
    let report = measure(program, &function, &options.machine, options.seed)?;
    Ok(Variant { function, policy, report })
}

/// Generate code for one fixed policy (no autotuning).
///
/// # Errors
///
/// Returns [`Error`] if any stage rejects the program.
pub fn generate_with_policy(
    program: &Program,
    policy: Policy,
    options: &Options,
) -> Result<Generated, Error> {
    let mut db = AlgorithmDb::new();
    let basic = synthesize_program(program, policy, options.nu, &mut db)?;
    let variant = finish_variant(program, policy, &basic, options)?;
    Ok(variant.into_generated((db.hits(), db.misses())))
}

/// Measure a generated function on a valid random workload.
fn measure(
    program: &Program,
    function: &Function,
    machine: &Machine,
    seed: u64,
) -> Result<Report, Error> {
    let mut fb = slingen_cir::FunctionBuilder::new("probe", function.width);
    let map = BufferMap::build(program, &mut fb);
    let mut bufs = BufferSet::for_function(function);
    for (op, data) in workload::inputs(program, seed) {
        bufs.set(map.buf(op), &data);
    }
    Ok(slingen_perf::measure(function, &mut bufs, None, machine)?)
}

/// Full generation with algorithmic autotuning: derive one implementation
/// per loop-invariant policy, measure each on the machine model, and keep
/// the fastest (paper §3.3 "Autotuning" and the dashed lines of Fig. 14).
///
/// Throughput: Stage 1 runs once per policy through a *single shared*
/// [`AlgorithmDb`]. Policy-independent derivations (the scalar leaf
/// cases) are cached under policy-neutral signatures, so later variants
/// hit templates the first variant derived; block-level derivations stay
/// policy-qualified because their loop schedules differ. The expensive
/// per-variant work — lowering, Stage-3 optimization, and the model
/// measurement — fans out across OS threads. Selection is deterministic:
/// the minimum modeled cycle count wins, with ties broken by
/// [`Policy::ALL`] order exactly as in the sequential implementation.
///
/// # Errors
///
/// Returns [`Error`] if every variant fails; individual variant failures
/// are tolerated as long as one succeeds.
pub fn generate(program: &Program, options: &Options) -> Result<Generated, Error> {
    if let Some(p) = options.policy {
        return generate_with_policy(program, p, options);
    }
    // Stage 1: serial, through one shared algorithm database.
    let mut db = AlgorithmDb::new();
    let synths: Vec<(Policy, Result<BasicProgram, Error>)> = Policy::ALL
        .into_iter()
        .map(|policy| {
            let basic =
                synthesize_program(program, policy, options.nu, &mut db).map_err(Error::from);
            (policy, basic)
        })
        .collect();
    let db_stats = (db.hits(), db.misses());

    // Stages 2-3 + measurement: parallel fan-out, one thread per variant.
    let results: Vec<Result<Variant, Error>> = std::thread::scope(|scope| {
        let handles: Vec<_> = synths
            .into_iter()
            .map(|(policy, basic)| {
                scope.spawn(move || {
                    let basic = basic?;
                    finish_variant(program, policy, &basic, options)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("autotune variant thread panicked")).collect()
    });

    // Deterministic min-cycles selection in Policy::ALL order (strict <).
    let mut best: Option<Variant> = None;
    let mut last_err: Option<Error> = None;
    for r in results {
        match r {
            Ok(v) => {
                let better = match &best {
                    None => true,
                    Some(b) => v.report.cycles < b.report.cycles,
                };
                if better {
                    best = Some(v);
                }
            }
            Err(e) => last_err = Some(e),
        }
    }
    best.map(|v| v.into_generated(db_stats))
        .ok_or_else(|| last_err.expect("at least one variant attempted"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;

    #[test]
    fn generates_potrf_with_autotuning() {
        let p = apps::potrf(8);
        let g = generate(&p, &Options::default()).unwrap();
        assert!(g.report.cycles > 0.0);
        assert!(g.c_code.contains("void potrf"));
        assert!(g.c_code.contains("_mm256"), "vectorized output expected");
        assert!(g.flops_per_cycle() > 0.0);
    }

    #[test]
    fn policy_pinning_respected() {
        let p = apps::potrf(8);
        let opts = Options { policy: Some(Policy::Eager), ..Options::default() };
        let g = generate(&p, &opts).unwrap();
        assert_eq!(g.policy, Policy::Eager);
    }

    #[test]
    fn scalar_width_generates_plain_c() {
        let p = apps::gpr(4);
        let opts = Options { nu: 1, ..Options::default() };
        let g = generate(&p, &opts).unwrap();
        assert!(!g.c_code.contains("_mm256"));
        assert!(g.c_code.contains("sqrt("));
    }

    #[test]
    fn autotuner_returns_min_cycle_variant() {
        let p = apps::trsyl(8);
        let opts = Options::default();
        let auto = generate(&p, &opts).unwrap();
        for policy in slingen_synth::Policy::ALL {
            let fixed = generate_with_policy(&p, policy, &opts).unwrap();
            assert!(
                auto.report.cycles <= fixed.report.cycles + 1e-9,
                "autotuned {} must not lose to {policy} ({})",
                auto.report.cycles,
                fixed.report.cycles
            );
        }
    }
}
