//! Self-verification: generated code vs the Stage-1 reference semantics.
//!
//! The generated C-IR is executed by the VM on a valid random workload and
//! compared against the reference evaluation of the same basic program —
//! the numeric ground truth the synthesis tests validate against LAPACK.

use crate::workload;
use crate::Error;
use slingen_cir::Function;
use slingen_ir::{OpId, Program};
use slingen_lgen::BufferMap;
use slingen_synth::program::VExpr;
use slingen_synth::{synthesize_program, AlgorithmDb, Policy};
use slingen_vm::{BufferSet, NullMonitor};
use std::collections::HashMap;

fn map_expr_ops(e: &VExpr, root: &impl Fn(OpId) -> OpId) -> VExpr {
    let rec = |x: &VExpr| Box::new(map_expr_ops(x, root));
    match e {
        VExpr::View(v) => {
            let mut v = *v;
            v.op = root(v.op);
            VExpr::View(v)
        }
        VExpr::Lit(x) => VExpr::Lit(*x),
        VExpr::Add(a, b) => VExpr::Add(rec(a), rec(b)),
        VExpr::Sub(a, b) => VExpr::Sub(rec(a), rec(b)),
        VExpr::Mul(a, b) => VExpr::Mul(rec(a), rec(b)),
        VExpr::Div(a, b) => VExpr::Div(rec(a), rec(b)),
        VExpr::Neg(a) => VExpr::Neg(rec(a)),
        VExpr::Sqrt(a) => VExpr::Sqrt(rec(a)),
    }
}

/// Execute `function` and the reference semantics on the same inputs;
/// return the maximum absolute output difference.
///
/// # Errors
///
/// Returns [`Error`] on synthesis or execution failure.
pub fn verify(
    program: &Program,
    function: &Function,
    policy: Policy,
    nu: usize,
    seed: u64,
) -> Result<f64, Error> {
    // reference: evaluate the basic program densely. `ow(..)` operands
    // share storage in the generated code, so the reference must alias
    // them too: rewrite every view to its ow-root before evaluating.
    let root = |mut id: OpId| -> OpId {
        while let Some(t) = program.operand(id).overwrites {
            id = t;
        }
        id
    };
    let mut db = AlgorithmDb::new();
    let basic = synthesize_program(program, policy, nu, &mut db)?;
    let rerooted = slingen_synth::BasicProgram {
        stmts: basic
            .stmts
            .iter()
            .map(|stmt| {
                let mut lhs = stmt.lhs;
                lhs.op = root(lhs.op);
                let rhs = map_expr_ops(&stmt.rhs, &root);
                slingen_synth::program::BasicStmt { lhs, rhs }
            })
            .collect(),
    };
    let mut ref_bufs: HashMap<OpId, Vec<f64>> = program
        .operands()
        .iter()
        .enumerate()
        .map(|(i, o)| (OpId(i), vec![0.0; o.shape.rows * o.shape.cols]))
        .collect();
    let inputs = workload::inputs(program, seed);
    for (op, data) in &inputs {
        ref_bufs.insert(root(*op), data.clone());
    }
    slingen_synth::program::eval::run(program, &rerooted, &mut ref_bufs);

    // generated code in the VM
    let mut fb = slingen_cir::FunctionBuilder::new("probe", nu);
    let map = BufferMap::build(program, &mut fb);
    let mut bufs = BufferSet::for_function(function);
    for (op, data) in &inputs {
        bufs.set(map.buf(*op), data);
    }
    slingen_vm::execute(function, &mut bufs, &mut NullMonitor)?;

    // compare outputs element-wise over their meaningful region; a cell
    // is unspecified if *any* operand sharing the storage (via ow) marks
    // it structurally zero — e.g. the strict lower half of `S` once the
    // Cholesky factor `U` has overwritten it (LAPACK leaves it stale)
    let mut max_diff: f64 = 0.0;
    for (i, decl) in program.operands().iter().enumerate() {
        if !decl.io.writable() {
            continue;
        }
        let op = OpId(i);
        let got = bufs.get(map.buf(op));
        let expect = &ref_bufs[&root(op)];
        let (rows, cols) = (decl.shape.rows, decl.shape.cols);
        let sharers: Vec<&slingen_ir::OperandDecl> = program
            .operands()
            .iter()
            .enumerate()
            .filter(|(j, _)| root(OpId(*j)) == root(op))
            .map(|(_, d)| d)
            .collect();
        for r in 0..rows {
            for c in 0..cols {
                if sharers.iter().any(|d| d.structure.is_zero_at(r, c)) {
                    continue;
                }
                let d = (got[r * cols + c] - expect[r * cols + c]).abs();
                max_diff = max_diff.max(d);
            }
        }
    }
    Ok(max_diff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;
    use crate::pipeline::{generate_with_policy, Options};

    #[test]
    fn all_benchmarks_verify() {
        for (name, program) in [
            ("potrf", apps::potrf(8)),
            ("trsyl", apps::trsyl(6)),
            ("trlya", apps::trlya(6)),
            ("trtri", apps::trtri(8)),
            ("kf", apps::kf(4)),
            ("gpr", apps::gpr(6)),
            ("l1a", apps::l1a(8)),
        ] {
            for policy in Policy::ALL {
                let g = generate_with_policy(&program, policy, &Options::default())
                    .unwrap_or_else(|e| panic!("{name} {policy}: {e}"));
                let diff = verify(&program, &g.function, policy, 4, 1234)
                    .unwrap_or_else(|e| panic!("{name} {policy}: {e}"));
                assert!(diff < 1e-8, "{name} {policy}: diff {diff}");
            }
        }
    }
}
