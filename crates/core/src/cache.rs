//! The persistent, sharded, concurrently served tuning cache.
//!
//! [`TuneCache`] is the amortization layer that turns the generator into
//! a service (ROADMAP item 1): one cold autotuning search per canonical
//! key, every later request a replay. Three properties make it scale:
//!
//! * **Lock striping** — entries are spread over [`SHARD_COUNT`]
//!   independently locked shards (FxHash of the canonical key picks the
//!   shard), so threads generating *distinct* kernels never contend on a
//!   global lock. Per-shard hit/miss/insert/coalesced counters are
//!   surfaced through [`TuneCache::shard_stats`] and `Debug`.
//! * **In-flight dedupe** — the first request for a key installs an
//!   in-flight *flight* record; concurrent requests for the same key
//!   block on its condvar and receive the owner's result (or its error)
//!   instead of redundantly tuning. Exactly one search runs per unique
//!   key, counted by [`TuneCache::searches`].
//! * **Persistence** — [`TuneCache::save`] writes a versioned,
//!   length-prefixed text format atomically (write-temp + rename);
//!   [`TuneCache::load`] warm-loads it. A missing, truncated,
//!   wrong-version, or garbage file yields an *empty* cache with a
//!   logged reason — a corrupt file is never trusted and never panics.
//!   Loaded entries store the winning spec, emitted C, and the exact
//!   measurement report; the C-IR function is *re-materialized* (Stage
//!   1–3 for the one winning spec, no search, no measurement) on first
//!   hit and verified byte-identical against the persisted C — a stale
//!   file silently falls back to a fresh search.
//!
//! The on-disk format is hand-rolled (this workspace is offline — no
//! serde): a magic/version header, one length-prefixed record per entry,
//! and a trailing `end <count>` marker so truncation is always detected:
//!
//! ```text
//! slingen-tunecache v2
//! entry
//! key <bytes>\n<key...>\n
//! spec <policy> <nu> <threshold>
//! db <hits> <misses>
//! stats <explored> <pruned> <deduped> <predicted>
//! report <bytes>\n<Report::to_wire line>\n
//! code <bytes>\n<emitted C>\n
//! end <entry-count>
//! ```
//!
//! v2 differs from v1 only in that the report line may carry the
//! optional trailing measured-time section (`... M <cycles> <ns>
//! <reps>`) written by the measured-autotuning flow; [`TuneCache::load`]
//! accepts both versions, so existing v1 files keep warm-loading
//! unchanged.

use crate::pipeline::Generated;
use crate::tuner::{TuneStats, VariantSpec};
use crate::Error;
use slingen_cir::Function;
use slingen_perf::Report;
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Number of lock stripes. A power of two so the shard index is a mask;
/// 16 stripes keep contention negligible far beyond the worker counts
/// the serve front-end uses.
pub const SHARD_COUNT: usize = 16;

const MAGIC: &str = "slingen-tunecache";
/// Version written by [`TuneCache::save`].
const VERSION: u32 = 2;
/// Versions [`TuneCache::load`] accepts: v1 files (pre-measurement) are
/// a strict subset of v2, so they parse unchanged.
const ACCEPTED_VERSIONS: [u32; 2] = [1, 2];

/// The cached outcome of one tuned generation, fully materialized.
#[derive(Debug, Clone)]
pub(crate) struct CachedWin {
    pub(crate) spec: VariantSpec,
    pub(crate) function: Function,
    pub(crate) c_code: String,
    pub(crate) report: Report,
    pub(crate) db_stats: (usize, usize),
    pub(crate) stats: TuneStats,
}

impl CachedWin {
    /// Build the public result of a cache hit. `coalesced` marks waiters
    /// that received this win from an in-flight search.
    pub(crate) fn to_generated(&self, coalesced: bool) -> Generated {
        Generated {
            function: self.function.clone(),
            c_code: self.c_code.clone(),
            policy: self.spec.policy,
            spec: self.spec,
            report: self.report.clone(),
            db_stats: self.db_stats,
            tuning: TuneStats { cache_hit: true, coalesced, ..self.stats },
            rep_costs: Vec::new(),
            hw_trials: Vec::new(),
        }
    }
}

/// An entry loaded from disk, not yet re-materialized: everything except
/// the C-IR function (which Stage 1–3 reproduces deterministically from
/// the spec). The report is kept in wire form because parsing it needs
/// the requesting machine model.
#[derive(Debug, Clone)]
pub(crate) struct PersistedWin {
    pub(crate) spec: VariantSpec,
    pub(crate) c_code: String,
    pub(crate) report_wire: String,
    pub(crate) db_stats: (usize, usize),
    pub(crate) stats: TuneStats,
}

/// One in-flight search: the owner publishes exactly once, waiters block
/// on the condvar.
struct Flight {
    result: Mutex<Option<Result<Box<CachedWin>, Error>>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Arc<Flight> {
        Arc::new(Flight { result: Mutex::new(None), cv: Condvar::new() })
    }

    fn publish(&self, r: Result<Box<CachedWin>, Error>) {
        let mut slot = self.result.lock().unwrap();
        if slot.is_none() {
            *slot = Some(r);
        }
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<Box<CachedWin>, Error> {
        let mut slot = self.result.lock().unwrap();
        while slot.is_none() {
            slot = self.cv.wait(slot).unwrap();
        }
        slot.as_ref().unwrap().clone()
    }
}

enum Entry {
    Ready(Box<CachedWin>),
    Persisted(Box<PersistedWin>),
    InFlight(Arc<Flight>),
}

/// One stored entry plus its recency stamp: the value of the global hit
/// clock the last time this key was looked up or (re)inserted. Save-time
/// eviction ([`TuneCache::save_capped`]) drops the smallest stamps first.
struct Slot {
    entry: Entry,
    last_hit: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<String, Slot>,
    hits: u64,
    misses: u64,
    inserts: u64,
    coalesced: u64,
}

/// Counters of one cache shard (see [`TuneCache::shard_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Entries currently stored in this shard.
    pub entries: usize,
    /// Lookups answered from a stored entry (in-memory or persisted).
    pub hits: u64,
    /// Lookups that found nothing and started a search.
    pub misses: u64,
    /// Completed searches/materializations stored.
    pub inserts: u64,
    /// Requests that piggybacked on an in-flight search for their key.
    pub coalesced: u64,
}

/// Aggregated counters across all shards (see [`TuneCache::totals`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheTotals {
    /// Entries currently stored.
    pub entries: usize,
    /// Lookups answered from a stored entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Completed searches/materializations stored.
    pub inserts: u64,
    /// Requests that piggybacked on an in-flight search.
    pub coalesced: u64,
    /// Full autotuning searches actually run (the in-flight dedupe and
    /// persisted-replay invariants are stated over this counter).
    pub searches: u64,
}

struct CacheShared {
    shards: [Mutex<Shard>; SHARD_COUNT],
    searches: AtomicU64,
    /// Monotone lookup clock driving the per-slot recency stamps.
    hit_clock: AtomicU64,
}

/// A shareable autotuning cache keyed by (program, machine, search space,
/// options, target). Cloning the handle shares the underlying store, so
/// one cache can serve many threads; `Options::default()` creates a
/// fresh one. See the module docs for sharding, in-flight dedupe, and
/// the persistent format.
#[derive(Clone)]
pub struct TuneCache(Arc<CacheShared>);

impl Default for TuneCache {
    fn default() -> Self {
        TuneCache(Arc::new(CacheShared {
            shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
            searches: AtomicU64::new(0),
            hit_clock: AtomicU64::new(0),
        }))
    }
}

fn shard_index(key: &str) -> usize {
    use std::hash::Hasher as _;
    let mut h = slingen_cir::fxhash::FxHasher::default();
    h.write(key.as_bytes());
    (h.finish() as usize) & (SHARD_COUNT - 1)
}

impl TuneCache {
    /// An empty cache.
    pub fn new() -> Self {
        TuneCache::default()
    }

    /// (hits, misses) so far, summed over all shards.
    pub fn stats(&self) -> (usize, usize) {
        let t = self.totals();
        (t.hits as usize, t.misses as usize)
    }

    /// Per-shard counters, indexed by shard.
    pub fn shard_stats(&self) -> [ShardStats; SHARD_COUNT] {
        std::array::from_fn(|i| {
            let s = self.0.shards[i].lock().unwrap();
            ShardStats {
                entries: s.map.len(),
                hits: s.hits,
                misses: s.misses,
                inserts: s.inserts,
                coalesced: s.coalesced,
            }
        })
    }

    /// Aggregated counters across all shards.
    pub fn totals(&self) -> CacheTotals {
        let mut t = CacheTotals { searches: self.searches(), ..CacheTotals::default() };
        for s in self.shard_stats() {
            t.entries += s.entries;
            t.hits += s.hits;
            t.misses += s.misses;
            t.inserts += s.inserts;
            t.coalesced += s.coalesced;
        }
        t
    }

    /// Full autotuning searches run through this cache (one per unique
    /// key, regardless of how many requests raced on it).
    pub fn searches(&self) -> u64 {
        self.0.searches.load(Ordering::Relaxed)
    }

    /// Requests that piggybacked on an in-flight search.
    pub fn coalesced(&self) -> u64 {
        self.totals().coalesced
    }

    /// Number of cached programs.
    pub fn len(&self) -> usize {
        self.totals().entries
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all entries (stats are kept).
    pub fn clear(&self) {
        for s in &self.0.shards {
            s.lock().unwrap().map.clear();
        }
    }

    pub(crate) fn note_search(&self) {
        self.0.searches.fetch_add(1, Ordering::Relaxed);
    }

    /// Advance the hit clock and return the new stamp.
    fn touch(&self) -> u64 {
        self.0.hit_clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Resolve `key`: a stored entry is a [`Claim::Hit`]; an in-flight
    /// search blocks until its owner publishes; a vacant slot makes the
    /// caller the owner ([`Claim::Owner`]) — it must run the search (or
    /// materialize the persisted payload) and settle the [`Ticket`].
    pub(crate) fn claim(&self, key: &str) -> Claim {
        let si = shard_index(key);
        let now = self.touch();
        let flight;
        {
            let mut shard = self.0.shards[si].lock().unwrap();
            let Shard { map, hits, misses, coalesced, .. } = &mut *shard;
            match map.get_mut(key) {
                Some(slot) => {
                    slot.last_hit = now;
                    match &slot.entry {
                        Entry::Ready(win) => {
                            let g = win.to_generated(false);
                            *hits += 1;
                            return Claim::Hit(Box::new(g));
                        }
                        Entry::Persisted(_) => {
                            *hits += 1;
                            let f = Flight::new();
                            let Entry::Persisted(p) =
                                std::mem::replace(&mut slot.entry, Entry::InFlight(f.clone()))
                            else {
                                unreachable!("entry was just observed as Persisted");
                            };
                            return Claim::Owner(Ticket {
                                cache: self.clone(),
                                key: key.to_string(),
                                flight: f,
                                payload: Some(p),
                                settled: false,
                            });
                        }
                        Entry::InFlight(f) => {
                            flight = f.clone();
                            *coalesced += 1;
                        }
                    }
                }
                None => {
                    *misses += 1;
                    let f = Flight::new();
                    map.insert(
                        key.to_string(),
                        Slot { entry: Entry::InFlight(f.clone()), last_hit: now },
                    );
                    return Claim::Owner(Ticket {
                        cache: self.clone(),
                        key: key.to_string(),
                        flight: f,
                        payload: None,
                        settled: false,
                    });
                }
            }
        }
        // Coalesced: block outside the shard lock until the owner
        // publishes, then share its result (or its error).
        match flight.wait() {
            Ok(win) => Claim::Hit(Box::new(win.to_generated(true))),
            Err(e) => Claim::Failed(e),
        }
    }

    /// Store a freshly loaded persisted entry (load path only).
    fn insert_persisted(&self, key: String, win: PersistedWin) {
        let si = shard_index(&key);
        let slot = Slot { entry: Entry::Persisted(Box::new(win)), last_hit: self.touch() };
        self.0.shards[si].lock().unwrap().map.insert(key, slot);
    }

    /// Atomically persist every settled entry: write a temp file next to
    /// `path`, then rename over it. In-flight entries are skipped (their
    /// searches have not finished); persisted-but-unmaterialized entries
    /// round-trip unchanged. Returns the number of entries written.
    pub fn save(&self, path: &Path) -> io::Result<usize> {
        self.save_capped(path, None)
    }

    /// [`TuneCache::save`] with a size cap: when the store holds more
    /// than `max_entries` settled entries, the least-recently-hit
    /// surplus is evicted — dropped from memory *and* omitted from the
    /// file — before writing. Recency is the in-process hit clock
    /// (every lookup or insert stamps its slot), so long-running serve
    /// processes keep their hot working set and shed one-off requests.
    /// In-flight entries are never evicted (their owners hold tickets)
    /// and, as always, never persisted.
    pub fn save_capped(&self, path: &Path, max_entries: Option<usize>) -> io::Result<usize> {
        if let Some(cap) = max_entries {
            self.evict_least_recently_hit(cap);
        }
        use std::fmt::Write as _;
        let mut out = format!("{MAGIC} v{VERSION}\n");
        let mut count = 0usize;
        for shard in &self.0.shards {
            let shard = shard.lock().unwrap();
            for (key, slot) in &shard.map {
                let (spec, c_code, wire, db_stats, stats) = match &slot.entry {
                    Entry::Ready(w) => (w.spec, &w.c_code, w.report.to_wire(), w.db_stats, w.stats),
                    Entry::Persisted(p) => {
                        (p.spec, &p.c_code, p.report_wire.clone(), p.db_stats, p.stats)
                    }
                    Entry::InFlight(_) => continue,
                };
                out.push_str("entry\n");
                let _ = write!(out, "key {}\n{key}\n", key.len());
                let _ = writeln!(out, "spec {} {} {}", spec.policy, spec.nu, spec.loop_threshold);
                let _ = writeln!(out, "db {} {}", db_stats.0, db_stats.1);
                let _ = writeln!(
                    out,
                    "stats {} {} {} {}",
                    stats.explored, stats.pruned, stats.deduped, stats.predicted
                );
                let _ = write!(out, "report {}\n{wire}\n", wire.len());
                let _ = write!(out, "code {}\n{c_code}\n", c_code.len());
                count += 1;
            }
        }
        let _ = writeln!(out, "end {count}");
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, &out)?;
        match std::fs::rename(&tmp, path) {
            Ok(()) => Ok(count),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Drop least-recently-hit settled entries until at most `cap`
    /// remain. The snapshot-then-remove shape keeps each shard lock
    /// short; an entry that is looked up (fresh stamp) or goes in-flight
    /// between the two steps survives — eviction is best-effort, never
    /// racing a live request.
    fn evict_least_recently_hit(&self, cap: usize) {
        let mut settled: Vec<(u64, usize, String)> = Vec::new();
        for (si, shard) in self.0.shards.iter().enumerate() {
            let shard = shard.lock().unwrap();
            for (key, slot) in &shard.map {
                if !matches!(slot.entry, Entry::InFlight(_)) {
                    settled.push((slot.last_hit, si, key.clone()));
                }
            }
        }
        if settled.len() <= cap {
            return;
        }
        settled.sort();
        let excess = settled.len() - cap;
        for (stamp, si, key) in settled.into_iter().take(excess) {
            let mut shard = self.0.shards[si].lock().unwrap();
            if let Some(slot) = shard.map.get(&key) {
                if slot.last_hit == stamp && !matches!(slot.entry, Entry::InFlight(_)) {
                    shard.map.remove(&key);
                }
            }
        }
    }

    /// Warm-load a cache file. A missing file is a normal first run
    /// (silently empty); any other load failure logs its reason to
    /// stderr and returns an empty cache — never a panic, never a hard
    /// error into `generate()`.
    pub fn load(path: &Path) -> TuneCache {
        if !path.exists() {
            return TuneCache::new();
        }
        match TuneCache::load_checked(path) {
            Ok(c) => c,
            Err(reason) => {
                eprintln!("slingen: ignoring tuning cache {}: {reason}", path.display());
                TuneCache::new()
            }
        }
    }

    /// [`TuneCache::load`] with the failure reason surfaced, for callers
    /// (and tests) that want to distinguish corruption from emptiness.
    pub fn load_checked(path: &Path) -> Result<TuneCache, String> {
        let src = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
        let entries = parse_cache_file(&src)?;
        let cache = TuneCache::new();
        for (key, win) in entries {
            cache.insert_persisted(key, win);
        }
        Ok(cache)
    }
}

impl fmt::Debug for TuneCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.totals();
        let mut d = f.debug_struct("TuneCache");
        d.field("entries", &t.entries)
            .field("hits", &t.hits)
            .field("misses", &t.misses)
            .field("inserts", &t.inserts)
            .field("coalesced", &t.coalesced)
            .field("searches", &t.searches);
        // per-shard counters, only for shards that saw traffic
        for (i, s) in self.shard_stats().iter().enumerate() {
            if s.entries > 0 || s.hits > 0 || s.misses > 0 {
                d.field(&format!("shard{i}"), s);
            }
        }
        d.finish()
    }
}

/// How a [`TuneCache::claim`] resolved.
pub(crate) enum Claim {
    /// The key was cached (or an in-flight search finished): here is the
    /// replayed result (boxed — a `Generated` carries the whole C-IR
    /// function).
    Hit(Box<Generated>),
    /// Nothing cached: the caller owns the search for this key and must
    /// settle the ticket.
    Owner(Ticket),
    /// The in-flight owner this request coalesced onto failed; its error
    /// is shared.
    Failed(Error),
}

/// Ownership of one in-flight cache slot. The owner must call
/// [`Ticket::fulfill`] or [`Ticket::fail`]; dropping an unsettled ticket
/// (owner panicked) wakes all waiters with an error and vacates the slot
/// so a later request can retry.
pub(crate) struct Ticket {
    cache: TuneCache,
    key: String,
    flight: Arc<Flight>,
    payload: Option<Box<PersistedWin>>,
    settled: bool,
}

impl Ticket {
    /// The persisted payload to re-materialize, if this slot was loaded
    /// from disk.
    pub(crate) fn take_persisted(&mut self) -> Option<Box<PersistedWin>> {
        self.payload.take()
    }

    /// Publish the finished win: waiters wake with it, the slot becomes
    /// [`Entry::Ready`].
    pub(crate) fn fulfill(mut self, win: CachedWin) {
        self.settled = true;
        let boxed = Box::new(win);
        let si = shard_index(&self.key);
        {
            let now = self.cache.touch();
            let mut shard = self.cache.0.shards[si].lock().unwrap();
            shard.inserts += 1;
            shard.map.insert(
                self.key.clone(),
                Slot { entry: Entry::Ready(boxed.clone()), last_hit: now },
            );
        }
        self.flight.publish(Ok(boxed));
    }

    /// Publish a failure: waiters wake with the (cloned) error, the slot
    /// is vacated so the next request retries.
    pub(crate) fn fail(mut self, e: Error) {
        self.settled = true;
        self.vacate(e);
    }

    fn vacate(&self, e: Error) {
        let si = shard_index(&self.key);
        {
            let mut shard = self.cache.0.shards[si].lock().unwrap();
            if let Some(Slot { entry: Entry::InFlight(f), .. }) = shard.map.get(&self.key) {
                if Arc::ptr_eq(f, &self.flight) {
                    shard.map.remove(&self.key);
                }
            }
        }
        self.flight.publish(Err(e));
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        if !self.settled {
            self.vacate(Error::Synth(slingen_synth::SynthError::Unsupported(
                "in-flight tuning search abandoned".into(),
            )));
        }
    }
}

/// Strict parser for the cache file format (see module docs). Any
/// anomaly — bad magic, unknown version, truncation, lying lengths, a
/// missing `end` marker, an entry-count mismatch — rejects the *whole*
/// file with a reason: a damaged cache is never partially trusted.
fn parse_cache_file(src: &str) -> Result<Vec<(String, PersistedWin)>, String> {
    let mut pos = 0usize;

    fn take_line<'a>(src: &'a str, pos: &mut usize) -> Result<&'a str, String> {
        if *pos >= src.len() {
            return Err("truncated: expected a line".into());
        }
        let rest = &src[*pos..];
        let end = rest.find('\n').ok_or("truncated: unterminated line")?;
        *pos += end + 1;
        Ok(&rest[..end])
    }

    fn take_blob<'a>(src: &'a str, pos: &mut usize, len: usize) -> Result<&'a str, String> {
        let blob = src.get(*pos..*pos + len).ok_or("truncated: blob shorter than its length")?;
        *pos += len;
        match src.as_bytes().get(*pos) {
            Some(b'\n') => {
                *pos += 1;
                Ok(blob)
            }
            _ => Err("framing: blob not newline-terminated (lying length?)".into()),
        }
    }

    let header = take_line(src, &mut pos)?;
    let version = header
        .strip_prefix(MAGIC)
        .and_then(|r| r.strip_prefix(" v"))
        .ok_or_else(|| format!("bad magic: {header:?}"))?;
    let v = version.parse::<u32>().map_err(|_| format!("bad version: {version:?}"))?;
    if !ACCEPTED_VERSIONS.contains(&v) {
        return Err(format!("unsupported version {v} (accepted {ACCEPTED_VERSIONS:?})"));
    }

    let mut entries = Vec::new();
    loop {
        let line = take_line(src, &mut pos)?;
        if let Some(n) = line.strip_prefix("end ") {
            let n: usize = n.parse().map_err(|_| "bad end count")?;
            if n != entries.len() {
                return Err(format!("entry count mismatch: marker {n}, found {}", entries.len()));
            }
            if !src[pos..].trim().is_empty() {
                return Err("trailing garbage after end marker".into());
            }
            return Ok(entries);
        }
        if line != "entry" {
            return Err(format!("expected `entry` or `end`, got {line:?}"));
        }
        let klen: usize = take_line(src, &mut pos)?
            .strip_prefix("key ")
            .ok_or("expected `key <len>`")?
            .parse()
            .map_err(|_| "bad key length")?;
        let key = take_blob(src, &mut pos, klen)?.to_string();

        let spec_line = take_line(src, &mut pos)?;
        let mut t = spec_line.strip_prefix("spec ").ok_or("expected `spec`")?.split(' ');
        let policy = t.next().and_then(slingen_synth::Policy::parse).ok_or("bad spec policy")?;
        let nu: usize = t.next().and_then(|s| s.parse().ok()).ok_or("bad spec nu")?;
        let loop_threshold: usize =
            t.next().and_then(|s| s.parse().ok()).ok_or("bad spec threshold")?;
        if t.next().is_some() {
            return Err("trailing tokens on spec line".into());
        }

        let db_line = take_line(src, &mut pos)?;
        let mut t = db_line.strip_prefix("db ").ok_or("expected `db`")?.split(' ');
        let db_hits: usize = t.next().and_then(|s| s.parse().ok()).ok_or("bad db hits")?;
        let db_misses: usize = t.next().and_then(|s| s.parse().ok()).ok_or("bad db misses")?;

        let stats_line = take_line(src, &mut pos)?;
        let mut t = stats_line.strip_prefix("stats ").ok_or("expected `stats`")?.split(' ');
        let mut next_n = || -> Result<usize, String> {
            t.next().and_then(|s| s.parse().ok()).ok_or_else(|| "bad stats field".into())
        };
        let (explored, pruned, deduped, predicted) = (next_n()?, next_n()?, next_n()?, next_n()?);

        let rlen: usize = take_line(src, &mut pos)?
            .strip_prefix("report ")
            .ok_or("expected `report <len>`")?
            .parse()
            .map_err(|_| "bad report length")?;
        let report_wire = take_blob(src, &mut pos, rlen)?.to_string();

        let clen: usize = take_line(src, &mut pos)?
            .strip_prefix("code ")
            .ok_or("expected `code <len>`")?
            .parse()
            .map_err(|_| "bad code length")?;
        let c_code = take_blob(src, &mut pos, clen)?.to_string();

        entries.push((
            key,
            PersistedWin {
                spec: VariantSpec { policy, nu, loop_threshold },
                c_code,
                report_wire,
                db_stats: (db_hits, db_misses),
                stats: TuneStats {
                    explored,
                    pruned,
                    deduped,
                    predicted,
                    persisted: true,
                    ..TuneStats::default()
                },
            },
        ));
    }
}
