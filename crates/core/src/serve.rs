//! Kernel-generation as a service: the front-end behind `slingen-serve`.
//!
//! The [`Engine`] turns one shared, sharded [`TuneCache`] into a
//! concurrent request handler: clients submit line-delimited JSON
//! requests naming a paper app, a size, and a target, and receive one
//! JSON response line each — the emitted C (or a summary) plus a cache
//! marker saying how the request was served (`miss` = a search ran,
//! `hit` = in-memory replay, `persisted` = replayed from a cache file,
//! `coalesced` = piggybacked on a concurrent identical request) and a
//! `cycles_source` marker saying which signal ranked the winner
//! (`model` = the scheduler's estimate, `measured` = stage-two hardware
//! timing; see [`crate::measure`]). The JSON codec is hand-rolled —
//! this workspace is offline, no serde.
//!
//! Request schema (one object per line; unknown keys are ignored):
//!
//! ```json
//! {"id": 1, "app": "potrf", "n": 8, "target": "avx2", "emit": "c"}
//! ```
//!
//! * `app` — `potrf | trsyl | trlya | trtri | kf | gpr | l1a`
//! * `n` — operand size, 1..=64
//! * `k` — observation count, kf only (defaults to `n`)
//! * `target` — `scalar | sse2 | avx2 | avx2fma` (default `avx2`)
//! * `emit` — `c` (default: full C in the response) or `summary`
//! * `id` — any scalar, echoed back verbatim
//!
//! [`serve_lines`] runs a worker pool over a line stream: N workers pull
//! requests off a channel and write completed responses (in completion
//! order — correlate by `id`) through a shared writer. Workers share the
//! engine's cache, so identical concurrent requests coalesce onto one
//! search and distinct requests land on distinct cache shards.

use crate::cache::TuneCache;
use crate::measure::MeasureConfig;
use crate::pipeline::{Generated, Options};
use crate::{apps, Target};
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

/// Largest accepted operand size: the generator is fully unrolled, so
/// cold searches beyond this are minutes, not milliseconds.
pub const MAX_N: usize = 64;

/// A scalar JSON value (requests are flat objects of scalars).
#[derive(Debug, Clone, PartialEq)]
enum Scalar {
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

impl Scalar {
    /// Render back as a JSON token (used to echo `id`).
    fn render(&self) -> String {
        match self {
            Scalar::Str(s) => format!("\"{}\"", escape_json(s)),
            Scalar::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
            Scalar::Bool(b) => b.to_string(),
            Scalar::Null => "null".into(),
        }
    }

    fn as_usize(&self) -> Option<usize> {
        match self {
            Scalar::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n < 1e9 => Some(*n as usize),
            _ => None,
        }
    }
}

/// Escape a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parse one flat JSON object of scalar values. Rejects nesting,
/// duplicate-insensitive (last key wins), tolerant of whitespace.
fn parse_flat_object(s: &str) -> Result<Vec<(String, Scalar)>, String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    let skip_ws = |i: &mut usize| {
        while *i < b.len() && (b[*i] as char).is_ascii_whitespace() {
            *i += 1;
        }
    };
    let parse_string = |i: &mut usize| -> Result<String, String> {
        if b.get(*i) != Some(&b'"') {
            return Err("expected '\"'".into());
        }
        *i += 1;
        let mut out = String::new();
        loop {
            let c = *b.get(*i).ok_or("unterminated string")?;
            *i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *b.get(*i).ok_or("unterminated escape")?;
                    *i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = s.get(*i..*i + 4).ok_or("truncated \\u escape")?;
                            let v = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            *i += 4;
                            out.push(char::from_u32(v).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err("unknown escape".into()),
                    }
                }
                c if c < 0x20 => return Err("raw control char in string".into()),
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // multi-byte UTF-8: copy the whole char
                    let rest = &s[*i - 1..];
                    let ch = rest.chars().next().ok_or("bad utf8")?;
                    out.push(ch);
                    *i += ch.len_utf8() - 1;
                }
            }
        }
    };
    skip_ws(&mut i);
    if b.get(i) != Some(&b'{') {
        return Err("expected a JSON object".into());
    }
    i += 1;
    let mut fields = Vec::new();
    skip_ws(&mut i);
    if b.get(i) == Some(&b'}') {
        return Ok(fields);
    }
    loop {
        skip_ws(&mut i);
        let key = parse_string(&mut i)?;
        skip_ws(&mut i);
        if b.get(i) != Some(&b':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        i += 1;
        skip_ws(&mut i);
        let val = match b.get(i) {
            Some(b'"') => Scalar::Str(parse_string(&mut i)?),
            Some(b't') if s[i..].starts_with("true") => {
                i += 4;
                Scalar::Bool(true)
            }
            Some(b'f') if s[i..].starts_with("false") => {
                i += 5;
                Scalar::Bool(false)
            }
            Some(b'n') if s[i..].starts_with("null") => {
                i += 4;
                Scalar::Null
            }
            Some(b'{') | Some(b'[') => {
                return Err(format!("key {key:?}: nested values are not supported"))
            }
            Some(_) => {
                let start = i;
                while i < b.len() && matches!(b[i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    i += 1;
                }
                let n: f64 =
                    s[start..i].parse().map_err(|_| format!("key {key:?}: unparsable value"))?;
                Scalar::Num(n)
            }
            None => return Err("truncated object".into()),
        };
        fields.push((key, val));
        skip_ws(&mut i);
        match b.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => {
                i += 1;
                skip_ws(&mut i);
                if i != b.len() {
                    return Err("trailing garbage after object".into());
                }
                return Ok(fields);
            }
            _ => return Err("expected ',' or '}'".into()),
        }
    }
}

/// What the response should carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Emit {
    /// The full emitted C in the `"c"` field.
    Code,
    /// Winner spec and modeled performance only.
    Summary,
}

/// One parsed generation request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Echoed back verbatim (JSON rendering of whatever the client sent).
    pub id: String,
    /// Paper app name.
    pub app: String,
    /// Operand size.
    pub n: usize,
    /// kf observation count (defaults to `n`).
    pub k: Option<usize>,
    /// Instruction-set target.
    pub target: Target,
    /// Response payload selection.
    pub emit: Emit,
}

impl Request {
    /// Parse one request line. `default_target` fills in a missing
    /// `target` field.
    pub fn parse(line: &str, default_target: Target) -> Result<Request, (String, String)> {
        let fields = parse_flat_object(line).map_err(|e| ("null".to_string(), e))?;
        let id = fields
            .iter()
            .find(|(k, _)| k == "id")
            .map(|(_, v)| v.render())
            .unwrap_or_else(|| "null".into());
        let err = |msg: &str| (id.clone(), msg.to_string());
        let get = |key: &str| fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v);
        let app = match get("app") {
            Some(Scalar::Str(s)) => s.clone(),
            _ => return Err(err("missing or non-string `app`")),
        };
        let n = match get("n").and_then(Scalar::as_usize) {
            Some(n) if (1..=MAX_N).contains(&n) => n,
            Some(_) => return Err(err(&format!("`n` out of range (1..={MAX_N})"))),
            None => return Err(err("missing or non-integer `n`")),
        };
        let k = match get("k") {
            None | Some(Scalar::Null) => None,
            Some(v) => match v.as_usize() {
                Some(k) if (1..=MAX_N).contains(&k) => Some(k),
                _ => return Err(err(&format!("`k` out of range (1..={MAX_N})"))),
            },
        };
        let target = match get("target") {
            None | Some(Scalar::Null) => default_target,
            Some(Scalar::Str(s)) => match Target::parse(s) {
                Some(t) => t,
                None => return Err(err(&format!("unknown target `{s}`"))),
            },
            Some(_) => return Err(err("non-string `target`")),
        };
        let emit = match get("emit") {
            None | Some(Scalar::Null) => Emit::Code,
            Some(Scalar::Str(s)) if s == "c" => Emit::Code,
            Some(Scalar::Str(s)) if s == "summary" => Emit::Summary,
            _ => return Err(err("`emit` must be \"c\" or \"summary\"")),
        };
        Ok(Request { id, app, n, k, target, emit })
    }

    fn program(&self) -> Result<slingen_ir::Program, String> {
        Ok(match self.app.as_str() {
            "potrf" => apps::potrf(self.n),
            "trsyl" => apps::trsyl(self.n),
            "trlya" => apps::trlya(self.n),
            "trtri" => apps::trtri(self.n),
            "kf" => apps::kf_sized(self.n, self.k.unwrap_or(self.n)),
            "gpr" => apps::gpr(self.n),
            "l1a" => apps::l1a(self.n),
            other => return Err(format!("unknown app `{other}`")),
        })
    }
}

/// How a response was served, from its tuning stats.
fn cache_marker(g: &Generated) -> &'static str {
    if g.tuning.coalesced {
        "coalesced"
    } else if g.tuning.cache_hit && g.tuning.persisted {
        "persisted"
    } else if g.tuning.cache_hit {
        "hit"
    } else {
        "miss"
    }
}

/// The serve engine: one shared cache, stateless per-request options.
/// Cheap to share by reference across worker threads.
pub struct Engine {
    cache: TuneCache,
    default_target: Target,
    /// Measured-autotuning config applied to every request (model-only
    /// by default). Hardware mode degrades per-request to the model
    /// when no compiler works, exactly like `generate()`.
    measure: MeasureConfig,
    /// Responses whose winner was ranked by the model resp. by hardware
    /// timing (surfaced in [`Engine::stats_json`]).
    served_model: AtomicU64,
    served_measured: AtomicU64,
}

impl Engine {
    /// An engine over a (possibly warm-loaded) cache.
    pub fn new(cache: TuneCache, default_target: Target) -> Engine {
        Engine {
            cache,
            default_target,
            measure: MeasureConfig::default(),
            served_model: AtomicU64::new(0),
            served_measured: AtomicU64::new(0),
        }
    }

    /// Use a non-default measurement configuration (builder style).
    pub fn with_measure(mut self, measure: MeasureConfig) -> Engine {
        self.measure = measure;
        self
    }

    /// The shared cache (e.g. to `save()` it on shutdown).
    pub fn cache(&self) -> &TuneCache {
        &self.cache
    }

    /// Handle one request line; always returns exactly one response
    /// line (errors are `{"id":...,"ok":false,"error":"..."}`).
    pub fn handle_line(&self, line: &str) -> String {
        self.handle_line_tagged(line).0
    }

    /// [`Engine::handle_line`] plus whether the request succeeded.
    pub fn handle_line_tagged(&self, line: &str) -> (String, bool) {
        let req = match Request::parse(line, self.default_target) {
            Ok(r) => r,
            Err((id, e)) => {
                return (
                    format!("{{\"id\":{id},\"ok\":false,\"error\":\"{}\"}}", escape_json(&e)),
                    false,
                )
            }
        };
        match self.handle(&req) {
            Ok(resp) => (resp, true),
            Err(e) => (
                format!("{{\"id\":{},\"ok\":false,\"error\":\"{}\"}}", req.id, escape_json(&e)),
                false,
            ),
        }
    }

    /// Generate (or replay) the kernel for one parsed request and render
    /// its response line.
    pub fn handle(&self, req: &Request) -> Result<String, String> {
        let program = req.program()?;
        let options = Options {
            cache: self.cache.clone(),
            measure: self.measure.clone(),
            ..Options::for_target(req.target)
        };
        let g = crate::generate(&program, &options).map_err(|e| e.to_string())?;
        let source = g.cycles_source();
        match source {
            "measured" => self.served_measured.fetch_add(1, Ordering::Relaxed),
            _ => self.served_model.fetch_add(1, Ordering::Relaxed),
        };
        let mut resp = format!(
            "{{\"id\":{},\"ok\":true,\"app\":\"{}\",\"n\":{},\"target\":\"{}\",\"cache\":\"{}\",\
             \"cycles_source\":\"{source}\",\
             \"winner\":\"{}\",\"cycles\":{:.1},\"flops_per_cycle\":{:.3}",
            req.id,
            req.app,
            req.n,
            req.target,
            cache_marker(&g),
            g.spec,
            g.report.cycles,
            g.flops_per_cycle(),
        );
        if req.emit == Emit::Code {
            resp.push_str(&format!(",\"c\":\"{}\"", escape_json(&g.c_code)));
        }
        resp.push('}');
        Ok(resp)
    }

    /// One-line JSON cache/shard statistics (written to stderr by the
    /// binary on shutdown; `searches` is the cold-search count).
    pub fn stats_json(&self) -> String {
        let t = self.cache.totals();
        format!(
            "{{\"cache_entries\": {}, \"hits\": {}, \"misses\": {}, \"inserts\": {}, \
             \"coalesced\": {}, \"searches\": {}, \"served_model\": {}, \
             \"served_measured\": {}}}",
            t.entries,
            t.hits,
            t.misses,
            t.inserts,
            t.coalesced,
            t.searches,
            self.served_model.load(Ordering::Relaxed),
            self.served_measured.load(Ordering::Relaxed)
        )
    }
}

/// Totals of one [`serve_lines`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Request lines handled (blank lines are skipped).
    pub requests: usize,
    /// Requests that produced an error response.
    pub errors: usize,
}

/// Pump line-delimited requests from `input` through a pool of `workers`
/// threads sharing `engine`, writing one response line per request to
/// `output` *in completion order* (correlate by `id`). Returns totals.
pub fn serve_lines<R: BufRead, W: Write + Send>(
    engine: &Engine,
    input: R,
    output: W,
    workers: usize,
) -> std::io::Result<ServeSummary> {
    let (tx, rx) = mpsc::channel::<String>();
    let rx = Mutex::new(rx);
    let out = Mutex::new(output);
    let requests = AtomicUsize::new(0);
    let errors = AtomicUsize::new(0);
    let mut read_err = None;
    std::thread::scope(|scope| {
        for _ in 0..workers.max(1) {
            scope.spawn(|| loop {
                let line = match rx.lock().unwrap().recv() {
                    Ok(l) => l,
                    Err(_) => break,
                };
                let (resp, ok) = engine.handle_line_tagged(&line);
                requests.fetch_add(1, Ordering::Relaxed);
                if !ok {
                    errors.fetch_add(1, Ordering::Relaxed);
                }
                let mut out = out.lock().unwrap();
                let _ = writeln!(out, "{resp}");
                let _ = out.flush();
            });
        }
        for line in input.lines() {
            match line {
                Ok(l) => {
                    if !l.trim().is_empty() && tx.send(l).is_err() {
                        break;
                    }
                }
                Err(e) => {
                    read_err = Some(e);
                    break;
                }
            }
        }
        drop(tx);
    });
    match read_err {
        Some(e) => Err(e),
        None => Ok(ServeSummary {
            requests: requests.load(Ordering::Relaxed),
            errors: errors.load(Ordering::Relaxed),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_request() {
        let r = Request::parse(
            r#"{"id": "a-1", "app": "kf", "n": 4, "k": 2, "target": "sse2", "emit": "summary"}"#,
            Target::Avx2,
        )
        .unwrap();
        assert_eq!(r.id, "\"a-1\"");
        assert_eq!(r.app, "kf");
        assert_eq!((r.n, r.k), (4, Some(2)));
        assert_eq!(r.target, Target::Sse2);
        assert_eq!(r.emit, Emit::Summary);
    }

    #[test]
    fn defaults_and_numeric_id() {
        let r = Request::parse(r#"{"id":7,"app":"potrf","n":8}"#, Target::Avx2Fma).unwrap();
        assert_eq!(r.id, "7");
        assert_eq!(r.target, Target::Avx2Fma);
        assert_eq!(r.emit, Emit::Code);
        assert_eq!(r.k, None);
    }

    #[test]
    fn rejects_bad_requests() {
        for (line, what) in [
            ("not json", "garbage"),
            ("{\"app\":\"potrf\"}", "missing n"),
            ("{\"app\":\"potrf\",\"n\":0}", "n too small"),
            ("{\"app\":\"potrf\",\"n\":65}", "n too large"),
            ("{\"app\":\"potrf\",\"n\":4,\"target\":\"mmx\"}", "bad target"),
            ("{\"app\":\"potrf\",\"n\":4,\"emit\":\"asm\"}", "bad emit"),
            ("{\"app\":\"potrf\",\"n\":{\"x\":1}}", "nested value"),
            ("{\"n\":4}", "missing app"),
        ] {
            assert!(Request::parse(line, Target::Avx2).is_err(), "{what}: {line}");
        }
    }

    #[test]
    fn unknown_app_is_a_response_error_with_echoed_id() {
        let engine = Engine::new(TuneCache::new(), Target::Avx2);
        let (resp, ok) = engine.handle_line_tagged(r#"{"id":3,"app":"gemm","n":4}"#);
        assert!(!ok);
        assert!(resp.contains("\"id\":3"), "{resp}");
        assert!(resp.contains("unknown app"), "{resp}");
    }

    #[test]
    fn escape_round_trips_controls() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
