//! The paper's benchmark programs.
//!
//! * The four HLAC kernels of Table 3: `potrf`, `trsyl`, `trlya`, `trtri`.
//! * The three applications of Fig. 13: the Kalman filter (`kf`), Gaussian
//!   process regression (`gpr`), and the L1-analysis convex solver
//!   (`l1a`).
//!
//! All are expressed as LA programs over fixed-size operands, exactly as
//! they appear in the paper (kf and l1a are one iteration of their
//! respective iterative algorithms).

use slingen_ir::structure::StorageHalf;
use slingen_ir::{Expr, OperandDecl, Program, ProgramBuilder, Properties, Structure};

/// Cholesky factorization `Uᵀ·U = S` (Table 3, `potrf`).
pub fn potrf(n: usize) -> Program {
    let mut b = ProgramBuilder::new("potrf");
    let s = b.declare(
        OperandDecl::mat_in("S", n, n)
            .with_structure(Structure::Symmetric(StorageHalf::Upper))
            .with_properties(Properties::pd()),
    );
    let u = b.declare(
        OperandDecl::mat_out("U", n, n)
            .with_structure(Structure::UpperTriangular)
            .with_properties(Properties::ns()),
    );
    b.equation(Expr::op(u).t().mul(Expr::op(u)), Expr::op(s));
    b.build().expect("potrf program")
}

/// Triangular Sylvester equation `L·X + X·U = C` (Table 3, `trsyl`).
pub fn trsyl(n: usize) -> Program {
    let mut b = ProgramBuilder::new("trsyl");
    let l = b.declare(
        OperandDecl::mat_in("L", n, n)
            .with_structure(Structure::LowerTriangular)
            .with_properties(Properties::ns()),
    );
    let u = b.declare(
        OperandDecl::mat_in("U", n, n)
            .with_structure(Structure::UpperTriangular)
            .with_properties(Properties::ns()),
    );
    let c = b.declare(OperandDecl::mat_in("C", n, n));
    let x = b.declare(OperandDecl::mat_out("X", n, n));
    b.equation(Expr::op(l).mul(Expr::op(x)).add(Expr::op(x).mul(Expr::op(u))), Expr::op(c));
    b.build().expect("trsyl program")
}

/// Triangular Lyapunov equation `L·X + X·Lᵀ = S` (Table 3, `trlya`).
pub fn trlya(n: usize) -> Program {
    let mut b = ProgramBuilder::new("trlya");
    let l = b.declare(
        OperandDecl::mat_in("L", n, n)
            .with_structure(Structure::LowerTriangular)
            .with_properties(Properties::ns()),
    );
    let s = b.declare(
        OperandDecl::mat_in("S", n, n).with_structure(Structure::Symmetric(StorageHalf::Lower)),
    );
    let x = b.declare(
        OperandDecl::mat_out("X", n, n).with_structure(Structure::Symmetric(StorageHalf::Lower)),
    );
    b.equation(Expr::op(l).mul(Expr::op(x)).add(Expr::op(x).mul(Expr::op(l).t())), Expr::op(s));
    b.build().expect("trlya program")
}

/// Triangular matrix inversion `X = L⁻¹` (Table 3, `trtri`).
pub fn trtri(n: usize) -> Program {
    let mut b = ProgramBuilder::new("trtri");
    let l = b.declare(
        OperandDecl::mat_in("L", n, n)
            .with_structure(Structure::LowerTriangular)
            .with_properties(Properties::ns()),
    );
    let x = b.declare(
        OperandDecl::mat_out("X", n, n)
            .with_structure(Structure::LowerTriangular)
            .with_properties(Properties::ns()),
    );
    b.equation(Expr::op(x), Expr::op(l).inv());
    b.build().expect("trtri program")
}

/// One iteration of the Kalman filter (paper Fig. 13a) with `n` states
/// and `k` observations.
pub fn kf_sized(n: usize, k: usize) -> Program {
    let mut b = ProgramBuilder::new("kf");
    let f = b.declare(OperandDecl::mat_in("F", n, n));
    let bb = b.declare(OperandDecl::mat_in("B", n, n));
    let q = b.declare(
        OperandDecl::mat_in("Q", n, n).with_structure(Structure::Symmetric(StorageHalf::Upper)),
    );
    let h = b.declare(OperandDecl::mat_in("H", k, n));
    let r = b.declare(
        OperandDecl::mat_in("R", k, k)
            .with_structure(Structure::Symmetric(StorageHalf::Upper))
            .with_properties(Properties::pd()),
    );
    let p = b.declare(
        OperandDecl::mat_in("P", n, n)
            .with_structure(Structure::Symmetric(StorageHalf::Upper))
            .with_properties(Properties::pd()),
    );
    let u_in = b.declare(OperandDecl::vec_in("u", n));
    let x = b.declare(OperandDecl::vec_in("x", n));
    let z = b.declare(OperandDecl::vec_in("z", k));
    // outputs and temporaries
    let y = b.declare(OperandDecl::vec_out("y", n));
    let ymat = b.declare(OperandDecl::mat_out("Y", n, n));
    let v0 = b.declare(OperandDecl::vec_out("v0", k));
    let m1 = b.declare(OperandDecl::mat_out("M1", k, n));
    let m2 = b.declare(OperandDecl::mat_out("M2", n, k));
    let m3 = b.declare(
        OperandDecl::mat_out("M3", k, k)
            .with_structure(Structure::Symmetric(StorageHalf::Upper))
            .with_properties(Properties::pd()),
    );
    let u = b.declare(
        OperandDecl::mat_out("U", k, k)
            .with_structure(Structure::UpperTriangular)
            .with_properties(Properties::ns()),
    );
    let v1 = b.declare(OperandDecl::vec_out("v1", k));
    let v2 = b.declare(OperandDecl::vec_out("v2", k));
    let m4 = b.declare(OperandDecl::mat_out("M4", k, n));
    let m5 = b.declare(OperandDecl::mat_out("M5", k, n));
    let x_out = b.declare(OperandDecl::vec_out("x_out", n));
    let p_out = b.declare(OperandDecl::mat_out("P_out", n, n));

    // y = F*x + B*u
    b.assign(y, Expr::op(f).mul(Expr::op(x)).add(Expr::op(bb).mul(Expr::op(u_in))));
    // Y = F*P*F' + Q
    b.assign(ymat, Expr::op(f).mul(Expr::op(p)).mul(Expr::op(f).t()).add(Expr::op(q)));
    // v0 = z - H*y
    b.assign(v0, Expr::op(z).sub(Expr::op(h).mul(Expr::op(y))));
    // M1 = H*Y
    b.assign(m1, Expr::op(h).mul(Expr::op(ymat)));
    // M2 = Y*H'
    b.assign(m2, Expr::op(ymat).mul(Expr::op(h).t()));
    // M3 = M1*H' + R
    b.assign(m3, Expr::op(m1).mul(Expr::op(h).t()).add(Expr::op(r)));
    // U'U = M3
    b.equation(Expr::op(u).t().mul(Expr::op(u)), Expr::op(m3));
    // U'v1 = v0 ; U v2 = v1
    b.equation(Expr::op(u).t().mul(Expr::op(v1)), Expr::op(v0));
    b.equation(Expr::op(u).mul(Expr::op(v2)), Expr::op(v1));
    // U'M4 = M1 ; U M5 = M4
    b.equation(Expr::op(u).t().mul(Expr::op(m4)), Expr::op(m1));
    b.equation(Expr::op(u).mul(Expr::op(m5)), Expr::op(m4));
    // x = y + M2*v2
    b.assign(x_out, Expr::op(y).add(Expr::op(m2).mul(Expr::op(v2))));
    // P = Y - M2*M5
    b.assign(p_out, Expr::op(ymat).sub(Expr::op(m2).mul(Expr::op(m5))));
    b.build().expect("kf program")
}

/// Kalman filter with observation size equal to the state size (the
/// paper's Fig. 15a configuration).
pub fn kf(n: usize) -> Program {
    kf_sized(n, n)
}

/// Gaussian process regression (paper Fig. 13b).
pub fn gpr(n: usize) -> Program {
    let mut b = ProgramBuilder::new("gpr");
    let kmat = b.declare(
        OperandDecl::mat_in("K", n, n)
            .with_structure(Structure::Symmetric(StorageHalf::Lower))
            .with_properties(Properties::pd()),
    );
    let xmat = b.declare(OperandDecl::mat_in("X", n, n));
    let x = b.declare(OperandDecl::vec_in("x", n));
    let y = b.declare(OperandDecl::vec_in("y", n));
    let l = b.declare(
        OperandDecl::mat_out("L", n, n)
            .with_structure(Structure::LowerTriangular)
            .with_properties(Properties::ns()),
    );
    let t0 = b.declare(OperandDecl::vec_out("t0", n));
    let t1 = b.declare(OperandDecl::vec_out("t1", n));
    let kv = b.declare(OperandDecl::vec_out("k", n));
    let phi = b.declare(OperandDecl::sca_out("phi"));
    let v = b.declare(OperandDecl::vec_out("v", n));
    let psi = b.declare(OperandDecl::sca_out("psi"));
    let lam = b.declare(OperandDecl::sca_out("lambda"));

    // L*L' = K
    b.equation(Expr::op(l).mul(Expr::op(l).t()), Expr::op(kmat));
    // L*t0 = y ; L'*t1 = t0
    b.equation(Expr::op(l).mul(Expr::op(t0)), Expr::op(y));
    b.equation(Expr::op(l).t().mul(Expr::op(t1)), Expr::op(t0));
    // k = X*x
    b.assign(kv, Expr::op(xmat).mul(Expr::op(x)));
    // phi = k'*t1
    b.assign(phi, Expr::op(kv).t().mul(Expr::op(t1)));
    // L*v = k
    b.equation(Expr::op(l).mul(Expr::op(v)), Expr::op(kv));
    // psi = x'*x - v'*v
    b.assign(psi, Expr::op(x).t().mul(Expr::op(x)).sub(Expr::op(v).t().mul(Expr::op(v))));
    // lambda = y'*t1
    b.assign(lam, Expr::op(y).t().mul(Expr::op(t1)));
    b.build().expect("gpr program")
}

/// One iteration of the L1-analysis convex solver (paper Fig. 13c).
pub fn l1a(n: usize) -> Program {
    let mut b = ProgramBuilder::new("l1a");
    let w = b.declare(OperandDecl::mat_in("W", n, n));
    let a = b.declare(OperandDecl::mat_in("A", n, n));
    let x0 = b.declare(OperandDecl::vec_in("x0", n));
    let y = b.declare(OperandDecl::vec_in("y", n));
    let v1 = b.declare(OperandDecl::vec_in("v1_in", n));
    let z1 = b.declare(OperandDecl::vec_in("z1_in", n));
    let v2 = b.declare(OperandDecl::vec_in("v2_in", n));
    let z2 = b.declare(OperandDecl::vec_in("z2_in", n));
    let alpha = b.declare(OperandDecl::sca_in("alpha"));
    let beta = b.declare(OperandDecl::sca_in("beta"));
    let tau = b.declare(OperandDecl::sca_in("tau"));
    let y1 = b.declare(OperandDecl::vec_out("y1", n));
    let y2 = b.declare(OperandDecl::vec_out("y2", n));
    let x1 = b.declare(OperandDecl::vec_out("x1", n));
    let x = b.declare(OperandDecl::vec_out("x", n));
    let z1o = b.declare(OperandDecl::vec_out("z1", n));
    let z2o = b.declare(OperandDecl::vec_out("z2", n));
    let v1o = b.declare(OperandDecl::vec_out("v1", n));
    let v2o = b.declare(OperandDecl::vec_out("v2", n));

    // y1 = alpha*v1 + tau*z1 ; y2 = alpha*v2 + tau*z2
    b.assign(y1, Expr::op(alpha).mul(Expr::op(v1)).add(Expr::op(tau).mul(Expr::op(z1))));
    b.assign(y2, Expr::op(alpha).mul(Expr::op(v2)).add(Expr::op(tau).mul(Expr::op(z2))));
    // x1 = W'*y1 - A'*y2
    b.assign(x1, Expr::op(w).t().mul(Expr::op(y1)).sub(Expr::op(a).t().mul(Expr::op(y2))));
    // x = x0 + beta*x1
    b.assign(x, Expr::op(x0).add(Expr::op(beta).mul(Expr::op(x1))));
    // z1 = y1 - W*x
    b.assign(z1o, Expr::op(y1).sub(Expr::op(w).mul(Expr::op(x))));
    // z2 = y2 - (y - A*x)
    b.assign(z2o, Expr::op(y2).sub(Expr::op(y).sub(Expr::op(a).mul(Expr::op(x)))));
    // v1 = alpha*v1 + tau*z1 ; v2 = alpha*v2 + tau*z2
    b.assign(v1o, Expr::op(alpha).mul(Expr::op(v1)).add(Expr::op(tau).mul(Expr::op(z1o))));
    b.assign(v2o, Expr::op(alpha).mul(Expr::op(v2)).add(Expr::op(tau).mul(Expr::op(z2o))));
    b.build().expect("l1a program")
}

/// Nominal flop counts used for the paper's performance plots.
pub fn nominal_flops(name: &str, n: usize, k: usize) -> f64 {
    let nf = n as f64;
    let kf_ = k as f64;
    match name {
        "potrf" => nf * nf * nf / 3.0,
        "trsyl" => 2.0 * nf * nf * nf,
        "trlya" => nf * nf * nf,
        "trtri" => nf * nf * nf / 3.0,
        "kf" => 11.3 * nf * nf * nf,
        "kf28" => kf_ * kf_ * kf_ / 3.0,
        "gpr" => nf * nf * nf / 3.0,
        "l1a" => 8.0 * nf * nf,
        other => panic!("unknown benchmark `{other}`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_programs_build() {
        for n in [4usize, 8, 12] {
            assert_eq!(potrf(n).statements().len(), 1);
            assert_eq!(trsyl(n).statements().len(), 1);
            assert_eq!(trlya(n).statements().len(), 1);
            assert_eq!(trtri(n).statements().len(), 1);
            assert_eq!(kf(n).statements().len(), 13);
            assert_eq!(gpr(n).statements().len(), 8);
            assert_eq!(l1a(n).statements().len(), 8);
        }
        assert_eq!(kf_sized(28, 4).name(), "kf");
    }

    #[test]
    fn kf_mixes_sblacs_and_hlacs() {
        let p = kf(4);
        let hlacs = p.statements().iter().filter(|s| s.is_hlac()).count();
        assert_eq!(hlacs, 5, "one Cholesky + four triangular solves");
    }

    #[test]
    fn flop_formulas() {
        assert_eq!(nominal_flops("potrf", 12, 0), 576.0);
        assert_eq!(nominal_flops("trsyl", 4, 0), 128.0);
        assert_eq!(nominal_flops("l1a", 10, 0), 800.0);
    }
}
