//! Measured-performance autotuning: run emitted C on real hardware.
//!
//! Every ranking signal elsewhere in the crate comes from the modeled
//! scheduler in `slingen-perf`; the paper's numbers are wall-clock on a
//! real Sandy Bridge. This module closes that loop with a pluggable
//! [`Measurer`]:
//!
//! * [`ModelMeasurer`] wraps today's modeled-cycle scheduler, so model
//!   ranking goes through the same interface;
//! * [`HardwareMeasurer`] compiles the emitted C into a standalone
//!   timing harness (`slingen_cir::unparse::to_c_harness`) with a C
//!   compiler shelled out per target, runs it, and parses a
//!   median-of-min cycle estimate back. Compiled artifacts are cached
//!   on disk by a digest of the full harness source, so identical
//!   variants never recompile — within a search *and* across runs.
//!
//! The tuner uses these in a two-stage flow (model pruning, hardware
//! re-ranking of the top-K survivors; see `tuner::tune`), and
//! [`calibrate`] fits per-op latencies/throughputs from generated
//! microbenchmark chains to quantify where the shipped cost tables
//! drift from the host — most importantly the divider, which alone
//! decides the small-`potrf` winners.
//!
//! Everything here degrades gracefully: any failure (no compiler,
//! compile error, harness crash) is an [`HwError`] with a reason, and
//! callers fall back to the model-only flow, logging why.

use crate::workload;
use slingen_cir::unparse::{to_c_harness, HarnessOpts};
use slingen_cir::{Function, Target};
use slingen_ir::Program;
use slingen_lgen::BufferMap;
use slingen_perf::{Machine, MeasuredTime};
use slingen_vm::BufferSet;
use std::fmt;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Which signal ranks variants in the autotuner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MeasureMode {
    /// Model-only (the historical flow): the scheduler's cycle estimate
    /// is the final ranking.
    #[default]
    Model,
    /// Two-stage: model for pruning, hardware timing for the final
    /// ranking of the top-K surviving distinct kernels. Falls back to
    /// `Model` (with a logged reason) when no C compiler works.
    Hardware,
}

/// Configuration for the measured-autotuning path, carried on
/// `Options::measure`. The default is pure model mode, which
/// contributes nothing to cache keys and changes no behavior.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasureConfig {
    /// Ranking mode; see [`MeasureMode`].
    pub mode: MeasureMode,
    /// How many top distinct kernels (by modeled cycles) get hardware
    /// timing in stage two.
    pub top_k: usize,
    /// Untimed warm-up calls per harness run.
    pub warmup: u32,
    /// Timing repetitions per harness run (median over these).
    pub reps: u32,
    /// Calls per repetition (minimum over these).
    pub inner: u32,
    /// C compiler to shell out to; `None` uses `cc` from `PATH`.
    pub compiler: Option<PathBuf>,
    /// Directory for cached compiled harnesses; `None` uses
    /// `$TMPDIR/slingen-artifacts`.
    pub artifact_dir: Option<PathBuf>,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            mode: MeasureMode::Model,
            top_k: 3,
            warmup: 20,
            reps: 9,
            inner: 30,
            compiler: None,
            artifact_dir: None,
        }
    }
}

impl MeasureConfig {
    /// The hardware two-stage configuration with default loop shape.
    pub fn hardware() -> MeasureConfig {
        MeasureConfig { mode: MeasureMode::Hardware, ..MeasureConfig::default() }
    }

    /// Whether the tuner should attempt the hardware re-ranking stage.
    pub fn wants_hardware(&self) -> bool {
        self.mode == MeasureMode::Hardware
    }

    /// The cache-key contribution of this config. Empty in model mode,
    /// so default keys — and therefore existing persisted caches — are
    /// byte-identical to the pre-measurement format.
    pub(crate) fn cache_key_suffix(&self) -> String {
        match self.mode {
            MeasureMode::Model => String::new(),
            MeasureMode::Hardware => format!(
                "|measure:hw,k{},w{},r{},i{},cc={}",
                self.top_k,
                self.warmup,
                self.reps,
                self.inner,
                self.compiler.as_deref().unwrap_or(Path::new("cc")).display()
            ),
        }
    }
}

/// Why hardware measurement could not produce a number. Callers treat
/// any `HwError` as "fall back to the model", logging the reason.
#[derive(Debug, Clone)]
pub struct HwError(pub String);

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for HwError {}

/// A pluggable source of per-kernel timing for the autotuner.
pub trait Measurer {
    /// `"model"` or `"measured"` — the tag surfaced in serve responses
    /// and stats.
    fn source(&self) -> &'static str;

    /// Time one lowered function on the program's canonical workload
    /// (deterministic per `seed`).
    ///
    /// # Errors
    ///
    /// [`HwError`] when no timing could be produced; callers fall back
    /// to the model.
    fn measure(
        &self,
        program: &Program,
        function: &Function,
        seed: u64,
    ) -> Result<MeasuredTime, HwError>;
}

/// The modeled-cycle scheduler behind the [`Measurer`] interface.
/// `ns` is reported as 0 (the model has no time base), `reps` as 1.
pub struct ModelMeasurer {
    machine: Machine,
}

impl ModelMeasurer {
    pub fn new(machine: Machine) -> ModelMeasurer {
        ModelMeasurer { machine }
    }
}

impl Measurer for ModelMeasurer {
    fn source(&self) -> &'static str {
        "model"
    }

    fn measure(
        &self,
        program: &Program,
        function: &Function,
        seed: u64,
    ) -> Result<MeasuredTime, HwError> {
        let mut bufs = workload_buffers(program, function, seed);
        let report = slingen_perf::measure(function, &mut bufs, None, &self.machine)
            .map_err(|e| HwError(format!("model measurement failed: {e}")))?;
        Ok(MeasuredTime { cycles: report.cycles, ns: 0.0, reps: 1 })
    }
}

/// Compiles emitted C into a timing harness and runs it on this host.
///
/// Construction probes the compiler once (`--version`); a failing probe
/// is an immediate [`HwError`], so searches discover "no compiler" once
/// instead of per candidate.
pub struct HardwareMeasurer {
    target: Target,
    cfg: MeasureConfig,
    compiler: PathBuf,
    artifact_dir: PathBuf,
}

impl HardwareMeasurer {
    /// Probe the configured compiler and prepare the artifact cache
    /// directory.
    ///
    /// # Errors
    ///
    /// [`HwError`] if the compiler does not run or the artifact
    /// directory cannot be created.
    pub fn new(target: Target, cfg: &MeasureConfig) -> Result<HardwareMeasurer, HwError> {
        let compiler = cfg.compiler.clone().unwrap_or_else(|| PathBuf::from("cc"));
        let probe = Command::new(&compiler).arg("--version").output().map_err(|e| {
            HwError(format!("C compiler `{}` not runnable: {e}", compiler.display()))
        })?;
        if !probe.status.success() {
            return Err(HwError(format!(
                "C compiler `{}` failed its version probe",
                compiler.display()
            )));
        }
        let artifact_dir = cfg
            .artifact_dir
            .clone()
            .unwrap_or_else(|| std::env::temp_dir().join("slingen-artifacts"));
        std::fs::create_dir_all(&artifact_dir).map_err(|e| {
            HwError(format!("artifact dir {} not creatable: {e}", artifact_dir.display()))
        })?;
        Ok(HardwareMeasurer { target, cfg: cfg.clone(), compiler, artifact_dir })
    }

    /// The ISA flags the harness needs for this target's intrinsics.
    fn target_cflags(&self) -> &'static [&'static str] {
        match self.target {
            Target::Scalar => &[],
            Target::Sse2 => &["-msse2"],
            Target::Avx2 => &["-mavx"],
            Target::Avx2Fma => &["-mavx2", "-mfma"],
        }
    }

    /// Compile `source` (cached by digest) and return the binary path.
    fn compile(&self, source: &str) -> Result<PathBuf, HwError> {
        let (hash, len) = digest_str(source);
        let bin = self.artifact_dir.join(format!("h{hash:016x}-{len}-{}", self.target));
        if bin.exists() {
            return Ok(bin); // artifact cache hit: identical harness, no recompile
        }
        let src = bin.with_extension("c");
        std::fs::write(&src, source)
            .map_err(|e| HwError(format!("write {} failed: {e}", src.display())))?;
        // Compile to a unique temp name, then atomically rename in, so
        // concurrent searches never observe a half-written binary.
        let tmp = self.artifact_dir.join(format!(
            ".tmp-{}-h{hash:016x}-{len}-{}",
            std::process::id(),
            self.target
        ));
        let out = Command::new(&self.compiler)
            .args(["-std=c99", "-O2"])
            .args(self.target_cflags())
            .arg("-o")
            .arg(&tmp)
            .arg(&src)
            .arg("-lm")
            .output()
            .map_err(|e| HwError(format!("compiler `{}` failed: {e}", self.compiler.display())))?;
        if !out.status.success() {
            let _ = std::fs::remove_file(&tmp);
            // Surface the first real diagnostic, not the "In function"
            // preamble gcc prints ahead of it.
            let stderr = String::from_utf8_lossy(&out.stderr);
            let diag = stderr
                .lines()
                .find(|l| l.contains("error:"))
                .or_else(|| stderr.lines().next())
                .unwrap_or("(no diagnostics)");
            return Err(HwError(format!("harness compile failed: {diag}")));
        }
        std::fs::rename(&tmp, &bin).map_err(|e| HwError(format!("artifact rename failed: {e}")))?;
        Ok(bin)
    }

    /// Run a compiled harness and parse its `SLINGEN_MEASURE` line.
    fn run(&self, bin: &Path) -> Result<MeasuredTime, HwError> {
        let out = Command::new(bin)
            .output()
            .map_err(|e| HwError(format!("harness {} failed to run: {e}", bin.display())))?;
        if !out.status.success() {
            return Err(HwError(format!("harness exited with {}", out.status)));
        }
        let stdout = String::from_utf8_lossy(&out.stdout);
        parse_measure_line(&stdout)
            .ok_or_else(|| HwError(format!("harness output unparseable: {stdout:?}")))
    }

    /// Emit, compile (or reuse), and time the harness for one function.
    ///
    /// # Errors
    ///
    /// [`HwError`] on any compile/run/parse failure.
    pub fn measure_c(
        &self,
        function: &Function,
        inits: &[Vec<f64>],
    ) -> Result<MeasuredTime, HwError> {
        let opts = HarnessOpts {
            inits,
            warmup: self.cfg.warmup,
            reps: self.cfg.reps,
            inner: self.cfg.inner,
        };
        let source = to_c_harness(function, self.target, &opts);
        let bin = self.compile(&source)?;
        self.run(&bin)
    }
}

impl Measurer for HardwareMeasurer {
    fn source(&self) -> &'static str {
        "measured"
    }

    fn measure(
        &self,
        program: &Program,
        function: &Function,
        seed: u64,
    ) -> Result<MeasuredTime, HwError> {
        let inits = param_inits(program, function, seed);
        self.measure_c(function, &inits)
    }
}

/// The canonical workload mapped onto a function's buffer set — the same
/// mapping the model measurement uses (`pipeline::measure`), so both
/// signals time identical inputs.
fn workload_buffers(program: &Program, function: &Function, seed: u64) -> BufferSet {
    let mut fb = slingen_cir::FunctionBuilder::new("probe", function.width);
    let map = BufferMap::build(program, &mut fb);
    let mut bufs = BufferSet::for_function(function);
    for (op, data) in workload::inputs(program, seed) {
        bufs.set(map.buf(op), &data);
    }
    bufs
}

/// Initial contents for each *parameter* buffer, in `Function::params`
/// order — what the timing harness bakes into its pristine copies.
pub(crate) fn param_inits(program: &Program, function: &Function, seed: u64) -> Vec<Vec<f64>> {
    let bufs = workload_buffers(program, function, seed);
    function.params().map(|(id, _)| bufs.get(id).to_vec()).collect()
}

fn parse_measure_line(stdout: &str) -> Option<MeasuredTime> {
    let line = stdout.lines().find(|l| l.starts_with("SLINGEN_MEASURE "))?;
    let mut toks = line.split_whitespace().skip(1);
    let mut cycles = None;
    let mut ns = None;
    let mut reps = None;
    while let Some(key) = toks.next() {
        let val = toks.next()?;
        match key {
            "cycles" => cycles = val.parse::<f64>().ok(),
            "ns" => ns = val.parse::<f64>().ok(),
            "reps" => reps = val.parse::<u32>().ok(),
            _ => {} // tsc_hz and future fields: informative only
        }
    }
    Some(MeasuredTime { cycles: cycles?, ns: ns?, reps: reps? })
}

/// The same streaming digest the tuner uses for emitted C, applied to a
/// harness source string: `(hash, len)` keys the artifact cache.
fn digest_str(s: &str) -> (u64, usize) {
    // FxHash-style word folding over the bytes; collisions additionally
    // guarded by the length in the artifact file name.
    const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let mut state = 0u64;
    let bytes = s.as_bytes();
    let mut chunks = bytes.chunks_exact(8);
    for c in chunks.by_ref() {
        let w = u64::from_le_bytes(c.try_into().unwrap());
        state = (state.rotate_left(5) ^ w).wrapping_mul(K);
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut last = [0u8; 8];
        last[..rest.len()].copy_from_slice(rest);
        state = (state.rotate_left(5) ^ u64::from_le_bytes(last)).wrapping_mul(K);
    }
    state = (state.rotate_left(5) ^ bytes.len() as u64).wrapping_mul(K);
    (state, bytes.len())
}

// ---------------------------------------------------------------------
// Calibration: fit per-op latencies/throughputs from microbenchmarks.
// ---------------------------------------------------------------------

/// One fitted per-op cost: dependent-chain latency and independent-
/// stream throughput, in cycles resp. ops/cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct OpCost {
    /// `add` | `mul` | `fma` | `div` | `sqrt`.
    pub op: &'static str,
    /// Vector (target width) or scalar form.
    pub vector: bool,
    /// Cycles per op on a serially dependent chain.
    pub latency: f64,
    /// Ops per cycle across independent streams.
    pub throughput: f64,
}

/// Fitted per-op costs for one target on this host, plus the model's
/// corresponding entries for drift comparison.
#[derive(Debug, Clone)]
pub struct Calibration {
    pub target: Target,
    pub ops: Vec<OpCost>,
}

impl Calibration {
    /// The fitted cost for one `(op, vector)` entry.
    pub fn get(&self, op: &str, vector: bool) -> Option<&OpCost> {
        self.ops.iter().find(|c| c.op == op && c.vector == vector)
    }

    /// A machine model with the fitted divider/latency entries applied —
    /// the shipped `CostTable` constants (the paper's pinned Sandy
    /// Bridge numbers) stay untouched; this derives a host-calibrated
    /// model at runtime.
    pub fn apply(&self, base: &Machine) -> Machine {
        let mut m = base.clone();
        if let Some(c) = self.get("div", false) {
            m.div_scalar_cycles = c.latency;
        }
        if let Some(c) = self.get("div", true) {
            m.div_vector_cycles = c.latency;
        }
        if let Some(c) = self.get("add", false).or_else(|| self.get("add", true)) {
            m.fadd_latency = c.latency.round().max(1.0);
        }
        if let Some(c) = self.get("mul", false).or_else(|| self.get("mul", true)) {
            m.fmul_latency = c.latency.round().max(1.0);
        }
        if let Some(c) = self.get("fma", false).or_else(|| self.get("fma", true)) {
            m.fma_latency = c.latency.round().max(1.0);
        }
        m
    }
}

/// Emit one microbenchmark source: a dependent chain (latency) and an
/// 8-stream independent sweep (throughput) of `op`, timed the same way
/// as the kernel harness and printed as `SLINGEN_CAL lat <f> thr <f>`.
fn microbench_source(op: &'static str, vector: bool, width: usize, iters: u32) -> String {
    let mut s = String::new();
    use std::fmt::Write;
    let _ = writeln!(s, "/* slingen calibration microbenchmark: {op} vector={vector} */");
    let _ = writeln!(s, "#include <stdio.h>");
    let _ = writeln!(s, "#include <math.h>");
    if vector {
        let _ = writeln!(s, "#include <immintrin.h>");
    }
    let _ = writeln!(s, "#include <time.h>");
    let _ = writeln!(s, "#if defined(__x86_64__) || defined(__i386__)");
    let _ = writeln!(s, "#include <x86intrin.h>");
    let _ =
        writeln!(s, "static unsigned long long now(void) {{ _mm_lfence(); return __rdtsc(); }}");
    let _ = writeln!(s, "#else");
    let _ = writeln!(s, "static unsigned long long now(void) {{");
    let _ = writeln!(s, "  struct timespec ts; clock_gettime(CLOCK_MONOTONIC, &ts);");
    let _ = writeln!(s, "  return (unsigned long long)ts.tv_sec * 1000000000ull + ts.tv_nsec;");
    let _ = writeln!(s, "}}");
    let _ = writeln!(s, "#endif");

    // `X` marks the chained value; the latency loop substitutes `x`,
    // the throughput loop one of 8 independent `y<k>` streams.
    let (ty, one, template): (String, String, String) = if vector {
        let (pre, ty) = match width {
            2 => ("_mm", "__m128d".to_string()),
            _ => ("_mm256", "__m256d".to_string()),
        };
        let one = format!("{pre}_set1_pd(1.0000001)");
        let t = match op {
            "add" => format!("{pre}_add_pd(X, c)"),
            "mul" => format!("{pre}_mul_pd(X, c)"),
            "fma" => format!("{pre}_fmadd_pd(X, c, c)"),
            "div" => format!("{pre}_div_pd(X, c)"),
            _ => format!("{pre}_sqrt_pd({pre}_add_pd(X, c))"),
        };
        (ty, one, t)
    } else {
        let t = match op {
            "add" => "X + c",
            "mul" => "X * c",
            "fma" => "fma(X, c, c)",
            "div" => "X / c",
            _ => "sqrt(X + c)",
        };
        ("double".to_string(), "1.0000001".to_string(), t.to_string())
    };
    let expr_dep = format!("x = {};", template.replace('X', "x"));
    let expr_str = format!("y@ = {};", template.replace('X', "y@"));

    let lanes = if vector { width } else { 1 };
    // GCC enables autovectorization at -O2 since GCC 12; keep the
    // scalar throughput streams scalar so the fit measures what the
    // model charges for.
    let _ = writeln!(s, "#if defined(__GNUC__) && !defined(__clang__)");
    let _ = writeln!(s, "#define SLINGEN_NOVEC __attribute__((optimize(\"no-tree-vectorize\")))");
    let _ = writeln!(s, "#else");
    let _ = writeln!(s, "#define SLINGEN_NOVEC");
    let _ = writeln!(s, "#endif");
    // Latency: one dependent chain of `iters` ops.
    let _ = writeln!(s, "static double SLINGEN_NOVEC bench_lat(void) {{");
    let _ = writeln!(s, "  volatile {ty} seed; seed = {one};");
    let _ = writeln!(s, "  {ty} x = seed, c = {one};");
    let _ = writeln!(s, "  unsigned long long a = now();");
    let _ = writeln!(s, "  for (unsigned i = 0; i < {iters}u; i++) {{ {expr_dep} }}");
    let _ = writeln!(s, "  unsigned long long b = now();");
    let _ = writeln!(s, "  volatile {ty} sink; sink = x; (void)sink;");
    let _ = writeln!(s, "  return (double)(b - a) / {iters}.0;");
    let _ = writeln!(s, "}}");
    // Throughput: 8 independent chains interleaved.
    let _ = writeln!(s, "static double SLINGEN_NOVEC bench_thr(void) {{");
    let _ = writeln!(s, "  volatile {ty} seed; seed = {one};");
    let _ = write!(s, "  {ty} c = {one}");
    for k in 0..8 {
        let _ = write!(s, ", y{k} = seed");
    }
    let _ = writeln!(s, ";");
    let _ = writeln!(s, "  unsigned long long a = now();");
    let _ = writeln!(s, "  for (unsigned i = 0; i < {iters}u; i++) {{");
    for k in 0..8 {
        let _ = writeln!(s, "    {}", expr_str.replace('@', &k.to_string()));
    }
    let _ = writeln!(s, "  }}");
    let _ = writeln!(s, "  unsigned long long b = now();");
    for k in 0..8 {
        let _ = writeln!(s, "  volatile {ty} sink{k}; sink{k} = y{k}; (void)sink{k};");
    }
    let _ = writeln!(s, "  return (double)(8u * {iters}u) / (double)(b - a);");
    let _ = writeln!(s, "}}");
    let _ = writeln!(s, "int main(void) {{");
    let _ = writeln!(s, "  double lat = 1e300, thr = 0.0;");
    let _ = writeln!(s, "  for (int r = 0; r < 5; r++) {{");
    let _ = writeln!(s, "    double l = bench_lat(); if (l < lat) lat = l;");
    let _ = writeln!(s, "    double t = bench_thr(); if (t > thr) thr = t;");
    let _ = writeln!(s, "  }}");
    let _ =
        writeln!(s, "  printf(\"SLINGEN_CAL lat %.17g thr %.17g lanes {lanes}\\n\", lat, thr);");
    let _ = writeln!(s, "  return 0;");
    let _ = writeln!(s, "}}");
    s
}

/// Fit per-op latencies/throughputs for `target` on this host from
/// generated microbenchmark chains (add/mul/fma/div/sqrt, scalar and
/// vector).
///
/// # Errors
///
/// [`HwError`] when the compiler probe or any microbenchmark fails —
/// calibration is all-or-nothing so a partial table never masquerades
/// as a full one.
pub fn calibrate(target: Target, cfg: &MeasureConfig) -> Result<Calibration, HwError> {
    let hw = HardwareMeasurer::new(target, cfg)?;
    let mut ops = Vec::new();
    let width = target.max_width();
    for op in ["add", "mul", "fma", "div", "sqrt"] {
        if op == "fma" && !target.has_fma() {
            continue;
        }
        for vector in [false, true] {
            if vector && width < 2 {
                continue;
            }
            let src = microbench_source(op, vector, width, 200_000);
            let bin = hw.compile(&src)?;
            let out = Command::new(&bin)
                .output()
                .map_err(|e| HwError(format!("microbench run failed: {e}")))?;
            if !out.status.success() {
                return Err(HwError(format!("microbench {op} exited with {}", out.status)));
            }
            let text = String::from_utf8_lossy(&out.stdout);
            let line = text
                .lines()
                .find(|l| l.starts_with("SLINGEN_CAL "))
                .ok_or_else(|| HwError(format!("microbench {op} output unparseable")))?;
            let mut lat = None;
            let mut thr = None;
            let mut toks = line.split_whitespace().skip(1);
            while let (Some(k), Some(v)) = (toks.next(), toks.next()) {
                match k {
                    "lat" => lat = v.parse::<f64>().ok(),
                    "thr" => thr = v.parse::<f64>().ok(),
                    _ => {}
                }
            }
            let (latency, throughput) = match (lat, thr) {
                (Some(l), Some(t)) if l > 0.0 && t > 0.0 => (l, t),
                _ => return Err(HwError(format!("microbench {op} reported no numbers"))),
            };
            ops.push(OpCost { op, vector, latency, throughput });
        }
    }
    Ok(Calibration { target, ops })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_model_and_keyless() {
        let cfg = MeasureConfig::default();
        assert_eq!(cfg.mode, MeasureMode::Model);
        assert!(!cfg.wants_hardware());
        assert_eq!(cfg.cache_key_suffix(), "");
    }

    #[test]
    fn hardware_config_keys_its_parameters() {
        let cfg = MeasureConfig::hardware();
        assert!(cfg.wants_hardware());
        let key = cfg.cache_key_suffix();
        assert!(key.starts_with("|measure:hw,"), "{key}");
        assert!(key.contains("cc=cc"), "{key}");
    }

    #[test]
    fn bogus_compiler_fails_fast() {
        let cfg = MeasureConfig {
            compiler: Some(PathBuf::from("/nonexistent/slingen-no-such-cc")),
            ..MeasureConfig::hardware()
        };
        let err = HardwareMeasurer::new(Target::Avx2, &cfg).err().expect("must fail");
        assert!(err.0.contains("not runnable"), "{err}");
    }

    #[test]
    fn measure_line_parses() {
        let m = parse_measure_line(
            "noise\nSLINGEN_MEASURE cycles 123.5 ns 37.1 tsc_hz 3.3e9 reps 9\nSLINGEN_CHECK 1\n",
        )
        .unwrap();
        assert_eq!(m.cycles, 123.5);
        assert_eq!(m.ns, 37.1);
        assert_eq!(m.reps, 9);
        assert!(parse_measure_line("SLINGEN_MEASURE cycles x ns 1 reps 1").is_none());
        assert!(parse_measure_line("nothing here").is_none());
    }

    #[test]
    fn digest_distinguishes_and_is_stable() {
        let a = digest_str("int main(void) { return 0; }");
        let b = digest_str("int main(void) { return 1; }");
        assert_ne!(a.0, b.0);
        assert_eq!(a, digest_str("int main(void) { return 0; }"));
    }

    #[test]
    fn microbench_sources_are_well_formed() {
        for op in ["add", "mul", "fma", "div", "sqrt"] {
            for (vector, width) in [(false, 1), (true, 2), (true, 4)] {
                let s = microbench_source(op, vector, width, 100);
                assert!(s.contains("SLINGEN_CAL"), "{op} {vector}");
                assert!(s.contains("bench_lat"), "{op} {vector}");
                if vector {
                    assert!(s.contains("_pd"), "{op} width {width}:\n{s}");
                }
            }
        }
    }

    #[test]
    fn calibration_applies_div_entries_without_touching_base() {
        let base = Machine::sandy_bridge();
        let cal = Calibration {
            target: Target::Avx2,
            ops: vec![
                OpCost { op: "div", vector: false, latency: 13.0, throughput: 0.25 },
                OpCost { op: "div", vector: true, latency: 13.5, throughput: 0.2 },
            ],
        };
        let m = cal.apply(&base);
        assert_eq!(m.div_scalar_cycles, 13.0);
        assert_eq!(m.div_vector_cycles, 13.5);
        assert_eq!(base.div_scalar_cycles, 22.0, "shipped model untouched");
    }
}
