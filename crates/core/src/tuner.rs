//! The variant-space autotuner (paper §3.3 "Autotuning", Fig. 14).
//!
//! The paper's autotuner searches over algorithmic variants *and*
//! code-level parameters. This module makes that search a first-class
//! subsystem instead of a hard-coded two-policy fan-out:
//!
//! * [`VariantSpec`] — one point of the space: loop-invariant policy
//!   (Stage 1), vector width ν (Stage 2), and the loop-vs-straight-line
//!   threshold (Stage 2/3);
//! * [`SearchSpace`] — a builder over the three axes with a pluggable
//!   [`Strategy`]: [`Strategy::Exhaustive`] measures every point,
//!   [`Strategy::Greedy`] runs a deterministic coordinate descent that
//!   prunes dominated variants with the machine model's cycle-budget
//!   early-cutoff ([`slingen_perf::measure_budgeted`]);
//! * [`TuneCache`] — a shareable cache keyed by (program, machine,
//!   space, options) so repeated generation of the same kernel is a
//!   lookup, not a search — the first step toward serving generation as
//!   a high-traffic service.
//!
//! Search is parallel but deterministic: Stage 1 runs serially through
//! one shared [`AlgorithmDb`] (leaf derivations are cached neutrally and
//! shared across the whole policy × ν space), Stages 2–3 plus
//! measurement fan out across OS threads batch by batch, and the winner
//! is selected by strict minimum modeled cycles with ties broken in
//! canonical space-enumeration order — so the winning C code is
//! bit-identical across runs and thread interleavings.
//!
//! The search is target-aware: the ν axis is derived from
//! [`Target::widths`] (a Scalar target never explores vector variants),
//! the Stage-3 pipeline contracts multiply–add chains on FMA targets,
//! and the target participates in the [`TuneCache`] key.
//!
//! Colliding variants are eliminated *before* they cost anything: the
//! first lowering of each (policy, ν) group records a
//! [`LowerProfile`], from which the loop-threshold equivalence class of
//! every other threshold is computed exactly — variants predicted to
//! produce a byte-identical body skip Stage 2/3 entirely and share the
//! representative's measurement ([`TuneStats::predicted`]; debug builds
//! re-lower and assert the digests really collide). Unpredicted
//! byte-collisions (across policies) are still caught after lowering by
//! the emitted-C digest ([`TuneStats::deduped`]). Representatives run
//! lowering, optimization, digest, and measurement end-to-end in one
//! thread per variant — no cross-stage barrier.

use crate::cache::{CachedWin, Claim, PersistedWin};
pub use crate::cache::{ShardStats, TuneCache};
use crate::pipeline::{measure, Generated, Options, DEFAULT_LOOP_THRESHOLD};
use crate::Error;
use slingen_cir::passes::optimize_with_stats;
use slingen_cir::{Function, Target};
use slingen_ir::Program;
use slingen_lgen::{lower_program_profiled, LowerOptions, LowerProfile};
use slingen_perf::{pressure_lower_bound, Report};
use slingen_synth::{synthesize_program, AlgorithmDb, BasicProgram, Policy};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// One point of the autotuning search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VariantSpec {
    /// Loop-invariant family of the Stage-1 derivation.
    pub policy: Policy,
    /// Vector width ν (4 = AVX double, 2 = SSE2, 1 = scalar).
    pub nu: usize,
    /// Stage-2 loop threshold (see [`LowerOptions`]).
    pub loop_threshold: usize,
}

impl VariantSpec {
    /// The Stage-2 lowering options for this variant.
    pub fn lower_options(&self) -> LowerOptions {
        LowerOptions::new(self.nu, self.loop_threshold)
    }
}

impl fmt::Display for VariantSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/nu{}/t{}", self.policy, self.nu, self.loop_threshold)
    }
}

/// How a [`SearchSpace`] is explored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Measure every point of the space (one parallel batch).
    Exhaustive,
    /// Deterministic coordinate descent: seed with a full policy sweep at
    /// the default (ν, threshold), then improve one coordinate at a time,
    /// pruning candidates that the machine model proves slower than the
    /// incumbent (cycle-budget early-cutoff). Explores all three
    /// dimensions at a fraction of the exhaustive cost, and can never do
    /// worse than the seed sweep — i.e. never worse than the historical
    /// two-policy autotuner.
    Greedy,
}

/// The autotuner's search space: three axes plus a strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpace {
    policies: Vec<Policy>,
    nus: Vec<usize>,
    loop_thresholds: Vec<usize>,
    strategy: Strategy,
}

impl Default for SearchSpace {
    /// `Policy::ALL` × ν ∈ {1, 2, 4} × loop-threshold ∈ {16, 64, 256},
    /// explored greedily.
    fn default() -> Self {
        SearchSpace {
            policies: Policy::ALL.to_vec(),
            nus: vec![1, 2, 4],
            loop_thresholds: vec![16, 64, 256],
            strategy: Strategy::Greedy,
        }
    }
}

impl SearchSpace {
    /// The default space (see [`SearchSpace::default`]).
    pub fn new() -> Self {
        SearchSpace::default()
    }

    /// Restrict the policy axis.
    pub fn with_policies(mut self, policies: impl Into<Vec<Policy>>) -> Self {
        self.policies = policies.into();
        self
    }

    /// Restrict the ν axis.
    pub fn with_nus(mut self, nus: impl Into<Vec<usize>>) -> Self {
        self.nus = nus.into();
        self
    }

    /// Restrict the loop-threshold axis.
    pub fn with_loop_thresholds(mut self, thresholds: impl Into<Vec<usize>>) -> Self {
        self.loop_thresholds = thresholds.into();
        self
    }

    /// Set the exploration strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The exploration strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The ν axis intersected with the target's supported widths and
    /// clamped to the caller's machine width: code wider than the target
    /// vector unit is never a candidate. Falls back to the widest
    /// supported width if the clamp empties the axis.
    fn nus_for(&self, target: Target, max_nu: usize) -> Vec<usize> {
        let nus: Vec<usize> =
            self.nus.iter().copied().filter(|&n| n <= max_nu && target.supports_width(n)).collect();
        if nus.is_empty() {
            let w = target.widths().iter().copied().filter(|&w| w <= max_nu).max().unwrap_or(1);
            vec![w]
        } else {
            nus
        }
    }

    /// All points, in canonical enumeration order (policy-major, then ν,
    /// then threshold). The ν axis is derived from [`Target::widths`]
    /// bounded by `max_nu`. Tie-breaks during selection follow this
    /// order.
    pub fn enumerate(&self, target: Target, max_nu: usize) -> Vec<VariantSpec> {
        let mut out = Vec::new();
        for &policy in &self.policies {
            for &nu in &self.nus_for(target, max_nu) {
                for &loop_threshold in &self.loop_thresholds {
                    out.push(VariantSpec { policy, nu, loop_threshold });
                }
            }
        }
        out
    }

    /// Number of points for a given target and machine width.
    pub fn len(&self, target: Target, max_nu: usize) -> usize {
        self.policies.len() * self.nus_for(target, max_nu).len() * self.loop_thresholds.len()
    }

    /// Whether the space has no points.
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty() || self.loop_thresholds.is_empty()
    }

    /// A stable fingerprint for cache keys.
    fn fingerprint(&self, out: &mut String) {
        use std::fmt::Write;
        let _ = write!(out, "|space:{:?};", self.strategy);
        for p in &self.policies {
            let _ = write!(out, "{p},");
        }
        out.push(';');
        for n in &self.nus {
            let _ = write!(out, "{n},");
        }
        out.push(';');
        for t in &self.loop_thresholds {
            let _ = write!(out, "{t},");
        }
    }
}

/// How the winner of one `generate()` call was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TuneStats {
    /// Variants evaluated against a measurement (including cut-off,
    /// deduplicated, and predicted variants).
    pub explored: usize,
    /// Variants abandoned by the cycle-budget early-cutoff.
    pub pruned: usize,
    /// Variants that were lowered and whose Stage-3 output turned out
    /// byte-identical to an already-measured variant; their measurement
    /// was reused, not repeated. Disjoint from `predicted`:
    /// `explored = measured + cut-off representatives + deduped +
    /// predicted`.
    pub deduped: usize,
    /// Variants *predicted* byte-identical to an already-lowered variant
    /// from its group's [`LowerProfile`] (equal loop-threshold class at
    /// the same policy and ν); they skipped Stage 2/3 entirely and share
    /// the representative's measurement.
    pub predicted: usize,
    /// Whether the result came from the [`TuneCache`].
    pub cache_hit: bool,
    /// Whether this request piggybacked on an *in-flight* search for the
    /// same key: it blocked until the owning request's search finished
    /// and shares its result (always together with `cache_hit`).
    pub coalesced: bool,
    /// Whether the entry originated from a persisted cache file
    /// ([`TuneCache::load`]) rather than a search in this process.
    pub persisted: bool,
    /// Straight-line blocks (and whole pass invocations) the Stage-3
    /// block memo proved clean and replayed instead of re-scanning,
    /// summed over every representative lowering of the search
    /// ([`slingen_cir::passes::RoundStats::blocks_skipped`]).
    pub blocks_reused: usize,
    /// Measurements abandoned before the VM even ran because the static
    /// pressure bound ([`slingen_perf::pressure_lower_bound`]) already
    /// exceeded the incumbent's cycle budget.
    pub lb_pruned: usize,
    /// Distinct kernels compiled and timed on real hardware by the
    /// two-stage measured flow (0 in model mode and when hardware
    /// measurement fell back to the model).
    pub hw_ranked: usize,
}

/// One stage-two hardware timing: a top-K model survivor, its modeled
/// cycles, and what the host actually measured. The list on
/// [`Generated::hw_trials`] is in model-ranking order, so the first
/// entry is always the model-ranked winner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwTrial {
    /// The variant that produced this kernel (its lowest-ord spec when
    /// several specs collapse onto one body).
    pub spec: VariantSpec,
    /// The scheduler's cycle estimate.
    pub model_cycles: f64,
    /// The harness's median-of-min observation.
    pub measured: slingen_perf::MeasuredTime,
}

/// Where one representative's cold time went, in milliseconds: Stage 2
/// lowering, Stage 3 optimization, and the modeled-cycle measurement
/// (`measure_ms == 0.0` when the lowered body digested onto an
/// already-measured sibling). Representatives are the only variants that
/// pay these costs — predicted and deduped variants ride along for free —
/// so this list is the complete cold-time ledger of one search. Cache
/// hits carry an empty list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepCost {
    /// The representative's variant.
    pub spec: VariantSpec,
    /// Stage 2: lowering the basic program to C-IR.
    pub lower_ms: f64,
    /// Stage 3: the optimization fixpoint.
    pub opt_ms: f64,
    /// Modeled-cycle measurement (VM run + scheduler).
    pub measure_ms: f64,
}

/// The member of `values` nearest to `target` (ties toward the smaller
/// value). Used by the greedy seed selection to snap the canonical seed
/// threshold into an arbitrary axis.
fn nearest(values: &[usize], target: usize) -> usize {
    values.iter().copied().min_by_key(|v| (v.abs_diff(target), *v)).expect("non-empty axis")
}

/// Everything that determines the tuned output, flattened into a string.
///
/// The raw `nu`/`loop_threshold` options are canonicalized *uniformly*
/// before keying: the search consumes the options only through the
/// effective ν axis ([`SearchSpace::nus_for`]) — the greedy seed point is
/// a pure function of the space itself (widest axis ν, canonical
/// threshold; see [`run_greedy`]) — so any two requests with the same
/// axes provably run the identical search and share one entry. In
/// particular every `loop_threshold`, axis member or not (100, 64, 256,
/// ...), hits the same cached result; historically an axis-member seed
/// like 256 still missed.
fn cache_key(program: &Program, options: &Options) -> String {
    use std::fmt::Write;
    let mut key = String::with_capacity(256);
    let _ = write!(key, "{program}");
    // `ow(..)` storage sharing is not part of the surface rendering but
    // changes the generated code.
    for (i, o) in program.operands().iter().enumerate() {
        if let Some(t) = o.overwrites {
            let _ = write!(key, "|ow{i}:{}", t.0);
        }
    }
    let nus = options.search.nus_for(options.target, options.nu);
    let _ = write!(
        key,
        "|target:{}|machine:{:?}|passes:{:?}|nus:{nus:?}|seed:{}",
        options.target, options.machine, options.passes, options.seed
    );
    options.search.fingerprint(&mut key);
    // Empty in model mode — default keys (and every existing persisted
    // cache) are byte-identical to the pre-measurement format.
    key.push_str(&options.measure.cache_key_suffix());
    key
}

/// A measured variant before the winner's C code is emitted.
pub(crate) struct Variant {
    pub(crate) function: Function,
    pub(crate) spec: VariantSpec,
    pub(crate) report: Report,
}

/// Stage 1 for one (policy, ν), memoized across the space through one
/// shared [`AlgorithmDb`] — variants re-derive only what their schedule
/// actually changes (leaf derivations are policy- and ν-neutral).
struct Synthesizer<'p> {
    program: &'p Program,
    db: AlgorithmDb,
    basics: HashMap<(Policy, usize), Result<Arc<BasicProgram>, Error>>,
}

impl<'p> Synthesizer<'p> {
    fn new(program: &'p Program) -> Self {
        Synthesizer { program, db: AlgorithmDb::new(), basics: HashMap::new() }
    }

    fn basic(&mut self, policy: Policy, nu: usize) -> Result<Arc<BasicProgram>, Error> {
        self.basics
            .entry((policy, nu))
            .or_insert_with(|| {
                synthesize_program(self.program, policy, nu, &mut self.db)
                    .map(Arc::new)
                    .map_err(Error::from)
            })
            .clone()
    }

    fn stats(&self) -> (usize, usize) {
        (self.db.hits(), self.db.misses())
    }
}

/// Stages 2–3 for one already-synthesized variant: lowering plus the
/// optimization pipeline specialized for the options' target (FMA
/// contraction on FMA targets).
pub(crate) fn lower_variant(
    program: &Program,
    spec: VariantSpec,
    basic: &BasicProgram,
    options: &Options,
) -> Result<Function, Error> {
    lower_variant_profiled(program, spec, basic, options).map(|(f, _)| f)
}

/// [`lower_variant`], also returning the [`LowerProfile`] recorded while
/// Stage 2 ran — the basis of the tuner's predictive threshold dedupe.
pub(crate) fn lower_variant_profiled(
    program: &Program,
    spec: VariantSpec,
    basic: &BasicProgram,
    options: &Options,
) -> Result<(Function, LowerProfile), Error> {
    lower_variant_timed(program, spec, basic, options).map(|(f, p, _, _, _)| (f, p))
}

/// [`lower_variant_profiled`], additionally reporting how long Stage 2
/// (lowering) and Stage 3 (the optimization pipeline) took, in
/// milliseconds — the per-representative cost breakdown surfaced through
/// [`RepCost`] — and how many clean blocks the Stage-3 block memo
/// skipped ([`TuneStats::blocks_reused`]).
fn lower_variant_timed(
    program: &Program,
    spec: VariantSpec,
    basic: &BasicProgram,
    options: &Options,
) -> Result<(Function, LowerProfile, f64, f64, usize), Error> {
    let t0 = std::time::Instant::now();
    let (mut function, profile) =
        lower_program_profiled(program, basic, program.name(), &spec.lower_options())?;
    let lower_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = std::time::Instant::now();
    let stats = optimize_with_stats(&mut function, &options.passes_for_target(), &mut |_, _| {});
    let opt_ms = t1.elapsed().as_secs_f64() * 1e3;
    let blocks_skipped = stats.rounds.iter().map(|r| r.blocks_skipped).sum();
    Ok((function, profile, lower_ms, opt_ms, blocks_skipped))
}

/// The dedupe key of one lowered body: a 64-bit digest of the emitted C
/// plus its length (collision guard). The digest is computed by streaming
/// the unparse bytes straight into the hasher
/// ([`slingen_cir::unparse::digest_c_for`]) — the multi-megabyte C string
/// is never materialized during the search, only when a winner is emitted.
type BodyKey = (u64, usize);

/// Digest the lowered Stage-3 output of `function` for `target`.
fn body_key(function: &Function, target: Target) -> BodyKey {
    slingen_cir::unparse::digest_c_for(function, target)
}

/// The remembered measurement of one distinct lowered body.
#[derive(Debug, Clone)]
enum MeasureOutcome {
    /// Full report (boxed: the other variants are unit-sized).
    Measured(Box<Report>),
    /// Abandoned by the cycle-budget cutoff: provably dominated. Budgets
    /// only shrink as the incumbent improves, so a cut-off body stays
    /// dominated for the rest of the search.
    CutOff,
    /// Measurement failed; the error is recorded separately.
    Failed,
}

/// The resolution of one batch item, filled in as the waves of
/// [`Search::evaluate`] complete.
enum Slot {
    /// Synthesis, lowering, or the debug backstop failed.
    Err(Error),
    /// The variant resolved to a lowered body. `predicted` variants never
    /// ran Stage 2/3 — their key came from the group's [`LowerProfile`]
    /// classification.
    Done { key: BodyKey, predicted: bool },
}

/// What one representative thread produces: the lowered function, its
/// Stage-2 profile, the body digest, and the measurement it ran inline
/// (`None` when the body was already measured).
struct RepOut {
    function: Function,
    profile: LowerProfile,
    key: BodyKey,
    /// The measurement this thread ran (`None`: body already measured).
    measured: Option<Result<Option<Report>, Error>>,
    /// (lower_ms, opt_ms, measure_ms) — the [`RepCost`] breakdown.
    timings: (f64, f64, f64),
    /// Clean blocks the Stage-3 block memo skipped in this lowering.
    blocks_skipped: usize,
    /// Whether the measurement was cut off by the static pressure bound
    /// without running the VM ([`TuneStats::lb_pruned`]).
    lb_pruned: bool,
}

type RepResult = Result<RepOut, Error>;

/// The incumbent: the winning spec plus the digest under which its
/// lowered body is retained in [`Search::body_fns`]. The `Function`
/// itself is *not* cloned per improvement — it is materialized once, at
/// [`Search::into_generated`].
struct Best {
    spec: VariantSpec,
    report: Report,
    /// Canonical enumeration index (ties break on it).
    ord: usize,
    key: BodyKey,
}

/// The search state: the visited set, the incumbent, and exploration
/// statistics.
struct Search<'p> {
    program: &'p Program,
    options: &'p Options,
    synth: Synthesizer<'p>,
    /// Canonical enumeration index per spec (ties break on it).
    order: HashMap<VariantSpec, usize>,
    /// Specs already attempted (measured, cut off, or failed); a spec is
    /// never evaluated twice within one search.
    visited: HashSet<VariantSpec>,
    /// Measurements by lowered-body digest ([`body_key`]): variants whose
    /// Stage-3 output is byte-identical are measured once and share the
    /// outcome (ROADMAP PR-2 lead — equal-threshold variants often
    /// collapse at small sizes).
    measured: HashMap<BodyKey, MeasureOutcome>,
    /// First recorded Stage-2 profile per (policy, ν) group. The works
    /// values are threshold-independent, so one profile classifies every
    /// loop threshold of its group exactly.
    profiles: HashMap<(Policy, usize), LowerProfile>,
    /// Lowered-body digest per (policy, ν, loop-threshold class): a
    /// variant landing on a recorded class is a *predicted* collision and
    /// skips Stage 2/3 entirely.
    class_bodies: HashMap<(Policy, usize, usize), BodyKey>,
    /// One retained `Function` per distinct lowered body, so the winner
    /// is materialized without re-lowering and without per-improvement
    /// clones.
    body_fns: HashMap<BodyKey, Function>,
    best: Option<Best>,
    /// Lowest-ord spec that landed on each measured body — the stage-two
    /// hardware ranking labels each distinct kernel with this spec.
    body_best: HashMap<BodyKey, (usize, VariantSpec)>,
    stats: TuneStats,
    /// Per-representative cost ledger, in wave completion order.
    rep_costs: Vec<RepCost>,
    /// Stage-two hardware timings (empty unless hardware ranking ran).
    hw_trials: Vec<HwTrial>,
    last_err: Option<Error>,
}

impl<'p> Search<'p> {
    fn new(program: &'p Program, options: &'p Options) -> Self {
        let order = options
            .search
            .enumerate(options.target, options.nu)
            .into_iter()
            .enumerate()
            .map(|(i, s)| (s, i))
            .collect();
        Search {
            program,
            options,
            synth: Synthesizer::new(program),
            order,
            visited: HashSet::new(),
            measured: HashMap::new(),
            profiles: HashMap::new(),
            class_bodies: HashMap::new(),
            body_fns: HashMap::new(),
            best: None,
            body_best: HashMap::new(),
            stats: TuneStats::default(),
            rep_costs: Vec::new(),
            hw_trials: Vec::new(),
            last_err: None,
        }
    }

    /// Evaluate a batch of specs: Stage 1 serially through the shared
    /// database, then waves of *representatives*. Each wave classifies
    /// every pending variant against the recorded [`LowerProfile`]s —
    /// predicted collisions resolve instantly without Stage 2/3 — and
    /// claims one representative per unresolved (policy, ν) group or
    /// unseen loop-threshold class. Representatives run lowering,
    /// Stage-3 optimization, digest, and (if the body is new)
    /// measurement end-to-end in one thread each, with no cross-stage
    /// barrier. Updates the incumbent deterministically (strict min
    /// cycles, ties broken by canonical enumeration order): accounting
    /// runs in batch order regardless of wave scheduling.
    fn evaluate(&mut self, specs: &[VariantSpec], budget: Option<f64>) {
        let fresh: Vec<VariantSpec> =
            specs.iter().copied().filter(|s| self.visited.insert(*s)).collect();
        let todo: Vec<(VariantSpec, Result<Arc<BasicProgram>, Error>)> =
            fresh.into_iter().map(|s| (s, self.synth.basic(s.policy, s.nu))).collect();
        if todo.is_empty() {
            return;
        }
        let program = self.program;
        let options = self.options;
        // Bodies that were already measured before this batch started:
        // any variant landing on one of them is shared, never a
        // representative, matching the historical accounting.
        let pre_batch: HashSet<BodyKey> = self.measured.keys().copied().collect();

        let mut batch_specs: Vec<VariantSpec> = Vec::with_capacity(todo.len());
        let mut basics: Vec<Option<Arc<BasicProgram>>> = Vec::with_capacity(todo.len());
        let mut slots: Vec<Option<Slot>> = Vec::with_capacity(todo.len());
        let mut pending: Vec<usize> = Vec::new();
        for (i, (spec, basic)) in todo.into_iter().enumerate() {
            batch_specs.push(spec);
            match basic {
                Ok(b) => {
                    basics.push(Some(b));
                    slots.push(None);
                    pending.push(i);
                }
                Err(e) => {
                    basics.push(None);
                    slots.push(Some(Slot::Err(e)));
                }
            }
        }

        // Wave loop: every wave resolves all predictable variants for
        // free and spends threads only on representatives. Deferred
        // variants wait for a representative of their group/class to
        // land; each wave resolves at least its representatives, so the
        // loop terminates.
        while !pending.is_empty() {
            let mut defer: Vec<usize> = Vec::new();
            let mut reps: Vec<usize> = Vec::new();
            let mut claimed_groups: HashSet<(Policy, usize)> = HashSet::new();
            let mut claimed_classes: HashSet<(Policy, usize, usize)> = HashSet::new();
            for &i in &pending {
                let spec = batch_specs[i];
                let group = (spec.policy, spec.nu);
                match self.profiles.get(&group) {
                    Some(profile) => {
                        let class = profile.loop_class(spec.loop_threshold);
                        if let Some(&key) = self.class_bodies.get(&(spec.policy, spec.nu, class)) {
                            // Predicted collision: skip Stage 2/3. Debug
                            // builds re-lower and prove the prediction.
                            #[cfg(debug_assertions)]
                            {
                                let basic = basics[i].as_ref().expect("pending items have basics");
                                let (f, p) = lower_variant_profiled(program, spec, basic, options)
                                    .expect("predicted variant must lower like its representative");
                                debug_assert_eq!(
                                    body_key(&f, options.target),
                                    key,
                                    "LowerProfile predicted a collision that does not hold for {spec}"
                                );
                                debug_assert_eq!(
                                    &p, profile,
                                    "LowerProfile differs across thresholds of one (policy, ν) group"
                                );
                            }
                            slots[i] = Some(Slot::Done { key, predicted: true });
                        } else if claimed_classes.insert((spec.policy, spec.nu, class)) {
                            reps.push(i);
                        } else {
                            defer.push(i);
                        }
                    }
                    None => {
                        if claimed_groups.insert(group) {
                            reps.push(i);
                        } else {
                            defer.push(i);
                        }
                    }
                }
            }
            // One thread per representative: lower → digest → measure
            // (measurement is skipped when the body is already known).
            let measured = &self.measured;
            let results: Vec<(usize, RepResult)> = std::thread::scope(|scope| {
                let handles: Vec<_> = reps
                    .iter()
                    .map(|&i| {
                        let spec = batch_specs[i];
                        let basic = basics[i].clone().expect("pending items have basics");
                        scope.spawn(move || {
                            let r = lower_variant_timed(program, spec, &basic, options).map(
                                |(f, profile, lower_ms, opt_ms, blocks_skipped)| {
                                    let key = body_key(&f, options.target);
                                    let mut lb_pruned = false;
                                    let (m, measure_ms) = if measured.contains_key(&key) {
                                        (None, 0.0)
                                    } else {
                                        let t = std::time::Instant::now();
                                        // Incumbent fast path: when a cycle
                                        // budget is set and the static
                                        // pressure bound already exceeds it,
                                        // the budgeted VM run is guaranteed
                                        // to be abandoned — skip it. Debug
                                        // builds run the VM anyway and
                                        // prove the prediction.
                                        let m = match budget {
                                            Some(b)
                                                if pressure_lower_bound(&f, &options.machine)
                                                    > b =>
                                            {
                                                lb_pruned = true;
                                                #[cfg(debug_assertions)]
                                                debug_assert!(
                                                    matches!(
                                                        measure(program, &f, options, budget),
                                                        Ok(None)
                                                    ),
                                                    "pressure_lower_bound exceeded the budget \
                                                     but the budgeted VM run was not cut off \
                                                     for {spec}"
                                                );
                                                Ok(None)
                                            }
                                            _ => measure(program, &f, options, budget),
                                        };
                                        (Some(m), t.elapsed().as_secs_f64() * 1e3)
                                    };
                                    RepOut {
                                        function: f,
                                        profile,
                                        key,
                                        measured: m,
                                        timings: (lower_ms, opt_ms, measure_ms),
                                        blocks_skipped,
                                        lb_pruned,
                                    }
                                },
                            );
                            (i, r)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("autotune variant thread panicked"))
                    .collect()
            });
            // Join in wave order (ascending batch index): the first
            // writer wins on every shared map, which is deterministic
            // because wave membership follows batch order.
            for (i, r) in results {
                let spec = batch_specs[i];
                match r {
                    Err(e) => slots[i] = Some(Slot::Err(e)),
                    Ok(RepOut {
                        function: f,
                        profile,
                        key,
                        measured: m,
                        timings: (lower_ms, opt_ms, measure_ms),
                        blocks_skipped,
                        lb_pruned,
                    }) => {
                        self.rep_costs.push(RepCost { spec, lower_ms, opt_ms, measure_ms });
                        self.stats.blocks_reused += blocks_skipped;
                        if lb_pruned {
                            self.stats.lb_pruned += 1;
                        }
                        let class = profile.loop_class(spec.loop_threshold);
                        self.profiles.entry((spec.policy, spec.nu)).or_insert(profile);
                        self.class_bodies.entry((spec.policy, spec.nu, class)).or_insert(key);
                        self.body_fns.entry(key).or_insert(f);
                        if let Some(m) = m {
                            let outcome = match m {
                                Ok(Some(report)) => MeasureOutcome::Measured(Box::new(report)),
                                Ok(None) => MeasureOutcome::CutOff,
                                Err(e) => {
                                    self.last_err = Some(e);
                                    MeasureOutcome::Failed
                                }
                            };
                            self.measured.entry(key).or_insert(outcome);
                        }
                        slots[i] = Some(Slot::Done { key, predicted: false });
                    }
                }
            }
            pending = defer;
        }

        // Account every variant of the batch, in canonical batch order,
        // against the shared measurements. The first variant in batch
        // order to surface each new body is its accounting
        // representative; everything else on that body is shared.
        let mut batch_first: HashSet<BodyKey> = HashSet::new();
        for (i, slot) in slots.into_iter().enumerate() {
            match slot.expect("every batch item resolves to a slot") {
                Slot::Err(e) => self.last_err = Some(e),
                Slot::Done { key, predicted } => {
                    let spec = batch_specs[i];
                    let shared = pre_batch.contains(&key) || !batch_first.insert(key);
                    match self.measured.get(&key) {
                        Some(MeasureOutcome::Measured(report)) => {
                            self.stats.explored += 1;
                            if predicted {
                                self.stats.predicted += 1;
                            } else if shared {
                                self.stats.deduped += 1;
                            }
                            let cycles = report.cycles;
                            let ord = self.order.get(&spec).copied().unwrap_or(usize::MAX);
                            self.body_best
                                .entry(key)
                                .and_modify(|e| {
                                    if ord < e.0 {
                                        *e = (ord, spec);
                                    }
                                })
                                .or_insert((ord, spec));
                            let better = match &self.best {
                                None => true,
                                Some(b) => {
                                    cycles < b.report.cycles
                                        || (cycles == b.report.cycles && ord < b.ord)
                                }
                            };
                            if better {
                                self.best =
                                    Some(Best { spec, report: (**report).clone(), ord, key });
                            }
                        }
                        Some(MeasureOutcome::CutOff) => {
                            // cut off: provably slower than the incumbent
                            self.stats.explored += 1;
                            self.stats.pruned += 1;
                            if predicted {
                                self.stats.predicted += 1;
                            } else if shared {
                                self.stats.deduped += 1;
                            }
                        }
                        Some(MeasureOutcome::Failed) | None => {}
                    }
                }
            }
        }
    }

    fn incumbent_cycles(&self) -> Option<f64> {
        self.best.as_ref().map(|b| b.report.cycles)
    }

    /// Stage two of the measured flow: compile and time the top-K
    /// distinct model survivors on real hardware, then re-rank. Any
    /// failure — no compiler, a compile error, a bad harness run — keeps
    /// the model ranking untouched and logs the reason: the measured
    /// path never degrades below the model-only flow. A full success
    /// attaches the winner's [`slingen_perf::MeasuredTime`] to its
    /// report and records every trial for drift tracking.
    fn rerank_hardware(&mut self) {
        let cfg = &self.options.measure;
        // Distinct measured bodies by model ranking (cycles, then ord).
        let mut candidates: Vec<(f64, usize, BodyKey, VariantSpec)> = self
            .measured
            .iter()
            .filter_map(|(key, outcome)| match outcome {
                MeasureOutcome::Measured(report) => {
                    let (ord, spec) = *self.body_best.get(key)?;
                    Some((report.cycles, ord, *key, spec))
                }
                _ => None,
            })
            .collect();
        candidates.sort_by(|a, b| {
            a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal).then(a.1.cmp(&b.1))
        });
        candidates.truncate(cfg.top_k.max(1));
        if candidates.is_empty() {
            return;
        }
        let hw = match crate::measure::HardwareMeasurer::new(self.options.target, cfg) {
            Ok(hw) => hw,
            Err(e) => {
                eprintln!(
                    "slingen: hardware measurement unavailable for `{}` ({e}); \
                     keeping model ranking",
                    self.program.name()
                );
                return;
            }
        };
        let mut trials: Vec<HwTrial> = Vec::with_capacity(candidates.len());
        for &(model_cycles, _, key, spec) in &candidates {
            let function = self.body_fns.get(&key).expect("measured bodies are retained");
            match crate::measure::Measurer::measure(&hw, self.program, function, self.options.seed)
            {
                Ok(m) if m.cycles.is_finite() && m.cycles >= 0.0 => {
                    trials.push(HwTrial { spec, model_cycles, measured: m });
                }
                Ok(m) => {
                    eprintln!(
                        "slingen: hardware timing for `{}` {spec} was not finite \
                         ({} cycles); keeping model ranking",
                        self.program.name(),
                        m.cycles
                    );
                    return;
                }
                Err(e) => {
                    eprintln!(
                        "slingen: hardware timing failed for `{}` {spec} ({e}); \
                         keeping model ranking",
                        self.program.name()
                    );
                    return;
                }
            }
        }
        // Re-rank by measured cycles; ties keep the model (candidate)
        // order, so equal timings preserve the deterministic winner.
        let win = (0..trials.len())
            .min_by(|&a, &b| {
                trials[a]
                    .measured
                    .cycles
                    .partial_cmp(&trials[b].measured.cycles)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("at least one trial");
        let (_, ord, key, spec) = candidates[win];
        let report = match self.measured.get(&key) {
            Some(MeasureOutcome::Measured(r)) => (**r).clone().with_measured(trials[win].measured),
            _ => unreachable!("candidates are measured bodies"),
        };
        self.stats.hw_ranked = trials.len();
        self.best = Some(Best { spec, report, ord, key });
        self.hw_trials = trials;
    }

    fn into_generated(mut self) -> Result<Generated, Error> {
        let db_stats = self.synth.stats();
        let stats = self.stats;
        let target = self.options.target;
        match self.best {
            Some(best) => {
                let function =
                    self.body_fns.remove(&best.key).expect("the winning body is retained");
                let variant = Variant { function, spec: best.spec, report: best.report };
                Ok(crate::pipeline::emit(
                    variant,
                    target,
                    db_stats,
                    stats,
                    self.rep_costs,
                    self.hw_trials,
                ))
            }
            None => Err(self.last_err.unwrap_or_else(|| {
                Error::Synth(slingen_synth::SynthError::Unsupported("empty search space".into()))
            })),
        }
    }
}

/// Exhaustive exploration: every point measured in one parallel batch.
fn run_exhaustive(search: &mut Search<'_>) {
    let specs = search.options.search.enumerate(search.options.target, search.options.nu);
    search.evaluate(&specs, None);
}

/// Greedy coordinate descent (see [`Strategy::Greedy`]).
fn run_greedy(search: &mut Search<'_>) {
    let space = &search.options.search;
    let policies = space.policies.clone();
    let nus = space.nus_for(search.options.target, search.options.nu);
    let thresholds = space.loop_thresholds.clone();

    // Canonical seed coordinates, a pure function of the space: the
    // widest ν the axis offers, and the axis member nearest the default
    // threshold. Seeding from the *caller's* raw `loop_threshold` here
    // would make semantically identical requests run distinct searches —
    // the cache-miss gap [`cache_key`] closes. The descent sweeps every
    // threshold anyway, so seeding canonically costs no search quality;
    // a pinned `loop_threshold` still honors the caller exactly
    // (`generate_with_policy`).
    let seed_nu = nearest(&nus, search.options.nu);
    let seed_thr = nearest(&thresholds, DEFAULT_LOOP_THRESHOLD);

    // Round 0: full policy sweep at the seed point — exactly the
    // historical two-policy fan-out, so the greedy winner can never lose
    // to it.
    let seed_batch: Vec<VariantSpec> = policies
        .iter()
        .map(|&policy| VariantSpec { policy, nu: seed_nu, loop_threshold: seed_thr })
        .collect();
    search.evaluate(&seed_batch, None);

    // Coordinate descent: sweep ν, threshold, then policy around the
    // incumbent; repeat until a full sweep improves nothing. Candidates
    // run under the incumbent's cycle budget, so dominated variants are
    // abandoned mid-measurement.
    const MAX_SWEEPS: usize = 3;
    for _ in 0..MAX_SWEEPS {
        let Some((best_spec, before)) = search.best.as_ref().map(|b| (b.spec, b.report.cycles))
        else {
            return; // every seed failed; nothing to descend from
        };
        for coord in 0..3 {
            let Some(cur) = search.best.as_ref().map(|b| b.spec) else {
                return;
            };
            let batch: Vec<VariantSpec> = match coord {
                0 => nus
                    .iter()
                    .filter(|&&nu| nu != cur.nu)
                    .map(|&nu| VariantSpec { nu, ..cur })
                    .collect(),
                1 => thresholds
                    .iter()
                    .filter(|&&t| t != cur.loop_threshold)
                    .map(|&t| VariantSpec { loop_threshold: t, ..cur })
                    .collect(),
                _ => policies
                    .iter()
                    .filter(|&&p| p != cur.policy)
                    .map(|&p| VariantSpec { policy: p, ..cur })
                    .collect(),
            };
            let budget = search.incumbent_cycles();
            search.evaluate(&batch, budget);
        }
        let unchanged = search
            .best
            .as_ref()
            .map(|b| b.spec == best_spec && b.report.cycles == before)
            .unwrap_or(true);
        if unchanged {
            break;
        }
    }
}

/// Re-materialize a persisted cache entry: Stage 1–3 for the one winning
/// spec (no search, no measurement), verified byte-identical against the
/// persisted C. Any mismatch — a stale file from an older code
/// generator, an unparsable report — rejects the entry with a reason and
/// the caller falls back to a full search; persisted data is never
/// trusted blindly.
fn materialize_persisted(
    program: &Program,
    options: &Options,
    p: &PersistedWin,
) -> Result<CachedWin, String> {
    let spec = p.spec;
    let mut db = AlgorithmDb::new();
    let basic = synthesize_program(program, spec.policy, spec.nu, &mut db)
        .map_err(|e| format!("persisted spec no longer synthesizes: {e}"))?;
    let function = lower_variant(program, spec, &basic, options)
        .map_err(|e| format!("persisted spec no longer lowers: {e}"))?;
    let c_code = slingen_cir::unparse::to_c_for(&function, options.target);
    if c_code != p.c_code {
        return Err("persisted C differs from re-materialized C (stale generator?)".into());
    }
    let report = Report::from_wire(options.machine.clone(), &p.report_wire)
        .ok_or("persisted report line is unparsable")?;
    Ok(CachedWin { spec, function, c_code, report, db_stats: p.db_stats, stats: p.stats })
}

/// Run the autotuning search for `program` under `options`, consulting
/// and populating the cache.
///
/// Concurrency: the first request for a key becomes the *owner* of an
/// in-flight slot and runs the one search; requests arriving while it
/// runs block on the slot and share the owner's result (or its error) —
/// K concurrent requests for one kernel cost exactly one search
/// ([`TuneCache::searches`], [`TuneStats::coalesced`]). Entries loaded
/// from a cache file replay without searching: the winning spec is
/// re-lowered deterministically and checked byte-identical against the
/// persisted C before being served ([`TuneStats::persisted`]).
pub(crate) fn tune(program: &Program, options: &Options) -> Result<Generated, Error> {
    if options.search.is_empty() {
        return Err(Error::Synth(slingen_synth::SynthError::Unsupported(
            "empty autotuning search space".into(),
        )));
    }
    let key = cache_key(program, options);
    let mut ticket = match options.cache.claim(&key) {
        Claim::Hit(g) => return Ok(*g),
        Claim::Failed(e) => return Err(e),
        Claim::Owner(t) => t,
    };
    if let Some(p) = ticket.take_persisted() {
        match materialize_persisted(program, options, &p) {
            Ok(win) => {
                let g = win.to_generated(false);
                ticket.fulfill(win);
                return Ok(g);
            }
            Err(reason) => {
                eprintln!(
                    "slingen: persisted entry for `{}` unusable ({reason}); re-searching",
                    program.name()
                );
            }
        }
    }
    options.cache.note_search();
    let mut search = Search::new(program, options);
    match options.search.strategy() {
        Strategy::Exhaustive => run_exhaustive(&mut search),
        Strategy::Greedy => run_greedy(&mut search),
    }
    if options.measure.wants_hardware() {
        search.rerank_hardware();
    }
    match search.into_generated() {
        Ok(g) => {
            ticket.fulfill(CachedWin {
                spec: g.spec,
                function: g.function.clone(),
                c_code: g.c_code.clone(),
                report: g.report.clone(),
                db_stats: g.db_stats,
                stats: g.tuning,
            });
            Ok(g)
        }
        Err(e) => {
            ticket.fail(e.clone());
            Err(e)
        }
    }
}
