//! The variant-space autotuner (paper §3.3 "Autotuning", Fig. 14).
//!
//! The paper's autotuner searches over algorithmic variants *and*
//! code-level parameters. This module makes that search a first-class
//! subsystem instead of a hard-coded two-policy fan-out:
//!
//! * [`VariantSpec`] — one point of the space: loop-invariant policy
//!   (Stage 1), vector width ν (Stage 2), and the loop-vs-straight-line
//!   threshold (Stage 2/3);
//! * [`SearchSpace`] — a builder over the three axes with a pluggable
//!   [`Strategy`]: [`Strategy::Exhaustive`] measures every point,
//!   [`Strategy::Greedy`] runs a deterministic coordinate descent that
//!   prunes dominated variants with the machine model's cycle-budget
//!   early-cutoff ([`slingen_perf::measure_budgeted`]);
//! * [`TuneCache`] — a shareable cache keyed by (program, machine,
//!   space, options) so repeated generation of the same kernel is a
//!   lookup, not a search — the first step toward serving generation as
//!   a high-traffic service.
//!
//! Search is parallel but deterministic: Stage 1 runs serially through
//! one shared [`AlgorithmDb`] (leaf derivations are cached neutrally and
//! shared across the whole policy × ν space), Stages 2–3 plus
//! measurement fan out across OS threads batch by batch, and the winner
//! is selected by strict minimum modeled cycles with ties broken in
//! canonical space-enumeration order — so the winning C code is
//! bit-identical across runs and thread interleavings.
//!
//! The search is target-aware: the ν axis is derived from
//! [`Target::widths`] (a Scalar target never explores vector variants),
//! the Stage-3 pipeline contracts multiply–add chains on FMA targets,
//! and the target participates in the [`TuneCache`] key. Variants whose
//! lowered Stage-3 output is byte-identical (equal-threshold variants
//! often collapse at small sizes) are measured once and share the
//! outcome — [`TuneStats::deduped`] reports how often that fired.

use crate::pipeline::{measure, Generated, Options};
use crate::Error;
use slingen_cir::passes::optimize;
use slingen_cir::{Function, Target};
use slingen_ir::Program;
use slingen_lgen::{lower_program, LowerOptions};
use slingen_perf::Report;
use slingen_synth::{synthesize_program, AlgorithmDb, BasicProgram, Policy};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, Mutex};

/// One point of the autotuning search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VariantSpec {
    /// Loop-invariant family of the Stage-1 derivation.
    pub policy: Policy,
    /// Vector width ν (4 = AVX double, 2 = SSE2, 1 = scalar).
    pub nu: usize,
    /// Stage-2 loop threshold (see [`LowerOptions`]).
    pub loop_threshold: usize,
}

impl VariantSpec {
    /// The Stage-2 lowering options for this variant.
    pub fn lower_options(&self) -> LowerOptions {
        LowerOptions::new(self.nu, self.loop_threshold)
    }
}

impl fmt::Display for VariantSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/nu{}/t{}", self.policy, self.nu, self.loop_threshold)
    }
}

/// How a [`SearchSpace`] is explored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Measure every point of the space (one parallel batch).
    Exhaustive,
    /// Deterministic coordinate descent: seed with a full policy sweep at
    /// the default (ν, threshold), then improve one coordinate at a time,
    /// pruning candidates that the machine model proves slower than the
    /// incumbent (cycle-budget early-cutoff). Explores all three
    /// dimensions at a fraction of the exhaustive cost, and can never do
    /// worse than the seed sweep — i.e. never worse than the historical
    /// two-policy autotuner.
    Greedy,
}

/// The autotuner's search space: three axes plus a strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpace {
    policies: Vec<Policy>,
    nus: Vec<usize>,
    loop_thresholds: Vec<usize>,
    strategy: Strategy,
}

impl Default for SearchSpace {
    /// `Policy::ALL` × ν ∈ {1, 2, 4} × loop-threshold ∈ {16, 64, 256},
    /// explored greedily.
    fn default() -> Self {
        SearchSpace {
            policies: Policy::ALL.to_vec(),
            nus: vec![1, 2, 4],
            loop_thresholds: vec![16, 64, 256],
            strategy: Strategy::Greedy,
        }
    }
}

impl SearchSpace {
    /// The default space (see [`SearchSpace::default`]).
    pub fn new() -> Self {
        SearchSpace::default()
    }

    /// Restrict the policy axis.
    pub fn with_policies(mut self, policies: impl Into<Vec<Policy>>) -> Self {
        self.policies = policies.into();
        self
    }

    /// Restrict the ν axis.
    pub fn with_nus(mut self, nus: impl Into<Vec<usize>>) -> Self {
        self.nus = nus.into();
        self
    }

    /// Restrict the loop-threshold axis.
    pub fn with_loop_thresholds(mut self, thresholds: impl Into<Vec<usize>>) -> Self {
        self.loop_thresholds = thresholds.into();
        self
    }

    /// Set the exploration strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The exploration strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The ν axis intersected with the target's supported widths and
    /// clamped to the caller's machine width: code wider than the target
    /// vector unit is never a candidate. Falls back to the widest
    /// supported width if the clamp empties the axis.
    fn nus_for(&self, target: Target, max_nu: usize) -> Vec<usize> {
        let nus: Vec<usize> =
            self.nus.iter().copied().filter(|&n| n <= max_nu && target.supports_width(n)).collect();
        if nus.is_empty() {
            let w = target.widths().iter().copied().filter(|&w| w <= max_nu).max().unwrap_or(1);
            vec![w]
        } else {
            nus
        }
    }

    /// All points, in canonical enumeration order (policy-major, then ν,
    /// then threshold). The ν axis is derived from [`Target::widths`]
    /// bounded by `max_nu`. Tie-breaks during selection follow this
    /// order.
    pub fn enumerate(&self, target: Target, max_nu: usize) -> Vec<VariantSpec> {
        let mut out = Vec::new();
        for &policy in &self.policies {
            for &nu in &self.nus_for(target, max_nu) {
                for &loop_threshold in &self.loop_thresholds {
                    out.push(VariantSpec { policy, nu, loop_threshold });
                }
            }
        }
        out
    }

    /// Number of points for a given target and machine width.
    pub fn len(&self, target: Target, max_nu: usize) -> usize {
        self.policies.len() * self.nus_for(target, max_nu).len() * self.loop_thresholds.len()
    }

    /// Whether the space has no points.
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty() || self.loop_thresholds.is_empty()
    }

    /// A stable fingerprint for cache keys.
    fn fingerprint(&self, out: &mut String) {
        use std::fmt::Write;
        let _ = write!(out, "|space:{:?};", self.strategy);
        for p in &self.policies {
            let _ = write!(out, "{p},");
        }
        out.push(';');
        for n in &self.nus {
            let _ = write!(out, "{n},");
        }
        out.push(';');
        for t in &self.loop_thresholds {
            let _ = write!(out, "{t},");
        }
    }
}

/// How the winner of one `generate()` call was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TuneStats {
    /// Variants actually lowered, optimized, and evaluated (cut-off and
    /// deduplicated variants count: their Stage-2/3 work was done).
    pub explored: usize,
    /// Variants abandoned by the cycle-budget early-cutoff.
    pub pruned: usize,
    /// Variants whose lowered Stage-3 output was byte-identical to an
    /// already-measured variant (equal-threshold variants often collapse
    /// at small sizes); their measurement was reused, not repeated.
    pub deduped: usize,
    /// Whether the result came from the [`TuneCache`].
    pub cache_hit: bool,
}

/// The cached outcome of one tuned generation.
#[derive(Debug, Clone)]
struct CachedWin {
    spec: VariantSpec,
    function: Function,
    c_code: String,
    report: Report,
    db_stats: (usize, usize),
    stats: TuneStats,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<String, CachedWin>,
    hits: usize,
    misses: usize,
}

/// A shareable autotuning cache keyed by (program, machine, search space,
/// options). Cloning the handle shares the underlying store, so one cache
/// can serve many threads; `Options::default()` creates a fresh one.
#[derive(Clone, Default)]
pub struct TuneCache(Arc<Mutex<CacheInner>>);

impl TuneCache {
    /// An empty cache.
    pub fn new() -> Self {
        TuneCache::default()
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (usize, usize) {
        let inner = self.0.lock().unwrap();
        (inner.hits, inner.misses)
    }

    /// Number of cached programs.
    pub fn len(&self) -> usize {
        self.0.lock().unwrap().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all entries (stats are kept).
    pub fn clear(&self) {
        self.0.lock().unwrap().map.clear();
    }

    fn lookup(&self, key: &str) -> Option<Generated> {
        let mut inner = self.0.lock().unwrap();
        match inner.map.get(key).cloned() {
            Some(win) => {
                inner.hits += 1;
                Some(Generated {
                    function: win.function,
                    c_code: win.c_code,
                    policy: win.spec.policy,
                    spec: win.spec,
                    report: win.report,
                    db_stats: win.db_stats,
                    tuning: TuneStats { cache_hit: true, ..win.stats },
                })
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    fn insert(&self, key: String, g: &Generated) {
        let win = CachedWin {
            spec: g.spec,
            function: g.function.clone(),
            c_code: g.c_code.clone(),
            report: g.report.clone(),
            db_stats: g.db_stats,
            stats: g.tuning,
        };
        self.0.lock().unwrap().map.insert(key, win);
    }
}

impl fmt::Debug for TuneCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.0.lock().unwrap();
        f.debug_struct("TuneCache")
            .field("entries", &inner.map.len())
            .field("hits", &inner.hits)
            .field("misses", &inner.misses)
            .finish()
    }
}

/// Everything that determines the tuned output, flattened into a string.
fn cache_key(program: &Program, options: &Options) -> String {
    use std::fmt::Write;
    let mut key = String::with_capacity(256);
    let _ = write!(key, "{program}");
    // `ow(..)` storage sharing is not part of the surface rendering but
    // changes the generated code.
    for (i, o) in program.operands().iter().enumerate() {
        if let Some(t) = o.overwrites {
            let _ = write!(key, "|ow{i}:{}", t.0);
        }
    }
    let _ = write!(
        key,
        "|target:{}|machine:{:?}|passes:{:?}|nu:{}|thr:{}|seed:{}",
        options.target,
        options.machine,
        options.passes,
        options.nu,
        options.loop_threshold,
        options.seed
    );
    options.search.fingerprint(&mut key);
    key
}

/// A measured variant before the winner's C code is emitted.
pub(crate) struct Variant {
    pub(crate) function: Function,
    pub(crate) spec: VariantSpec,
    pub(crate) report: Report,
}

/// Stage 1 for one (policy, ν), memoized across the space through one
/// shared [`AlgorithmDb`] — variants re-derive only what their schedule
/// actually changes (leaf derivations are policy- and ν-neutral).
struct Synthesizer<'p> {
    program: &'p Program,
    db: AlgorithmDb,
    basics: HashMap<(Policy, usize), Result<Arc<BasicProgram>, Error>>,
}

impl<'p> Synthesizer<'p> {
    fn new(program: &'p Program) -> Self {
        Synthesizer { program, db: AlgorithmDb::new(), basics: HashMap::new() }
    }

    fn basic(&mut self, policy: Policy, nu: usize) -> Result<Arc<BasicProgram>, Error> {
        self.basics
            .entry((policy, nu))
            .or_insert_with(|| {
                synthesize_program(self.program, policy, nu, &mut self.db)
                    .map(Arc::new)
                    .map_err(Error::from)
            })
            .clone()
    }

    fn stats(&self) -> (usize, usize) {
        (self.db.hits(), self.db.misses())
    }
}

/// Stages 2–3 for one already-synthesized variant: lowering plus the
/// optimization pipeline specialized for the options' target (FMA
/// contraction on FMA targets).
pub(crate) fn lower_variant(
    program: &Program,
    spec: VariantSpec,
    basic: &BasicProgram,
    options: &Options,
) -> Result<Function, Error> {
    let mut function = lower_program(program, basic, program.name(), &spec.lower_options())?;
    optimize(&mut function, &options.passes_for_target());
    Ok(function)
}

/// The dedupe key of one lowered body: a 64-bit FxHash digest of the
/// emitted C plus its length (collision guard). The C string itself is
/// hashed and dropped inside the lowering thread — nothing variant-sized
/// is retained across the search.
type BodyKey = (u64, usize);

/// One lowered variant plus its dedupe key.
type LoweredVariant = (VariantSpec, Result<(Function, BodyKey), Error>);

/// Digest the lowered Stage-3 output of `function` for `target`.
fn body_key(function: &Function, target: Target) -> BodyKey {
    use std::hash::Hasher as _;
    let c = slingen_cir::unparse::to_c_for(function, target);
    let mut h = slingen_cir::fxhash::FxHasher::default();
    h.write(c.as_bytes());
    (h.finish(), c.len())
}

/// The remembered measurement of one distinct lowered body.
#[derive(Debug, Clone)]
enum MeasureOutcome {
    /// Full report (boxed: the other variants are unit-sized).
    Measured(Box<Report>),
    /// Abandoned by the cycle-budget cutoff: provably dominated. Budgets
    /// only shrink as the incumbent improves, so a cut-off body stays
    /// dominated for the rest of the search.
    CutOff,
    /// Measurement failed; the error is recorded separately.
    Failed,
}

/// The search state: the visited set, the incumbent, and exploration
/// statistics.
struct Search<'p> {
    program: &'p Program,
    options: &'p Options,
    synth: Synthesizer<'p>,
    /// Canonical enumeration index per spec (ties break on it).
    order: HashMap<VariantSpec, usize>,
    /// Specs already attempted (measured, cut off, or failed); a spec is
    /// never evaluated twice within one search.
    visited: HashSet<VariantSpec>,
    /// Measurements by lowered-body digest ([`body_key`]): variants whose
    /// Stage-3 output is byte-identical are measured once and share the
    /// outcome (ROADMAP PR-2 lead — equal-threshold variants often
    /// collapse at small sizes).
    measured: HashMap<BodyKey, MeasureOutcome>,
    best: Option<(Variant, usize)>,
    stats: TuneStats,
    last_err: Option<Error>,
}

impl<'p> Search<'p> {
    fn new(program: &'p Program, options: &'p Options) -> Self {
        let order = options
            .search
            .enumerate(options.target, options.nu)
            .into_iter()
            .enumerate()
            .map(|(i, s)| (s, i))
            .collect();
        Search {
            program,
            options,
            synth: Synthesizer::new(program),
            order,
            visited: HashSet::new(),
            measured: HashMap::new(),
            best: None,
            stats: TuneStats::default(),
            last_err: None,
        }
    }

    /// Evaluate a batch of specs: Stage 1 serially through the shared
    /// database, Stages 2–3 fanned out across OS threads, then one
    /// measurement per *distinct* lowered body (byte-identical variants
    /// share it; see [`Search::measured`]), also fanned out. Updates the
    /// incumbent deterministically (strict min cycles, ties broken by
    /// canonical enumeration order).
    fn evaluate(&mut self, specs: &[VariantSpec], budget: Option<f64>) {
        let fresh: Vec<VariantSpec> =
            specs.iter().copied().filter(|s| self.visited.insert(*s)).collect();
        let todo: Vec<(VariantSpec, Result<Arc<BasicProgram>, Error>)> =
            fresh.into_iter().map(|s| (s, self.synth.basic(s.policy, s.nu))).collect();
        if todo.is_empty() {
            return;
        }
        let program = self.program;
        let options = self.options;
        // Phase 1: lowering + Stage-3 optimization, in parallel; each
        // variant's emitted C is digested into its dedupe key.
        let lowered: Vec<LoweredVariant> = std::thread::scope(|scope| {
            let handles: Vec<_> = todo
                .into_iter()
                .map(|(spec, basic)| {
                    scope.spawn(move || {
                        let r = basic.and_then(|b| {
                            lower_variant(program, spec, &b, options).map(|f| {
                                let key = body_key(&f, options.target);
                                (f, key)
                            })
                        });
                        (spec, r)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("autotune lowering thread panicked"))
                .collect()
        });
        // Phase 2: pick one representative per distinct unmeasured body.
        let mut reps: Vec<(BodyKey, usize)> = Vec::new();
        let mut rep_keys: HashSet<BodyKey> = HashSet::new();
        for (i, (_, res)) in lowered.iter().enumerate() {
            if let Ok((_, key)) = res {
                if !self.measured.contains_key(key) && rep_keys.insert(*key) {
                    reps.push((*key, i));
                }
            }
        }
        let rep_idx: HashSet<usize> = reps.iter().map(|(_, i)| *i).collect();
        let measured_now: Vec<(BodyKey, Result<Option<Report>, Error>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = reps
                    .into_iter()
                    .map(|(key, i)| {
                        let function = &lowered[i].1.as_ref().expect("representatives are Ok").0;
                        scope.spawn(move || (key, measure(program, function, options, budget)))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("autotune measure thread panicked"))
                    .collect()
            });
        for (key, res) in measured_now {
            let outcome = match res {
                Ok(Some(report)) => MeasureOutcome::Measured(Box::new(report)),
                Ok(None) => MeasureOutcome::CutOff,
                Err(e) => {
                    self.last_err = Some(e);
                    MeasureOutcome::Failed
                }
            };
            self.measured.insert(key, outcome);
        }
        // Phase 3: account every variant of the batch, in canonical batch
        // order, against the shared measurements.
        for (i, (spec, res)) in lowered.into_iter().enumerate() {
            match res {
                Err(e) => self.last_err = Some(e),
                Ok((function, key)) => {
                    let shared = !rep_idx.contains(&i);
                    match self.measured.get(&key) {
                        Some(MeasureOutcome::Measured(report)) => {
                            self.stats.explored += 1;
                            if shared {
                                self.stats.deduped += 1;
                            }
                            let variant = Variant { function, spec, report: (**report).clone() };
                            let ord = self.order.get(&spec).copied().unwrap_or(usize::MAX);
                            let better = match &self.best {
                                None => true,
                                Some((b, bord)) => {
                                    variant.report.cycles < b.report.cycles
                                        || (variant.report.cycles == b.report.cycles && ord < *bord)
                                }
                            };
                            if better {
                                self.best = Some((variant, ord));
                            }
                        }
                        Some(MeasureOutcome::CutOff) => {
                            // cut off: provably slower than the incumbent
                            self.stats.explored += 1;
                            self.stats.pruned += 1;
                            if shared {
                                self.stats.deduped += 1;
                            }
                        }
                        Some(MeasureOutcome::Failed) | None => {}
                    }
                }
            }
        }
    }

    fn incumbent_cycles(&self) -> Option<f64> {
        self.best.as_ref().map(|(v, _)| v.report.cycles)
    }

    fn into_generated(self) -> Result<Generated, Error> {
        let db_stats = self.synth.stats();
        let stats = self.stats;
        let target = self.options.target;
        match self.best {
            Some((variant, _)) => Ok(crate::pipeline::emit(variant, target, db_stats, stats)),
            None => Err(self.last_err.unwrap_or_else(|| {
                Error::Synth(slingen_synth::SynthError::Unsupported("empty search space".into()))
            })),
        }
    }
}

/// Exhaustive exploration: every point measured in one parallel batch.
fn run_exhaustive(search: &mut Search<'_>) {
    let specs = search.options.search.enumerate(search.options.target, search.options.nu);
    search.evaluate(&specs, None);
}

/// Greedy coordinate descent (see [`Strategy::Greedy`]).
fn run_greedy(search: &mut Search<'_>) {
    let space = &search.options.search;
    let policies = space.policies.clone();
    let nus = space.nus_for(search.options.target, search.options.nu);
    let thresholds = space.loop_thresholds.clone();

    // Seed coordinates: the caller's defaults, clamped into the space
    // (nearest member, ties toward the smaller value).
    let nearest = |values: &[usize], target: usize| -> usize {
        values.iter().copied().min_by_key(|v| (v.abs_diff(target), *v)).expect("non-empty axis")
    };
    let seed_nu = nearest(&nus, search.options.nu);
    let seed_thr = nearest(&thresholds, search.options.loop_threshold);

    // Round 0: full policy sweep at the seed point — exactly the
    // historical two-policy fan-out, so the greedy winner can never lose
    // to it.
    let seed_batch: Vec<VariantSpec> = policies
        .iter()
        .map(|&policy| VariantSpec { policy, nu: seed_nu, loop_threshold: seed_thr })
        .collect();
    search.evaluate(&seed_batch, None);

    // Coordinate descent: sweep ν, threshold, then policy around the
    // incumbent; repeat until a full sweep improves nothing. Candidates
    // run under the incumbent's cycle budget, so dominated variants are
    // abandoned mid-measurement.
    const MAX_SWEEPS: usize = 3;
    for _ in 0..MAX_SWEEPS {
        let Some((best_spec, before)) =
            search.best.as_ref().map(|(v, _)| (v.spec, v.report.cycles))
        else {
            return; // every seed failed; nothing to descend from
        };
        for coord in 0..3 {
            let Some((cur, _)) = search.best.as_ref().map(|(v, _)| (v.spec, ())) else {
                return;
            };
            let batch: Vec<VariantSpec> = match coord {
                0 => nus
                    .iter()
                    .filter(|&&nu| nu != cur.nu)
                    .map(|&nu| VariantSpec { nu, ..cur })
                    .collect(),
                1 => thresholds
                    .iter()
                    .filter(|&&t| t != cur.loop_threshold)
                    .map(|&t| VariantSpec { loop_threshold: t, ..cur })
                    .collect(),
                _ => policies
                    .iter()
                    .filter(|&&p| p != cur.policy)
                    .map(|&p| VariantSpec { policy: p, ..cur })
                    .collect(),
            };
            let budget = search.incumbent_cycles();
            search.evaluate(&batch, budget);
        }
        let unchanged = search
            .best
            .as_ref()
            .map(|(v, _)| v.spec == best_spec && v.report.cycles == before)
            .unwrap_or(true);
        if unchanged {
            break;
        }
    }
}

/// Run the autotuning search for `program` under `options`, consulting
/// and populating the cache.
pub(crate) fn tune(program: &Program, options: &Options) -> Result<Generated, Error> {
    if options.search.is_empty() {
        return Err(Error::Synth(slingen_synth::SynthError::Unsupported(
            "empty autotuning search space".into(),
        )));
    }
    let key = cache_key(program, options);
    if let Some(hit) = options.cache.lookup(&key) {
        return Ok(hit);
    }
    let mut search = Search::new(program, options);
    match options.search.strategy() {
        Strategy::Exhaustive => run_exhaustive(&mut search),
        Strategy::Greedy => run_greedy(&mut search),
    }
    let generated = search.into_generated()?;
    options.cache.insert(key, &generated);
    Ok(generated)
}
