//! Valid random workloads for a program's inputs.
//!
//! Factorizations need structurally valid inputs (SPD for Cholesky,
//! well-conditioned non-singular triangles for solvers); everything else
//! gets uniform random data, as in the paper's measurement protocol
//! ("repeated on different random inputs").

use slingen_blas::{testgen, Uplo};
use slingen_ir::structure::StorageHalf;
use slingen_ir::{OpId, Program, Structure};

fn storage_uplo(half: StorageHalf) -> Uplo {
    match half {
        StorageHalf::Lower => Uplo::Lower,
        StorageHalf::Upper => Uplo::Upper,
    }
}

/// Generate inputs for every `In`/`InOut` operand of `program`.
pub fn inputs(program: &Program, seed: u64) -> Vec<(OpId, Vec<f64>)> {
    let mut out = Vec::new();
    for (i, decl) in program.operands().iter().enumerate() {
        if !decl.io.readable_at_entry() {
            continue;
        }
        let (r, c) = (decl.shape.rows, decl.shape.cols);
        let s = seed.wrapping_mul(31).wrapping_add(i as u64 + 1);
        let data = match decl.structure {
            Structure::Symmetric(half) if decl.properties.positive_definite => {
                // like the plain-symmetric branch, the declared stored
                // half is authoritative: mirror it onto the other side so
                // code that only reads the stored triangle agrees with
                // reference code that reads the full matrix
                let uplo = storage_uplo(half);
                testgen::symmetrize(&testgen::spd(r, s), uplo).as_slice().to_vec()
            }
            Structure::Symmetric(half) => {
                let uplo = storage_uplo(half);
                testgen::symmetrize(&testgen::general(r, r, s), uplo).as_slice().to_vec()
            }
            Structure::LowerTriangular => {
                testgen::well_conditioned_triangular(r, Uplo::Lower, s).as_slice().to_vec()
            }
            Structure::UpperTriangular => {
                testgen::well_conditioned_triangular(r, Uplo::Upper, s).as_slice().to_vec()
            }
            _ => {
                if r == 1 && c == 1 {
                    // scalars like the l1a step sizes stay in a sane range
                    vec![0.25 + testgen::vector(1, s)[0].abs() * 0.5]
                } else {
                    testgen::general(r, c, s).as_slice().to_vec()
                }
            }
        };
        out.push((OpId(i), data));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;

    #[test]
    fn covers_all_inputs() {
        let p = apps::kf(8);
        let ins = inputs(&p, 7);
        let expected = p.operands().iter().filter(|o| o.io.readable_at_entry()).count();
        assert_eq!(ins.len(), expected);
        for (op, data) in &ins {
            let d = p.operand(*op);
            assert_eq!(data.len(), d.shape.rows * d.shape.cols);
        }
    }

    #[test]
    fn pd_inputs_are_factorizable() {
        let p = apps::potrf(8);
        let ins = inputs(&p, 3);
        let (_, s) = &ins[0];
        let mut copy = s.clone();
        // must not panic
        slingen_blas::dpotrf(Uplo::Upper, 8, &mut copy, 8);
    }

    #[test]
    fn spd_inputs_respect_the_declared_stored_half() {
        use slingen_ir::structure::StorageHalf;
        // potrf declares an UpSym PD input: the upper triangle must be
        // authoritative, i.e. the matrix equals its upper-half mirror
        let p = apps::potrf(6);
        let decl = &p.operands()[0];
        let half = match decl.structure {
            slingen_ir::Structure::Symmetric(h) => h,
            other => panic!("potrf input should be symmetric, got {other:?}"),
        };
        let ins = inputs(&p, 11);
        let (_, data) = &ins[0];
        for i in 0..6 {
            for j in 0..6 {
                let (si, sj) = match half {
                    StorageHalf::Upper => (i.min(j), i.max(j)),
                    StorageHalf::Lower => (i.max(j), i.min(j)),
                };
                assert_eq!(
                    data[i * 6 + j],
                    data[si * 6 + sj],
                    "({i},{j}) must mirror the stored half"
                );
            }
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let p = apps::gpr(6);
        assert_eq!(inputs(&p, 5), inputs(&p, 5));
        assert_ne!(inputs(&p, 5), inputs(&p, 6));
    }
}
