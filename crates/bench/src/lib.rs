//! Shared measurement harness for the figure/table binaries.
//!
//! Every competitor — SLinGen's generated code and all baselines — is
//! executed by the same VM on the same valid random workloads and costed
//! by the same Sandy Bridge machine model (with flavor-specific library
//! overheads). Performance is reported in flops/cycle against the paper's
//! *nominal* operation counts (e.g. n³/3 for Cholesky), exactly like the
//! paper's plots.

use slingen::{apps, Options};
use slingen_baselines::{baseline_codegen, Flavor};
use slingen_ir::Program;
use slingen_lgen::BufferMap;
use slingen_perf::{Machine, Report};
use slingen_synth::Policy;
use slingen_vm::BufferSet;

/// A single measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Competitor label.
    pub label: String,
    /// Problem size.
    pub n: usize,
    /// Modeled cycles.
    pub cycles: f64,
    /// Performance in flops/cycle against the nominal flop count.
    pub flops_per_cycle: f64,
    /// The full performance report.
    pub report: Report,
}

fn run_function(
    program: &Program,
    function: &slingen_cir::Function,
    kernels: Option<&slingen_vm::KernelLib>,
    machine: &Machine,
    seed: u64,
) -> Report {
    let mut fb = slingen_cir::FunctionBuilder::new("probe", function.width.max(1));
    let map = BufferMap::build(program, &mut fb);
    let mut bufs = BufferSet::for_function(function);
    for (op, data) in slingen::workload::inputs(program, seed) {
        bufs.set(map.buf(op), &data);
    }
    slingen_perf::measure(function, &mut bufs, kernels, machine).expect("measurement")
}

/// Measure SLinGen's autotuned output.
pub fn measure_slingen(program: &Program, n: usize, nominal_flops: f64) -> Measurement {
    let g = slingen::generate(program, &Options::default()).expect("slingen generation");
    let report = run_function(program, &g.function, None, &Machine::sandy_bridge(), 7);
    Measurement {
        label: "SLinGen".to_string(),
        n,
        cycles: report.cycles,
        flops_per_cycle: nominal_flops / report.cycles,
        report,
    }
}

/// Measure one fixed SLinGen variant (the dashed lines of Fig. 14).
pub fn measure_slingen_variant(
    program: &Program,
    policy: Policy,
    n: usize,
    nominal_flops: f64,
) -> Measurement {
    let opts = Options { policy: Some(policy), ..Options::default() };
    let g = slingen::generate(program, &opts).expect("slingen variant");
    let report = run_function(program, &g.function, None, &Machine::sandy_bridge(), 7);
    Measurement {
        label: format!("SLinGen ({policy})"),
        n,
        cycles: report.cycles,
        flops_per_cycle: nominal_flops / report.cycles,
        report,
    }
}

/// Measure a competitor flavor.
pub fn measure_baseline(
    program: &Program,
    flavor: Flavor,
    n: usize,
    nominal_flops: f64,
) -> Measurement {
    let code = baseline_codegen(program, flavor).expect("baseline generation");
    let report = run_function(program, &code.function, Some(&code.kernels), &flavor.machine(), 7);
    Measurement {
        label: flavor.label(),
        n,
        cycles: report.cycles,
        flops_per_cycle: nominal_flops / report.cycles,
        report,
    }
}

/// The paper's x-axis for the HLAC plots (Fig. 14): n = 4..124 step 8.
/// The quick grid keeps harness runtime small; `--full` restores the
/// paper's grid.
pub fn hlac_sizes(full: bool) -> Vec<usize> {
    if full {
        (4..=124).step_by(8).collect()
    } else {
        vec![4, 12, 20, 28, 44]
    }
}

/// The application plot sizes (Fig. 15): n = 4..52 step 8.
pub fn app_sizes(full: bool) -> Vec<usize> {
    if full {
        (4..=52).step_by(8).collect()
    } else {
        vec![4, 12, 20, 28]
    }
}

/// Build the benchmark program by name.
pub fn program_for(name: &str, n: usize) -> Program {
    match name {
        "potrf" => apps::potrf(n),
        "trsyl" => apps::trsyl(n),
        "trlya" => apps::trlya(n),
        "trtri" => apps::trtri(n),
        "kf" => apps::kf(n),
        "gpr" => apps::gpr(n),
        "l1a" => apps::l1a(n),
        other => panic!("unknown benchmark `{other}`"),
    }
}

/// Render one plot row.
pub fn format_row(ms: &[Measurement]) -> String {
    let mut line = format!("n={:<4}", ms.first().map(|m| m.n).unwrap_or(0));
    for m in ms {
        line.push_str(&format!("  {:>18}: {:5.2} f/c", m.label, m.flops_per_cycle));
    }
    line
}
