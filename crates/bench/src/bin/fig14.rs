//! Regenerates the paper's Fig. 14: HLAC benchmarks (potrf, trsyl, trlya,
//! trtri) — SLinGen vs MKL, ReLAPACK, (RECSY), Eigen, icc, clang/Polly on
//! the left; SLinGen variants vs Cl1ck+MKL (nb ∈ {4, n/2, n}) on the
//! right. Performance in flops/cycle vs n, double precision.
//!
//! Usage: `fig14 [potrf|trsyl|trlya|trtri|all] [--full]`

use slingen::apps::nominal_flops;
use slingen_baselines::Flavor;
use slingen_bench::*;
use slingen_synth::Policy;

fn run_kernel(kernel: &str, full: bool) {
    println!("== Fig. 14 ({kernel}) — performance [f/c] vs n, peak 8 f/c ==");
    println!("-- left plot: SLinGen vs libraries and compilers --");
    for n in hlac_sizes(full) {
        let p = program_for(kernel, n);
        let fl = nominal_flops(kernel, n, 0);
        let mut row = vec![measure_slingen(&p, n, fl)];
        let mut flavors =
            vec![Flavor::Mkl, Flavor::Relapack, Flavor::Eigen, Flavor::Icc, Flavor::ClangPolly];
        if kernel == "trsyl" {
            flavors.insert(2, Flavor::Recsy);
        }
        for f in flavors {
            row.push(measure_baseline(&p, f, n, fl));
        }
        println!("{}", format_row(&row));
    }
    println!("-- right plot: algorithmic variants vs Cl1ck+MKL --");
    for n in hlac_sizes(full) {
        let p = program_for(kernel, n);
        let fl = nominal_flops(kernel, n, 0);
        let mut row = Vec::new();
        for policy in Policy::ALL {
            row.push(measure_slingen_variant(&p, policy, n, fl));
        }
        for nb in [4usize, (n / 2).max(1), n] {
            let flavor = if nb >= n {
                Flavor::Mkl // nb = n: unblocked, one LAPACK call
            } else {
                Flavor::Cl1ckMkl { nb }
            };
            let mut m = measure_baseline(&p, flavor, n, fl);
            m.label = format!("Cl1ck+MKL (nb={nb})");
            row.push(m);
        }
        println!("{}", format_row(&row));
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let which =
        args.iter().find(|a| !a.starts_with("--")).cloned().unwrap_or_else(|| "all".to_string());
    let kernels: Vec<&str> = match which.as_str() {
        "all" => vec!["potrf", "trsyl", "trlya", "trtri"],
        k => vec![match k {
            "potrf" | "trsyl" | "trlya" | "trtri" => k,
            other => panic!("unknown kernel `{other}`"),
        }],
    };
    for k in kernels {
        run_kernel(k, full);
    }
}
