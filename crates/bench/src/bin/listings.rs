//! Qualitative artifacts of the paper's running example: the LA program
//! (Fig. 5), the synthesized basic program (the analog of Figs. 7–9),
//! and the final generated C (the paper's output format).

use slingen::{apps, Options};
use slingen_synth::{synthesize_program, AlgorithmDb, Policy};

fn main() {
    let n = 8;
    let program = apps::potrf(n);
    println!("== LA program (paper Fig. 5 fragment, n = {n}) ==\n{program}");

    let mut db = AlgorithmDb::new();
    let basic = synthesize_program(&program, Policy::Lazy, 4, &mut db).unwrap();
    println!("== Stage 1: synthesized basic program (Figs. 7-9 analog) ==");
    println!("{}", basic.render(&program));
    println!("(algorithm DB: {} entries, {} hits, {} misses)\n", db.len(), db.hits(), db.misses());

    let g = slingen::generate(&program, &Options::default()).unwrap();
    println!("== Stage 3 output: generated C ({} variant) ==", g.policy);
    println!("{}", g.c_code);
    println!("== modeled performance ==\n{}", g.report);
}
