//! Regenerates the paper's Fig. 15: application benchmarks — the Kalman
//! filter (kf and kf-28), Gaussian process regression (gpr), and the
//! L1-analysis solver (l1a) vs MKL, Eigen, and icc.
//!
//! Usage: `fig15 [kf|kf28|gpr|l1a|all] [--full]`

use slingen::apps::{self, nominal_flops};
use slingen_baselines::Flavor;
use slingen_bench::*;

fn app_row(name: &str, program: &slingen_ir::Program, n: usize, fl: f64) -> String {
    let mut row = vec![measure_slingen(program, n, fl)];
    for f in [Flavor::Mkl, Flavor::Eigen, Flavor::Icc] {
        row.push(measure_baseline(program, f, n, fl));
    }
    let _ = name;
    format_row(&row)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let which =
        args.iter().find(|a| !a.starts_with("--")).cloned().unwrap_or_else(|| "all".to_string());
    let all = which == "all";

    if all || which == "kf" {
        println!("== Fig. 15a (kf) — performance [f/c] vs n ==");
        for n in app_sizes(full) {
            let p = apps::kf(n);
            println!("{}", app_row("kf", &p, n, nominal_flops("kf", n, 0)));
        }
        println!();
    }
    if all || which == "kf28" {
        println!("== Fig. 15b (kf-28) — state 28, performance [f/c] vs k ==");
        let ks: Vec<usize> = if full { (4..=28).step_by(4).collect() } else { vec![4, 12, 20, 28] };
        for k in ks {
            let p = apps::kf_sized(28, k);
            println!("{}", app_row("kf28", &p, k, nominal_flops("kf28", 28, k)));
        }
        println!();
    }
    if all || which == "gpr" {
        println!("== Fig. 15c (gpr) — performance [f/c] vs n ==");
        for n in app_sizes(full) {
            let p = apps::gpr(n);
            println!("{}", app_row("gpr", &p, n, nominal_flops("gpr", n, 0)));
        }
        println!();
    }
    if all || which == "l1a" {
        println!("== Fig. 15d (l1a) — performance [f/c] vs n ==");
        for n in app_sizes(full) {
            let p = apps::l1a(n);
            println!("{}", app_row("l1a", &p, n, nominal_flops("l1a", n, 0)));
        }
        println!();
    }
}
