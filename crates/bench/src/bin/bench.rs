//! Generator-throughput tracker: measures wall time of each pipeline
//! stage (and, with `--passes`, each Stage-3 pass) on the standard
//! workloads, and emits machine-readable `BENCH_generator.json`.
//!
//! Usage: `cargo run --release -p slingen-bench --bin bench [--passes]
//! [--out PATH]`
//!
//! The JSON is a list of per-workload records:
//! `{"app", "stage1_ms", "stage2_ms", "stage3_ms", "autotune_ms", ...}`,
//! preceded by a small metadata header. Each PR that touches the
//! generation hot path should re-run this and compare against the
//! committed numbers (see ROADMAP.md).

use slingen::{apps, Options};
use slingen_cir::passes::{optimize_traced, PassConfig};
use slingen_ir::Program;
use slingen_lgen::{lower_program, LowerOptions};
use slingen_synth::{synthesize_program, AlgorithmDb, Policy};
use std::time::Instant;

/// Median wall-clock milliseconds of `f` over enough repetitions for a
/// stable reading (at least 3 runs, at most ~2 s).
fn time_ms(mut f: impl FnMut()) -> f64 {
    let mut samples = Vec::new();
    let budget = Instant::now();
    loop {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64() * 1e3);
        if samples.len() >= 3 && (budget.elapsed().as_secs_f64() > 2.0 || samples.len() >= 15) {
            break;
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

struct Record {
    app: String,
    stage1_ms: f64,
    stage2_ms: f64,
    stage3_ms: f64,
    autotune_ms: f64,
    static_instrs: usize,
}

fn measure(name: &str, program: &Program, passes_breakdown: bool) -> Record {
    let opts = Options::default();
    let stage1_ms = time_ms(|| {
        let mut db = AlgorithmDb::new();
        synthesize_program(program, Policy::Lazy, opts.nu, &mut db).unwrap();
    });
    let mut db = AlgorithmDb::new();
    let basic = synthesize_program(program, Policy::Lazy, opts.nu, &mut db).unwrap();
    let lopts = LowerOptions { nu: opts.nu, loop_threshold: opts.loop_threshold };
    let stage2_ms = time_ms(|| {
        lower_program(program, &basic, program.name(), &lopts).unwrap();
    });
    let f0 = lower_program(program, &basic, program.name(), &lopts).unwrap();
    let cfg = PassConfig::default();
    let stage3_ms = time_ms(|| {
        let mut f = f0.clone();
        slingen_cir::passes::optimize(&mut f, &cfg);
    });
    let mut fopt = f0.clone();
    slingen_cir::passes::optimize(&mut fopt, &cfg);
    if passes_breakdown {
        // the breakdown observes the real pipeline, so it can never drift
        // from what `optimize` actually runs
        let mut f = f0.clone();
        optimize_traced(&mut f, &cfg, &mut |pass, elapsed| {
            eprintln!("    {pass:<10} {:8.3} ms", elapsed.as_secs_f64() * 1e3);
        });
    }
    let autotune_ms = time_ms(|| {
        slingen::generate(program, &opts).unwrap();
    });
    Record {
        app: name.to_string(),
        stage1_ms,
        stage2_ms,
        stage3_ms,
        autotune_ms,
        static_instrs: fopt.static_instr_count(),
    }
}

/// Extract `"key": <value>` (string or object value) from the top level of
/// a previously written JSON document, returning the raw text.
fn extract_top_level(src: &str, key: &str) -> Option<String> {
    let kq = format!("\"{key}\":");
    let start = src.find(&kq)?;
    let vstart = start + kq.len();
    let rest = src[vstart..].trim_start();
    let voff = src.len() - src[vstart..].len() + (src[vstart..].len() - rest.len());
    if rest.starts_with('{') {
        // bracket-count to the matching close (no nested strings with
        // braces are emitted by this tool)
        let mut depth = 0usize;
        for (i, c) in rest.char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(src[start..=voff + i].to_string());
                    }
                }
                _ => {}
            }
        }
        None
    } else if let Some(stripped) = rest.strip_prefix('"') {
        let close = stripped.find('"')?;
        Some(src[start..=voff + close + 1].to_string())
    } else {
        None
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let passes_breakdown = args.iter().any(|a| a == "--passes");
    let out_path = match args.iter().position(|a| a == "--out") {
        Some(i) => match args.get(i + 1) {
            Some(p) if !p.starts_with("--") => p.clone(),
            _ => {
                eprintln!("error: --out requires a path argument");
                std::process::exit(2);
            }
        },
        None => "BENCH_generator.json".to_string(),
    };

    let workloads: Vec<(String, Program)> = vec![
        ("potrf8".into(), apps::potrf(8)),
        ("potrf16".into(), apps::potrf(16)),
        ("potrf32".into(), apps::potrf(32)),
        ("potrf64".into(), apps::potrf(64)),
        ("kf8".into(), apps::kf(8)),
    ];

    let mut records = Vec::new();
    for (name, program) in &workloads {
        eprintln!("measuring {name} ...");
        let r = measure(name, program, passes_breakdown);
        eprintln!(
            "  stage1 {:8.3} ms  stage2 {:8.3} ms  stage3 {:8.3} ms  autotune {:8.3} ms  ({} instrs)",
            r.stage1_ms, r.stage2_ms, r.stage3_ms, r.autotune_ms, r.static_instrs
        );
        records.push(r);
    }

    let mut json = String::from("{\n  \"benchmark\": \"slingen-generator-throughput\",\n");
    json.push_str("  \"unit\": \"wall-clock milliseconds (median)\",\n");
    // hand-maintained sections of an existing file (regeneration notes,
    // PR-over-PR before/after history) survive the rewrite
    for key in ["regenerate", "criterion_before_after"] {
        if let Some(section) = std::fs::read_to_string(&out_path)
            .ok()
            .as_deref()
            .and_then(|prev| extract_top_level(prev, key))
        {
            json.push_str("  ");
            json.push_str(&section);
            json.push_str(",\n");
        }
    }
    json.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"app\": \"{}\", \"stage1_ms\": {:.3}, \"stage2_ms\": {:.3}, \
             \"stage3_ms\": {:.3}, \"autotune_ms\": {:.3}, \"static_instrs\": {}}}{}\n",
            r.app,
            r.stage1_ms,
            r.stage2_ms,
            r.stage3_ms,
            r.autotune_ms,
            r.static_instrs,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark json");
    eprintln!("wrote {out_path}");
}
