//! Generator-throughput tracker: measures wall time of each pipeline
//! stage (and, with `--passes`, each Stage-3 pass) on the standard
//! workloads, and emits machine-readable `BENCH_generator.json`.
//!
//! Usage: `cargo run --release -p slingen-bench --bin bench [--passes]
//! [--tune] [--serve] [--measure] [--calibrate] [--only APPS]
//! [--out PATH]`
//!
//! The JSON is a list of per-workload records:
//! `{"app", "stage1_ms", "stage2_ms", "stage3_ms", "autotune_ms", ...}`,
//! preceded by a small metadata header. `--tune` adds a per-workload
//! autotuner report — variants explored/pruned, cache hit rate, and the
//! cold-vs-cached `generate()` speedup. `--serve` adds a serve-front-end
//! report: requests/sec and p50/p99 latency at worker counts 1/4/16 on a
//! hot cache over distinct keys and on a mixed hot/cold request stream
//! (with coalescing counts). `--measure` adds the model-drift report:
//! each workload's model-ranked vs hardware-ranked winner with measured
//! cycle counts (two-stage measured autotuning; falls back per workload
//! when no C compiler works). `--calibrate` fits per-op latencies and
//! throughputs from generated microbenchmarks for Avx2/Avx2Fma and
//! records them next to the model's cost-table entries. Each PR that
//! touches the generation hot path should re-run this and compare
//! against the committed numbers (see ROADMAP.md).

use slingen::serve::Engine;
use slingen::{apps, Options, Target, TuneCache};
use slingen_cir::passes::{optimize_with_stats, PassConfig, PipelineStats};
use slingen_ir::Program;
use slingen_lgen::{lower_program, LowerOptions};
use slingen_synth::{synthesize_program, AlgorithmDb, Policy};
use std::time::Instant;

/// Median wall-clock milliseconds of `f` over enough repetitions for a
/// stable reading (at least 3 runs, at most ~2 s).
fn time_ms(mut f: impl FnMut()) -> f64 {
    let mut samples = Vec::new();
    let budget = Instant::now();
    loop {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64() * 1e3);
        if samples.len() >= 3 && (budget.elapsed().as_secs_f64() > 2.0 || samples.len() >= 15) {
            break;
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

struct Record {
    app: String,
    stage1_ms: f64,
    stage2_ms: f64,
    stage3_ms: f64,
    autotune_ms: f64,
    static_instrs: usize,
    fixpoint: PipelineStats,
}

fn measure(name: &str, program: &Program, passes_breakdown: bool) -> Record {
    let opts = Options::default();
    let stage1_ms = time_ms(|| {
        let mut db = AlgorithmDb::new();
        synthesize_program(program, Policy::Lazy, opts.nu, &mut db).unwrap();
    });
    let mut db = AlgorithmDb::new();
    let basic = synthesize_program(program, Policy::Lazy, opts.nu, &mut db).unwrap();
    let lopts = LowerOptions { nu: opts.nu, loop_threshold: opts.loop_threshold };
    let stage2_ms = time_ms(|| {
        lower_program(program, &basic, program.name(), &lopts).unwrap();
    });
    let f0 = lower_program(program, &basic, program.name(), &lopts).unwrap();
    let cfg = PassConfig::default();
    let stage3_ms = time_ms(|| {
        let mut f = f0.clone();
        slingen_cir::passes::optimize(&mut f, &cfg);
    });
    // the breakdown observes the real pipeline, so it can never drift
    // from what `optimize` actually runs
    let mut fopt = f0.clone();
    let fixpoint = optimize_with_stats(&mut fopt, &cfg, &mut |pass, elapsed| {
        if passes_breakdown {
            eprintln!("    {pass:<10} {:8.3} ms", elapsed.as_secs_f64() * 1e3);
        }
    });
    if passes_breakdown {
        for (i, r) in fixpoint.rounds.iter().enumerate() {
            if r.cse_skipped {
                eprintln!("    round {i}: cse skipped (clean dirty log)");
            } else {
                eprintln!(
                    "    round {i}: cse re-keyed {:5}  reused {:5}{}",
                    r.cse_rekeyed,
                    r.cse_reused,
                    if r.changed { "" } else { "  (fixpoint)" }
                );
            }
        }
        if !fixpoint.converged {
            eprintln!("    WARNING: stopped on the iteration cap, not at a fixpoint");
        }
    }
    let autotune_ms = time_ms(|| {
        // fresh options per repetition: this tracks the cold search, not
        // the TuneCache hit path (that's `--tune`'s cached_ms)
        slingen::generate(program, &Options::default()).unwrap();
    });
    Record {
        app: name.to_string(),
        stage1_ms,
        stage2_ms,
        stage3_ms,
        autotune_ms,
        static_instrs: fopt.static_instr_count(),
        fixpoint,
    }
}

struct TuneRecord {
    app: String,
    spec: String,
    explored: usize,
    pruned: usize,
    deduped: usize,
    predicted: usize,
    blocks_reused: usize,
    lb_pruned: usize,
    cold_ms: f64,
    cached_ms: f64,
    hit_rate: f64,
    /// Per-representative cold-time breakdown of the reported search.
    rep_costs: Vec<slingen::RepCost>,
}

/// The autotuner report: variant-space exploration plus the cache's
/// repeat-generation speedup (cold search vs cache hit).
fn measure_tune(name: &str, program: &Program) -> TuneRecord {
    // cold: every repetition searches through a fresh cache
    let cold_ms = time_ms(|| {
        slingen::generate(program, &Options::default()).unwrap();
    });
    // warm: one shared Options -> first call populates, the rest hit
    let opts = Options::default();
    let g = slingen::generate(program, &opts).unwrap();
    let cached_ms = time_ms(|| {
        slingen::generate(program, &opts).unwrap();
    });
    // hit rate over a fixed request mix (1 cold + 10 repeats), so the
    // committed number does not depend on the timing loop's repetitions
    let rate_opts = Options::default();
    for _ in 0..11 {
        slingen::generate(program, &rate_opts).unwrap();
    }
    let (hits, misses) = rate_opts.cache.stats();
    TuneRecord {
        app: name.to_string(),
        spec: g.spec.to_string(),
        explored: g.tuning.explored,
        pruned: g.tuning.pruned,
        deduped: g.tuning.deduped,
        predicted: g.tuning.predicted,
        blocks_reused: g.tuning.blocks_reused,
        lb_pruned: g.tuning.lb_pruned,
        cold_ms,
        cached_ms,
        hit_rate: hits as f64 / (hits + misses).max(1) as f64,
        rep_costs: g.rep_costs,
    }
}

struct ServeScenario {
    scenario: String,
    /// Worker threads actually spawned: min(requested, available cores).
    workers: usize,
    /// The scenario's nominal parallelism, before the core cap.
    requested_workers: usize,
    requests: usize,
    requests_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    searches: u64,
    coalesced: u64,
}

/// Drive `requests` through `engine.handle_line` from a pool of
/// `workers` threads pulling off one shared queue, recording the
/// per-request latency distribution.
fn run_serve_scenario(
    scenario: &str,
    engine: &Engine,
    lines: &[String],
    requested_workers: usize,
) -> ServeScenario {
    use std::sync::atomic::{AtomicUsize, Ordering};
    // Oversubscribing a small box just measures scheduler thrash, not
    // the engine: cap the pool at the machine's parallelism and record
    // both numbers so the JSON stays honest about what actually ran.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let workers = requested_workers.min(cores);
    let searches0 = engine.cache().searches();
    let coalesced0 = engine.cache().totals().coalesced;
    let next = AtomicUsize::new(0);
    let t0 = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(line) = lines.get(i) else { break };
                        let t = Instant::now();
                        let resp = engine.handle_line(line);
                        assert!(resp.contains("\"ok\":true"), "serve bench request failed: {resp}");
                        mine.push(t.elapsed().as_secs_f64() * 1e3);
                    }
                    mine
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
    ServeScenario {
        scenario: scenario.to_string(),
        workers,
        requested_workers,
        requests: lines.len(),
        requests_per_sec: lines.len() as f64 / wall_s.max(1e-9),
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        searches: engine.cache().searches() - searches0,
        coalesced: engine.cache().totals().coalesced - coalesced0,
    }
}

/// The serve-front-end report: requests/sec and latency percentiles at
/// worker counts 1/4/16, on (a) a pre-warmed cache over distinct keys —
/// the pure replay path — and (b) a mixed hot/cold stream with duplicate
/// keys in flight — searches plus coalescing.
fn measure_serve() -> Vec<ServeScenario> {
    let request =
        |app: &str, n: usize| format!("{{\"app\":\"{app}\",\"n\":{n},\"emit\":\"summary\"}}");
    // 12 distinct small kernels
    let keys: Vec<String> =
        (3..=8).flat_map(|n| [request("potrf", n), request("trtri", n)]).collect();
    let mut scenarios = Vec::new();
    for &workers in &[1usize, 4, 16] {
        // (a) hot cache, distinct keys round-robin: every request replays
        let hot_engine = Engine::new(TuneCache::new(), Target::Avx2);
        for line in &keys {
            let resp = hot_engine.handle_line(line); // pre-warm
            assert!(resp.contains("\"ok\":true"), "warmup failed: {resp}");
        }
        let stream: Vec<String> = (0..1200).map(|i| keys[i % keys.len()].clone()).collect();
        let s = run_serve_scenario("hot_distinct", &hot_engine, &stream, workers);
        assert_eq!(s.searches, 0, "a hot cache must not search");
        scenarios.push(s);

        // (b) mixed hot/cold: fresh cache, 8 distinct keys x 8 copies —
        // duplicates in flight coalesce, repeats hit
        let mixed_engine = Engine::new(TuneCache::new(), Target::Avx2);
        let stream: Vec<String> = (0..64).map(|i| request("potrf", 3 + (i % 8))).collect();
        scenarios.push(run_serve_scenario("mixed_hot_cold", &mixed_engine, &stream, workers));
    }
    scenarios
}

struct MeasureRecord {
    app: String,
    model_spec: String,
    model_cycles: f64,
    /// Hardware-ranked winner and its model prediction; equals the model
    /// row when stage two fell back.
    hw_spec: String,
    hw_model_cycles: f64,
    /// Measured time of the hardware winner, when stage two ran.
    measured: Option<slingen_perf::MeasuredTime>,
    /// Measured time of the *model* winner (trial zero of the re-rank).
    model_winner_measured: Option<f64>,
    trials: usize,
}

/// The model-drift report: model-ranked vs hardware-ranked winner per
/// workload, with the measured-over-modeled cycle ratio.
fn measure_hw(name: &str, program: &Program) -> MeasureRecord {
    let model = slingen::generate(program, &Options::default()).unwrap();
    let opts = Options { measure: slingen::MeasureConfig::hardware(), ..Options::default() };
    let g = slingen::generate(program, &opts).unwrap();
    MeasureRecord {
        app: name.to_string(),
        model_spec: model.spec.to_string(),
        model_cycles: model.report.cycles,
        hw_spec: g.spec.to_string(),
        hw_model_cycles: g.report.cycles,
        measured: g.report.measured,
        model_winner_measured: g.hw_trials.first().map(|t| t.measured.cycles),
        trials: g.hw_trials.len(),
    }
}

struct CalRecord {
    target: Target,
    cal: slingen::Calibration,
}

/// The model's cost-table entry corresponding to one calibrated op, for
/// the drift columns: div/sqrt map to the divider charges, the pipelined
/// ops to their latencies.
fn model_latency_for(target: Target, op: &str, vector: bool) -> f64 {
    let m = slingen_perf::Machine::from_target(target);
    match (op, vector) {
        ("div" | "sqrt", false) => m.div_scalar_cycles,
        ("div" | "sqrt", true) => m.div_vector_cycles,
        ("add", _) => m.fadd_latency,
        ("mul", _) => m.fmul_latency,
        _ => m.fma_latency,
    }
}

/// Extract `"key": <value>` (string, object, or array value) from the top
/// level of a previously written JSON document, returning the raw text.
fn extract_top_level(src: &str, key: &str) -> Option<String> {
    let kq = format!("\"{key}\":");
    let start = src.find(&kq)?;
    let vstart = start + kq.len();
    let rest = src[vstart..].trim_start();
    let voff = src.len() - src[vstart..].len() + (src[vstart..].len() - rest.len());
    let delims = match rest.chars().next()? {
        '{' => Some(('{', '}')),
        '[' => Some(('[', ']')),
        _ => None,
    };
    if let Some((open, close)) = delims {
        // bracket-count to the matching close (no nested strings with
        // brackets are emitted by this tool)
        let mut depth = 0usize;
        for (i, c) in rest.char_indices() {
            if c == open {
                depth += 1;
            } else if c == close {
                depth -= 1;
                if depth == 0 {
                    return Some(src[start..=voff + i].to_string());
                }
            }
        }
        None
    } else if let Some(stripped) = rest.strip_prefix('"') {
        let close = stripped.find('"')?;
        Some(src[start..=voff + close + 1].to_string())
    } else {
        None
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let passes_breakdown = args.iter().any(|a| a == "--passes");
    let tune = args.iter().any(|a| a == "--tune");
    let serve = args.iter().any(|a| a == "--serve");
    let hw_measure = args.iter().any(|a| a == "--measure");
    let calibrate = args.iter().any(|a| a == "--calibrate");
    let out_path = match args.iter().position(|a| a == "--out") {
        Some(i) => match args.get(i + 1) {
            Some(p) if !p.starts_with("--") => p.clone(),
            _ => {
                eprintln!("error: --out requires a path argument");
                std::process::exit(2);
            }
        },
        None => "BENCH_generator.json".to_string(),
    };

    let mut workloads: Vec<(String, Program)> = vec![
        ("potrf8".into(), apps::potrf(8)),
        ("potrf16".into(), apps::potrf(16)),
        ("potrf32".into(), apps::potrf(32)),
        ("potrf64".into(), apps::potrf(64)),
        ("kf8".into(), apps::kf(8)),
    ];
    // `--only a,b` restricts the tracked set (smoke runs); a filtered
    // run should go to `--out /tmp/...`, not the committed JSON.
    if let Some(i) = args.iter().position(|a| a == "--only") {
        let keep: Vec<String> = match args.get(i + 1) {
            Some(list) if !list.starts_with("--") => list.split(',').map(str::to_string).collect(),
            _ => {
                eprintln!("error: --only requires a comma-separated workload list");
                std::process::exit(2);
            }
        };
        for k in &keep {
            if !workloads.iter().any(|(n, _)| n == k) {
                eprintln!("error: unknown workload `{k}` for --only");
                std::process::exit(2);
            }
        }
        workloads.retain(|(n, _)| keep.contains(n));
    }

    let mut records = Vec::new();
    for (name, program) in &workloads {
        eprintln!("measuring {name} ...");
        let r = measure(name, program, passes_breakdown);
        eprintln!(
            "  stage1 {:8.3} ms  stage2 {:8.3} ms  stage3 {:8.3} ms  autotune {:8.3} ms  ({} instrs)",
            r.stage1_ms, r.stage2_ms, r.stage3_ms, r.autotune_ms, r.static_instrs
        );
        records.push(r);
    }

    let mut measure_records = Vec::new();
    if hw_measure {
        for (name, program) in &workloads {
            eprintln!("hardware-measuring {name} ...");
            let r = measure_hw(name, program);
            match (r.measured, r.model_winner_measured) {
                (Some(m), Some(mw)) => eprintln!(
                    "  model winner {:16} {:7.1} cy modeled / {:7.1} cy measured; \
                     hw winner {:16} {:7.1} cy measured ({:.2}x modeled, {} trials)",
                    r.model_spec,
                    r.model_cycles,
                    mw,
                    r.hw_spec,
                    m.cycles,
                    m.cycles / r.hw_model_cycles.max(1e-9),
                    r.trials
                ),
                _ => eprintln!(
                    "  model winner {:16} {:7.1} cy modeled; hardware ranking fell back",
                    r.model_spec, r.model_cycles
                ),
            }
            measure_records.push(r);
        }
    }

    let mut cal_records = Vec::new();
    if calibrate {
        for target in [Target::Avx2, Target::Avx2Fma] {
            eprintln!("calibrating {} ...", target.name());
            match slingen::calibrate(target, &slingen::MeasureConfig::hardware()) {
                Ok(cal) => {
                    for c in cal.ops.iter() {
                        eprintln!(
                            "  {:5} {}  lat {:6.2} cy  thr {:6.2} op/cy  (model {:5.1} cy)",
                            c.op,
                            if c.vector { "vec" } else { "scl" },
                            c.latency,
                            c.throughput,
                            model_latency_for(target, c.op, c.vector)
                        );
                    }
                    cal_records.push(CalRecord { target, cal });
                }
                Err(e) => eprintln!("  calibration unavailable: {e}"),
            }
        }
    }

    let mut tune_records = Vec::new();
    if tune {
        for (name, program) in &workloads {
            eprintln!("tuning {name} ...");
            let t = measure_tune(name, program);
            eprintln!(
                "  winner {:16} explored {:2} (pruned {:2}, deduped {:2}, predicted {:2})  \
                 cold {:8.3} ms  cached {:8.4} ms  ({:.0}x)  cache hit rate {:.2}",
                t.spec,
                t.explored,
                t.pruned,
                t.deduped,
                t.predicted,
                t.cold_ms,
                t.cached_ms,
                t.cold_ms / t.cached_ms.max(1e-9),
                t.hit_rate
            );
            eprintln!("  blocks_reused {:5}  lb_pruned {:2}", t.blocks_reused, t.lb_pruned);
            for c in &t.rep_costs {
                eprintln!(
                    "    rep {:16} lower {:8.3} ms  opt {:8.3} ms  measure {:8.3} ms",
                    c.spec.to_string(),
                    c.lower_ms,
                    c.opt_ms,
                    c.measure_ms
                );
            }
            tune_records.push(t);
        }
    }

    let mut json = String::from("{\n  \"benchmark\": \"slingen-generator-throughput\",\n");
    json.push_str("  \"unit\": \"wall-clock milliseconds (median)\",\n");
    // hand-maintained sections of an existing file (regeneration notes,
    // PR-over-PR before/after history) survive the rewrite
    for key in ["regenerate", "criterion_before_after"] {
        if let Some(section) = std::fs::read_to_string(&out_path)
            .ok()
            .as_deref()
            .and_then(|prev| extract_top_level(prev, key))
        {
            json.push_str("  ");
            json.push_str(&section);
            json.push_str(",\n");
        }
    }
    json.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let (rekeyed, reused): (usize, usize) = r
            .fixpoint
            .rounds
            .iter()
            .fold((0, 0), |(a, b), rd| (a + rd.cse_rekeyed, b + rd.cse_reused));
        json.push_str(&format!(
            "    {{\"app\": \"{}\", \"stage1_ms\": {:.3}, \"stage2_ms\": {:.3}, \
             \"stage3_ms\": {:.3}, \"autotune_ms\": {:.3}, \"static_instrs\": {}, \
             \"fixpoint\": {{\"rounds\": {}, \"cse_rekeyed\": {}, \"cse_reused\": {}, \
             \"converged\": {}}}}}{}\n",
            r.app,
            r.stage1_ms,
            r.stage2_ms,
            r.stage3_ms,
            r.autotune_ms,
            r.static_instrs,
            r.fixpoint.rounds.len(),
            rekeyed,
            reused,
            r.fixpoint.converged,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]");
    if tune_records.is_empty() {
        // a refresh without --tune keeps the previously committed
        // autotuner report instead of silently dropping it
        if let Some(section) = std::fs::read_to_string(&out_path)
            .ok()
            .as_deref()
            .and_then(|prev| extract_top_level(prev, "tune"))
        {
            json.push_str(",\n  ");
            json.push_str(&section);
        }
    }
    let serve_records = if serve {
        eprintln!("serving (hot_distinct + mixed_hot_cold at workers 1/4/16) ...");
        let records = measure_serve();
        for s in &records {
            eprintln!(
                "  {:14} workers {:2} (req {:2})  {:8.0} req/s  p50 {:8.4} ms  \
                 p99 {:8.4} ms  searches {:2}  coalesced {:2}",
                s.scenario,
                s.workers,
                s.requested_workers,
                s.requests_per_sec,
                s.p50_ms,
                s.p99_ms,
                s.searches,
                s.coalesced
            );
        }
        records
    } else {
        Vec::new()
    };
    if !tune_records.is_empty() {
        json.push_str(",\n  \"tune\": [\n");
        for (i, t) in tune_records.iter().enumerate() {
            let reps: Vec<String> = t
                .rep_costs
                .iter()
                .map(|c| {
                    format!(
                        "{{\"spec\": \"{}\", \"lower_ms\": {:.3}, \"opt_ms\": {:.3}, \
                         \"measure_ms\": {:.3}}}",
                        c.spec, c.lower_ms, c.opt_ms, c.measure_ms
                    )
                })
                .collect();
            json.push_str(&format!(
                "    {{\"app\": \"{}\", \"winner\": \"{}\", \"variants_explored\": {}, \
                 \"variants_pruned\": {}, \"variants_deduped\": {}, \
                 \"variants_predicted\": {}, \"blocks_reused\": {}, \"lb_pruned\": {}, \
                 \"cold_ms\": {:.3}, \
                 \"cached_ms\": {:.4}, \"cache_speedup\": {:.1}, \
                 \"cache_hit_rate\": {:.3}, \"reps\": [{}]}}{}\n",
                t.app,
                t.spec,
                t.explored,
                t.pruned,
                t.deduped,
                t.predicted,
                t.blocks_reused,
                t.lb_pruned,
                t.cold_ms,
                t.cached_ms,
                t.cold_ms / t.cached_ms.max(1e-9),
                t.hit_rate,
                reps.join(", "),
                if i + 1 < tune_records.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]");
    }
    if measure_records.is_empty() {
        // keep a previously committed model-drift report on refreshes
        // that skip --measure
        if let Some(section) = std::fs::read_to_string(&out_path)
            .ok()
            .as_deref()
            .and_then(|prev| extract_top_level(prev, "model_vs_measured"))
        {
            json.push_str(",\n  ");
            json.push_str(&section);
        }
    } else {
        json.push_str(",\n  \"model_vs_measured\": [\n");
        for (i, r) in measure_records.iter().enumerate() {
            match (r.measured, r.model_winner_measured) {
                (Some(m), Some(mw)) => json.push_str(&format!(
                    "    {{\"app\": \"{}\", \"source\": \"measured\", \
                     \"model_winner\": \"{}\", \"model_cycles\": {:.1}, \
                     \"model_winner_measured_cycles\": {:.1}, \
                     \"hw_winner\": \"{}\", \"hw_model_cycles\": {:.1}, \
                     \"measured_cycles\": {:.1}, \"measured_ns\": {:.1}, \
                     \"measured_over_modeled\": {:.3}, \"trials\": {}}}{}\n",
                    r.app,
                    r.model_spec,
                    r.model_cycles,
                    mw,
                    r.hw_spec,
                    r.hw_model_cycles,
                    m.cycles,
                    m.ns,
                    m.cycles / r.hw_model_cycles.max(1e-9),
                    r.trials,
                    if i + 1 < measure_records.len() { "," } else { "" }
                )),
                _ => json.push_str(&format!(
                    "    {{\"app\": \"{}\", \"source\": \"model\", \
                     \"model_winner\": \"{}\", \"model_cycles\": {:.1}}}{}\n",
                    r.app,
                    r.model_spec,
                    r.model_cycles,
                    if i + 1 < measure_records.len() { "," } else { "" }
                )),
            }
        }
        json.push_str("  ]");
    }
    if cal_records.is_empty() {
        // and a previously committed calibration on refreshes that skip
        // --calibrate
        if let Some(section) = std::fs::read_to_string(&out_path)
            .ok()
            .as_deref()
            .and_then(|prev| extract_top_level(prev, "calibration"))
        {
            json.push_str(",\n  ");
            json.push_str(&section);
        }
    } else {
        json.push_str(",\n  \"calibration\": [\n");
        for (i, r) in cal_records.iter().enumerate() {
            let ops: Vec<String> = r
                .cal
                .ops
                .iter()
                .map(|c| {
                    format!(
                        "{{\"op\": \"{}\", \"vector\": {}, \"latency_cycles\": {:.2}, \
                         \"throughput_ops_per_cycle\": {:.2}, \"model_cycles\": {:.1}}}",
                        c.op,
                        c.vector,
                        c.latency,
                        c.throughput,
                        model_latency_for(r.target, c.op, c.vector)
                    )
                })
                .collect();
            json.push_str(&format!(
                "    {{\"target\": \"{}\", \"ops\": [\n      {}\n    ]}}{}\n",
                r.target.name(),
                ops.join(",\n      "),
                if i + 1 < cal_records.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]");
    }
    if serve_records.is_empty() {
        // likewise keep a previously committed serve report on refreshes
        // that skip --serve
        if let Some(section) = std::fs::read_to_string(&out_path)
            .ok()
            .as_deref()
            .and_then(|prev| extract_top_level(prev, "serve"))
        {
            json.push_str(",\n  ");
            json.push_str(&section);
        }
    } else {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        json.push_str(&format!(",\n  \"serve\": {{\"cores\": {cores}, \"scenarios\": [\n"));
        for (i, s) in serve_records.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"scenario\": \"{}\", \"workers\": {}, \
                 \"requested_workers\": {}, \"requests\": {}, \
                 \"requests_per_sec\": {:.0}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \
                 \"searches\": {}, \"coalesced\": {}}}{}\n",
                s.scenario,
                s.workers,
                s.requested_workers,
                s.requests,
                s.requests_per_sec,
                s.p50_ms,
                s.p99_ms,
                s.searches,
                s.coalesced,
                if i + 1 < serve_records.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]}");
    }
    json.push_str("\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark json");
    eprintln!("wrote {out_path}");
}
