//! Ablation studies for the design choices called out in DESIGN.md §6:
//!
//! * vector ISA width ν ∈ {1, 2, 4} (scalar / SSE2-like / AVX);
//! * the domain-specific load/store analysis (paper Fig. 12) on/off;
//! * scalar replacement on/off;
//! * the Stage-1a algorithm database on/off (generation-time effect);
//! * algorithmic variants (lazy vs eager) per kernel.
//!
//! Usage: `ablation [--full]`

use slingen::apps::{self, nominal_flops};
use slingen::{generate, generate_with_policy, Options};
use slingen_synth::Policy;
use std::time::Instant;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let sizes: Vec<usize> = if full { vec![8, 16, 32, 64] } else { vec![8, 16, 32] };

    println!("== ablation: vector width nu (potrf) ==");
    for &n in &sizes {
        let p = apps::potrf(n);
        let fl = nominal_flops("potrf", n, 0);
        print!("n={n:<4}");
        for nu in [1usize, 2, 4] {
            let opts = Options { nu, ..Options::default() };
            let g = generate(&p, &opts).unwrap();
            print!("  nu={nu}: {:7.0} cyc ({:4.2} f/c)", g.report.cycles, fl / g.report.cycles);
        }
        println!();
    }

    println!("\n== ablation: load/store analysis (Fig. 12) ==");
    for kernel in ["potrf", "trsyl", "trtri"] {
        for &n in &sizes {
            let p = slingen_bench::program_for(kernel, n);
            let fl = nominal_flops(kernel, n, 0);
            let mut opts = Options::default();
            let with = generate(&p, &opts).unwrap();
            opts.passes.load_store_analysis = false;
            let without = generate(&p, &opts).unwrap();
            println!(
                "{kernel:<6} n={n:<4} with: {:7.0} cyc ({:4.2} f/c)   without: {:7.0} cyc ({:4.2} f/c)   blends+shuffles {} -> {}",
                with.report.cycles,
                fl / with.report.cycles,
                without.report.cycles,
                fl / without.report.cycles,
                without.report.count(slingen_cir::InstrClass::Blend)
                    + without.report.count(slingen_cir::InstrClass::Shuffle),
                with.report.count(slingen_cir::InstrClass::Blend)
                    + with.report.count(slingen_cir::InstrClass::Shuffle),
            );
        }
    }

    println!("\n== ablation: scalar replacement ==");
    for &n in &sizes {
        let p = apps::potrf(n);
        let fl = nominal_flops("potrf", n, 0);
        let mut opts = Options::default();
        let with = generate(&p, &opts).unwrap();
        opts.passes.scalar_replacement = false;
        opts.passes.load_store_analysis = false;
        opts.passes.cse = false;
        let without = generate(&p, &opts).unwrap();
        println!(
            "potrf n={n:<4} full passes: {:7.0} cyc ({:4.2} f/c)   minimal: {:7.0} cyc ({:4.2} f/c)",
            with.report.cycles,
            fl / with.report.cycles,
            without.report.cycles,
            fl / without.report.cycles
        );
    }

    println!("\n== ablation: Stage-1a algorithm database (generation time) ==");
    for &n in &sizes {
        let p = apps::potrf(n);
        let t0 = Instant::now();
        let mut db = slingen_synth::AlgorithmDb::new();
        let _ = slingen_synth::synthesize_program(&p, Policy::Lazy, 4, &mut db).unwrap();
        let with_db = t0.elapsed();
        let t1 = Instant::now();
        let mut db_off = slingen_synth::AlgorithmDb::new();
        db_off.set_enabled(false);
        let _ = slingen_synth::synthesize_program(&p, Policy::Lazy, 4, &mut db_off).unwrap();
        let without_db = t1.elapsed();
        println!(
            "potrf n={n:<4} with DB: {:>8.1?} ({} hits)   without: {:>8.1?}",
            with_db,
            db.hits(),
            without_db
        );
    }

    println!("\n== ablation: algorithmic variants ==");
    for kernel in ["potrf", "trsyl", "trlya", "trtri"] {
        for &n in &sizes {
            let p = slingen_bench::program_for(kernel, n);
            let fl = nominal_flops(kernel, n, 0);
            print!("{kernel:<6} n={n:<4}");
            for policy in Policy::ALL {
                let g = generate_with_policy(&p, policy, &Options::default()).unwrap();
                print!("  {policy}: {:4.2} f/c", fl / g.report.cycles);
            }
            println!();
        }
    }
}
