//! Regenerates the paper's Table 4: ERM-style bottleneck analysis of the
//! SLinGen-generated HLAC code — hardware bottleneck, shuffle/blend issue
//! rates, and the achievable-peak limits implied by shuffle and blend
//! pressure.
//!
//! Usage: `table4 [--full]`

use slingen_bench::*;
use slingen_cir::InstrClass;
use slingen_perf::Resource;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let sizes: Vec<usize> = if full { vec![4, 76, 124] } else { vec![4, 28, 60] };
    println!("== Table 4 — bottleneck analysis of generated code ==");
    println!(
        "{:<8} {:>5} {:>14} {:>22} {:>16} {:>15}",
        "kernel", "n", "bottleneck", "shuffle+blend issue", "limit(shuffles)", "limit(blends)"
    );
    for kernel in ["potrf", "trsyl", "trlya", "trtri"] {
        for &n in &sizes {
            let p = program_for(kernel, n);
            let fl = slingen::apps::nominal_flops(kernel, n, 0);
            let m = measure_slingen(&p, n, fl);
            let r = &m.report;
            let issue = r.issue_rate(InstrClass::Shuffle) + r.issue_rate(InstrClass::Blend);
            println!(
                "{:<8} {:>5} {:>14} {:>21.0}% {:>15.1} {:>15.1}",
                kernel,
                n,
                r.bottleneck().label(),
                100.0 * issue,
                r.perf_limit(Resource::Shuffle),
                r.perf_limit(Resource::Blend),
            );
        }
    }
}
