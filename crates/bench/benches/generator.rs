//! Criterion micro-benchmarks: generator compile time (Stages 1-3),
//! VM execution throughput, and the Stage-3 pass pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use slingen::{apps, Options};
use slingen_cir::passes::{optimize, PassConfig};
use slingen_lgen::{lower_program, LowerOptions};
use slingen_synth::{synthesize_program, AlgorithmDb, Policy};
use slingen_vm::{BufferSet, NullMonitor};

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("generation");
    g.sample_size(10);
    for n in [8usize, 16, 32] {
        let program = apps::potrf(n);
        g.bench_function(format!("potrf_{n}_full_pipeline"), |b| {
            b.iter(|| slingen::generate(&program, &Options::default()).unwrap())
        });
    }
    let program = apps::kf(8);
    g.bench_function("kf_8_full_pipeline", |b| {
        b.iter(|| slingen::generate(&program, &Options::default()).unwrap())
    });
    g.finish();
}

fn bench_stages(c: &mut Criterion) {
    let mut g = c.benchmark_group("stages");
    g.sample_size(10);
    let program = apps::potrf(24);
    g.bench_function("stage1_synthesis", |b| {
        b.iter(|| {
            let mut db = AlgorithmDb::new();
            synthesize_program(&program, Policy::Lazy, 4, &mut db).unwrap()
        })
    });
    let mut db = AlgorithmDb::new();
    let basic = synthesize_program(&program, Policy::Lazy, 4, &mut db).unwrap();
    g.bench_function("stage2_lowering", |b| {
        b.iter(|| lower_program(&program, &basic, "potrf", &LowerOptions::default()).unwrap())
    });
    let f0 = lower_program(&program, &basic, "potrf", &LowerOptions::default()).unwrap();
    g.bench_function("stage3_passes", |b| {
        b.iter(|| {
            let mut f = f0.clone();
            optimize(&mut f, &PassConfig::default());
            f
        })
    });
    // pass pipeline on a bigger, fully-unrolled function (~43k instrs)
    let program64 = apps::potrf(64);
    let mut db64 = AlgorithmDb::new();
    let basic64 = synthesize_program(&program64, Policy::Lazy, 4, &mut db64).unwrap();
    let f64_ = lower_program(&program64, &basic64, "potrf", &LowerOptions::default()).unwrap();
    g.bench_function("stage3_passes_potrf64", |b| {
        b.iter(|| {
            let mut f = f64_.clone();
            optimize(&mut f, &PassConfig::default());
            f
        })
    });
    // the same pipeline with the block memo pinned on, asserting the
    // reuse actually fires: fixpoint tail rounds replay memoized CSE
    // segments and skip clean passes instead of re-scanning ~43k
    // instructions per round. Compare against `stage3_passes_potrf64`
    // to price the memo itself.
    g.bench_function("stage3_block_reuse", |b| {
        use slingen_cir::passes::optimize_with_stats;
        b.iter(|| {
            let mut f = f64_.clone();
            let cfg = PassConfig { block_memo: true, ..PassConfig::default() };
            let stats = optimize_with_stats(&mut f, &cfg, &mut |_, _| {});
            assert!(
                stats.rounds.iter().map(|r| r.blocks_skipped).sum::<usize>() > 0,
                "block memo never fired on potrf64"
            );
            f
        })
    });
    // incremental CSE in isolation: one nearly-clean round over the
    // converged ~43k-instruction potrf64 body (a single register dirty),
    // i.e. the cost the fixpoint loop pays per round after the seeding
    // scan — memoized key reuse plus dirty-set bookkeeping.
    use slingen_cir::passes::{cse, DirtyLog, RoundStats};
    let mut fc = f64_.clone();
    optimize(&mut fc, &PassConfig::default());
    let mut cache = cse::CseCache::default();
    let mut dirty = DirtyLog::all_dirty();
    let mut seed_round = RoundStats::default();
    cse::cse_incremental(&mut fc, &mut cache, &mut dirty, &mut seed_round);
    g.bench_function("cse_incremental", |b| {
        b.iter(|| {
            let mut round = RoundStats::default();
            dirty.mark_s(slingen_cir::SReg(0));
            cse::cse_incremental(&mut fc, &mut cache, &mut dirty, &mut round);
            round.cse_reused
        })
    });
    g.finish();
}

/// The autotuning search: Stage 1 through one shared algorithm database,
/// Stages 2-3 + measurement fanned out on parallel threads, over the
/// policy × ν × loop-threshold variant space.
fn bench_autotune(c: &mut Criterion) {
    use slingen::{SearchSpace, Strategy};
    let mut g = c.benchmark_group("autotune");
    g.sample_size(10);
    let potrf = apps::potrf(24);
    g.bench_function("autotune_fanout_potrf24", |b| {
        b.iter(|| slingen::generate(&potrf, &Options::default()).unwrap())
    });
    let kf = apps::kf(8);
    g.bench_function("autotune_fanout_kf8", |b| {
        b.iter(|| slingen::generate(&kf, &Options::default()).unwrap())
    });
    // the variant-space strategies head-to-head on one workload: greedy
    // coordinate descent (the default), the exhaustive sweep, and the
    // historical 2-policy row of the space
    let potrf16 = apps::potrf(16);
    g.bench_function("space_greedy_potrf16", |b| {
        b.iter(|| slingen::generate(&potrf16, &Options::default()).unwrap())
    });
    g.bench_function("space_exhaustive_potrf16", |b| {
        b.iter(|| {
            let opts = Options {
                search: SearchSpace::default().with_strategy(Strategy::Exhaustive),
                ..Options::default()
            };
            slingen::generate(&potrf16, &opts).unwrap()
        })
    });
    g.bench_function("space_policy_row_potrf16", |b| {
        b.iter(|| {
            let opts = Options {
                search: SearchSpace::default().with_nus([4]).with_loop_thresholds([64]),
                ..Options::default()
            };
            slingen::generate(&potrf16, &opts).unwrap()
        })
    });
    // repeated generation of the same program through one shared cache:
    // the high-traffic-service path (O(1) per request after the first)
    let cached_opts = Options::default();
    slingen::generate(&potrf16, &cached_opts).unwrap();
    g.bench_function("space_cached_potrf16", |b| {
        b.iter(|| slingen::generate(&potrf16, &cached_opts).unwrap())
    });
    g.finish();
}

fn bench_vm(c: &mut Criterion) {
    let mut g = c.benchmark_group("vm");
    g.sample_size(20);
    let program = apps::potrf(24);
    let generated = slingen::generate(&program, &Options::default()).unwrap();
    let mut fb = slingen_cir::FunctionBuilder::new("probe", 4);
    let map = slingen_lgen::BufferMap::build(&program, &mut fb);
    let inputs = slingen::workload::inputs(&program, 3);
    g.bench_function("execute_potrf_24", |b| {
        b.iter(|| {
            let mut bufs = BufferSet::for_function(&generated.function);
            for (op, data) in &inputs {
                bufs.set(map.buf(*op), data);
            }
            slingen_vm::execute(&generated.function, &mut bufs, &mut NullMonitor).unwrap();
            bufs
        })
    });
    g.finish();
}

criterion_group!(benches, bench_generation, bench_stages, bench_autotune, bench_vm);
criterion_main!(benches);
