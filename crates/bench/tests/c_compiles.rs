//! The emitted C is the system's deliverable: when a C compiler is
//! available, every benchmark's generated code must *compile* as
//! standalone C (scalar width compiles as plain C99; the AVX output
//! compiles with -mavx on x86 hosts).

use slingen::{apps, Options};
use std::process::Command;

fn cc_available() -> bool {
    Command::new("cc").arg("--version").output().map(|o| o.status.success()).unwrap_or(false)
}

static UNIQUE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

fn compile(c_code: &str, extra: &[&str]) -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!("slingen_cc_{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let id = UNIQUE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let src = dir.join(format!("gen_{id}.c"));
    std::fs::write(&src, c_code).map_err(|e| e.to_string())?;
    let obj = dir.join(format!("gen_{id}.o"));
    let out = Command::new("cc")
        .arg("-std=c99")
        .arg("-c")
        .args(extra)
        .arg("-o")
        .arg(&obj)
        .arg(&src)
        .output()
        .map_err(|e| e.to_string())?;
    if out.status.success() {
        Ok(())
    } else {
        Err(String::from_utf8_lossy(&out.stderr).into_owned())
    }
}

#[test]
fn scalar_c_compiles_for_all_benchmarks() {
    if !cc_available() {
        eprintln!("no C compiler; skipping");
        return;
    }
    for (name, p) in [
        ("potrf", apps::potrf(8)),
        ("trsyl", apps::trsyl(6)),
        ("trlya", apps::trlya(6)),
        ("trtri", apps::trtri(8)),
        ("kf", apps::kf(4)),
        ("gpr", apps::gpr(6)),
        ("l1a", apps::l1a(8)),
    ] {
        let opts = Options { nu: 1, ..Options::default() };
        let g = slingen::generate(&p, &opts).unwrap();
        compile(&g.c_code, &[]).unwrap_or_else(|e| panic!("{name} scalar C: {e}"));
    }
}

#[test]
fn avx_c_compiles_for_all_benchmarks() {
    if !cc_available() {
        eprintln!("no C compiler; skipping");
        return;
    }
    // probe AVX support of the host toolchain
    if compile("#include <immintrin.h>\nint main(void){__m256d x = _mm256_set1_pd(1.0); (void)x; return 0;}", &["-mavx"]).is_err() {
        eprintln!("toolchain lacks AVX; skipping");
        return;
    }
    for (name, p) in [
        ("potrf", apps::potrf(8)),
        ("trtri", apps::trtri(8)),
        ("kf", apps::kf(4)),
        ("l1a", apps::l1a(8)),
    ] {
        let g = slingen::generate(&p, &Options::default()).unwrap();
        compile(&g.c_code, &["-mavx"]).unwrap_or_else(|e| panic!("{name} AVX C: {e}"));
    }
}
