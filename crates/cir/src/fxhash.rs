//! A fast, non-cryptographic hasher for the pass-internal maps
//! (rustc-hash/FxHash style multiply-rotate mixing).
//!
//! The Stage-3 passes key availability and cell maps on small structured
//! keys and look them up once per instruction; the default SipHash
//! dominates their profile. This hasher is not DoS-resistant — use it only
//! for compiler-internal tables whose keys are not attacker-controlled.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher (FxHash).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(usize, i64), u32> = FxHashMap::default();
        for i in 0..1000usize {
            m.insert((i, -(i as i64)), i as u32);
        }
        for i in 0..1000usize {
            assert_eq!(m.get(&(i, -(i as i64))), Some(&(i as u32)));
        }
    }

    #[test]
    fn distinct_streams_differ() {
        use std::hash::Hash;
        let h = |x: &[u64]| {
            let mut hasher = FxHasher::default();
            x.hash(&mut hasher);
            hasher.finish()
        };
        assert_ne!(h(&[1, 2]), h(&[2, 1]));
        assert_ne!(h(&[0]), h(&[]));
    }
}
