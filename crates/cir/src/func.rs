//! C-IR functions: buffers, structured statements, and a builder.

use crate::affine::{Affine, Cond, LoopVar};
use crate::instr::Instr;
use std::fmt;

/// A memory buffer (one per operand, plus generator temporaries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufId(pub usize);

impl fmt::Display for BufId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "buf{}", self.0)
    }
}

/// How a buffer enters the generated function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufKind {
    /// A pointer parameter that is only read.
    ParamIn,
    /// A pointer parameter that is only written.
    ParamOut,
    /// A pointer parameter that is read and written.
    ParamInOut,
    /// A stack/local temporary owned by the function.
    Local,
}

impl BufKind {
    /// Whether the function may read the buffer's initial contents.
    pub fn readable_at_entry(self) -> bool {
        matches!(self, BufKind::ParamIn | BufKind::ParamInOut)
    }

    /// Whether the buffer's final contents are observable by the caller.
    pub fn live_out(self) -> bool {
        matches!(self, BufKind::ParamOut | BufKind::ParamInOut)
    }
}

/// A buffer declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferDecl {
    /// C-level name.
    pub name: String,
    /// Length in doubles.
    pub len: usize,
    /// Parameter or local.
    pub kind: BufKind,
}

/// A structured C-IR statement.
#[derive(Debug, Clone, PartialEq)]
pub enum CStmt {
    /// A straight-line instruction.
    I(Instr),
    /// `for (var = lo; var < hi; var += step) body`
    For {
        /// Induction variable (unique within the function).
        var: LoopVar,
        /// Inclusive lower bound.
        lo: Affine,
        /// Exclusive upper bound.
        hi: Affine,
        /// Positive step.
        step: i64,
        /// Loop body.
        body: Vec<CStmt>,
    },
    /// `if (cond) then_ else else_`
    If {
        /// Affine condition.
        cond: Cond,
        /// Taken branch.
        then_: Vec<CStmt>,
        /// Fallthrough branch (possibly empty).
        else_: Vec<CStmt>,
    },
}

impl CStmt {
    /// Count instructions statically (loop bodies counted once).
    pub fn static_instr_count(&self) -> usize {
        match self {
            CStmt::I(_) => 1,
            CStmt::For { body, .. } => body.iter().map(CStmt::static_instr_count).sum(),
            CStmt::If { then_, else_, .. } => {
                then_.iter().map(CStmt::static_instr_count).sum::<usize>()
                    + else_.iter().map(CStmt::static_instr_count).sum::<usize>()
            }
        }
    }
}

/// A complete C-IR function.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name (becomes the emitted C function's name).
    pub name: String,
    /// Vector width ν (1 = scalar code).
    pub width: usize,
    /// Buffer table; [`BufId`]s index into it.
    pub buffers: Vec<BufferDecl>,
    /// Function body.
    pub body: Vec<CStmt>,
    /// Number of scalar registers allocated.
    pub n_sregs: usize,
    /// Number of vector registers allocated.
    pub n_vregs: usize,
    /// Number of loop variables allocated.
    pub n_loopvars: usize,
}

impl Function {
    /// The parameter buffers, in declaration order.
    pub fn params(&self) -> impl Iterator<Item = (BufId, &BufferDecl)> {
        self.buffers
            .iter()
            .enumerate()
            .filter(|(_, b)| b.kind != BufKind::Local)
            .map(|(i, b)| (BufId(i), b))
    }

    /// The local (temporary) buffers.
    pub fn locals(&self) -> impl Iterator<Item = (BufId, &BufferDecl)> {
        self.buffers
            .iter()
            .enumerate()
            .filter(|(_, b)| b.kind == BufKind::Local)
            .map(|(i, b)| (BufId(i), b))
    }

    /// Static instruction count (loops counted once).
    pub fn static_instr_count(&self) -> usize {
        self.body.iter().map(CStmt::static_instr_count).sum()
    }

    /// Visit every instruction in the function (structure-blind).
    pub fn for_each_instr(&self, f: &mut impl FnMut(&Instr)) {
        fn walk(stmts: &[CStmt], f: &mut impl FnMut(&Instr)) {
            for s in stmts {
                match s {
                    CStmt::I(i) => f(i),
                    CStmt::For { body, .. } => walk(body, f),
                    CStmt::If { then_, else_, .. } => {
                        walk(then_, f);
                        walk(else_, f);
                    }
                }
            }
        }
        walk(&self.body, f);
    }
}

/// Builder for [`Function`]s with fresh-register allocation and a block
/// stack for structured control flow.
///
/// ```
/// use slingen_cir::{FunctionBuilder, BufKind, BinOp, Affine, MemRef};
///
/// let mut b = FunctionBuilder::new("axpy1", 4);
/// let x = b.buffer("x", 4, BufKind::ParamIn);
/// let y = b.buffer("y", 4, BufKind::ParamInOut);
/// let vx = b.vload_contig(MemRef::new(x, 0));
/// let vy = b.vload_contig(MemRef::new(y, 0));
/// let sum = b.vbin(BinOp::Add, vx, vy);
/// b.vstore_contig(sum, MemRef::new(y, 0));
/// let f = b.finish();
/// assert_eq!(f.static_instr_count(), 4);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    width: usize,
    buffers: Vec<BufferDecl>,
    n_sregs: usize,
    n_vregs: usize,
    n_loopvars: usize,
    /// Stack of open blocks; the bottom element is the function body.
    blocks: Vec<Vec<CStmt>>,
    /// Open `for` frames: (var, lo, hi, step).
    pending_loops: Vec<(LoopVar, Affine, Affine, i64)>,
    /// Open `if` frames: (cond, saved then-branch once `else` starts).
    pending_ifs: Vec<(Cond, Option<Vec<CStmt>>)>,
}

use crate::instr::{BinOp, FmaKind, LaneSel, MemRef, SOperand, SReg, VReg};

impl FunctionBuilder {
    /// Start a function with the given vector width ν.
    pub fn new(name: &str, width: usize) -> Self {
        assert!(width >= 1, "vector width must be at least 1");
        FunctionBuilder {
            name: name.to_string(),
            width,
            buffers: Vec::new(),
            n_sregs: 0,
            n_vregs: 0,
            n_loopvars: 0,
            blocks: vec![Vec::new()],
            pending_loops: Vec::new(),
            pending_ifs: Vec::new(),
        }
    }

    /// The vector width ν.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Declare a buffer.
    pub fn buffer(&mut self, name: &str, len: usize, kind: BufKind) -> BufId {
        self.buffers.push(BufferDecl { name: name.to_string(), len, kind });
        BufId(self.buffers.len() - 1)
    }

    /// Allocate a fresh scalar register.
    pub fn fresh_sreg(&mut self) -> SReg {
        self.n_sregs += 1;
        SReg(self.n_sregs - 1)
    }

    /// Allocate a fresh vector register.
    pub fn fresh_vreg(&mut self) -> VReg {
        self.n_vregs += 1;
        VReg(self.n_vregs - 1)
    }

    /// Append a raw instruction.
    pub fn instr(&mut self, i: Instr) {
        self.blocks.last_mut().expect("open block").push(CStmt::I(i));
    }

    /// Append a pre-built statement (used when splicing fragments).
    pub fn stmt(&mut self, s: CStmt) {
        self.blocks.last_mut().expect("open block").push(s);
    }

    // ---- scalar conveniences ----

    /// `dst = mem` into a fresh register.
    pub fn sload(&mut self, src: MemRef) -> SReg {
        let dst = self.fresh_sreg();
        self.instr(Instr::SLoad { dst, src });
        dst
    }

    /// `mem = src`.
    pub fn sstore(&mut self, src: impl Into<SOperand>, dst: MemRef) {
        self.instr(Instr::SStore { src: src.into(), dst });
    }

    /// `fresh = a op b`.
    pub fn sbin(&mut self, op: BinOp, a: impl Into<SOperand>, b: impl Into<SOperand>) -> SReg {
        let dst = self.fresh_sreg();
        self.instr(Instr::SBin { op, dst, a: a.into(), b: b.into() });
        dst
    }

    /// `fresh = sqrt(a)`.
    pub fn ssqrt(&mut self, a: impl Into<SOperand>) -> SReg {
        let dst = self.fresh_sreg();
        self.instr(Instr::SSqrt { dst, a: a.into() });
        dst
    }

    /// `fresh = ±(a * b) ± c` per `kind`, fused.
    pub fn sfma(
        &mut self,
        kind: FmaKind,
        a: impl Into<SOperand>,
        b: impl Into<SOperand>,
        c: impl Into<SOperand>,
    ) -> SReg {
        let dst = self.fresh_sreg();
        self.instr(Instr::SFma { kind, dst, a: a.into(), b: b.into(), c: c.into() });
        dst
    }

    /// `fresh = a`.
    pub fn smov(&mut self, a: impl Into<SOperand>) -> SReg {
        let dst = self.fresh_sreg();
        self.instr(Instr::SMov { dst, a: a.into() });
        dst
    }

    // ---- vector conveniences ----

    /// Contiguous full-width vector load.
    pub fn vload_contig(&mut self, base: MemRef) -> VReg {
        let lanes = (0..self.width).map(|i| Some(i as i64)).collect();
        self.vload(base, lanes)
    }

    /// Vector load with an explicit lane map.
    pub fn vload(&mut self, base: MemRef, lanes: Vec<Option<i64>>) -> VReg {
        assert_eq!(lanes.len(), self.width, "lane map must have width ν");
        let dst = self.fresh_vreg();
        self.instr(Instr::VLoad { dst, base, lanes });
        dst
    }

    /// Contiguous full-width vector store.
    pub fn vstore_contig(&mut self, src: VReg, base: MemRef) {
        let lanes = (0..self.width).map(|i| Some(i as i64)).collect();
        self.vstore(src, base, lanes);
    }

    /// Vector store with an explicit lane map.
    pub fn vstore(&mut self, src: VReg, base: MemRef, lanes: Vec<Option<i64>>) {
        assert_eq!(lanes.len(), self.width, "lane map must have width ν");
        self.instr(Instr::VStore { src, base, lanes });
    }

    /// `fresh = a op b` element-wise.
    pub fn vbin(&mut self, op: BinOp, a: VReg, b: VReg) -> VReg {
        let dst = self.fresh_vreg();
        self.instr(Instr::VBin { op, dst, a, b });
        dst
    }

    /// `fresh = ±(a * b) ± c` per `kind`, element-wise and fused.
    pub fn vfma(&mut self, kind: FmaKind, a: VReg, b: VReg, c: VReg) -> VReg {
        let dst = self.fresh_vreg();
        self.instr(Instr::VFma { kind, dst, a, b, c });
        dst
    }

    /// Broadcast a scalar into a fresh vector register.
    pub fn vbroadcast(&mut self, src: impl Into<SOperand>) -> VReg {
        let dst = self.fresh_vreg();
        self.instr(Instr::VBroadcast { dst, src: src.into() });
        dst
    }

    /// Two-source shuffle into a fresh register.
    pub fn vshuffle(&mut self, a: VReg, b: VReg, sel: Vec<LaneSel>) -> VReg {
        assert_eq!(sel.len(), self.width, "selection must have width ν");
        let dst = self.fresh_vreg();
        self.instr(Instr::VShuffle { dst, a, b, sel });
        dst
    }

    /// Blend into a fresh register.
    pub fn vblend(&mut self, a: VReg, b: VReg, mask: Vec<bool>) -> VReg {
        assert_eq!(mask.len(), self.width, "mask must have width ν");
        let dst = self.fresh_vreg();
        self.instr(Instr::VBlend { dst, a, b, mask });
        dst
    }

    /// Extract a lane into a fresh scalar register.
    pub fn vextract(&mut self, src: VReg, lane: usize) -> SReg {
        assert!(lane < self.width);
        let dst = self.fresh_sreg();
        self.instr(Instr::VExtract { dst, src, lane });
        dst
    }

    /// Horizontal sum into a fresh scalar register.
    pub fn vreduce_add(&mut self, src: VReg) -> SReg {
        let dst = self.fresh_sreg();
        self.instr(Instr::VReduceAdd { dst, src });
        dst
    }

    // ---- control flow ----

    /// Open a `for` loop; returns the induction variable. Close with
    /// [`FunctionBuilder::end_for`].
    pub fn begin_for(
        &mut self,
        lo: impl Into<Affine>,
        hi: impl Into<Affine>,
        step: i64,
    ) -> LoopVar {
        assert!(step > 0, "loop step must be positive");
        let var = LoopVar(self.n_loopvars);
        self.n_loopvars += 1;
        // Temporarily push a marker frame; bounds stored on close.
        self.blocks.push(Vec::new());
        self.pending_loops.push((var, lo.into(), hi.into(), step));
        var
    }

    /// Close the innermost `for` loop.
    pub fn end_for(&mut self) {
        let body = self.blocks.pop().expect("unbalanced end_for");
        let (var, lo, hi, step) = self.pending_loops.pop().expect("unbalanced end_for");
        self.stmt(CStmt::For { var, lo, hi, step, body });
    }

    /// Open an `if`; close with [`FunctionBuilder::end_if`] (or
    /// [`FunctionBuilder::begin_else`] first).
    pub fn begin_if(&mut self, cond: Cond) {
        self.blocks.push(Vec::new());
        self.pending_ifs.push((cond, None));
    }

    /// Switch to the `else` branch of the innermost open `if`.
    pub fn begin_else(&mut self) {
        let then_ = self.blocks.pop().expect("unbalanced begin_else");
        let entry = self.pending_ifs.last_mut().expect("unbalanced begin_else");
        assert!(entry.1.is_none(), "else branch already started");
        entry.1 = Some(then_);
        self.blocks.push(Vec::new());
    }

    /// Close the innermost `if`.
    pub fn end_if(&mut self) {
        let last = self.blocks.pop().expect("unbalanced end_if");
        let (cond, saved_then) = self.pending_ifs.pop().expect("unbalanced end_if");
        let (then_, else_) = match saved_then {
            Some(t) => (t, last),
            None => (last, Vec::new()),
        };
        self.stmt(CStmt::If { cond, then_, else_ });
    }

    /// Finish and return the function.
    ///
    /// # Panics
    ///
    /// Panics if control-flow blocks are unbalanced.
    pub fn finish(mut self) -> Function {
        assert_eq!(self.blocks.len(), 1, "unclosed loop or if block");
        assert!(self.pending_loops.is_empty() && self.pending_ifs.is_empty());
        Function {
            name: self.name,
            width: self.width,
            buffers: self.buffers,
            body: self.blocks.pop().unwrap(),
            n_sregs: self.n_sregs,
            n_vregs: self.n_vregs,
            n_loopvars: self.n_loopvars,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::CmpOp;

    #[test]
    fn builder_allocates_fresh_registers() {
        let mut b = FunctionBuilder::new("f", 4);
        let s0 = b.fresh_sreg();
        let s1 = b.fresh_sreg();
        assert_ne!(s0, s1);
        let v0 = b.fresh_vreg();
        let v1 = b.fresh_vreg();
        assert_ne!(v0, v1);
        let f = b.finish();
        assert_eq!(f.n_sregs, 2);
        assert_eq!(f.n_vregs, 2);
    }

    #[test]
    fn structured_loops_nest() {
        let mut b = FunctionBuilder::new("f", 2);
        let x = b.buffer("x", 16, BufKind::ParamInOut);
        let i = b.begin_for(0, 4, 1);
        let j = b.begin_for(0, 4, 2);
        let addr = MemRef::new(x, Affine::var(i).scaled(4).plus(&Affine::var(j)));
        let r = b.sload(addr.clone());
        let r2 = b.sbin(BinOp::Mul, r, 2.0);
        b.sstore(r2, addr);
        b.end_for();
        b.end_for();
        let f = b.finish();
        assert_eq!(f.body.len(), 1);
        match &f.body[0] {
            CStmt::For { body, .. } => match &body[0] {
                CStmt::For { body, step, .. } => {
                    assert_eq!(*step, 2);
                    assert_eq!(body.len(), 3);
                }
                other => panic!("expected inner for, got {other:?}"),
            },
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn if_else_blocks() {
        let mut b = FunctionBuilder::new("f", 1);
        let i = b.begin_for(0, 4, 1);
        b.begin_if(Cond::new(Affine::var(i), CmpOp::Lt, Affine::constant(2)));
        b.smov(1.0);
        b.begin_else();
        b.smov(2.0);
        b.smov(3.0);
        b.end_if();
        b.end_for();
        let f = b.finish();
        match &f.body[0] {
            CStmt::For { body, .. } => match &body[0] {
                CStmt::If { then_, else_, .. } => {
                    assert_eq!(then_.len(), 1);
                    assert_eq!(else_.len(), 2);
                }
                other => panic!("expected if, got {other:?}"),
            },
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "unclosed loop")]
    fn unbalanced_blocks_panic() {
        let mut b = FunctionBuilder::new("f", 1);
        b.begin_for(0, 4, 1);
        let _ = b.finish();
    }

    #[test]
    fn params_and_locals_split() {
        let mut b = FunctionBuilder::new("f", 4);
        b.buffer("a", 8, BufKind::ParamIn);
        b.buffer("t", 8, BufKind::Local);
        b.buffer("c", 8, BufKind::ParamOut);
        let f = b.finish();
        let params: Vec<_> = f.params().map(|(_, d)| d.name.clone()).collect();
        assert_eq!(params, vec!["a", "c"]);
        let locals: Vec<_> = f.locals().map(|(_, d)| d.name.clone()).collect();
        assert_eq!(locals, vec!["t"]);
    }

    #[test]
    fn instr_visitation_counts() {
        let mut b = FunctionBuilder::new("f", 2);
        let x = b.buffer("x", 4, BufKind::ParamInOut);
        b.begin_for(0, 2, 1);
        let v = b.vload_contig(MemRef::new(x, 0));
        b.vstore_contig(v, MemRef::new(x, 2));
        b.end_for();
        let f = b.finish();
        let mut n = 0;
        f.for_each_instr(&mut |_| n += 1);
        assert_eq!(n, 2);
        assert_eq!(f.static_instr_count(), 2);
    }
}
