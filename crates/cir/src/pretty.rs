//! Human-readable C-IR dumps (for debugging, tests, and listings).

use crate::func::{CStmt, Function};
use crate::instr::Instr;
use std::fmt::Write as _;

/// Render one instruction.
pub fn instr_to_string(i: &Instr) -> String {
    fn lanes_str(lanes: &[Option<i64>]) -> String {
        let inner: Vec<String> = lanes
            .iter()
            .map(|l| match l {
                Some(v) => v.to_string(),
                None => "_".to_string(),
            })
            .collect();
        format!("[{}]", inner.join(","))
    }
    match i {
        Instr::SLoad { dst, src } => format!("{dst} = load {src}"),
        Instr::SStore { src, dst } => format!("store {src} -> {dst}"),
        Instr::SBin { op, dst, a, b } => format!("{dst} = {op} {a}, {b}"),
        Instr::SSqrt { dst, a } => format!("{dst} = sqrt {a}"),
        Instr::SFma { kind, dst, a, b, c } => format!("{dst} = {kind} {a}, {b}, {c}"),
        Instr::SMov { dst, a } => format!("{dst} = {a}"),
        Instr::VLoad { dst, base, lanes } => {
            format!("{dst} = vload {base} {}", lanes_str(lanes))
        }
        Instr::VStore { src, base, lanes } => {
            format!("vstore {src} -> {base} {}", lanes_str(lanes))
        }
        Instr::VMov { dst, src } => format!("{dst} = {src}"),
        Instr::VBin { op, dst, a, b } => format!("{dst} = v{op} {a}, {b}"),
        Instr::VFma { kind, dst, a, b, c } => format!("{dst} = v{kind} {a}, {b}, {c}"),
        Instr::VBroadcast { dst, src } => format!("{dst} = vbroadcast {src}"),
        Instr::VShuffle { dst, a, b, sel } => {
            let s: Vec<String> = sel.iter().map(|l| l.to_string()).collect();
            format!("{dst} = vshuffle {a}, {b} [{}]", s.join(","))
        }
        Instr::VBlend { dst, a, b, mask } => {
            let m: String = mask.iter().map(|&x| if x { '1' } else { '0' }).collect();
            format!("{dst} = vblend {a}, {b} [{m}]")
        }
        Instr::VExtract { dst, src, lane } => format!("{dst} = vextract {src}[{lane}]"),
        Instr::VReduceAdd { dst, src } => format!("{dst} = vreduce_add {src}"),
        Instr::Call { kernel, bufs, ints } => {
            let bs: Vec<String> = bufs.iter().map(|b| b.to_string()).collect();
            let is: Vec<String> = ints.iter().map(|v| v.to_string()).collect();
            format!("call {kernel}({}; {})", bs.join(","), is.join(","))
        }
    }
}

fn stmts_to_string(stmts: &[CStmt], indent: usize, out: &mut String) {
    for s in stmts {
        match s {
            CStmt::I(i) => {
                let _ = writeln!(out, "{:indent$}{}", "", instr_to_string(i), indent = indent);
            }
            CStmt::For { var, lo, hi, step, body } => {
                let _ = writeln!(
                    out,
                    "{:indent$}for ({var} = {lo}; {var} < {hi}; {var} += {step}) {{",
                    "",
                    indent = indent
                );
                stmts_to_string(body, indent + 2, out);
                let _ = writeln!(out, "{:indent$}}}", "", indent = indent);
            }
            CStmt::If { cond, then_, else_ } => {
                let _ = writeln!(out, "{:indent$}if ({cond}) {{", "", indent = indent);
                stmts_to_string(then_, indent + 2, out);
                if !else_.is_empty() {
                    let _ = writeln!(out, "{:indent$}}} else {{", "", indent = indent);
                    stmts_to_string(else_, indent + 2, out);
                }
                let _ = writeln!(out, "{:indent$}}}", "", indent = indent);
            }
        }
    }
}

/// Render a whole function.
pub fn function_to_string(f: &Function) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "func {} (nu={}) {{", f.name, f.width);
    for (id, b) in f.buffers.iter().enumerate() {
        let _ = writeln!(out, "  buf{} {} [{}] {:?}", id, b.name, b.len, b.kind);
    }
    stmts_to_string(&f.body, 2, &mut out);
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::{Affine, CmpOp, Cond};
    use crate::func::{BufKind, FunctionBuilder};
    use crate::instr::{BinOp, MemRef};

    #[test]
    fn dump_contains_structure() {
        let mut b = FunctionBuilder::new("demo", 4);
        let x = b.buffer("x", 16, BufKind::ParamInOut);
        let i = b.begin_for(0, 16, 4);
        b.begin_if(Cond::new(Affine::var(i), CmpOp::Lt, Affine::constant(8)));
        let v = b.vload_contig(MemRef::new(x, Affine::var(i)));
        let w = b.vbin(BinOp::Add, v, v);
        b.vstore_contig(w, MemRef::new(x, Affine::var(i)));
        b.end_if();
        b.end_for();
        let f = b.finish();
        let text = function_to_string(&f);
        assert!(text.contains("for (i0 = 0; i0 < 16; i0 += 4)"), "{text}");
        assert!(text.contains("if (i0 < 8)"), "{text}");
        assert!(text.contains("v0 = vload buf0[i0] [0,1,2,3]"), "{text}");
        assert!(text.contains("v1 = vadd v0, v0"), "{text}");
        assert!(text.contains("vstore v1 -> buf0[i0] [0,1,2,3]"), "{text}");
    }

    #[test]
    fn masked_lane_rendering() {
        let mut b = FunctionBuilder::new("m", 4);
        let x = b.buffer("x", 4, BufKind::ParamIn);
        b.vload(MemRef::new(x, 0), vec![Some(0), Some(1), None, None]);
        let f = b.finish();
        let text = function_to_string(&f);
        assert!(text.contains("[0,1,_,_]"), "{text}");
    }
}
