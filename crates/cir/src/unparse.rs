//! Unparsing C-IR into single-source C99 with vector intrinsics.
//!
//! This is SLinGen's final output format: one self-contained C function,
//! specialized for a [`Target`]. Emission is split into per-ISA emitters
//! behind one dispatch ([`to_c_for`]): plain scalar C for ν = 1, the
//! `_mm_*` 128-bit family for ν = 2, and the `_mm256_*` 256-bit family
//! for ν = 4 — with the target's *capabilities* deciding which intrinsic
//! forms are legal (masked loads/stores, immediate blends, fused
//! multiply-add via `fma()` / `_mm_fmadd_pd` / `_mm256_fmadd_pd`).
//!
//! Lane-mapped loads/stores emit the cheapest matching intrinsic the
//! target supports: contiguous full-width maps become
//! `loadu_pd`/`storeu_pd`, contiguous prefixes become masked accesses
//! (when the target has them), and anything else falls back to
//! per-element code — exactly the Loader/Storer specialization the paper
//! describes. General shuffles try `blend_pd` and in-lane `shuffle_pd`
//! patterns before the generic element path, again capability-gated.

use crate::affine::Affine;
use crate::func::{BufKind, CStmt, Function};
use crate::instr::{BinOp, FmaKind, Instr, LaneSel, MemRef, SOperand};
use crate::target::Target;

/// Render `f` for the historical default target ([`Target::Avx2`]).
pub fn to_c(f: &Function) -> String {
    to_c_for(f, Target::Avx2)
}

/// Render `f` as a self-contained C compilation unit for `target`.
///
/// The function's width ν selects the emitter family (scalar / `_mm_*` /
/// `_mm256_*`); the target's capabilities gate masked memory ops, blends,
/// and FMA forms. A `Function` containing [`Instr::SFma`]/[`Instr::VFma`]
/// on a non-FMA target is still rendered (as an unfused mul+add), but the
/// pipeline only produces fused instructions for FMA targets.
///
/// The function's width must be one of [`Target::widths`] — a ν = 4
/// function has no scalar/SSE2 rendering (re-generate at a narrower ν
/// instead); debug builds assert this.
pub fn to_c_for(f: &Function, target: Target) -> String {
    let mut out = String::new();
    emit_unit(f, target, &mut out);
    out
}

/// Digest of the exact bytes [`to_c_for`] would produce, without
/// materializing the string: `(hash, byte_len)`.
///
/// The tuner dedupes lowered variants by emitted-C identity; hashing the
/// unparse stream directly skips building (and growing) a multi-megabyte
/// `String` per representative. The hash is a function of the byte
/// *stream* alone — the internal word-folding carries partial words
/// across `write_str` boundaries — so it is insensitive to how the
/// emitter happens to chunk its writes, exactly like hashing the
/// materialized string.
pub fn digest_c_for(f: &Function, target: Target) -> (u64, usize) {
    let mut out = StreamDigest::default();
    emit_unit(f, target, &mut out);
    out.finish()
}

/// Configuration for [`to_c_harness`]: per-parameter initial data plus
/// the timing-loop shape.
pub struct HarnessOpts<'a> {
    /// Initial contents for each *parameter* buffer, aligned with the
    /// [`Function::params`] iteration order. Shorter vectors (or a
    /// shorter slice) zero-fill the remainder.
    pub inits: &'a [Vec<f64>],
    /// Untimed warm-up calls before the first sample.
    pub warmup: u32,
    /// Timing repetitions; the harness reports the median over these.
    pub reps: u32,
    /// Calls per repetition; each repetition keeps its minimum.
    pub inner: u32,
}

/// Render `f` plus a standalone wall-clock timing harness (`main`)
/// around it, as one self-contained C99 compilation unit.
///
/// The harness re-initializes every parameter buffer from a pristine
/// copy before each call (so in-place kernels like `potrf` time the
/// same work every iteration), calls the kernel through a `volatile`
/// function pointer (so the compiler can neither inline nor elide it),
/// and times each call with the TSC (serialized with `lfence`; a
/// `clock_gettime` fallback covers non-x86 hosts). The per-call
/// estimate is a median over `reps` repetitions of the minimum over
/// `inner` calls, with the measured back-to-back timer overhead
/// subtracted. The result is printed as one parseable line:
///
/// ```text
/// SLINGEN_MEASURE cycles <f> ns <f> tsc_hz <f> reps <n>
/// SLINGEN_CHECK <checksum of output buffers>
/// ```
pub fn to_c_harness(f: &Function, target: Target, opts: &HarnessOpts<'_>) -> String {
    let mut out = String::new();
    // `clock_gettime`/`CLOCK_MONOTONIC` are POSIX, hidden under a strict
    // `-std=c99`; the feature macro must precede the first libc include,
    // so it goes above the kernel unit, not in the harness section.
    out.push_str("#define _POSIX_C_SOURCE 199309L\n");
    emit_unit(f, target, &mut out);
    emit_harness(f, opts, &mut out);
    out
}

fn emit_harness(f: &Function, opts: &HarnessOpts<'_>, out: &mut String) {
    use std::fmt::Write;
    let params: Vec<_> = f.params().collect();
    let _ = writeln!(out);
    let _ = writeln!(out, "#include <stdio.h>");
    let _ = writeln!(out, "#include <stdlib.h>");
    let _ = writeln!(out, "#include <string.h>");
    let _ = writeln!(out, "#include <time.h>");
    let _ = writeln!(out, "#if defined(__x86_64__) || defined(__i386__)");
    let _ = writeln!(out, "#include <x86intrin.h>");
    let _ = writeln!(out, "#define SLINGEN_TSC 1");
    let _ = writeln!(out, "static unsigned long long slingen_now(void) {{");
    let _ = writeln!(out, "  _mm_lfence();");
    let _ = writeln!(out, "  return __rdtsc();");
    let _ = writeln!(out, "}}");
    let _ = writeln!(out, "#else");
    let _ = writeln!(out, "#define SLINGEN_TSC 0");
    let _ = writeln!(out, "static unsigned long long slingen_now(void) {{");
    let _ = writeln!(out, "  struct timespec ts;");
    let _ = writeln!(out, "  clock_gettime(CLOCK_MONOTONIC, &ts);");
    let _ = writeln!(
        out,
        "  return (unsigned long long)ts.tv_sec * 1000000000ull + (unsigned long long)ts.tv_nsec;"
    );
    let _ = writeln!(out, "}}");
    let _ = writeln!(out, "#endif");
    let _ = writeln!(out);

    // Working buffers plus a pristine copy of each; restore by memcpy
    // before every kernel call. Decimal literals with 17 significant
    // digits round-trip IEEE-754 doubles exactly.
    for (i, (_, b)) in params.iter().enumerate() {
        let len = b.len.max(1);
        let _ = writeln!(out, "static double slingen_buf{i}[{len}];");
        let init = opts.inits.get(i);
        let has_data = init.is_some_and(|v| v.iter().any(|x| *x != 0.0));
        if has_data {
            let vals = init.unwrap();
            let _ = write!(out, "static const double slingen_ref{i}[{len}] = {{");
            for (j, v) in vals.iter().take(len).enumerate() {
                if j % 4 == 0 {
                    let _ = write!(out, "\n  ");
                }
                let _ = write!(out, "{v:.17e},");
            }
            let _ = writeln!(out, "\n}};");
        } else {
            let _ = writeln!(out, "static const double slingen_ref{i}[{len}];");
        }
    }
    let _ = writeln!(out);

    // The typedef mirrors the kernel signature so the volatile pointer
    // call type-checks exactly.
    let _ = write!(out, "typedef void (*slingen_fn_t)(");
    for (i, (_, b)) in params.iter().enumerate() {
        if i > 0 {
            let _ = write!(out, ", ");
        }
        let qual = if b.kind == BufKind::ParamIn { "const " } else { "" };
        let _ = write!(out, "{qual}double* restrict");
    }
    if params.is_empty() {
        let _ = write!(out, "void");
    }
    let _ = writeln!(out, ");");
    let _ = writeln!(out, "static volatile slingen_fn_t slingen_kernel = {};", f.name);
    let _ = writeln!(out);
    let _ = writeln!(out, "static void slingen_restore(void) {{");
    for i in 0..params.len() {
        let _ = writeln!(out, "  memcpy(slingen_buf{i}, slingen_ref{i}, sizeof slingen_buf{i});");
    }
    let _ = writeln!(out, "}}");
    let _ = writeln!(out);
    let _ = writeln!(out, "static int slingen_cmp(const void* a, const void* b) {{");
    let _ = writeln!(out, "  double x = *(const double*)a, y = *(const double*)b;");
    let _ = writeln!(out, "  return (x > y) - (x < y);");
    let _ = writeln!(out, "}}");
    let _ = writeln!(out);

    let args = (0..params.len()).map(|i| format!("slingen_buf{i}")).collect::<Vec<_>>().join(", ");
    let (warmup, reps, inner) = (opts.warmup.max(1), opts.reps.max(1), opts.inner.max(1));
    let _ = writeln!(out, "int main(void) {{");
    // TSC frequency against CLOCK_MONOTONIC over a ~10ms window, so
    // cycle estimates can be reported in nanoseconds too.
    let _ = writeln!(out, "  double tsc_hz = 1e9;");
    let _ = writeln!(out, "#if SLINGEN_TSC");
    let _ = writeln!(out, "  {{");
    let _ = writeln!(out, "    struct timespec a, b;");
    let _ = writeln!(out, "    clock_gettime(CLOCK_MONOTONIC, &a);");
    let _ = writeln!(out, "    unsigned long long t0 = slingen_now();");
    let _ = writeln!(out, "    long long ns = 0;");
    let _ = writeln!(out, "    do {{");
    let _ = writeln!(out, "      clock_gettime(CLOCK_MONOTONIC, &b);");
    let _ =
        writeln!(out, "      ns = (b.tv_sec - a.tv_sec) * 1000000000ll + (b.tv_nsec - a.tv_nsec);");
    let _ = writeln!(out, "    }} while (ns < 10000000ll);");
    let _ = writeln!(out, "    unsigned long long t1 = slingen_now();");
    let _ = writeln!(out, "    if (ns > 0) tsc_hz = (double)(t1 - t0) * 1e9 / (double)ns;");
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "#endif");
    // Timer overhead: minimum distance between back-to-back reads.
    let _ = writeln!(out, "  double overhead = 1e300;");
    let _ = writeln!(out, "  for (int i = 0; i < 1000; i++) {{");
    let _ = writeln!(out, "    unsigned long long a = slingen_now(), b = slingen_now();");
    let _ = writeln!(out, "    double d = (double)(b - a);");
    let _ = writeln!(out, "    if (d < overhead) overhead = d;");
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "  for (unsigned i = 0; i < {warmup}u; i++) {{");
    let _ = writeln!(out, "    slingen_restore();");
    let _ = writeln!(out, "    slingen_kernel({args});");
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "  static double samples[{reps}];");
    let _ = writeln!(out, "  for (unsigned r = 0; r < {reps}u; r++) {{");
    let _ = writeln!(out, "    double best = 1e300;");
    let _ = writeln!(out, "    for (unsigned i = 0; i < {inner}u; i++) {{");
    let _ = writeln!(out, "      slingen_restore();");
    let _ = writeln!(out, "      unsigned long long a = slingen_now();");
    let _ = writeln!(out, "      slingen_kernel({args});");
    let _ = writeln!(out, "      unsigned long long b = slingen_now();");
    let _ = writeln!(out, "      double d = (double)(b - a) - overhead;");
    let _ = writeln!(out, "      if (d < best) best = d;");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "    samples[r] = best > 0.0 ? best : 0.0;");
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "  qsort(samples, {reps}, sizeof(double), slingen_cmp);");
    let _ = write!(out, "  double med = ");
    if reps % 2 == 1 {
        let _ = writeln!(out, "samples[{}];", reps / 2);
    } else {
        let _ = writeln!(out, "0.5 * (samples[{}] + samples[{}]);", reps / 2 - 1, reps / 2);
    }
    let _ = writeln!(out, "  double ns = med * 1e9 / tsc_hz;");
    // Checksum over the output buffers keeps the final kernel results
    // observable (and lets the caller spot NaNs in the timed runs).
    let _ = writeln!(out, "  double sink = 0.0;");
    for (i, (_, b)) in params.iter().enumerate() {
        if b.kind != BufKind::ParamIn {
            let len = b.len.max(1);
            let _ =
                writeln!(out, "  for (unsigned i = 0; i < {len}u; i++) sink += slingen_buf{i}[i];");
        }
    }
    let _ = writeln!(
        out,
        "  printf(\"SLINGEN_MEASURE cycles %.17g ns %.17g tsc_hz %.17g reps {reps}\\n\", med, ns, tsc_hz);"
    );
    let _ = writeln!(out, "  printf(\"SLINGEN_CHECK %.17g\\n\", sink);");
    let _ = writeln!(out, "  return 0;");
    let _ = writeln!(out, "}}");
}

/// Streaming byte-stream hash implementing [`std::fmt::Write`].
///
/// FxHash-style word folding, but canonical over the byte stream:
/// partial words are buffered across writes, and the total length is
/// folded in at the end, so `digest(s)` depends only on the bytes of `s`.
#[derive(Default)]
struct StreamDigest {
    state: u64,
    pending: [u8; 8],
    npend: usize,
    len: usize,
}

impl StreamDigest {
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }

    fn push(&mut self, mut bytes: &[u8]) {
        self.len += bytes.len();
        if self.npend > 0 {
            let take = bytes.len().min(8 - self.npend);
            self.pending[self.npend..self.npend + take].copy_from_slice(&bytes[..take]);
            self.npend += take;
            bytes = &bytes[take..];
            if self.npend < 8 {
                return;
            }
            let w = u64::from_le_bytes(self.pending);
            self.mix(w);
            self.npend = 0;
        }
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        self.pending[..rest.len()].copy_from_slice(rest);
        self.npend = rest.len();
    }

    fn finish(mut self) -> (u64, usize) {
        if self.npend > 0 {
            self.pending[self.npend..].fill(0);
            let w = u64::from_le_bytes(self.pending);
            self.mix(w);
        }
        self.mix(self.len as u64);
        (self.state, self.len)
    }
}

impl std::fmt::Write for StreamDigest {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.push(s.as_bytes());
        Ok(())
    }
}

fn emit_unit<W: std::fmt::Write>(f: &Function, target: Target, out: &mut W) {
    debug_assert!(
        target.supports_width(f.width),
        "function width ν={} is not supported by target `{target}` (widths {:?})",
        f.width,
        target.widths()
    );
    let isa = VecIsa::for_width(target, f.width);
    let _ = writeln!(out, "/* generated by slingen (CGO'18 reproduction) */");
    let _ = writeln!(out, "#include <math.h>");
    if f.width > 1 {
        let _ = writeln!(out, "#include <immintrin.h>");
    }
    let _ = writeln!(out);
    let _ = write!(out, "void {}(", f.name);
    let mut first = true;
    for (_, b) in f.params() {
        if !first {
            let _ = write!(out, ", ");
        }
        first = false;
        let qual = if b.kind == BufKind::ParamIn { "const " } else { "" };
        let _ = write!(out, "{qual}double* restrict {}", c_ident(&b.name));
    }
    let _ = writeln!(out, ") {{");
    for (_, b) in f.locals() {
        let _ = writeln!(out, "  double {}[{}];", c_ident(&b.name), b.len.max(1));
    }
    if f.n_sregs > 0 {
        let names: Vec<String> = (0..f.n_sregs).map(|i| format!("s{i}")).collect();
        for chunk in names.chunks(16) {
            let _ = writeln!(out, "  double {};", chunk.join(", "));
        }
    }
    if f.n_vregs > 0 && f.width > 1 {
        let vt = isa.vtype;
        let names: Vec<String> = (0..f.n_vregs).map(|i| format!("v{i}")).collect();
        for chunk in names.chunks(12) {
            let _ = writeln!(out, "  {vt} {};", chunk.join(", "));
        }
    }
    emit_stmts(f, &isa, &f.body, 1, out);
    let _ = writeln!(out, "}}");
}

/// One vector-ISA emitter: an intrinsic family (`_mm_*` or `_mm256_*`)
/// plus the capability flags of the target it emits for. Scalar functions
/// (ν = 1) never consult it.
struct VecIsa {
    /// Intrinsic prefix: `_mm` (128-bit) or `_mm256` (256-bit).
    prefix: &'static str,
    /// The C vector type.
    vtype: &'static str,
    /// Masked loads/stores (`maskload_pd`/`maskstore_pd`) are legal.
    masked_mem: bool,
    /// Immediate blends (`blend_pd`) are legal.
    blend: bool,
    /// Fused multiply-add (`fmadd_pd`) is legal.
    fma: bool,
}

impl VecIsa {
    /// Dispatch: pick the emitter family for a function width under a
    /// target. ν = 1 uses the scalar paths (the returned family is inert).
    fn for_width(target: Target, width: usize) -> VecIsa {
        let (prefix, vtype) = match width {
            2 => ("_mm", "__m128d"),
            _ => ("_mm256", "__m256d"),
        };
        VecIsa {
            prefix,
            vtype,
            masked_mem: target.has_masked_mem(),
            blend: target.has_blend(),
            fma: target.has_fma(),
        }
    }

    /// `"{prefix}_{op}_pd"`, e.g. `_mm256_loadu_pd`.
    fn op(&self, name: &str) -> String {
        format!("{}_{}_pd", self.prefix, name)
    }

    fn mask_literal(&self, width: usize, active: usize) -> String {
        // AVX maskload masks: sign bit per 64-bit lane.
        let elems: Vec<&str> =
            (0..width).map(|i| if i < active { "-1LL" } else { "0LL" }).collect();
        match width {
            2 => format!("_mm_set_epi64x({}, {})", elems[1], elems[0]),
            _ => {
                format!("_mm256_set_epi64x({}, {}, {}, {})", elems[3], elems[2], elems[1], elems[0])
            }
        }
    }
}

fn c_ident(name: &str) -> String {
    let mut s: String =
        name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' }).collect();
    if s.is_empty() || s.chars().next().unwrap().is_ascii_digit() {
        s.insert(0, '_');
    }
    // avoid collisions with the register/loop-variable namespaces
    // (s0.., v0.., i0..) and the emitter's scratch arrays (_t, _ta, _tb)
    let reserved = {
        let mut cs = s.chars();
        match (cs.next(), s.len()) {
            (Some('s' | 'v' | 'i'), n) if n >= 2 && s[1..].bytes().all(|b| b.is_ascii_digit()) => {
                true
            }
            _ => s.starts_with("_t"),
        }
    };
    if reserved {
        s.push_str("_p");
    }
    s
}

fn aff(e: &Affine) -> String {
    e.to_string()
}

fn addr(f: &Function, m: &MemRef, extra: i64) -> String {
    let name = c_ident(&f.buffers[m.buf.0].name);
    let off = m.offset.offset(extra);
    if off.as_constant() == Some(0) {
        name
    } else {
        format!("({name} + {})", aff(&off))
    }
}

fn sop(s: &SOperand) -> String {
    match s {
        SOperand::Reg(r) => r.to_string(),
        SOperand::Imm(v) => fmt_imm(*v),
    }
}

fn fmt_imm(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{:.1}", v)
    } else {
        format!("{v:e}")
    }
}

fn binop_c(op: BinOp, a: &str, b: &str) -> String {
    let sym = match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
    };
    format!("{a} {sym} {b}")
}

fn vop_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
    }
}

/// Whether the lane map is `[Some(0), Some(1), ..]` over the full width.
fn contiguous_full(lanes: &[Option<i64>]) -> bool {
    lanes.iter().enumerate().all(|(i, l)| *l == Some(i as i64))
}

/// Whether the lane map is a contiguous prefix `[Some(0)..Some(k-1), None..]`.
fn contiguous_prefix(lanes: &[Option<i64>]) -> Option<usize> {
    let k = lanes.iter().take_while(|l| l.is_some()).count();
    if k == 0 || k == lanes.len() {
        return None;
    }
    if lanes[..k].iter().enumerate().all(|(i, l)| *l == Some(i as i64))
        && lanes[k..].iter().all(|l| l.is_none())
    {
        Some(k)
    } else {
        None
    }
}

fn emit_instr<W: std::fmt::Write>(f: &Function, isa: &VecIsa, i: &Instr, ind: usize, out: &mut W) {
    let pad = "  ".repeat(ind);
    let w = f.width;
    match i {
        Instr::SLoad { dst, src } => {
            let _ = writeln!(out, "{pad}{dst} = *{};", addr(f, src, 0));
        }
        Instr::SStore { src, dst } => {
            let _ = writeln!(out, "{pad}*{} = {};", addr(f, dst, 0), sop(src));
        }
        Instr::SBin { op, dst, a, b } => {
            let _ = writeln!(out, "{pad}{dst} = {};", binop_c(*op, &sop(a), &sop(b)));
        }
        Instr::SSqrt { dst, a } => {
            let _ = writeln!(out, "{pad}{dst} = sqrt({});", sop(a));
        }
        Instr::SFma { kind, dst, a, b, c } => {
            // C99 math.h fma(): fused, matching the VM's mul_add
            // semantics; the sub forms are sign-flipped operands (exact)
            let (a, b, c) = (sop(a), sop(b), sop(c));
            let expr = match kind {
                FmaKind::MulAdd => format!("fma({a}, {b}, {c})"),
                FmaKind::MulSub => format!("fma({a}, {b}, -({c}))"),
                FmaKind::NegMulAdd => format!("fma(-({a}), {b}, {c})"),
            };
            let _ = writeln!(out, "{pad}{dst} = {expr};");
        }
        Instr::SMov { dst, a } => {
            let _ = writeln!(out, "{pad}{dst} = {};", sop(a));
        }
        Instr::VLoad { dst, base, lanes } => {
            if w == 1 {
                let off = lanes[0].unwrap_or(0);
                let _ = writeln!(out, "{pad}v{} = *{};", dst.0, addr(f, base, off));
            } else if contiguous_full(lanes) {
                let _ = writeln!(out, "{pad}{dst} = {}({});", isa.op("loadu"), addr(f, base, 0));
            } else if let Some(k) = contiguous_prefix(lanes).filter(|_| isa.masked_mem) {
                let _ = writeln!(
                    out,
                    "{pad}{dst} = {}({}, {});",
                    isa.op("maskload"),
                    addr(f, base, 0),
                    isa.mask_literal(w, k)
                );
            } else {
                // general gather: set from highest lane to lowest
                let elems: Vec<String> = (0..w)
                    .rev()
                    .map(|lane| match lanes[lane] {
                        Some(off) => format!("*{}", addr(f, base, off)),
                        None => "0.0".to_string(),
                    })
                    .collect();
                let _ = writeln!(out, "{pad}{dst} = {}({});", isa.op("set"), elems.join(", "));
            }
        }
        Instr::VStore { src, base, lanes } => {
            if w == 1 {
                if let Some(off) = lanes[0] {
                    let _ = writeln!(out, "{pad}*{} = v{};", addr(f, base, off), src.0);
                }
            } else if contiguous_full(lanes) {
                let _ = writeln!(out, "{pad}{}({}, {src});", isa.op("storeu"), addr(f, base, 0));
            } else if let Some(k) = contiguous_prefix(lanes).filter(|_| isa.masked_mem) {
                let _ = writeln!(
                    out,
                    "{pad}{}({}, {}, {src});",
                    isa.op("maskstore"),
                    addr(f, base, 0),
                    isa.mask_literal(w, k)
                );
            } else {
                // general scatter: spill to a small aligned temp, then copy.
                let _ = writeln!(out, "{pad}{{ double _t[{w}]; {}(_t, {src});", isa.op("storeu"));
                for (lane, l) in lanes.iter().enumerate() {
                    if let Some(off) = l {
                        let _ = writeln!(out, "{pad}  *{} = _t[{lane}];", addr(f, base, *off));
                    }
                }
                let _ = writeln!(out, "{pad}}}");
            }
        }
        Instr::VMov { dst, src } => {
            if w == 1 {
                let _ = writeln!(out, "{pad}v{} = v{};", dst.0, src.0);
            } else {
                let _ = writeln!(out, "{pad}{dst} = {src};");
            }
        }
        Instr::VBin { op, dst, a, b } => {
            if w == 1 {
                let _ = writeln!(
                    out,
                    "{pad}v{} = {};",
                    dst.0,
                    binop_c(*op, &format!("v{}", a.0), &format!("v{}", b.0))
                );
            } else {
                let _ = writeln!(out, "{pad}{dst} = {}({a}, {b});", isa.op(vop_name(*op)));
            }
        }
        Instr::VFma { kind, dst, a, b, c } => {
            if w == 1 {
                let expr = match kind {
                    FmaKind::MulAdd => format!("fma(v{}, v{}, v{})", a.0, b.0, c.0),
                    FmaKind::MulSub => format!("fma(v{}, v{}, -v{})", a.0, b.0, c.0),
                    FmaKind::NegMulAdd => format!("fma(-v{}, v{}, v{})", a.0, b.0, c.0),
                };
                let _ = writeln!(out, "{pad}v{} = {expr};", dst.0);
            } else if isa.fma {
                let _ =
                    writeln!(out, "{pad}{dst} = {}({a}, {b}, {c});", isa.op(kind.intrinsic_stem()));
            } else {
                // non-FMA target: legal but unfused (differs by <= 1 ulp)
                let prod = format!("{}({a}, {b})", isa.op("mul"));
                let expr = match kind {
                    FmaKind::MulAdd => format!("{}({prod}, {c})", isa.op("add")),
                    FmaKind::MulSub => format!("{}({prod}, {c})", isa.op("sub")),
                    FmaKind::NegMulAdd => format!("{}({c}, {prod})", isa.op("sub")),
                };
                let _ = writeln!(out, "{pad}{dst} = {expr};");
            }
        }
        Instr::VBroadcast { dst, src } => {
            if w == 1 {
                let _ = writeln!(out, "{pad}v{} = {};", dst.0, sop(src));
            } else {
                let _ = writeln!(out, "{pad}{dst} = {}({});", isa.op("set1"), sop(src));
            }
        }
        Instr::VShuffle { dst, a, b, sel } => {
            emit_shuffle(isa, *dst, *a, *b, sel, w, &pad, out);
        }
        Instr::VBlend { dst, a, b, mask } => {
            if w == 1 {
                let src = if mask[0] { b } else { a };
                let _ = writeln!(out, "{pad}v{} = v{};", dst.0, src.0);
            } else if isa.blend {
                let imm: usize = mask.iter().enumerate().map(|(i, &m)| usize::from(m) << i).sum();
                let _ = writeln!(out, "{pad}{dst} = {}({a}, {b}, {imm});", isa.op("blend"));
            } else {
                // no immediate blend on this target: general element path
                let sel: Vec<LaneSel> = mask
                    .iter()
                    .enumerate()
                    .map(|(i, &m)| if m { LaneSel::B(i) } else { LaneSel::A(i) })
                    .collect();
                emit_shuffle_elements(isa, *dst, *a, *b, &sel, w, &pad, out);
            }
        }
        Instr::VExtract { dst, src, lane } => {
            if w == 1 {
                let _ = writeln!(out, "{pad}{dst} = v{};", src.0);
            } else {
                // portable extract through a spill; compilers turn this into
                // vextractf128/unpck sequences.
                let _ = writeln!(
                    out,
                    "{pad}{{ double _t[{w}]; {}(_t, {src}); {dst} = _t[{lane}]; }}",
                    isa.op("storeu")
                );
            }
        }
        Instr::VReduceAdd { dst, src } => {
            if w == 1 {
                let _ = writeln!(out, "{pad}{dst} = v{};", src.0);
            } else {
                let sum = (0..w).map(|i| format!("_t[{i}]")).collect::<Vec<_>>().join(" + ");
                let _ = writeln!(
                    out,
                    "{pad}{{ double _t[{w}]; {}(_t, {src}); {dst} = {sum}; }}",
                    isa.op("storeu")
                );
            }
        }
        Instr::Call { kernel, bufs, ints } => {
            let mut args: Vec<String> =
                bufs.iter().map(|b| c_ident(&f.buffers[b.0].name)).collect();
            args.extend(ints.iter().map(|v| v.to_string()));
            let _ = writeln!(out, "{pad}{kernel}({});", args.join(", "));
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn emit_shuffle<W: std::fmt::Write>(
    isa: &VecIsa,
    dst: crate::instr::VReg,
    a: crate::instr::VReg,
    b: crate::instr::VReg,
    sel: &[LaneSel],
    w: usize,
    pad: &str,
    out: &mut W,
) {
    if w == 1 {
        let expr = match sel[0] {
            LaneSel::A(_) => format!("v{}", a.0),
            LaneSel::B(_) => format!("v{}", b.0),
            LaneSel::Zero => "0.0".to_string(),
        };
        let _ = writeln!(out, "{pad}v{} = {expr};", dst.0);
        return;
    }
    // Blend pattern: lane i takes lane i of either source.
    let is_blend = sel.iter().enumerate().all(|(i, s)| match s {
        LaneSel::A(j) | LaneSel::B(j) => *j == i,
        LaneSel::Zero => true,
    });
    if isa.blend && is_blend && !sel.iter().any(|s| matches!(s, LaneSel::Zero)) {
        let imm: usize =
            sel.iter().enumerate().map(|(i, s)| usize::from(matches!(s, LaneSel::B(_))) << i).sum();
        let _ = writeln!(out, "{pad}{dst} = {}({a}, {b}, {imm});", isa.op("blend"));
        return;
    }
    emit_shuffle_elements(isa, dst, a, b, sel, w, pad, out);
}

/// General shuffle path: spill both sources, gather elements. Real AVX
/// needs a permute2f128/shuffle_pd pair here; the element path keeps the
/// emitted C portable while the cost model still charges one shuffle
/// issue.
#[allow(clippy::too_many_arguments)]
fn emit_shuffle_elements<W: std::fmt::Write>(
    isa: &VecIsa,
    dst: crate::instr::VReg,
    a: crate::instr::VReg,
    b: crate::instr::VReg,
    sel: &[LaneSel],
    w: usize,
    pad: &str,
    out: &mut W,
) {
    let elems: Vec<String> = (0..w)
        .rev()
        .map(|lane| match sel[lane] {
            LaneSel::A(j) => format!("_ta[{j}]"),
            LaneSel::B(j) => format!("_tb[{j}]"),
            LaneSel::Zero => "0.0".to_string(),
        })
        .collect();
    let st = isa.op("storeu");
    let _ = writeln!(
        out,
        "{pad}{{ double _ta[{w}], _tb[{w}]; {st}(_ta, {a}); {st}(_tb, {b}); {dst} = {}({}); }}",
        isa.op("set"),
        elems.join(", ")
    );
}

fn emit_stmts<W: std::fmt::Write>(
    f: &Function,
    isa: &VecIsa,
    stmts: &[CStmt],
    ind: usize,
    out: &mut W,
) {
    let pad = "  ".repeat(ind);
    for s in stmts {
        match s {
            CStmt::I(i) => emit_instr(f, isa, i, ind, out),
            CStmt::For { var, lo, hi, step, body } => {
                let _ = writeln!(
                    out,
                    "{pad}for (int {var} = {}; {var} < {}; {var} += {step}) {{",
                    aff(lo),
                    aff(hi)
                );
                emit_stmts(f, isa, body, ind + 1, out);
                let _ = writeln!(out, "{pad}}}");
            }
            CStmt::If { cond, then_, else_ } => {
                let _ = writeln!(out, "{pad}if ({} {} {}) {{", cond.lhs, cond.op, cond.rhs);
                emit_stmts(f, isa, then_, ind + 1, out);
                if !else_.is_empty() {
                    let _ = writeln!(out, "{pad}}} else {{");
                    emit_stmts(f, isa, else_, ind + 1, out);
                }
                let _ = writeln!(out, "{pad}}}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{BufKind, FunctionBuilder};
    use crate::instr::BinOp;

    /// `digest_c_for` must equal the digest of the materialized string fed
    /// to the same hash in arbitrary chunkings — i.e. the streaming hash is
    /// canonical over the byte stream, not the emitter's write pattern.
    fn assert_digest_matches(f: &Function, target: Target) {
        let c = to_c_for(f, target);
        let streamed = digest_c_for(f, target);
        for chunk in [1usize, 3, 7, 8, 64, c.len().max(1)] {
            let mut d = StreamDigest::default();
            for piece in c.as_bytes().chunks(chunk) {
                d.push(piece);
            }
            assert_eq!(d.finish(), streamed, "chunk size {chunk}");
        }
        assert_eq!(streamed.1, c.len());
    }

    #[test]
    fn emits_avx_for_width4() {
        let mut b = FunctionBuilder::new("kernel", 4);
        let x = b.buffer("x", 8, BufKind::ParamIn);
        let y = b.buffer("y", 8, BufKind::ParamInOut);
        let vx = b.vload_contig(MemRef::new(x, 0));
        let vy = b.vload_contig(MemRef::new(y, 0));
        let s = b.vbin(BinOp::Add, vx, vy);
        b.vstore_contig(s, MemRef::new(y, 0));
        let c = to_c(&b.finish());
        assert!(c.contains("#include <immintrin.h>"), "{c}");
        assert!(c.contains("void kernel(const double* restrict x, double* restrict y)"), "{c}");
        assert!(c.contains("_mm256_loadu_pd(x)"), "{c}");
        assert!(c.contains("_mm256_add_pd(v0, v1)"), "{c}");
        assert!(c.contains("_mm256_storeu_pd(y, v2)"), "{c}");
    }

    #[test]
    fn digest_matches_materialized_string() {
        let mut b = FunctionBuilder::new("kernel", 4);
        let x = b.buffer("x", 8, BufKind::ParamIn);
        let y = b.buffer("y", 8, BufKind::ParamInOut);
        let vx = b.vload_contig(MemRef::new(x, 0));
        let vy = b.vload_contig(MemRef::new(y, 0));
        let s = b.vbin(BinOp::Add, vx, vy);
        b.vstore_contig(s, MemRef::new(y, 0));
        let f = b.finish();
        assert_digest_matches(&f, Target::Avx2);

        let mut b = FunctionBuilder::new("lp", 1);
        let x = b.buffer("x", 16, BufKind::ParamInOut);
        let i = b.begin_for(0, 16, 1);
        let r = b.sload(MemRef::new(x, Affine::var(i)));
        b.sstore(r, MemRef::new(x, Affine::var(i)));
        b.end_for();
        let f = b.finish();
        assert_digest_matches(&f, Target::Scalar);
    }

    #[test]
    fn emits_masked_access_for_prefix_lanes() {
        let mut b = FunctionBuilder::new("edge", 4);
        let x = b.buffer("x", 3, BufKind::ParamInOut);
        let v = b.vload(MemRef::new(x, 0), vec![Some(0), Some(1), Some(2), None]);
        b.vstore(v, MemRef::new(x, 0), vec![Some(0), Some(1), Some(2), None]);
        let c = to_c(&b.finish());
        assert!(c.contains("_mm256_maskload_pd"), "{c}");
        assert!(c.contains("_mm256_maskstore_pd"), "{c}");
    }

    #[test]
    fn emits_blend_for_blend_patterns() {
        let mut b = FunctionBuilder::new("bl", 4);
        let v0 = b.vbroadcast(1.0);
        let v1 = b.vbroadcast(2.0);
        b.vblend(v0, v1, vec![false, true, true, false]);
        let c = to_c(&b.finish());
        assert!(c.contains("_mm256_blend_pd(v0, v1, 6)"), "{c}");
    }

    #[test]
    fn scalar_width_emits_plain_c() {
        let mut b = FunctionBuilder::new("sc", 1);
        let x = b.buffer("x", 2, BufKind::ParamInOut);
        let r = b.sload(MemRef::new(x, 0));
        let q = b.sbin(BinOp::Div, r, 3.0);
        let s = b.ssqrt(q);
        b.sstore(s, MemRef::new(x, 1));
        let c = to_c(&b.finish());
        assert!(!c.contains("immintrin"), "{c}");
        assert!(c.contains("s0 = *x;"), "{c}");
        assert!(c.contains("s1 = s0 / 3.0;"), "{c}");
        assert!(c.contains("s2 = sqrt(s1);"), "{c}");
        assert!(c.contains("*(x + 1) = s2;"), "{c}");
    }

    #[test]
    fn loops_and_ifs_render() {
        let mut b = FunctionBuilder::new("lp", 1);
        let x = b.buffer("x", 16, BufKind::ParamInOut);
        let i = b.begin_for(0, 16, 1);
        let r = b.sload(MemRef::new(x, Affine::var(i)));
        b.sstore(r, MemRef::new(x, Affine::var(i)));
        b.end_for();
        let c = to_c(&b.finish());
        assert!(c.contains("for (int i0 = 0; i0 < 16; i0 += 1) {"), "{c}");
        assert!(c.contains("*(x + i0)"), "{c}");
    }

    #[test]
    fn fma_forms_per_target() {
        use crate::instr::FmaKind;
        let make = |width: usize, kind: FmaKind| {
            let mut b = FunctionBuilder::new("fk", width);
            let y = b.buffer("y", 8, BufKind::ParamInOut);
            if width == 1 {
                let a = b.sload(MemRef::new(y, 0));
                let r = b.sfma(kind, a, 2.0, 3.0);
                b.sstore(r, MemRef::new(y, 1));
            } else {
                let va = b.vload_contig(MemRef::new(y, 0));
                let r = b.vfma(kind, va, va, va);
                b.vstore_contig(r, MemRef::new(y, 0));
            }
            b.finish()
        };
        // scalar fma() regardless of target (C99 math.h)
        let c = to_c_for(&make(1, FmaKind::MulAdd), Target::Avx2Fma);
        assert!(c.contains("s1 = fma(s0, 2.0, 3.0);"), "{c}");
        let c = to_c_for(&make(1, FmaKind::NegMulAdd), Target::Avx2Fma);
        assert!(c.contains("s1 = fma(-(s0), 2.0, 3.0);"), "{c}");
        // 256-bit fused forms on the FMA target
        let c = to_c_for(&make(4, FmaKind::MulAdd), Target::Avx2Fma);
        assert!(c.contains("_mm256_fmadd_pd(v0, v0, v0)"), "{c}");
        let c = to_c_for(&make(4, FmaKind::NegMulAdd), Target::Avx2Fma);
        assert!(c.contains("_mm256_fnmadd_pd(v0, v0, v0)"), "{c}");
        let c = to_c_for(&make(4, FmaKind::MulSub), Target::Avx2Fma);
        assert!(c.contains("_mm256_fmsub_pd(v0, v0, v0)"), "{c}");
        // 128-bit fused form
        let c = to_c_for(&make(2, FmaKind::MulAdd), Target::Avx2Fma);
        assert!(c.contains("_mm_fmadd_pd(v0, v0, v0)"), "{c}");
        // defensive unfused rendering on a non-FMA target
        let c = to_c_for(&make(4, FmaKind::MulAdd), Target::Avx2);
        assert!(c.contains("_mm256_add_pd(_mm256_mul_pd(v0, v0), v0)"), "{c}");
        let c = to_c_for(&make(4, FmaKind::NegMulAdd), Target::Avx2);
        assert!(c.contains("_mm256_sub_pd(v0, _mm256_mul_pd(v0, v0))"), "{c}");
    }

    #[test]
    fn sse2_target_avoids_masked_and_blend_intrinsics() {
        let mut b = FunctionBuilder::new("edge2", 2);
        let x = b.buffer("x", 3, BufKind::ParamInOut);
        let v = b.vload(MemRef::new(x, 0), vec![Some(0), None]);
        let v2 = b.vbroadcast(2.0);
        let bl = b.vblend(v, v2, vec![false, true]);
        b.vstore(bl, MemRef::new(x, 0), vec![Some(0), None]);
        let c = to_c_for(&b.finish(), Target::Sse2);
        assert!(!c.contains("maskload"), "{c}");
        assert!(!c.contains("maskstore"), "{c}");
        assert!(!c.contains("_mm_blend_pd"), "{c}");
        assert!(c.contains("_mm_set_pd"), "{c}");
        // the same function on the AVX2 target uses the 128-bit AVX forms
        let mut b = FunctionBuilder::new("edge2", 2);
        let x = b.buffer("x", 3, BufKind::ParamInOut);
        let v = b.vload(MemRef::new(x, 0), vec![Some(0), None]);
        let v2 = b.vbroadcast(2.0);
        let bl = b.vblend(v, v2, vec![false, true]);
        b.vstore(bl, MemRef::new(x, 0), vec![Some(0), None]);
        let c = to_c_for(&b.finish(), Target::Avx2);
        assert!(c.contains("_mm_maskload_pd"), "{c}");
        assert!(c.contains("_mm_blend_pd"), "{c}");
    }
}
