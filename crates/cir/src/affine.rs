//! Affine arithmetic over loop induction variables.
//!
//! C-IR memory offsets, loop bounds, and `If` conditions are affine
//! expressions `c₀ + Σ cᵢ·vᵢ` where each `vᵢ` is a loop variable. Keeping
//! them symbolic is what lets the unroller and the load/store analysis
//! resolve addresses exactly.

use std::collections::BTreeMap;
use std::fmt;

/// A loop induction variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopVar(pub usize);

impl fmt::Display for LoopVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// An affine expression `constant + Σ coeff·var`.
///
/// ```
/// use slingen_cir::{Affine, LoopVar};
/// let i = LoopVar(0);
/// let e = Affine::var(i).scaled(4).plus(&Affine::constant(3));
/// assert_eq!(e.eval(&|_| 2), 11);
/// assert_eq!(e.substitute(i, 5), Affine::constant(23));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Affine {
    constant: i64,
    /// Sorted by variable; zero coefficients are never stored.
    terms: BTreeMap<LoopVar, i64>,
}

impl Affine {
    /// The constant expression `c`.
    pub fn constant(c: i64) -> Affine {
        Affine { constant: c, terms: BTreeMap::new() }
    }

    /// The expression `v`.
    pub fn var(v: LoopVar) -> Affine {
        let mut terms = BTreeMap::new();
        terms.insert(v, 1);
        Affine { constant: 0, terms }
    }

    /// The constant zero.
    pub fn zero() -> Affine {
        Affine::constant(0)
    }

    /// `self + other`.
    pub fn plus(&self, other: &Affine) -> Affine {
        let mut out = self.clone();
        out.constant += other.constant;
        for (v, c) in &other.terms {
            let e = out.terms.entry(*v).or_insert(0);
            *e += c;
            if *e == 0 {
                out.terms.remove(v);
            }
        }
        out
    }

    /// `self - other`.
    pub fn minus(&self, other: &Affine) -> Affine {
        self.plus(&other.scaled(-1))
    }

    /// `self * k`.
    pub fn scaled(&self, k: i64) -> Affine {
        if k == 0 {
            return Affine::zero();
        }
        Affine {
            constant: self.constant * k,
            terms: self.terms.iter().map(|(v, c)| (*v, c * k)).collect(),
        }
    }

    /// `self + c`.
    pub fn offset(&self, c: i64) -> Affine {
        let mut out = self.clone();
        out.constant += c;
        out
    }

    /// Replace `var` with the constant `value`.
    pub fn substitute(&self, var: LoopVar, value: i64) -> Affine {
        match self.terms.get(&var) {
            None => self.clone(),
            Some(c) => {
                let mut out = self.clone();
                out.terms.remove(&var);
                out.constant += c * value;
                out
            }
        }
    }

    /// Replace `var` with the constant `value` without reallocating: the
    /// term map is edited in place (the unroller's per-copy rewrite).
    pub fn substitute_in_place(&mut self, var: LoopVar, value: i64) {
        if let Some(c) = self.terms.remove(&var) {
            self.constant += c * value;
        }
    }

    /// Evaluate with an environment mapping variables to values.
    pub fn eval(&self, env: &impl Fn(LoopVar) -> i64) -> i64 {
        self.constant + self.terms.iter().map(|(v, c)| c * env(*v)).sum::<i64>()
    }

    /// The constant value, if no variables remain.
    pub fn as_constant(&self) -> Option<i64> {
        if self.terms.is_empty() {
            Some(self.constant)
        } else {
            None
        }
    }

    /// Whether the expression mentions `var`.
    pub fn uses(&self, var: LoopVar) -> bool {
        self.terms.contains_key(&var)
    }

    /// The variables mentioned.
    pub fn vars(&self) -> impl Iterator<Item = LoopVar> + '_ {
        self.terms.keys().copied()
    }

    /// The constant part.
    pub fn constant_part(&self) -> i64 {
        self.constant
    }
}

impl From<i64> for Affine {
    fn from(c: i64) -> Affine {
        Affine::constant(c)
    }
}

impl From<LoopVar> for Affine {
    fn from(v: LoopVar) -> Affine {
        Affine::var(v)
    }
}

impl fmt::Display for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        for (v, c) in &self.terms {
            if wrote {
                if *c >= 0 {
                    write!(f, " + ")?;
                } else {
                    write!(f, " - ")?;
                }
            } else if *c < 0 {
                write!(f, "-")?;
            }
            let a = c.abs();
            if a == 1 {
                write!(f, "{v}")?;
            } else {
                write!(f, "{a}*{v}")?;
            }
            wrote = true;
        }
        if !wrote {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

/// Comparison operators for affine conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

impl CmpOp {
    /// Apply the comparison to concrete values.
    pub fn holds(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Gt => lhs > rhs,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
        })
    }
}

/// An affine condition `lhs op rhs` guarding an `If`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cond {
    /// Left-hand side.
    pub lhs: Affine,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand side.
    pub rhs: Affine,
}

impl Cond {
    /// Construct a condition.
    pub fn new(lhs: impl Into<Affine>, op: CmpOp, rhs: impl Into<Affine>) -> Cond {
        Cond { lhs: lhs.into(), op, rhs: rhs.into() }
    }

    /// Evaluate under an environment.
    pub fn eval(&self, env: &impl Fn(LoopVar) -> i64) -> bool {
        self.op.holds(self.lhs.eval(env), self.rhs.eval(env))
    }

    /// Substitute a variable in both sides.
    pub fn substitute(&self, var: LoopVar, value: i64) -> Cond {
        Cond {
            lhs: self.lhs.substitute(var, value),
            op: self.op,
            rhs: self.rhs.substitute(var, value),
        }
    }

    /// Substitute a variable in both sides, in place.
    pub fn substitute_in_place(&mut self, var: LoopVar, value: i64) {
        self.lhs.substitute_in_place(var, value);
        self.rhs.substitute_in_place(var, value);
    }

    /// Whether either side mentions `var`.
    pub fn uses(&self, var: LoopVar) -> bool {
        self.lhs.uses(var) || self.rhs.uses(var)
    }

    /// Constant truth value, if both sides are constant.
    pub fn as_constant(&self) -> Option<bool> {
        match (self.lhs.as_constant(), self.rhs.as_constant()) {
            (Some(l), Some(r)) => Some(self.op.holds(l, r)),
            _ => None,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_normalization() {
        let i = LoopVar(0);
        let j = LoopVar(1);
        let e = Affine::var(i).scaled(3).plus(&Affine::var(j)).offset(7);
        assert_eq!(e.eval(&|v| if v == i { 2 } else { 10 }), 3 * 2 + 10 + 7);
        // cancelling terms removes them entirely
        let z = e.minus(&e);
        assert_eq!(z, Affine::zero());
        assert_eq!(z.as_constant(), Some(0));
    }

    #[test]
    fn substitution_eliminates_vars() {
        let i = LoopVar(0);
        let j = LoopVar(1);
        let e = Affine::var(i).scaled(4).plus(&Affine::var(j).scaled(2)).offset(1);
        let e2 = e.substitute(i, 3);
        assert!(!e2.uses(i));
        assert!(e2.uses(j));
        assert_eq!(e2.substitute(j, 5).as_constant(), Some(4 * 3 + 2 * 5 + 1));
    }

    #[test]
    fn scaling_by_zero_is_zero() {
        let e = Affine::var(LoopVar(0)).offset(5);
        assert_eq!(e.scaled(0), Affine::zero());
    }

    #[test]
    fn display_formats() {
        let i = LoopVar(0);
        let j = LoopVar(1);
        assert_eq!(Affine::constant(4).to_string(), "4");
        assert_eq!(Affine::var(i).to_string(), "i0");
        assert_eq!(Affine::var(i).scaled(3).offset(-2).to_string(), "3*i0 - 2");
        assert_eq!(Affine::var(i).minus(&Affine::var(j).scaled(2)).to_string(), "i0 - 2*i1");
        assert_eq!(Affine::var(i).scaled(-1).to_string(), "-i0");
    }

    #[test]
    fn conditions() {
        let i = LoopVar(0);
        let c = Cond::new(Affine::var(i), CmpOp::Lt, Affine::constant(4));
        assert!(c.eval(&|_| 3));
        assert!(!c.eval(&|_| 4));
        assert_eq!(c.substitute(i, 2).as_constant(), Some(true));
        assert_eq!(c.substitute(i, 9).as_constant(), Some(false));
        assert_eq!(c.as_constant(), None);
        assert_eq!(c.to_string(), "i0 < 4");
    }

    #[test]
    fn cmp_ops_cover_all_cases() {
        assert!(CmpOp::Le.holds(3, 3));
        assert!(CmpOp::Eq.holds(3, 3));
        assert!(CmpOp::Ne.holds(3, 4));
        assert!(CmpOp::Ge.holds(4, 3));
        assert!(CmpOp::Gt.holds(4, 3));
        assert!(!CmpOp::Gt.holds(3, 3));
    }
}
