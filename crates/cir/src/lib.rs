//! # slingen-cir
//!
//! The C-like intermediate representation (**C-IR**) of SLinGen (paper
//! §3, Fig. 11) and its code-level optimizations (paper §3.3).
//!
//! C-IR sits between the mathematical stages and C code. It provides:
//!
//! 1. *special pointers* for accessing portions of matrices and vectors —
//!    here, [`MemRef`]s: a buffer plus an affine offset in loop variables,
//!    with vector accesses carrying an explicit per-lane offset map (the
//!    paper's `Vecload(addr, [p0, p1, ...], hor/vert)`);
//! 2. mathematical operations on scalar and vector registers;
//! 3. `For` and `If` constructs with affine conditions on induction
//!    variables.
//!
//! The optimization passes in [`passes`] implement loop unrolling, scalar
//! replacement, the domain-specific load/store analysis that turns memory
//! round-trips into register shuffles and blends (paper Fig. 12), plus the
//! supporting CSE/DCE/copy-propagation cleanups.
//!
//! [`target`] describes the instruction-set targets the generator can
//! retarget to (widths, capabilities, cost tables); [`unparse`] renders a
//! C-IR function as single-source C99 with the target's intrinsic family
//! (scalar / `_mm_*` / `_mm256_*`, FMA forms when available) — the
//! system's final output format.

pub mod affine;
pub mod func;
pub mod fxhash;
pub mod instr;
pub mod passes;
pub mod pretty;
pub mod target;
pub mod unparse;

pub use affine::{Affine, CmpOp, Cond, LoopVar};
pub use func::{BufId, BufKind, BufferDecl, CStmt, Function, FunctionBuilder};
pub use instr::{BinOp, FmaKind, Instr, InstrClass, LaneSel, MemRef, SOperand, SReg, VReg};
pub use target::{CostTable, Target, TargetDesc};
