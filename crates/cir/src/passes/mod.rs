//! Code-level optimization passes (paper §3.3).
//!
//! The pipeline run by [`optimize`] mirrors SLinGen's Stage 3:
//!
//! 1. **Loop unrolling** for the small fixed trip counts typical of
//!    small-scale code ([`unroll`]);
//! 2. **constant folding** of affine conditions exposed by unrolling
//!    ([`constfold`]);
//! 3. **scalar replacement & load/store analysis** ([`forward`]): memory
//!    round-trips become register moves, shuffles, and blends (Fig. 12);
//! 4. **CSE**, **copy propagation**, and **DCE** cleanups, iterated to a
//!    fixpoint.
//!
//! An important C-IR invariant exploited here: *distinct [`crate::BufId`]s
//! never alias*. Operands related by `ow(..)` are mapped to the same buffer
//! by the driver.

pub mod constfold;
pub mod cse;
pub mod dce;
pub mod forward;
pub mod rename;
pub mod unroll;

use crate::func::Function;

/// Toggles for the optimization pipeline (ablation switches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassConfig {
    /// Maximum number of (static) instructions a fully unrolled function
    /// may reach; loops whose expansion would exceed it stay rolled.
    pub unroll_budget: usize,
    /// Enable the domain-specific load/store analysis (paper Fig. 12).
    pub load_store_analysis: bool,
    /// Enable scalar replacement (store→load forwarding through registers).
    pub scalar_replacement: bool,
    /// Enable common-subexpression elimination.
    pub cse: bool,
    /// Number of cleanup iterations.
    pub iterations: usize,
}

impl Default for PassConfig {
    fn default() -> Self {
        PassConfig {
            unroll_budget: 1 << 14,
            load_store_analysis: true,
            scalar_replacement: true,
            cse: true,
            iterations: 3,
        }
    }
}

impl PassConfig {
    /// A configuration with every optimization disabled except unrolling
    /// (used as the ablation baseline).
    pub fn minimal() -> Self {
        PassConfig {
            unroll_budget: 1 << 14,
            load_store_analysis: false,
            scalar_replacement: false,
            cse: false,
            iterations: 1,
        }
    }
}

/// Run the full Stage-3 pipeline over `f`.
pub fn optimize(f: &mut Function, config: &PassConfig) {
    unroll::unroll(f, config.unroll_budget);
    constfold::fold(f);
    rename::rename(f);
    for _ in 0..config.iterations.max(1) {
        if config.scalar_replacement || config.load_store_analysis {
            forward::forward(f, config.load_store_analysis, config.scalar_replacement);
        }
        if config.cse {
            cse::cse(f);
        }
        forward::copyprop(f);
        dce::dce(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::Affine;
    use crate::func::{BufKind, FunctionBuilder};
    use crate::instr::{BinOp, MemRef};

    /// End-to-end: a rolled scalar loop becomes straight-line code with the
    /// memory round-trip removed.
    #[test]
    fn pipeline_shrinks_round_trips() {
        let mut b = FunctionBuilder::new("p", 1);
        let x = b.buffer("x", 4, BufKind::ParamIn);
        let t = b.buffer("t", 4, BufKind::Local);
        let y = b.buffer("y", 4, BufKind::ParamOut);
        let i = b.begin_for(0, 4, 1);
        let r = b.sload(MemRef::new(x, Affine::var(i)));
        let d = b.sbin(BinOp::Mul, r, 2.0);
        b.sstore(d, MemRef::new(t, Affine::var(i)));
        b.end_for();
        let j = b.begin_for(0, 4, 1);
        let r2 = b.sload(MemRef::new(t, Affine::var(j)));
        let d2 = b.sbin(BinOp::Add, r2, 1.0);
        b.sstore(d2, MemRef::new(y, Affine::var(j)));
        b.end_for();
        let mut f = b.finish();
        optimize(&mut f, &PassConfig::default());
        // after unrolling + forwarding + DCE: loads of t and stores to t gone
        let mut loads_t = 0;
        let mut stores_t = 0;
        f.for_each_instr(&mut |ins| match ins {
            crate::instr::Instr::SLoad { src, .. } if src.buf == t => loads_t += 1,
            crate::instr::Instr::SStore { dst, .. } if dst.buf == t => stores_t += 1,
            _ => {}
        });
        assert_eq!(loads_t, 0, "temp loads should be forwarded:\n{}",
            crate::pretty::function_to_string(&f));
        assert_eq!(stores_t, 0, "dead temp stores should be eliminated:\n{}",
            crate::pretty::function_to_string(&f));
    }
}
