//! Code-level optimization passes (paper §3.3).
//!
//! The pipeline run by [`optimize`] mirrors SLinGen's Stage 3:
//!
//! 1. **Loop unrolling** for the small fixed trip counts typical of
//!    small-scale code ([`unroll`]);
//! 2. **constant folding** of affine conditions exposed by unrolling
//!    ([`constfold`]);
//! 3. **scalar replacement & load/store analysis** ([`forward`]): memory
//!    round-trips become register moves, shuffles, and blends (Fig. 12);
//! 4. **CSE**, **copy propagation**, and **DCE** cleanups, iterated to a
//!    fixpoint: every pass reports whether it changed the function, and
//!    the cleanup loop exits as soon as a full round changes nothing. On
//!    FMA-capable targets the fixpoint loop additionally runs
//!    [`contract`], fusing multiply–add chains into FMA instructions
//!    (the dead multiplies are collected by DCE).
//!
//! The cleanup fixpoint is **incremental** on two levels.
//!
//! First, CSE re-keys only instructions whose own definition or operands
//! are dirty, reusing memoized hashed keys for the (typically vast) clean
//! remainder; a round whose dirty log is empty for CSE skips the scan
//! entirely.
//!
//! Second — the *block memo* ([`PassConfig::block_memo`]) — every cleanup
//! pass skips whole maximal straight-line runs of instructions in which
//! nothing is dirty *for that pass*. The [`DirtyLog`] is tick-stamped and
//! multi-consumer: each mark records a monotone tick, and each pass keeps
//! a per-consumer cursor of the last tick it has fully processed, so
//! "dirty" always means "changed since *this* pass last scanned it".
//! Skipping a clean run is an identity transformation because every
//! pass's forwarding/availability/copy state resets at control-flow
//! boundaries (which delimit the runs), register-version comparisons are
//! run-local equalities (invariant under the bump shifts a skipped run
//! introduces), and the marking rules below over-approximate every
//! cross-run coupling (whole-function read counts for DCE deadness and
//! contract's single-use discipline, cell observability for dead-store
//! elimination). The dirty-seeding rules:
//!
//! * `forward` rewrite (load → mov/extract/shuffle/blend) → destination
//!   register dirty *and the load's buffer dirty* (the buffer lost an
//!   observer, so stores into it may die); dropped load → likewise;
//! * `copyprop` operand substitution → the instruction's destination
//!   dirty (its key changes) and the substituted-away register dirty (it
//!   lost a read, so its definition may die);
//! * `contract` mul→FMA fusion → destination dirty and the fused
//!   multiply's destination dirty (its single read is gone);
//! * a CSE rewrite → destination dirty and the replaced computation's
//!   operand registers dirty (they each lost a read);
//! * DCE instruction removal → its destination register, its operand
//!   registers, and any referenced buffer dirty; dead-store removal → the
//!   stored buffer and the stored value register dirty; removal of an
//!   emptied `For`/`If` → everything dirty (straight-line regions merge).
//!
//! Reusing a cached key (or skipping a run) is sound exactly when the
//! instruction's content and its operands' version/epoch numbering at
//! that point are unchanged — the rules above over-approximate both.
//! Debug builds recompute every reused key and assert equality, and after
//! the fixpoint converges they re-run one full round with skipping
//! disabled and assert that it changes nothing, so the pass-equivalence
//! suite exercises both invariants on every app × target × ν.
//!
//! An important C-IR invariant exploited here: *distinct [`crate::BufId`]s
//! never alias*. Operands related by `ow(..)` are mapped to the same buffer
//! by the driver.

pub mod constfold;
pub mod contract;
pub mod cse;
pub mod dce;
pub mod forward;
pub mod rename;
pub mod unroll;

use crate::func::{CStmt, Function};
use crate::instr::{Instr, SOperand, SReg, VReg};
use std::time::{Duration, Instant};

/// Dense grow-on-demand tables used by the passes (versions, epochs, read
/// sets, rename maps). Tables are pre-sized from the function's register
/// and buffer counts; the grow path only triggers for ids allocated after
/// sizing.
pub(crate) fn grow_update<T: Clone + Default>(
    v: &mut Vec<T>,
    i: usize,
    update: impl FnOnce(&mut T),
) {
    if i >= v.len() {
        v.resize(i + 1, T::default());
    }
    update(&mut v[i]);
}

/// The cleanup passes that consume the dirty log, each with its own
/// catch-up cursor (see [`DirtyLog`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub(crate) enum Consumer {
    Forward = 0,
    Cse = 1,
    Contract = 2,
    Copyprop = 3,
    Dce = 4,
}

const N_CONSUMERS: usize = 5;

/// One consumer's frozen window over the [`DirtyLog`], captured by
/// [`DirtyLog::begin`]: an entry is dirty when it was marked *after* the
/// consumer's last committed scan (`lo`). Marks made while the window is
/// open are stamped with later ticks and therefore also read as dirty —
/// a pass always rescans (next round) what it changed itself, unless it
/// deliberately commits past its own marks ([`DirtyLog::commit_now`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct DirtyView {
    lo: u64,
    hi: u64,
}

/// What the cleanup passes touched, tick-stamped per register/buffer so
/// several consumers can each track their own "changed since I last
/// scanned" window (see the module docs for the per-pass seeding rules).
/// Dense tick tables keep the per-instruction dirty checks
/// allocation-free.
#[derive(Debug)]
pub struct DirtyLog {
    /// Tick of the most recent mark (monotone).
    tick: u64,
    /// Tick of the most recent [`DirtyLog::mark_all`] (0 = never).
    all_tick: u64,
    sregs: Vec<u64>,
    vregs: Vec<u64>,
    bufs: Vec<u64>,
    /// Per-consumer cursor: every mark at a tick `<= seen[c]` has been
    /// fully processed by consumer `c`.
    seen: [u64; N_CONSUMERS],
    /// Whether clean-run skipping is enabled ([`PassConfig::block_memo`]).
    skip: bool,
    /// Straight-line runs (and whole passes) skipped as provably clean.
    skipped: usize,
}

impl Default for DirtyLog {
    /// Everything dirty for every consumer: the safe initial state (a
    /// fresh log must force full scans).
    fn default() -> Self {
        DirtyLog {
            tick: 1,
            all_tick: 1,
            sregs: Vec::new(),
            vregs: Vec::new(),
            bufs: Vec::new(),
            seen: [0; N_CONSUMERS],
            skip: true,
            skipped: 0,
        }
    }
}

impl DirtyLog {
    /// A log with everything marked dirty (initial state).
    pub fn all_dirty() -> Self {
        DirtyLog::default()
    }

    /// Mark a scalar register's definition or versioning as changed.
    pub fn mark_s(&mut self, r: SReg) {
        self.tick += 1;
        let t = self.tick;
        grow_update(&mut self.sregs, r.0, |b| *b = t);
    }

    /// Mark a vector register's definition or versioning as changed.
    pub fn mark_v(&mut self, r: VReg) {
        self.tick += 1;
        let t = self.tick;
        grow_update(&mut self.vregs, r.0, |b| *b = t);
    }

    /// Mark a buffer's store placement (load epochs) as changed.
    pub fn mark_buf(&mut self, b: usize) {
        self.tick += 1;
        let t = self.tick;
        grow_update(&mut self.bufs, b, |x| *x = t);
    }

    /// Mark everything dirty (control-flow regions merged).
    pub fn mark_all(&mut self) {
        self.tick += 1;
        self.all_tick = self.tick;
    }

    /// Whether nothing has been marked since `c` last committed a scan.
    pub(crate) fn is_clean_for(&self, c: Consumer) -> bool {
        self.tick <= self.seen[c as usize]
    }

    /// Open `c`'s dirty window (everything marked after its last commit).
    pub(crate) fn begin(&self, c: Consumer) -> DirtyView {
        DirtyView { lo: self.seen[c as usize], hi: self.tick }
    }

    /// Commit `c`'s scan up to where the window was opened: marks made
    /// *during* the scan (including the pass's own) stay dirty for `c`.
    pub(crate) fn commit(&mut self, c: Consumer, v: &DirtyView) {
        self.seen[c as usize] = v.hi;
    }

    /// Commit `c`'s scan up to the present, swallowing the pass's own
    /// marks. Only sound for a pass whose rescan of its own rewrites is
    /// provably a no-op (CSE: a rewrite leaves a plain move that neither
    /// keys nor changes version numbering).
    pub(crate) fn commit_now(&mut self, c: Consumer) {
        self.seen[c as usize] = self.tick;
    }

    /// Whether everything is dirty in this window ([`DirtyLog::mark_all`]
    /// since the consumer's last commit).
    pub(crate) fn is_all_at(&self, v: &DirtyView) -> bool {
        self.all_tick > v.lo
    }

    pub(crate) fn s_dirty_at(&self, v: &DirtyView, r: SReg) -> bool {
        self.all_tick > v.lo || self.sregs.get(r.0).copied().unwrap_or(0) > v.lo
    }
    pub(crate) fn v_dirty_at(&self, v: &DirtyView, r: VReg) -> bool {
        self.all_tick > v.lo || self.vregs.get(r.0).copied().unwrap_or(0) > v.lo
    }
    pub(crate) fn buf_dirty_at(&self, v: &DirtyView, b: usize) -> bool {
        self.all_tick > v.lo || self.bufs.get(b).copied().unwrap_or(0) > v.lo
    }

    /// Enable/disable clean-run skipping (the block memo).
    pub fn set_skip(&mut self, on: bool) {
        self.skip = on;
    }

    /// Whether clean-run skipping is enabled.
    pub(crate) fn skip_enabled(&self) -> bool {
        self.skip
    }

    /// Count one skipped clean run (or whole-pass skip).
    pub(crate) fn note_skip(&mut self) {
        self.skipped += 1;
    }

    /// Total clean runs skipped so far (monotone across rounds).
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// Whether any definition, operand register, or referenced buffer of
    /// `ins` is dirty in `v`. Calls are always treated as dirty (they
    /// clobber pass state conservatively). Allocation-free: the generic
    /// read accessors build `Vec`s, which would dominate the prescan.
    pub(crate) fn instr_dirty_at(&self, v: &DirtyView, ins: &Instr) -> bool {
        if self.all_tick > v.lo {
            return true;
        }
        let s = |o: &SOperand| matches!(o, SOperand::Reg(r) if self.s_dirty_at(v, *r));
        match ins {
            Instr::SMov { dst, a } => self.s_dirty_at(v, *dst) || s(a),
            Instr::SBin { dst, a, b, .. } => self.s_dirty_at(v, *dst) || s(a) || s(b),
            Instr::SFma { dst, a, b, c, .. } => self.s_dirty_at(v, *dst) || s(a) || s(b) || s(c),
            Instr::SSqrt { dst, a } => self.s_dirty_at(v, *dst) || s(a),
            Instr::SLoad { dst, src } => {
                self.s_dirty_at(v, *dst) || self.buf_dirty_at(v, src.buf.0)
            }
            Instr::SStore { src, dst } => s(src) || self.buf_dirty_at(v, dst.buf.0),
            Instr::VLoad { dst, base, .. } => {
                self.v_dirty_at(v, *dst) || self.buf_dirty_at(v, base.buf.0)
            }
            Instr::VStore { src, base, .. } => {
                self.v_dirty_at(v, *src) || self.buf_dirty_at(v, base.buf.0)
            }
            Instr::VMov { dst, src } => self.v_dirty_at(v, *dst) || self.v_dirty_at(v, *src),
            Instr::VBroadcast { dst, src } => self.v_dirty_at(v, *dst) || s(src),
            Instr::VBin { dst, a, b, .. } => {
                self.v_dirty_at(v, *dst) || self.v_dirty_at(v, *a) || self.v_dirty_at(v, *b)
            }
            Instr::VFma { dst, a, b, c, .. } => {
                self.v_dirty_at(v, *dst)
                    || self.v_dirty_at(v, *a)
                    || self.v_dirty_at(v, *b)
                    || self.v_dirty_at(v, *c)
            }
            Instr::VShuffle { dst, a, b, .. } | Instr::VBlend { dst, a, b, .. } => {
                self.v_dirty_at(v, *dst) || self.v_dirty_at(v, *a) || self.v_dirty_at(v, *b)
            }
            Instr::VExtract { dst, src, .. } => {
                self.s_dirty_at(v, *dst) || self.v_dirty_at(v, *src)
            }
            Instr::VReduceAdd { dst, src } => self.s_dirty_at(v, *dst) || self.v_dirty_at(v, *src),
            Instr::Call { .. } => true,
        }
    }
}

/// Mark every operand register of `ins` (it lost a read) and, for loads,
/// its buffer (it lost an observer) — the strengthened removal rule (see
/// module docs).
pub(crate) fn mark_reads(dirty: &mut DirtyLog, ins: &Instr) {
    let s = |o: &SOperand, dirty: &mut DirtyLog| {
        if let SOperand::Reg(r) = o {
            dirty.mark_s(*r);
        }
    };
    match ins {
        Instr::SMov { a, .. } | Instr::SSqrt { a, .. } => s(a, dirty),
        Instr::SBin { a, b, .. } => {
            s(a, dirty);
            s(b, dirty);
        }
        Instr::SFma { a, b, c, .. } => {
            s(a, dirty);
            s(b, dirty);
            s(c, dirty);
        }
        Instr::SStore { src, dst } => {
            s(src, dirty);
            dirty.mark_buf(dst.buf.0);
        }
        Instr::SLoad { src, .. } => dirty.mark_buf(src.buf.0),
        Instr::VLoad { base, .. } => dirty.mark_buf(base.buf.0),
        Instr::VStore { src, base, .. } => {
            dirty.mark_v(*src);
            dirty.mark_buf(base.buf.0);
        }
        Instr::VMov { src, .. } | Instr::VExtract { src, .. } | Instr::VReduceAdd { src, .. } => {
            dirty.mark_v(*src)
        }
        Instr::VBroadcast { src, .. } => s(src, dirty),
        Instr::VBin { a, b, .. } | Instr::VShuffle { a, b, .. } | Instr::VBlend { a, b, .. } => {
            dirty.mark_v(*a);
            dirty.mark_v(*b);
        }
        Instr::VFma { a, b, c, .. } => {
            dirty.mark_v(*a);
            dirty.mark_v(*b);
            dirty.mark_v(*c);
        }
        Instr::Call { .. } => dirty.mark_all(),
    }
}

/// Prescan the maximal straight-line run starting at `stmts[start]`
/// (which must be an instruction): returns `(end, clean)` where `end` is
/// the exclusive index of the first non-instruction statement and
/// `clean` is whether the *whole* run is clean in `view` (and skipping
/// is enabled). Runs are atomic: a dirty prefix poisons the suffix,
/// because the suffix was last scanned under the old prefix state.
pub(crate) fn scan_run(
    log: &DirtyLog,
    view: &DirtyView,
    stmts: &[CStmt],
    start: usize,
) -> (usize, bool) {
    let mut clean = log.skip;
    let mut i = start;
    while i < stmts.len() {
        let CStmt::I(ins) = &stmts[i] else { break };
        if clean && log.instr_dirty_at(view, ins) {
            clean = false;
        }
        i += 1;
    }
    (i, clean)
}

/// Toggles for the optimization pipeline (ablation switches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassConfig {
    /// Maximum number of (static) instructions a fully unrolled function
    /// may reach; loops whose expansion would exceed it stay rolled.
    pub unroll_budget: usize,
    /// Enable the domain-specific load/store analysis (paper Fig. 12).
    pub load_store_analysis: bool,
    /// Enable scalar replacement (store→load forwarding through registers).
    pub scalar_replacement: bool,
    /// Enable common-subexpression elimination.
    pub cse: bool,
    /// Fuse multiply–add chains into FMA instructions (see
    /// [`contract`]). Off by default; the driver enables it when the
    /// generation target has FMA ([`crate::Target::has_fma`]).
    pub fma_contraction: bool,
    /// Skip straight-line runs that are provably clean for each cleanup
    /// pass (see the block-memo notes in the module docs). On by
    /// default; turning it off restores full per-round scans (used by
    /// the byte-identity test suite as the reference path).
    pub block_memo: bool,
    /// Maximum number of cleanup iterations; the loop exits early once a
    /// full round reaches a fixpoint (changes nothing). The cap is a
    /// safety net, not the expected exit: [`PipelineStats::converged`]
    /// records whether the loop actually reached its fixpoint, and the
    /// incremental CSE scan makes post-convergence rounds cheap, so the
    /// default is set high enough that large FMA-contracted bodies (which
    /// need more than three rounds of contract→DCE→copy cleanup) converge
    /// instead of silently stopping mid-cleanup.
    pub iterations: usize,
}

impl Default for PassConfig {
    fn default() -> Self {
        PassConfig {
            unroll_budget: 1 << 14,
            load_store_analysis: true,
            scalar_replacement: true,
            cse: true,
            fma_contraction: false,
            block_memo: true,
            iterations: 16,
        }
    }
}

impl PassConfig {
    /// A configuration with every optimization disabled except unrolling
    /// (used as the ablation baseline).
    pub fn minimal() -> Self {
        PassConfig {
            unroll_budget: 1 << 14,
            load_store_analysis: false,
            scalar_replacement: false,
            cse: false,
            fma_contraction: false,
            block_memo: true,
            iterations: 1,
        }
    }

    /// This configuration specialized for a generation target: FMA
    /// contraction turns on exactly when the target can execute fused
    /// multiply-adds.
    pub fn for_target(mut self, target: crate::Target) -> Self {
        self.fma_contraction = self.fma_contraction || target.has_fma();
        self
    }
}

/// Per-round telemetry of one cleanup-fixpoint round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// Instructions whose CSE key was recomputed this round.
    pub cse_rekeyed: usize,
    /// Instructions whose memoized CSE key was reused this round.
    pub cse_reused: usize,
    /// Whether the CSE scan was skipped outright (empty dirty log).
    pub cse_skipped: bool,
    /// Clean straight-line runs (and whole-pass skips) this round, summed
    /// over all cleanup passes (the block memo; see module docs).
    pub blocks_skipped: usize,
    /// Whether any pass changed the function this round.
    pub changed: bool,
}

/// Telemetry of one [`optimize`] run: per-round incremental-CSE counters
/// plus whether the cleanup loop converged or hit the iteration cap.
#[derive(Debug, Clone, Default)]
pub struct PipelineStats {
    /// One entry per executed cleanup round.
    pub rounds: Vec<RoundStats>,
    /// `true` when the loop exited on a no-change round (fixpoint);
    /// `false` when it stopped on [`PassConfig::iterations`] with changes
    /// still pending.
    pub converged: bool,
}

/// Run the full Stage-3 pipeline over `f`.
pub fn optimize(f: &mut Function, config: &PassConfig) {
    optimize_traced(f, config, &mut |_, _| {});
}

/// Like [`optimize`], additionally invoking `observe(pass_name, elapsed)`
/// after every pass.
pub fn optimize_traced(
    f: &mut Function,
    config: &PassConfig,
    observe: &mut dyn FnMut(&str, Duration),
) {
    optimize_with_stats(f, config, observe);
}

/// Like [`optimize_traced`], additionally returning [`PipelineStats`].
/// This is the single source of truth for per-pass timing and fixpoint
/// breakdowns (the `bench --passes` tracker uses it), so instrumentation
/// cannot drift from the pipeline actually shipped.
pub fn optimize_with_stats(
    f: &mut Function,
    config: &PassConfig,
    observe: &mut dyn FnMut(&str, Duration),
) -> PipelineStats {
    let t = Instant::now();
    unroll::unroll(f, config.unroll_budget);
    observe("unroll", t.elapsed());
    let t = Instant::now();
    constfold::fold(f);
    observe("constfold", t.elapsed());
    let t = Instant::now();
    rename::rename(f);
    observe("rename", t.elapsed());
    let mut stats = PipelineStats::default();
    // Tick-stamped record of what each pass touched; every pass keeps its
    // own catch-up cursor, and the first scans see everything dirty.
    let mut dirty = DirtyLog::all_dirty();
    dirty.set_skip(config.block_memo);
    let mut cache = cse::CseCache::default();
    for _ in 0..config.iterations.max(1) {
        let mut changed = false;
        let mut round = RoundStats::default();
        let skipped_before = dirty.skipped();
        if config.scalar_replacement || config.load_store_analysis {
            let t = Instant::now();
            changed |= forward::forward_tracked(
                f,
                config.load_store_analysis,
                config.scalar_replacement,
                &mut dirty,
            );
            observe("forward", t.elapsed());
        }
        if config.cse {
            let t = Instant::now();
            changed |= cse::cse_incremental(f, &mut cache, &mut dirty, &mut round);
            observe("cse", t.elapsed());
        }
        if config.fma_contraction {
            let t = Instant::now();
            changed |= contract::contract_tracked(f, &mut dirty);
            observe("contract", t.elapsed());
        }
        let t = Instant::now();
        changed |= forward::copyprop_tracked(f, &mut dirty);
        observe("copyprop", t.elapsed());
        let t = Instant::now();
        changed |= dce::dce_tracked(f, &mut dirty);
        observe("dce", t.elapsed());
        round.blocks_skipped = dirty.skipped() - skipped_before;
        round.changed = changed;
        stats.rounds.push(round);
        if !changed {
            stats.converged = true;
            break;
        }
    }
    debug_assert!(
        stats.converged || config.iterations <= stats.rounds.len(),
        "fixpoint bookkeeping out of sync"
    );
    // The block-memo invariant, PR 6 style: a skipped run must be one the
    // pass would not have changed. Debug builds re-run one full round
    // with skipping disabled and require a clean fixpoint.
    #[cfg(debug_assertions)]
    if stats.converged && config.block_memo {
        let mut vlog = DirtyLog::all_dirty();
        vlog.set_skip(false);
        let mut vchanged = false;
        if config.scalar_replacement || config.load_store_analysis {
            vchanged |= forward::forward_tracked(
                f,
                config.load_store_analysis,
                config.scalar_replacement,
                &mut vlog,
            );
        }
        if config.cse {
            vchanged |= cse::cse(f);
        }
        if config.fma_contraction {
            vchanged |= contract::contract_tracked(f, &mut vlog);
        }
        vchanged |= forward::copyprop_tracked(f, &mut vlog);
        vchanged |= dce::dce_tracked(f, &mut vlog);
        debug_assert!(
            !vchanged,
            "block-memoized fixpoint is not a fixpoint of the full passes \
             (a clean-run skip hid a pending rewrite)"
        );
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::Affine;
    use crate::func::{BufKind, FunctionBuilder};
    use crate::instr::{BinOp, MemRef};

    /// End-to-end: a rolled scalar loop becomes straight-line code with the
    /// memory round-trip removed.
    #[test]
    fn pipeline_shrinks_round_trips() {
        let mut b = FunctionBuilder::new("p", 1);
        let x = b.buffer("x", 4, BufKind::ParamIn);
        let t = b.buffer("t", 4, BufKind::Local);
        let y = b.buffer("y", 4, BufKind::ParamOut);
        let i = b.begin_for(0, 4, 1);
        let r = b.sload(MemRef::new(x, Affine::var(i)));
        let d = b.sbin(BinOp::Mul, r, 2.0);
        b.sstore(d, MemRef::new(t, Affine::var(i)));
        b.end_for();
        let j = b.begin_for(0, 4, 1);
        let r2 = b.sload(MemRef::new(t, Affine::var(j)));
        let d2 = b.sbin(BinOp::Add, r2, 1.0);
        b.sstore(d2, MemRef::new(y, Affine::var(j)));
        b.end_for();
        let mut f = b.finish();
        optimize(&mut f, &PassConfig::default());
        // after unrolling + forwarding + DCE: loads of t and stores to t gone
        let mut loads_t = 0;
        let mut stores_t = 0;
        f.for_each_instr(&mut |ins| match ins {
            crate::instr::Instr::SLoad { src, .. } if src.buf == t => loads_t += 1,
            crate::instr::Instr::SStore { dst, .. } if dst.buf == t => stores_t += 1,
            _ => {}
        });
        assert_eq!(
            loads_t,
            0,
            "temp loads should be forwarded:\n{}",
            crate::pretty::function_to_string(&f)
        );
        assert_eq!(
            stores_t,
            0,
            "dead temp stores should be eliminated:\n{}",
            crate::pretty::function_to_string(&f)
        );
    }

    /// The default pipeline must reach its fixpoint (not the iteration
    /// cap) on representative shapes, and report it.
    #[test]
    fn default_pipeline_converges() {
        let mut b = FunctionBuilder::new("p", 1);
        let x = b.buffer("x", 8, BufKind::ParamIn);
        let t = b.buffer("t", 8, BufKind::Local);
        let y = b.buffer("y", 8, BufKind::ParamOut);
        let i = b.begin_for(0, 8, 1);
        let r = b.sload(MemRef::new(x, Affine::var(i)));
        let d = b.sbin(BinOp::Mul, r, 2.0);
        b.sstore(d, MemRef::new(t, Affine::var(i)));
        b.end_for();
        let j = b.begin_for(0, 8, 1);
        let r2 = b.sload(MemRef::new(t, Affine::var(j)));
        let d2 = b.sbin(BinOp::Add, r2, 1.0);
        b.sstore(d2, MemRef::new(y, Affine::var(j)));
        b.end_for();
        let mut f = b.finish();
        let stats = optimize_with_stats(&mut f, &PassConfig::default(), &mut |_, _| {});
        assert!(stats.converged, "cleanup must exit on a fixpoint, not the cap");
        assert!(!stats.rounds.is_empty());
        // once converged, the final round's CSE scan was either skipped or
        // touched only what the previous round changed
        let last = stats.rounds.last().unwrap();
        assert!(!last.changed);
    }

    /// A capped run (iterations = 1 on a body that needs more) reports
    /// `converged == false` instead of silently stopping.
    #[test]
    fn capped_run_is_reported() {
        let mut b = FunctionBuilder::new("p", 1);
        let x = b.buffer("x", 4, BufKind::ParamIn);
        let t = b.buffer("t", 4, BufKind::Local);
        let y = b.buffer("y", 4, BufKind::ParamOut);
        for i in 0..4 {
            let r = b.sload(MemRef::new(x, i));
            let d = b.sbin(BinOp::Mul, r, 2.0);
            b.sstore(d, MemRef::new(t, i));
            let r2 = b.sload(MemRef::new(t, i));
            let d2 = b.sbin(BinOp::Add, r2, 1.0);
            b.sstore(d2, MemRef::new(y, i));
        }
        let mut f = b.finish();
        let capped = PassConfig { iterations: 1, ..PassConfig::default() };
        let stats = optimize_with_stats(&mut f, &capped, &mut |_, _| {});
        // one round of forward+cse+copyprop+dce changes things; the loop
        // stops on the cap with work still pending
        assert_eq!(stats.rounds.len(), 1);
        assert!(stats.rounds[0].changed);
        assert!(!stats.converged, "a capped exit must be reported");
    }
}
