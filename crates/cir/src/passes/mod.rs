//! Code-level optimization passes (paper §3.3).
//!
//! The pipeline run by [`optimize`] mirrors SLinGen's Stage 3:
//!
//! 1. **Loop unrolling** for the small fixed trip counts typical of
//!    small-scale code ([`unroll`]);
//! 2. **constant folding** of affine conditions exposed by unrolling
//!    ([`constfold`]);
//! 3. **scalar replacement & load/store analysis** ([`forward`]): memory
//!    round-trips become register moves, shuffles, and blends (Fig. 12);
//! 4. **CSE**, **copy propagation**, and **DCE** cleanups, iterated to a
//!    fixpoint: every pass reports whether it changed the function, and
//!    the cleanup loop exits as soon as a full round changes nothing. On
//!    FMA-capable targets the fixpoint loop additionally runs
//!    [`contract`], fusing multiply–add chains into FMA instructions
//!    (the dead multiplies are collected by DCE).
//!
//! An important C-IR invariant exploited here: *distinct [`crate::BufId`]s
//! never alias*. Operands related by `ow(..)` are mapped to the same buffer
//! by the driver.

pub mod constfold;
pub mod contract;
pub mod cse;
pub mod dce;
pub mod forward;
pub mod rename;
pub mod unroll;

use crate::func::Function;
use std::time::{Duration, Instant};

/// Dense grow-on-demand tables used by the passes (versions, epochs, read
/// sets, rename maps). Tables are pre-sized from the function's register
/// and buffer counts; the grow path only triggers for ids allocated after
/// sizing.
pub(crate) fn grow_update<T: Clone + Default>(
    v: &mut Vec<T>,
    i: usize,
    update: impl FnOnce(&mut T),
) {
    if i >= v.len() {
        v.resize(i + 1, T::default());
    }
    update(&mut v[i]);
}

/// Toggles for the optimization pipeline (ablation switches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassConfig {
    /// Maximum number of (static) instructions a fully unrolled function
    /// may reach; loops whose expansion would exceed it stay rolled.
    pub unroll_budget: usize,
    /// Enable the domain-specific load/store analysis (paper Fig. 12).
    pub load_store_analysis: bool,
    /// Enable scalar replacement (store→load forwarding through registers).
    pub scalar_replacement: bool,
    /// Enable common-subexpression elimination.
    pub cse: bool,
    /// Fuse multiply–add chains into FMA instructions (see
    /// [`contract`]). Off by default; the driver enables it when the
    /// generation target has FMA ([`crate::Target::has_fma`]).
    pub fma_contraction: bool,
    /// Maximum number of cleanup iterations; the loop exits early once a
    /// full round reaches a fixpoint (changes nothing).
    pub iterations: usize,
}

impl Default for PassConfig {
    fn default() -> Self {
        PassConfig {
            unroll_budget: 1 << 14,
            load_store_analysis: true,
            scalar_replacement: true,
            cse: true,
            fma_contraction: false,
            iterations: 3,
        }
    }
}

impl PassConfig {
    /// A configuration with every optimization disabled except unrolling
    /// (used as the ablation baseline).
    pub fn minimal() -> Self {
        PassConfig {
            unroll_budget: 1 << 14,
            load_store_analysis: false,
            scalar_replacement: false,
            cse: false,
            fma_contraction: false,
            iterations: 1,
        }
    }

    /// This configuration specialized for a generation target: FMA
    /// contraction turns on exactly when the target can execute fused
    /// multiply-adds.
    pub fn for_target(mut self, target: crate::Target) -> Self {
        self.fma_contraction = self.fma_contraction || target.has_fma();
        self
    }
}

/// Run the full Stage-3 pipeline over `f`.
pub fn optimize(f: &mut Function, config: &PassConfig) {
    optimize_traced(f, config, &mut |_, _| {});
}

/// Like [`optimize`], additionally invoking `observe(pass_name, elapsed)`
/// after every pass. This is the single source of truth for per-pass
/// timing breakdowns (the `bench --passes` tracker uses it), so
/// instrumentation cannot drift from the pipeline actually shipped.
pub fn optimize_traced(
    f: &mut Function,
    config: &PassConfig,
    observe: &mut dyn FnMut(&str, Duration),
) {
    let t = Instant::now();
    unroll::unroll(f, config.unroll_budget);
    observe("unroll", t.elapsed());
    let t = Instant::now();
    constfold::fold(f);
    observe("constfold", t.elapsed());
    let t = Instant::now();
    rename::rename(f);
    observe("rename", t.elapsed());
    for _ in 0..config.iterations.max(1) {
        let mut changed = false;
        if config.scalar_replacement || config.load_store_analysis {
            let t = Instant::now();
            changed |= forward::forward(f, config.load_store_analysis, config.scalar_replacement);
            observe("forward", t.elapsed());
        }
        if config.cse {
            let t = Instant::now();
            changed |= cse::cse(f);
            observe("cse", t.elapsed());
        }
        if config.fma_contraction {
            let t = Instant::now();
            changed |= contract::contract(f);
            observe("contract", t.elapsed());
        }
        let t = Instant::now();
        changed |= forward::copyprop(f);
        observe("copyprop", t.elapsed());
        let t = Instant::now();
        changed |= dce::dce(f);
        observe("dce", t.elapsed());
        if !changed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::Affine;
    use crate::func::{BufKind, FunctionBuilder};
    use crate::instr::{BinOp, MemRef};

    /// End-to-end: a rolled scalar loop becomes straight-line code with the
    /// memory round-trip removed.
    #[test]
    fn pipeline_shrinks_round_trips() {
        let mut b = FunctionBuilder::new("p", 1);
        let x = b.buffer("x", 4, BufKind::ParamIn);
        let t = b.buffer("t", 4, BufKind::Local);
        let y = b.buffer("y", 4, BufKind::ParamOut);
        let i = b.begin_for(0, 4, 1);
        let r = b.sload(MemRef::new(x, Affine::var(i)));
        let d = b.sbin(BinOp::Mul, r, 2.0);
        b.sstore(d, MemRef::new(t, Affine::var(i)));
        b.end_for();
        let j = b.begin_for(0, 4, 1);
        let r2 = b.sload(MemRef::new(t, Affine::var(j)));
        let d2 = b.sbin(BinOp::Add, r2, 1.0);
        b.sstore(d2, MemRef::new(y, Affine::var(j)));
        b.end_for();
        let mut f = b.finish();
        optimize(&mut f, &PassConfig::default());
        // after unrolling + forwarding + DCE: loads of t and stores to t gone
        let mut loads_t = 0;
        let mut stores_t = 0;
        f.for_each_instr(&mut |ins| match ins {
            crate::instr::Instr::SLoad { src, .. } if src.buf == t => loads_t += 1,
            crate::instr::Instr::SStore { dst, .. } if dst.buf == t => stores_t += 1,
            _ => {}
        });
        assert_eq!(
            loads_t,
            0,
            "temp loads should be forwarded:\n{}",
            crate::pretty::function_to_string(&f)
        );
        assert_eq!(
            stores_t,
            0,
            "dead temp stores should be eliminated:\n{}",
            crate::pretty::function_to_string(&f)
        );
    }
}
