//! Code-level optimization passes (paper §3.3).
//!
//! The pipeline run by [`optimize`] mirrors SLinGen's Stage 3:
//!
//! 1. **Loop unrolling** for the small fixed trip counts typical of
//!    small-scale code ([`unroll`]);
//! 2. **constant folding** of affine conditions exposed by unrolling
//!    ([`constfold`]);
//! 3. **scalar replacement & load/store analysis** ([`forward`]): memory
//!    round-trips become register moves, shuffles, and blends (Fig. 12);
//! 4. **CSE**, **copy propagation**, and **DCE** cleanups, iterated to a
//!    fixpoint: every pass reports whether it changed the function, and
//!    the cleanup loop exits as soon as a full round changes nothing. On
//!    FMA-capable targets the fixpoint loop additionally runs
//!    [`contract`], fusing multiply–add chains into FMA instructions
//!    (the dead multiplies are collected by DCE).
//!
//! The cleanup fixpoint is **incremental**: each pass records the
//! registers and buffers it actually touched into a shared [`DirtyLog`],
//! and CSE — the most expensive cleanup — re-keys only instructions whose
//! own definition or operands are dirty, reusing memoized hashed keys for
//! the (typically vast) clean remainder. A round whose dirty log is empty
//! skips the CSE scan entirely. The dirty-seeding rules are:
//!
//! * `forward` rewrite (load → mov/extract/shuffle/blend) → destination
//!   register dirty; dropped load → its destination dirty (a definition
//!   disappeared, so reader versions may shift);
//! * `copyprop` operand substitution → the instruction's destination
//!   dirty (its key changes; reader keys depend only on versions);
//! * `contract` mul→FMA fusion → destination dirty;
//! * DCE instruction removal → its destination register dirty; dead-store
//!   removal → the stored buffer dirty (load epochs shift); removal of an
//!   emptied `For`/`If` → everything dirty (straight-line regions merge);
//! * a CSE rewrite itself re-marks its destination (the slot becomes a
//!   plain move).
//!
//! Reusing a cached key is sound exactly when the instruction's content
//! and its operands' version/epoch numbering at that point are unchanged
//! — the rules above over-approximate both, and debug builds recompute
//! every reused key and assert equality, so the pass-equivalence suite
//! exercises the invariant on every app × target × ν.
//!
//! An important C-IR invariant exploited here: *distinct [`crate::BufId`]s
//! never alias*. Operands related by `ow(..)` are mapped to the same buffer
//! by the driver.

pub mod constfold;
pub mod contract;
pub mod cse;
pub mod dce;
pub mod forward;
pub mod rename;
pub mod unroll;

use crate::func::Function;
use crate::instr::{SReg, VReg};
use std::time::{Duration, Instant};

/// Dense grow-on-demand tables used by the passes (versions, epochs, read
/// sets, rename maps). Tables are pre-sized from the function's register
/// and buffer counts; the grow path only triggers for ids allocated after
/// sizing.
pub(crate) fn grow_update<T: Clone + Default>(
    v: &mut Vec<T>,
    i: usize,
    update: impl FnOnce(&mut T),
) {
    if i >= v.len() {
        v.resize(i + 1, T::default());
    }
    update(&mut v[i]);
}

/// What the cleanup passes touched since the last CSE scan (see the
/// module docs for the per-pass seeding rules). Dense bool tables keep
/// the per-instruction dirty checks allocation-free.
#[derive(Debug, Default)]
pub struct DirtyLog {
    all: bool,
    marks: usize,
    sregs: Vec<bool>,
    vregs: Vec<bool>,
    bufs: Vec<bool>,
}

impl DirtyLog {
    /// A log with everything marked dirty (initial state).
    pub fn all_dirty() -> Self {
        DirtyLog { all: true, ..DirtyLog::default() }
    }

    /// Mark a scalar register's definition or versioning as changed.
    pub fn mark_s(&mut self, r: SReg) {
        self.marks += 1;
        grow_update(&mut self.sregs, r.0, |b| *b = true);
    }

    /// Mark a vector register's definition or versioning as changed.
    pub fn mark_v(&mut self, r: VReg) {
        self.marks += 1;
        grow_update(&mut self.vregs, r.0, |b| *b = true);
    }

    /// Mark a buffer's store placement (load epochs) as changed.
    pub fn mark_buf(&mut self, b: usize) {
        self.marks += 1;
        grow_update(&mut self.bufs, b, |x| *x = true);
    }

    /// Mark everything dirty (control-flow regions merged).
    pub fn mark_all(&mut self) {
        self.all = true;
    }

    /// Whether nothing has been marked since the last [`DirtyLog::clear`].
    pub fn is_clean(&self) -> bool {
        !self.all && self.marks == 0
    }

    /// Whether everything is dirty.
    pub fn is_all(&self) -> bool {
        self.all
    }

    pub(crate) fn s_dirty(&self, r: SReg) -> bool {
        self.all || self.sregs.get(r.0).copied().unwrap_or(false)
    }
    pub(crate) fn v_dirty(&self, r: VReg) -> bool {
        self.all || self.vregs.get(r.0).copied().unwrap_or(false)
    }
    pub(crate) fn buf_dirty(&self, b: usize) -> bool {
        self.all || self.bufs.get(b).copied().unwrap_or(false)
    }

    /// Forget all marks (the consumer has caught up).
    pub fn clear(&mut self) {
        self.all = false;
        self.marks = 0;
        self.sregs.iter_mut().for_each(|b| *b = false);
        self.vregs.iter_mut().for_each(|b| *b = false);
        self.bufs.iter_mut().for_each(|b| *b = false);
    }
}

/// Toggles for the optimization pipeline (ablation switches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassConfig {
    /// Maximum number of (static) instructions a fully unrolled function
    /// may reach; loops whose expansion would exceed it stay rolled.
    pub unroll_budget: usize,
    /// Enable the domain-specific load/store analysis (paper Fig. 12).
    pub load_store_analysis: bool,
    /// Enable scalar replacement (store→load forwarding through registers).
    pub scalar_replacement: bool,
    /// Enable common-subexpression elimination.
    pub cse: bool,
    /// Fuse multiply–add chains into FMA instructions (see
    /// [`contract`]). Off by default; the driver enables it when the
    /// generation target has FMA ([`crate::Target::has_fma`]).
    pub fma_contraction: bool,
    /// Maximum number of cleanup iterations; the loop exits early once a
    /// full round reaches a fixpoint (changes nothing). The cap is a
    /// safety net, not the expected exit: [`PipelineStats::converged`]
    /// records whether the loop actually reached its fixpoint, and the
    /// incremental CSE scan makes post-convergence rounds cheap, so the
    /// default is set high enough that large FMA-contracted bodies (which
    /// need more than three rounds of contract→DCE→copy cleanup) converge
    /// instead of silently stopping mid-cleanup.
    pub iterations: usize,
}

impl Default for PassConfig {
    fn default() -> Self {
        PassConfig {
            unroll_budget: 1 << 14,
            load_store_analysis: true,
            scalar_replacement: true,
            cse: true,
            fma_contraction: false,
            iterations: 16,
        }
    }
}

impl PassConfig {
    /// A configuration with every optimization disabled except unrolling
    /// (used as the ablation baseline).
    pub fn minimal() -> Self {
        PassConfig {
            unroll_budget: 1 << 14,
            load_store_analysis: false,
            scalar_replacement: false,
            cse: false,
            fma_contraction: false,
            iterations: 1,
        }
    }

    /// This configuration specialized for a generation target: FMA
    /// contraction turns on exactly when the target can execute fused
    /// multiply-adds.
    pub fn for_target(mut self, target: crate::Target) -> Self {
        self.fma_contraction = self.fma_contraction || target.has_fma();
        self
    }
}

/// Per-round telemetry of one cleanup-fixpoint round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// Instructions whose CSE key was recomputed this round.
    pub cse_rekeyed: usize,
    /// Instructions whose memoized CSE key was reused this round.
    pub cse_reused: usize,
    /// Whether the CSE scan was skipped outright (empty dirty log).
    pub cse_skipped: bool,
    /// Whether any pass changed the function this round.
    pub changed: bool,
}

/// Telemetry of one [`optimize`] run: per-round incremental-CSE counters
/// plus whether the cleanup loop converged or hit the iteration cap.
#[derive(Debug, Clone, Default)]
pub struct PipelineStats {
    /// One entry per executed cleanup round.
    pub rounds: Vec<RoundStats>,
    /// `true` when the loop exited on a no-change round (fixpoint);
    /// `false` when it stopped on [`PassConfig::iterations`] with changes
    /// still pending.
    pub converged: bool,
}

/// Run the full Stage-3 pipeline over `f`.
pub fn optimize(f: &mut Function, config: &PassConfig) {
    optimize_traced(f, config, &mut |_, _| {});
}

/// Like [`optimize`], additionally invoking `observe(pass_name, elapsed)`
/// after every pass.
pub fn optimize_traced(
    f: &mut Function,
    config: &PassConfig,
    observe: &mut dyn FnMut(&str, Duration),
) {
    optimize_with_stats(f, config, observe);
}

/// Like [`optimize_traced`], additionally returning [`PipelineStats`].
/// This is the single source of truth for per-pass timing and fixpoint
/// breakdowns (the `bench --passes` tracker uses it), so instrumentation
/// cannot drift from the pipeline actually shipped.
pub fn optimize_with_stats(
    f: &mut Function,
    config: &PassConfig,
    observe: &mut dyn FnMut(&str, Duration),
) -> PipelineStats {
    let t = Instant::now();
    unroll::unroll(f, config.unroll_budget);
    observe("unroll", t.elapsed());
    let t = Instant::now();
    constfold::fold(f);
    observe("constfold", t.elapsed());
    let t = Instant::now();
    rename::rename(f);
    observe("rename", t.elapsed());
    let mut stats = PipelineStats::default();
    // Accumulates what forward/copyprop/DCE/contract touched since the
    // last CSE scan; the first scan sees everything dirty.
    let mut dirty = DirtyLog::all_dirty();
    let mut cache = cse::CseCache::default();
    for _ in 0..config.iterations.max(1) {
        let mut changed = false;
        let mut round = RoundStats::default();
        if config.scalar_replacement || config.load_store_analysis {
            let t = Instant::now();
            changed |= forward::forward_tracked(
                f,
                config.load_store_analysis,
                config.scalar_replacement,
                &mut dirty,
            );
            observe("forward", t.elapsed());
        }
        if config.cse {
            let t = Instant::now();
            changed |= cse::cse_incremental(f, &mut cache, &mut dirty, &mut round);
            observe("cse", t.elapsed());
        }
        if config.fma_contraction {
            let t = Instant::now();
            changed |= contract::contract_tracked(f, &mut dirty);
            observe("contract", t.elapsed());
        }
        let t = Instant::now();
        changed |= forward::copyprop_tracked(f, &mut dirty);
        observe("copyprop", t.elapsed());
        let t = Instant::now();
        changed |= dce::dce_tracked(f, &mut dirty);
        observe("dce", t.elapsed());
        round.changed = changed;
        stats.rounds.push(round);
        if !changed {
            stats.converged = true;
            break;
        }
    }
    debug_assert!(
        stats.converged || config.iterations <= stats.rounds.len(),
        "fixpoint bookkeeping out of sync"
    );
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::Affine;
    use crate::func::{BufKind, FunctionBuilder};
    use crate::instr::{BinOp, MemRef};

    /// End-to-end: a rolled scalar loop becomes straight-line code with the
    /// memory round-trip removed.
    #[test]
    fn pipeline_shrinks_round_trips() {
        let mut b = FunctionBuilder::new("p", 1);
        let x = b.buffer("x", 4, BufKind::ParamIn);
        let t = b.buffer("t", 4, BufKind::Local);
        let y = b.buffer("y", 4, BufKind::ParamOut);
        let i = b.begin_for(0, 4, 1);
        let r = b.sload(MemRef::new(x, Affine::var(i)));
        let d = b.sbin(BinOp::Mul, r, 2.0);
        b.sstore(d, MemRef::new(t, Affine::var(i)));
        b.end_for();
        let j = b.begin_for(0, 4, 1);
        let r2 = b.sload(MemRef::new(t, Affine::var(j)));
        let d2 = b.sbin(BinOp::Add, r2, 1.0);
        b.sstore(d2, MemRef::new(y, Affine::var(j)));
        b.end_for();
        let mut f = b.finish();
        optimize(&mut f, &PassConfig::default());
        // after unrolling + forwarding + DCE: loads of t and stores to t gone
        let mut loads_t = 0;
        let mut stores_t = 0;
        f.for_each_instr(&mut |ins| match ins {
            crate::instr::Instr::SLoad { src, .. } if src.buf == t => loads_t += 1,
            crate::instr::Instr::SStore { dst, .. } if dst.buf == t => stores_t += 1,
            _ => {}
        });
        assert_eq!(
            loads_t,
            0,
            "temp loads should be forwarded:\n{}",
            crate::pretty::function_to_string(&f)
        );
        assert_eq!(
            stores_t,
            0,
            "dead temp stores should be eliminated:\n{}",
            crate::pretty::function_to_string(&f)
        );
    }

    /// The default pipeline must reach its fixpoint (not the iteration
    /// cap) on representative shapes, and report it.
    #[test]
    fn default_pipeline_converges() {
        let mut b = FunctionBuilder::new("p", 1);
        let x = b.buffer("x", 8, BufKind::ParamIn);
        let t = b.buffer("t", 8, BufKind::Local);
        let y = b.buffer("y", 8, BufKind::ParamOut);
        let i = b.begin_for(0, 8, 1);
        let r = b.sload(MemRef::new(x, Affine::var(i)));
        let d = b.sbin(BinOp::Mul, r, 2.0);
        b.sstore(d, MemRef::new(t, Affine::var(i)));
        b.end_for();
        let j = b.begin_for(0, 8, 1);
        let r2 = b.sload(MemRef::new(t, Affine::var(j)));
        let d2 = b.sbin(BinOp::Add, r2, 1.0);
        b.sstore(d2, MemRef::new(y, Affine::var(j)));
        b.end_for();
        let mut f = b.finish();
        let stats = optimize_with_stats(&mut f, &PassConfig::default(), &mut |_, _| {});
        assert!(stats.converged, "cleanup must exit on a fixpoint, not the cap");
        assert!(!stats.rounds.is_empty());
        // once converged, the final round's CSE scan was either skipped or
        // touched only what the previous round changed
        let last = stats.rounds.last().unwrap();
        assert!(!last.changed);
    }

    /// A capped run (iterations = 1 on a body that needs more) reports
    /// `converged == false` instead of silently stopping.
    #[test]
    fn capped_run_is_reported() {
        let mut b = FunctionBuilder::new("p", 1);
        let x = b.buffer("x", 4, BufKind::ParamIn);
        let t = b.buffer("t", 4, BufKind::Local);
        let y = b.buffer("y", 4, BufKind::ParamOut);
        for i in 0..4 {
            let r = b.sload(MemRef::new(x, i));
            let d = b.sbin(BinOp::Mul, r, 2.0);
            b.sstore(d, MemRef::new(t, i));
            let r2 = b.sload(MemRef::new(t, i));
            let d2 = b.sbin(BinOp::Add, r2, 1.0);
            b.sstore(d2, MemRef::new(y, i));
        }
        let mut f = b.finish();
        let capped = PassConfig { iterations: 1, ..PassConfig::default() };
        let stats = optimize_with_stats(&mut f, &capped, &mut |_, _| {});
        // one round of forward+cse+copyprop+dce changes things; the loop
        // stops on the cap with work still pending
        assert_eq!(stats.rounds.len(), 1);
        assert!(stats.rounds[0].changed);
        assert!(!stats.converged, "a capped exit must be reported");
    }
}
