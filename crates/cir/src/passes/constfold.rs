//! Folding of affine conditions made constant by unrolling.
//!
//! After full unrolling, `If` conditions on induction variables become
//! constant; this pass splices in the taken branch. It also removes loops
//! whose range is statically empty.

use crate::func::{CStmt, Function};

fn fold_stmts(stmts: Vec<CStmt>) -> Vec<CStmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            CStmt::If { cond, then_, else_ } => {
                let then_ = fold_stmts(then_);
                let else_ = fold_stmts(else_);
                match cond.as_constant() {
                    Some(true) => out.extend(then_),
                    Some(false) => out.extend(else_),
                    None => {
                        if then_.is_empty() && else_.is_empty() {
                            // drop empty conditionals entirely
                        } else {
                            out.push(CStmt::If { cond, then_, else_ });
                        }
                    }
                }
            }
            CStmt::For { var, lo, hi, step, body } => {
                let body = fold_stmts(body);
                let empty_range = match (lo.as_constant(), hi.as_constant()) {
                    (Some(l), Some(h)) => h <= l,
                    _ => false,
                };
                if body.is_empty() || empty_range {
                    continue;
                }
                out.push(CStmt::For { var, lo, hi, step, body });
            }
            other => out.push(other),
        }
    }
    out
}

/// Fold constant conditions and drop dead control flow in `f`.
pub fn fold(f: &mut Function) {
    let body = std::mem::take(&mut f.body);
    f.body = fold_stmts(body);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::{Affine, CmpOp, Cond};
    use crate::func::{BufKind, FunctionBuilder};
    use crate::instr::MemRef;

    #[test]
    fn constant_true_splices_then_branch() {
        let mut b = FunctionBuilder::new("f", 1);
        let x = b.buffer("x", 2, BufKind::ParamInOut);
        b.begin_if(Cond::new(Affine::constant(1), CmpOp::Lt, Affine::constant(2)));
        let r = b.sload(MemRef::new(x, 0));
        b.sstore(r, MemRef::new(x, 1));
        b.begin_else();
        b.smov(0.0);
        b.end_if();
        let mut f = b.finish();
        fold(&mut f);
        assert_eq!(f.body.len(), 2);
        assert!(f.body.iter().all(|s| matches!(s, CStmt::I(_))));
    }

    #[test]
    fn constant_false_splices_else_branch() {
        let mut b = FunctionBuilder::new("f", 1);
        b.begin_if(Cond::new(Affine::constant(5), CmpOp::Lt, Affine::constant(2)));
        b.smov(1.0);
        b.begin_else();
        b.smov(2.0);
        b.smov(3.0);
        b.end_if();
        let mut f = b.finish();
        fold(&mut f);
        assert_eq!(f.body.len(), 2);
    }

    #[test]
    fn empty_loops_and_ifs_removed() {
        let mut b = FunctionBuilder::new("f", 1);
        b.begin_for(0, 4, 1);
        b.begin_if(Cond::new(Affine::constant(0), CmpOp::Eq, Affine::constant(1)));
        b.end_if();
        b.end_for();
        let mut f = b.finish();
        fold(&mut f);
        assert!(f.body.is_empty());
    }

    #[test]
    fn symbolic_conditions_survive() {
        let mut b = FunctionBuilder::new("f", 1);
        let i = b.begin_for(0, 4, 1);
        b.begin_if(Cond::new(Affine::var(i), CmpOp::Lt, Affine::constant(2)));
        b.smov(1.0);
        b.end_if();
        b.end_for();
        let mut f = b.finish();
        fold(&mut f);
        match &f.body[0] {
            CStmt::For { body, .. } => assert!(matches!(body[0], CStmt::If { .. })),
            other => panic!("unexpected {other:?}"),
        }
    }
}
