//! Common-subexpression elimination within straight-line regions.
//!
//! Pure register computations (arithmetic, broadcasts, shuffles, blends)
//! and loads are keyed on their operation and the *versions* of their
//! inputs; a repeated computation is replaced by a register move, which
//! copy propagation and DCE then dissolve. Loads participate with a
//! per-buffer epoch that is bumped by any store to the buffer (distinct
//! buffers never alias, by C-IR construction).

use crate::func::{CStmt, Function};
use crate::instr::{Instr, SOperand, SReg, VReg};
use std::collections::HashMap;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    SBin(crate::instr::BinOp, SKey, SKey),
    SSqrt(SKey),
    SLoad(usize, i64, u64),
    VBin(crate::instr::BinOp, VKey, VKey),
    VBroadcast(SKey),
    VShuffle(VKey, VKey, Vec<crate::instr::LaneSel>),
    VBlend(VKey, VKey, Vec<bool>),
    VLoad(usize, String, Vec<Option<i64>>, u64),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum SKey {
    Reg(SReg, u32),
    Imm(u64),
}

type VKey = (VReg, u32);

#[derive(Default)]
struct Cse {
    svers: HashMap<SReg, u32>,
    vvers: HashMap<VReg, u32>,
    epochs: HashMap<usize, u64>,
    avail_s: HashMap<Key, (SReg, u32)>,
    avail_v: HashMap<Key, (VReg, u32)>,
}

impl Cse {
    fn sver(&self, r: SReg) -> u32 {
        self.svers.get(&r).copied().unwrap_or(0)
    }
    fn vver(&self, r: VReg) -> u32 {
        self.vvers.get(&r).copied().unwrap_or(0)
    }
    fn epoch(&self, b: usize) -> u64 {
        self.epochs.get(&b).copied().unwrap_or(0)
    }
    fn skey(&self, o: &SOperand) -> SKey {
        match o {
            SOperand::Reg(r) => SKey::Reg(*r, self.sver(*r)),
            SOperand::Imm(v) => SKey::Imm(v.to_bits()),
        }
    }
    fn vkey(&self, r: VReg) -> VKey {
        (r, self.vver(r))
    }
}

fn instr_key(st: &Cse, ins: &Instr) -> Option<Key> {
    match ins {
        Instr::SBin { op, a, b, .. } => {
            let (ka, kb) = (st.skey(a), st.skey(b));
            // commutative ops: canonical operand order
            let (ka, kb) = match op {
                crate::instr::BinOp::Add | crate::instr::BinOp::Mul => {
                    if format!("{ka:?}") <= format!("{kb:?}") {
                        (ka, kb)
                    } else {
                        (kb, ka)
                    }
                }
                _ => (ka, kb),
            };
            Some(Key::SBin(*op, ka, kb))
        }
        Instr::SSqrt { a, .. } => Some(Key::SSqrt(st.skey(a))),
        Instr::SLoad { src, .. } => src
            .offset
            .as_constant()
            .map(|off| Key::SLoad(src.buf.0, off, st.epoch(src.buf.0))),
        Instr::VBin { op, a, b, .. } => {
            let (ka, kb) = (st.vkey(*a), st.vkey(*b));
            let (ka, kb) = match op {
                crate::instr::BinOp::Add | crate::instr::BinOp::Mul => {
                    if ka <= kb {
                        (ka, kb)
                    } else {
                        (kb, ka)
                    }
                }
                _ => (ka, kb),
            };
            Some(Key::VBin(*op, ka, kb))
        }
        Instr::VBroadcast { src, .. } => Some(Key::VBroadcast(st.skey(src))),
        Instr::VShuffle { a, b, sel, .. } => {
            Some(Key::VShuffle(st.vkey(*a), st.vkey(*b), sel.clone()))
        }
        Instr::VBlend { a, b, mask, .. } => {
            Some(Key::VBlend(st.vkey(*a), st.vkey(*b), mask.clone()))
        }
        Instr::VLoad { base, lanes, .. } => base.offset.as_constant().map(|off| {
            Key::VLoad(
                base.buf.0,
                off.to_string(),
                lanes.clone(),
                st.epoch(base.buf.0),
            )
        }),
        _ => None,
    }
}

fn cse_block(instrs: Vec<Instr>, st: &mut Cse) -> Vec<Instr> {
    let mut out = Vec::new();
    for ins in instrs {
        let key = instr_key(st, &ins);
        let mut replaced = false;
        if let Some(k) = &key {
            if let Some(sdst) = ins.sreg_write() {
                if let Some((r, v)) = st.avail_s.get(k) {
                    if st.sver(*r) == *v && *r != sdst {
                        out.push(Instr::SMov { dst: sdst, a: (*r).into() });
                        replaced = true;
                    }
                }
            } else if let Some(vdst) = ins.vreg_write() {
                if let Some((r, v)) = st.avail_v.get(k) {
                    if st.vver(*r) == *v && *r != vdst {
                        out.push(Instr::VMov { dst: vdst, src: *r });
                        replaced = true;
                    }
                }
            }
        }
        if !replaced {
            out.push(ins.clone());
        }
        // effects: bump versions/epochs, then record availability
        match &ins {
            Instr::SStore { dst, .. } => {
                *st.epochs.entry(dst.buf.0).or_insert(0) += 1;
            }
            Instr::VStore { base, .. } => {
                *st.epochs.entry(base.buf.0).or_insert(0) += 1;
            }
            Instr::Call { .. } => {
                st.epochs.values_mut().for_each(|e| *e += 1);
                // calls clobber nothing in registers, but be safe:
                st.avail_s.clear();
                st.avail_v.clear();
            }
            _ => {}
        }
        if let Some(r) = ins.sreg_write() {
            *st.svers.entry(r).or_insert(0) += 1;
        }
        if let Some(r) = ins.vreg_write() {
            *st.vvers.entry(r).or_insert(0) += 1;
        }
        if let Some(k) = key {
            if let Some(r) = ins.sreg_write() {
                st.avail_s.insert(k, (r, st.sver(r)));
            } else if let Some(r) = ins.vreg_write() {
                st.avail_v.insert(k, (r, st.vver(r)));
            }
        }
    }
    out
}

fn walk(stmts: Vec<CStmt>) -> Vec<CStmt> {
    let mut out = Vec::new();
    let mut st = Cse::default();
    let mut run: Vec<Instr> = Vec::new();
    let flush = |run: &mut Vec<Instr>, st: &mut Cse, out: &mut Vec<CStmt>| {
        if !run.is_empty() {
            out.extend(cse_block(std::mem::take(run), st).into_iter().map(CStmt::I));
        }
    };
    for s in stmts {
        match s {
            CStmt::I(i) => run.push(i),
            CStmt::For { var, lo, hi, step, body } => {
                flush(&mut run, &mut st, &mut out);
                out.push(CStmt::For { var, lo, hi, step, body: walk(body) });
                st = Cse::default();
            }
            CStmt::If { cond, then_, else_ } => {
                flush(&mut run, &mut st, &mut out);
                out.push(CStmt::If { cond, then_: walk(then_), else_: walk(else_) });
                st = Cse::default();
            }
        }
    }
    flush(&mut run, &mut st, &mut out);
    out
}

/// Eliminate common subexpressions in `f`.
pub fn cse(f: &mut Function) {
    let body = std::mem::take(&mut f.body);
    f.body = walk(body);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{BufKind, FunctionBuilder};
    use crate::instr::{BinOp, MemRef};

    #[test]
    fn repeated_scalar_computation_becomes_mov() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 2, BufKind::ParamOut);
        let a = b.smov(3.0);
        let x = b.sbin(BinOp::Mul, a, a);
        let y = b.sbin(BinOp::Mul, a, a);
        b.sstore(x, MemRef::new(t, 0));
        b.sstore(y, MemRef::new(t, 1));
        let mut f = b.finish();
        cse(&mut f);
        let mut muls = 0;
        let mut movs = 0;
        f.for_each_instr(&mut |i| match i {
            Instr::SBin { op: BinOp::Mul, .. } => muls += 1,
            Instr::SMov { .. } => movs += 1,
            _ => {}
        });
        assert_eq!(muls, 1);
        assert_eq!(movs, 2); // the original mov + the CSE replacement
    }

    #[test]
    fn commutative_ops_match_reversed_operands() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 2, BufKind::ParamOut);
        let a = b.smov(3.0);
        let c = b.smov(4.0);
        let x = b.sbin(BinOp::Add, a, c);
        let y = b.sbin(BinOp::Add, c, a);
        b.sstore(x, MemRef::new(t, 0));
        b.sstore(y, MemRef::new(t, 1));
        let mut f = b.finish();
        cse(&mut f);
        let mut adds = 0;
        f.for_each_instr(&mut |i| {
            if matches!(i, Instr::SBin { op: BinOp::Add, .. }) {
                adds += 1;
            }
        });
        assert_eq!(adds, 1);
    }

    #[test]
    fn subtraction_is_not_commuted() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 2, BufKind::ParamOut);
        let a = b.smov(3.0);
        let c = b.smov(4.0);
        let x = b.sbin(BinOp::Sub, a, c);
        let y = b.sbin(BinOp::Sub, c, a);
        b.sstore(x, MemRef::new(t, 0));
        b.sstore(y, MemRef::new(t, 1));
        let mut f = b.finish();
        cse(&mut f);
        let mut subs = 0;
        f.for_each_instr(&mut |i| {
            if matches!(i, Instr::SBin { op: BinOp::Sub, .. }) {
                subs += 1;
            }
        });
        assert_eq!(subs, 2);
    }

    #[test]
    fn store_bumps_buffer_epoch_for_loads() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 2, BufKind::ParamInOut);
        let l1 = b.sload(MemRef::new(t, 0));
        b.sstore(1.0, MemRef::new(t, 0));
        let l2 = b.sload(MemRef::new(t, 0));
        b.sstore(l1, MemRef::new(t, 1));
        b.sstore(l2, MemRef::new(t, 1));
        let mut f = b.finish();
        cse(&mut f);
        let mut loads = 0;
        f.for_each_instr(&mut |i| {
            if matches!(i, Instr::SLoad { .. }) {
                loads += 1;
            }
        });
        assert_eq!(loads, 2, "store must invalidate the load CSE entry");
    }

    #[test]
    fn redundant_load_removed() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 2, BufKind::ParamInOut);
        let l1 = b.sload(MemRef::new(t, 0));
        let l2 = b.sload(MemRef::new(t, 0));
        b.sstore(l1, MemRef::new(t, 1));
        b.sstore(l2, MemRef::new(t, 1));
        let mut f = b.finish();
        cse(&mut f);
        let mut loads = 0;
        f.for_each_instr(&mut |i| {
            if matches!(i, Instr::SLoad { .. }) {
                loads += 1;
            }
        });
        assert_eq!(loads, 1);
    }

    #[test]
    fn vector_cse_emits_vmov() {
        let mut b = FunctionBuilder::new("f", 4);
        let t = b.buffer("t", 8, BufKind::ParamInOut);
        let v1 = b.vload_contig(MemRef::new(t, 0));
        let x = b.vbin(BinOp::Mul, v1, v1);
        let y = b.vbin(BinOp::Mul, v1, v1);
        b.vstore_contig(x, MemRef::new(t, 0));
        b.vstore_contig(y, MemRef::new(t, 4));
        let mut f = b.finish();
        cse(&mut f);
        let mut vmuls = 0;
        let mut vmovs = 0;
        f.for_each_instr(&mut |i| match i {
            Instr::VBin { op: BinOp::Mul, .. } => vmuls += 1,
            Instr::VMov { .. } => vmovs += 1,
            _ => {}
        });
        assert_eq!(vmuls, 1);
        assert_eq!(vmovs, 1);
    }
}
