//! Common-subexpression elimination within straight-line regions.
//!
//! Pure register computations (arithmetic, broadcasts, shuffles, blends)
//! and loads are keyed on their operation and the *versions* of their
//! inputs; a repeated computation is replaced by a register move, which
//! copy propagation and DCE then dissolve. Loads participate with a
//! per-buffer epoch that is bumped by any store to the buffer (distinct
//! buffers never alias, by C-IR construction).
//!
//! Throughput notes: the pass streams over the body and rewrites repeated
//! computations *in place* (no rebuilt instruction vectors, no clones);
//! register versions and buffer epochs live in dense tables indexed by
//! register/buffer id; and commutative canonicalization uses the derived
//! [`Ord`] on the key types directly.
//!
//! Across cleanup-fixpoint rounds the pass is **incremental**
//! ([`cse_incremental`]): a [`CseCache`] memoizes each instruction's
//! hashed key under its destination register, and a round re-keys only
//! instructions whose destination or operands appear in the
//! [`DirtyLog`] seeded by the other cleanup passes. The availability
//! maps and version/epoch tables are still rebuilt from scratch every
//! round — only key *construction and hashing* (the dominant cost at
//! tens of thousands of instructions) is memoized — so the rewrite
//! decisions are bit-identical to a from-scratch run by construction.
//!
//! Reusing a memoized key is sound because a key depends only on the
//! instruction's content and its operands' version/epoch numbering at
//! that point of the scan, and every event that can change either marks
//! the dirty log (see the seeding rules in [`super`]): content rewrites
//! mark the destination; a deleted definition marks its register (reader
//! versions may shift); a deleted store marks its buffer (load epochs
//! shift); region merges mark everything. Registers with more than one
//! static definition are never memoized (one slot cannot represent two
//! program points), and debug builds recompute every reused key and
//! assert equality.

use crate::func::{CStmt, Function};
use crate::fxhash::{FxHashMap, FxHashSet, FxHasher};
use crate::instr::{BinOp, FmaKind, Instr, LaneSel, SOperand, SReg, VReg};
use crate::passes::{Consumer, DirtyLog, DirtyView, RoundStats};
use std::hash::{Hash, Hasher};
use std::rc::Rc;

#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Key {
    SBin(BinOp, SKey, SKey),
    SFma(FmaKind, SKey, SKey, SKey),
    SSqrt(SKey),
    SLoad(usize, i64, u64),
    VBin(BinOp, VKey, VKey),
    VFma(FmaKind, VKey, VKey, VKey),
    VBroadcast(SKey),
    VShuffle(VKey, VKey, Vec<LaneSel>),
    VBlend(VKey, VKey, Vec<bool>),
    VLoad(usize, i64, Vec<Option<i64>>, u64),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum SKey {
    Reg(SReg, u32),
    Imm(u64),
}

type VKey = (VReg, u32);

/// A CSE key with its hash precomputed once. Used both as the memoized
/// per-register cache entry and as the availability-map key, so a reused
/// key is never re-hashed: `Hash` just writes the stored 64-bit value,
/// and `Eq` falls back to full key comparison only on hash collision.
#[derive(Debug, Clone)]
struct CachedKey {
    hash: u64,
    key: Rc<Key>,
}

impl CachedKey {
    fn new(key: Key) -> Self {
        let mut h = FxHasher::default();
        key.hash(&mut h);
        CachedKey { hash: h.finish(), key: Rc::new(key) }
    }
}

impl PartialEq for CachedKey {
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash && self.key == other.key
    }
}
impl Eq for CachedKey {}
impl Hash for CachedKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// Memoized key of the (single) instruction defining a register.
#[derive(Debug, Clone, Default)]
enum Slot {
    /// No definition seen yet (or register unused).
    #[default]
    Unknown,
    /// More than one static definition (cross-region first-definitions,
    /// rename copy-backs): never memoized, one slot cannot stand for two
    /// program points.
    Multi,
    /// The definition is not CSE-keyed (moves, extracts, symbolic-offset
    /// loads).
    NonKeyed,
    /// The definition's key, hashed once.
    Keyed(CachedKey),
}

/// Cross-round memo of per-definition CSE keys (see module docs).
#[derive(Debug, Default)]
pub struct CseCache {
    init: bool,
    s_slots: Vec<Slot>,
    v_slots: Vec<Slot>,
}

impl CseCache {
    /// Whether the first full scan has populated the cache.
    pub fn is_initialized(&self) -> bool {
        self.init
    }

    /// Size the slot tables and mark multi-definition registers.
    fn prepare(&mut self, f: &Function) {
        self.s_slots = vec![Slot::Unknown; f.n_sregs];
        self.v_slots = vec![Slot::Unknown; f.n_vregs];
        let mut sdefs = vec![0u8; f.n_sregs];
        let mut vdefs = vec![0u8; f.n_vregs];
        f.for_each_instr(&mut |ins| {
            if let Some(r) = ins.sreg_write() {
                super::grow_update(&mut sdefs, r.0, |c| *c = c.saturating_add(1));
            }
            if let Some(r) = ins.vreg_write() {
                super::grow_update(&mut vdefs, r.0, |c| *c = c.saturating_add(1));
            }
        });
        for (slot, n) in self.s_slots.iter_mut().zip(&sdefs) {
            if *n >= 2 {
                *slot = Slot::Multi;
            }
        }
        for (slot, n) in self.v_slots.iter_mut().zip(&vdefs) {
            if *n >= 2 {
                *slot = Slot::Multi;
            }
        }
    }

    fn s_slot(&self, r: SReg) -> &Slot {
        self.s_slots.get(r.0).unwrap_or(&Slot::Unknown)
    }
    fn v_slot(&self, r: VReg) -> &Slot {
        self.v_slots.get(r.0).unwrap_or(&Slot::Unknown)
    }
    fn set_s(&mut self, r: SReg, slot: Slot) {
        super::grow_update(&mut self.s_slots, r.0, |s| {
            if !matches!(s, Slot::Multi) {
                *s = slot;
            }
        });
    }
    fn set_v(&mut self, r: VReg, slot: Slot) {
        super::grow_update(&mut self.v_slots, r.0, |s| {
            if !matches!(s, Slot::Multi) {
                *s = slot;
            }
        });
    }
}

/// Pass state: dense version/epoch tables plus the availability maps.
///
/// Table slots are `(generation, value)` pairs; a slot from an older
/// generation reads as the default, which makes [`Cse::reset`] O(1)
/// regardless of table size (no per-boundary refills).
struct Cse {
    gen: u32,
    svers: Vec<(u32, u32)>,
    vvers: Vec<(u32, u32)>,
    epochs: Vec<(u32, u64)>,
    avail_s: FxHashMap<CachedKey, (SReg, u32)>,
    avail_v: FxHashMap<CachedKey, (VReg, u32)>,
}

impl Cse {
    fn for_function(f: &Function) -> Self {
        Cse {
            gen: 0,
            svers: vec![(0, 0); f.n_sregs],
            vvers: vec![(0, 0); f.n_vregs],
            epochs: vec![(0, 0); f.buffers.len()],
            avail_s: FxHashMap::default(),
            avail_v: FxHashMap::default(),
        }
    }

    /// Forget everything (control-flow boundary).
    fn reset(&mut self) {
        self.gen += 1;
        self.avail_s.clear();
        self.avail_v.clear();
    }

    fn sver(&self, r: SReg) -> u32 {
        match self.svers.get(r.0) {
            Some((g, v)) if *g == self.gen => *v,
            _ => 0,
        }
    }
    fn vver(&self, r: VReg) -> u32 {
        match self.vvers.get(r.0) {
            Some((g, v)) if *g == self.gen => *v,
            _ => 0,
        }
    }
    fn epoch(&self, b: usize) -> u64 {
        match self.epochs.get(b) {
            Some((g, e)) if *g == self.gen => *e,
            _ => 0,
        }
    }
    fn bump_s(&mut self, r: SReg) {
        let gen = self.gen;
        super::grow_update(&mut self.svers, r.0, |s| {
            *s = if s.0 == gen { (gen, s.1 + 1) } else { (gen, 1) }
        });
    }
    fn bump_v(&mut self, r: VReg) {
        let gen = self.gen;
        super::grow_update(&mut self.vvers, r.0, |s| {
            *s = if s.0 == gen { (gen, s.1 + 1) } else { (gen, 1) }
        });
    }
    fn bump_epoch(&mut self, b: usize) {
        let gen = self.gen;
        super::grow_update(&mut self.epochs, b, |s| {
            *s = if s.0 == gen { (gen, s.1 + 1) } else { (gen, 1) }
        });
    }
    fn skey(&self, o: &SOperand) -> SKey {
        match o {
            SOperand::Reg(r) => SKey::Reg(*r, self.sver(*r)),
            SOperand::Imm(v) => SKey::Imm(v.to_bits()),
        }
    }
    fn vkey(&self, r: VReg) -> VKey {
        (r, self.vver(r))
    }
}

fn instr_key(st: &Cse, ins: &Instr) -> Option<Key> {
    match ins {
        Instr::SBin { op, a, b, .. } => {
            let (ka, kb) = (st.skey(a), st.skey(b));
            // commutative ops: canonical operand order
            let (ka, kb) = match op {
                BinOp::Add | BinOp::Mul if kb < ka => (kb, ka),
                _ => (ka, kb),
            };
            Some(Key::SBin(*op, ka, kb))
        }
        Instr::SFma { kind, a, b, c, .. } => {
            // the product commutes; the addend does not
            let (ka, kb) = (st.skey(a), st.skey(b));
            let (ka, kb) = if kb < ka { (kb, ka) } else { (ka, kb) };
            Some(Key::SFma(*kind, ka, kb, st.skey(c)))
        }
        Instr::SSqrt { a, .. } => Some(Key::SSqrt(st.skey(a))),
        Instr::SLoad { src, .. } => {
            src.offset.as_constant().map(|off| Key::SLoad(src.buf.0, off, st.epoch(src.buf.0)))
        }
        Instr::VBin { op, a, b, .. } => {
            let (ka, kb) = (st.vkey(*a), st.vkey(*b));
            let (ka, kb) = match op {
                BinOp::Add | BinOp::Mul if kb < ka => (kb, ka),
                _ => (ka, kb),
            };
            Some(Key::VBin(*op, ka, kb))
        }
        Instr::VFma { kind, a, b, c, .. } => {
            let (ka, kb) = (st.vkey(*a), st.vkey(*b));
            let (ka, kb) = if kb < ka { (kb, ka) } else { (ka, kb) };
            Some(Key::VFma(*kind, ka, kb, st.vkey(*c)))
        }
        Instr::VBroadcast { src, .. } => Some(Key::VBroadcast(st.skey(src))),
        Instr::VShuffle { a, b, sel, .. } => {
            Some(Key::VShuffle(st.vkey(*a), st.vkey(*b), sel.clone()))
        }
        Instr::VBlend { a, b, mask, .. } => {
            Some(Key::VBlend(st.vkey(*a), st.vkey(*b), mask.clone()))
        }
        Instr::VLoad { base, lanes, .. } => base
            .offset
            .as_constant()
            .map(|off| Key::VLoad(base.buf.0, off, lanes.clone(), st.epoch(base.buf.0))),
        _ => None,
    }
}

/// Does a fresh key computation for `ins` depend on anything dirty?
/// Allocation-free by matching operands directly (the generic read
/// accessors build `Vec`s, which would dominate the clean path).
fn reads_dirty(dirty: &DirtyLog, view: &DirtyView, ins: &Instr) -> bool {
    let s = |o: &SOperand| matches!(o, SOperand::Reg(r) if dirty.s_dirty_at(view, *r));
    match ins {
        Instr::SBin { a, b, .. } => s(a) || s(b),
        Instr::SFma { a, b, c, .. } => s(a) || s(b) || s(c),
        Instr::SSqrt { a, .. } => s(a),
        Instr::SLoad { src, .. } => dirty.buf_dirty_at(view, src.buf.0),
        Instr::VBin { a, b, .. } => dirty.v_dirty_at(view, *a) || dirty.v_dirty_at(view, *b),
        Instr::VFma { a, b, c, .. } => {
            dirty.v_dirty_at(view, *a) || dirty.v_dirty_at(view, *b) || dirty.v_dirty_at(view, *c)
        }
        Instr::VBroadcast { src, .. } => s(src),
        Instr::VShuffle { a, b, .. } | Instr::VBlend { a, b, .. } => {
            dirty.v_dirty_at(view, *a) || dirty.v_dirty_at(view, *b)
        }
        Instr::VLoad { base, .. } => dirty.buf_dirty_at(view, base.buf.0),
        // non-keyed shapes: the (absent) key cannot depend on operands
        _ => false,
    }
}

/// One incremental scan's working state over the shared cache.
struct Inc<'a> {
    cache: &'a mut CseCache,
    dirty: &'a mut DirtyLog,
    view: DirtyView,
    /// Full-recompute mode: first scan, or everything dirty.
    full: bool,
    /// Hashes of keys (re)computed by dirty instructions earlier in this
    /// scan. A *clean* instruction's availability lookup can only resolve
    /// differently than last scan if some earlier instruction's key
    /// changed **to or from** this instruction's key, or the match's
    /// version validity flipped — and every one of those events passes
    /// the key-producing instruction through the recompute path (its
    /// definition register is marked), landing its key here. A clean
    /// instruction whose memoized key is absent from this set therefore
    /// provably repeats last scan's "no rewrite" and skips the lookup
    /// (hash collisions merely force a redundant lookup). Maintained only
    /// in incremental scans (`!full`).
    fresh_keys: FxHashSet<u64>,
    /// Whether the previous instruction was replayed without a lookup —
    /// open replayed segments are counted once ([`DirtyLog::note_skip`]).
    seg_open: bool,
    rekeyed: usize,
    reused: usize,
}

/// Process one instruction, replacing repeats with moves in place.
/// Returns `true` when the instruction was rewritten.
fn process(st: &mut Cse, inc: &mut Inc, ins: &mut Instr) -> bool {
    let sdst = ins.sreg_write();
    let vdst = ins.vreg_write();
    // fetch the memoized key, or (re)compute and memoize it
    let mut replayed = false;
    let key: Option<CachedKey> = {
        let slot = match (sdst, vdst) {
            (Some(r), _) => Some(inc.cache.s_slot(r)),
            (_, Some(r)) => Some(inc.cache.v_slot(r)),
            _ => None,
        };
        let def_dirty = match (sdst, vdst) {
            (Some(r), _) => inc.dirty.s_dirty_at(&inc.view, r),
            (_, Some(r)) => inc.dirty.v_dirty_at(&inc.view, r),
            _ => true,
        };
        let reusable = !inc.full
            && !def_dirty
            && matches!(slot, Some(Slot::NonKeyed) | Some(Slot::Keyed(_)))
            && !reads_dirty(inc.dirty, &inc.view, ins);
        if reusable {
            inc.reused += 1;
            let cached = match slot {
                Some(Slot::Keyed(k)) => Some(k.clone()),
                _ => None,
            };
            #[cfg(debug_assertions)]
            {
                let fresh = instr_key(st, ins);
                assert_eq!(
                    cached.as_ref().map(|c| (*c.key).clone()),
                    fresh,
                    "incremental CSE reused a stale key (dirty-seeding rule violated) \
                     for {ins:?}"
                );
            }
            // Replay fast path: a clean instruction whose key no dirty
            // instruction re-produced this scan repeats last scan's
            // lookup miss — only its state effects are applied below.
            replayed = match &cached {
                None => true,
                Some(k) => !inc.fresh_keys.contains(&k.hash),
            };
            cached
        } else {
            let fresh = instr_key(st, ins).map(CachedKey::new);
            if let Some(k) = &fresh {
                if !inc.full {
                    inc.fresh_keys.insert(k.hash);
                }
            }
            if sdst.is_some() || vdst.is_some() {
                inc.rekeyed += 1;
                let slot = match &fresh {
                    Some(k) => Slot::Keyed(k.clone()),
                    None => Slot::NonKeyed,
                };
                if let Some(r) = sdst {
                    inc.cache.set_s(r, slot);
                } else if let Some(r) = vdst {
                    inc.cache.set_v(r, slot);
                }
            }
            fresh
        }
    };
    if replayed {
        if !inc.seg_open {
            inc.dirty.note_skip();
            inc.seg_open = true;
        }
    } else {
        inc.seg_open = false;
    }
    let mut replaced = false;
    if let Some(k) = &key {
        if replayed {
            // availability lookup provably repeats last scan's miss
        } else if let Some(sdst) = sdst {
            if let Some((r, v)) = st.avail_s.get(k) {
                if st.sver(*r) == *v && *r != sdst {
                    // the replaced computation's operands each lose a
                    // read (deadness/single-use elsewhere may change)
                    super::mark_reads(inc.dirty, ins);
                    *ins = Instr::SMov { dst: sdst, a: (*r).into() };
                    inc.dirty.mark_s(sdst);
                    replaced = true;
                    // the definition is a plain move now
                    inc.cache.set_s(sdst, Slot::NonKeyed);
                }
            }
        } else if let Some(vdst) = vdst {
            if let Some((r, v)) = st.avail_v.get(k) {
                if st.vver(*r) == *v && *r != vdst {
                    super::mark_reads(inc.dirty, ins);
                    *ins = Instr::VMov { dst: vdst, src: *r };
                    inc.dirty.mark_v(vdst);
                    replaced = true;
                    inc.cache.set_v(vdst, Slot::NonKeyed);
                }
            }
        }
    }
    // effects: bump versions/epochs, then record availability
    match &*ins {
        Instr::SStore { dst, .. } => st.bump_epoch(dst.buf.0),
        Instr::VStore { base, .. } => st.bump_epoch(base.buf.0),
        Instr::Call { .. } => {
            let gen = st.gen;
            st.epochs
                .iter_mut()
                .for_each(|s| *s = if s.0 == gen { (gen, s.1 + 1) } else { (gen, 1) });
            // calls clobber nothing in registers, but be safe:
            st.avail_s.clear();
            st.avail_v.clear();
        }
        _ => {}
    }
    if let Some(r) = ins.sreg_write() {
        st.bump_s(r);
    }
    if let Some(r) = ins.vreg_write() {
        st.bump_v(r);
    }
    if let Some(k) = key {
        if let Some(r) = ins.sreg_write() {
            let ver = st.sver(r);
            st.avail_s.insert(k, (r, ver));
        } else if let Some(r) = ins.vreg_write() {
            let ver = st.vver(r);
            st.avail_v.insert(k, (r, ver));
        }
    }
    replaced
}

fn walk(stmts: &mut [CStmt], st: &mut Cse, inc: &mut Inc) -> bool {
    let mut changed = false;
    // Clean-run skipping (block memo): a run with no dirty definition,
    // operand, or buffer for this pass re-keys to the same keys and
    // repeats the same (absent) rewrites, so it is skipped wholesale —
    // availability never crosses the control-flow boundaries that
    // delimit runs.
    let mut run_end = 0;
    let mut run_clean = false;
    for r in 0..stmts.len() {
        if r >= run_end {
            if matches!(stmts[r], CStmt::I(_)) {
                let (end, clean) = super::scan_run(inc.dirty, &inc.view, stmts, r);
                run_end = end;
                run_clean = clean && !inc.full;
                if run_clean {
                    inc.dirty.note_skip();
                }
            } else {
                run_end = r + 1;
                run_clean = false;
            }
        }
        match &mut stmts[r] {
            CStmt::I(_) if run_clean => {}
            CStmt::I(ins) => changed |= process(st, inc, ins),
            CStmt::For { body, .. } => {
                st.reset();
                inc.seg_open = false;
                changed |= walk(body, st, inc);
                st.reset();
                inc.seg_open = false;
            }
            CStmt::If { then_, else_, .. } => {
                st.reset();
                inc.seg_open = false;
                changed |= walk(then_, st, inc);
                st.reset();
                inc.seg_open = false;
                changed |= walk(else_, st, inc);
                st.reset();
                inc.seg_open = false;
            }
        }
    }
    changed
}

/// Eliminate common subexpressions in `f`, reusing memoized keys from
/// `cache` for instructions untouched since the last scan (per `dirty`).
/// Consumes and clears the dirty log; returns whether anything changed.
///
/// When the cache is warm and the dirty log is empty the scan is skipped
/// outright: CSE is idempotent on its own output within the post-rename
/// SSA regions, so a clean re-run could not change anything.
pub fn cse_incremental(
    f: &mut Function,
    cache: &mut CseCache,
    dirty: &mut DirtyLog,
    round: &mut RoundStats,
) -> bool {
    if cache.init && dirty.is_clean_for(Consumer::Cse) {
        round.cse_skipped = true;
        return false;
    }
    let view = dirty.begin(Consumer::Cse);
    let full = !cache.init || dirty.is_all_at(&view);
    if !cache.init {
        cache.prepare(f);
    }
    let mut st = Cse::for_function(f);
    let mut inc = Inc {
        cache,
        dirty,
        view,
        full,
        fresh_keys: FxHashSet::default(),
        seg_open: false,
        rekeyed: 0,
        reused: 0,
    };
    let changed = walk(&mut f.body, &mut st, &mut inc);
    round.cse_rekeyed += inc.rekeyed;
    round.cse_reused += inc.reused;
    cache.init = true;
    // Commit past this scan's own rewrite marks: a rewrite leaves a plain
    // move that neither keys nor shifts version numbering, so a rescan of
    // it is a no-op for CSE (the marks stay visible to the *other*
    // consumers, which is what they are for).
    dirty.commit_now(Consumer::Cse);
    changed
}

/// Eliminate common subexpressions in `f`; returns whether anything
/// changed. One-shot form of [`cse_incremental`] (fresh cache, all
/// dirty).
pub fn cse(f: &mut Function) -> bool {
    let mut cache = CseCache::default();
    let mut dirty = DirtyLog::all_dirty();
    let mut round = RoundStats::default();
    cse_incremental(f, &mut cache, &mut dirty, &mut round)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{BufKind, FunctionBuilder};
    use crate::instr::{BinOp, MemRef};

    #[test]
    fn repeated_scalar_computation_becomes_mov() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 2, BufKind::ParamOut);
        let a = b.smov(3.0);
        let x = b.sbin(BinOp::Mul, a, a);
        let y = b.sbin(BinOp::Mul, a, a);
        b.sstore(x, MemRef::new(t, 0));
        b.sstore(y, MemRef::new(t, 1));
        let mut f = b.finish();
        assert!(cse(&mut f), "must report a change");
        let mut muls = 0;
        let mut movs = 0;
        f.for_each_instr(&mut |i| match i {
            Instr::SBin { op: BinOp::Mul, .. } => muls += 1,
            Instr::SMov { .. } => movs += 1,
            _ => {}
        });
        assert_eq!(muls, 1);
        assert_eq!(movs, 2); // the original mov + the CSE replacement
    }

    #[test]
    fn commutative_ops_match_reversed_operands() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 2, BufKind::ParamOut);
        let a = b.smov(3.0);
        let c = b.smov(4.0);
        let x = b.sbin(BinOp::Add, a, c);
        let y = b.sbin(BinOp::Add, c, a);
        b.sstore(x, MemRef::new(t, 0));
        b.sstore(y, MemRef::new(t, 1));
        let mut f = b.finish();
        cse(&mut f);
        let mut adds = 0;
        f.for_each_instr(&mut |i| {
            if matches!(i, Instr::SBin { op: BinOp::Add, .. }) {
                adds += 1;
            }
        });
        assert_eq!(adds, 1);
    }

    #[test]
    fn commutative_imm_reg_mixes_match() {
        // Imm/Reg operand orders must canonicalize to the same key.
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 2, BufKind::ParamOut);
        let a = b.smov(3.0);
        let x = b.sbin(BinOp::Mul, a, 2.0);
        let y = b.sbin(BinOp::Mul, 2.0, a);
        b.sstore(x, MemRef::new(t, 0));
        b.sstore(y, MemRef::new(t, 1));
        let mut f = b.finish();
        cse(&mut f);
        let mut muls = 0;
        f.for_each_instr(&mut |i| {
            if matches!(i, Instr::SBin { op: BinOp::Mul, .. }) {
                muls += 1;
            }
        });
        assert_eq!(muls, 1);
    }

    #[test]
    fn subtraction_is_not_commuted() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 2, BufKind::ParamOut);
        let a = b.smov(3.0);
        let c = b.smov(4.0);
        let x = b.sbin(BinOp::Sub, a, c);
        let y = b.sbin(BinOp::Sub, c, a);
        b.sstore(x, MemRef::new(t, 0));
        b.sstore(y, MemRef::new(t, 1));
        let mut f = b.finish();
        cse(&mut f);
        let mut subs = 0;
        f.for_each_instr(&mut |i| {
            if matches!(i, Instr::SBin { op: BinOp::Sub, .. }) {
                subs += 1;
            }
        });
        assert_eq!(subs, 2);
    }

    #[test]
    fn store_bumps_buffer_epoch_for_loads() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 2, BufKind::ParamInOut);
        let l1 = b.sload(MemRef::new(t, 0));
        b.sstore(1.0, MemRef::new(t, 0));
        let l2 = b.sload(MemRef::new(t, 0));
        b.sstore(l1, MemRef::new(t, 1));
        b.sstore(l2, MemRef::new(t, 1));
        let mut f = b.finish();
        cse(&mut f);
        let mut loads = 0;
        f.for_each_instr(&mut |i| {
            if matches!(i, Instr::SLoad { .. }) {
                loads += 1;
            }
        });
        assert_eq!(loads, 2, "store must invalidate the load CSE entry");
    }

    #[test]
    fn redundant_load_removed() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 2, BufKind::ParamInOut);
        let l1 = b.sload(MemRef::new(t, 0));
        let l2 = b.sload(MemRef::new(t, 0));
        b.sstore(l1, MemRef::new(t, 1));
        b.sstore(l2, MemRef::new(t, 1));
        let mut f = b.finish();
        cse(&mut f);
        let mut loads = 0;
        f.for_each_instr(&mut |i| {
            if matches!(i, Instr::SLoad { .. }) {
                loads += 1;
            }
        });
        assert_eq!(loads, 1);
    }

    #[test]
    fn vector_cse_emits_vmov() {
        let mut b = FunctionBuilder::new("f", 4);
        let t = b.buffer("t", 8, BufKind::ParamInOut);
        let v1 = b.vload_contig(MemRef::new(t, 0));
        let x = b.vbin(BinOp::Mul, v1, v1);
        let y = b.vbin(BinOp::Mul, v1, v1);
        b.vstore_contig(x, MemRef::new(t, 0));
        b.vstore_contig(y, MemRef::new(t, 4));
        let mut f = b.finish();
        cse(&mut f);
        let mut vmuls = 0;
        let mut vmovs = 0;
        f.for_each_instr(&mut |i| match i {
            Instr::VBin { op: BinOp::Mul, .. } => vmuls += 1,
            Instr::VMov { .. } => vmovs += 1,
            _ => {}
        });
        assert_eq!(vmuls, 1);
        assert_eq!(vmovs, 1);
    }

    #[test]
    fn no_change_reports_false() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 1, BufKind::ParamOut);
        let a = b.smov(3.0);
        b.sstore(a, MemRef::new(t, 0));
        let mut f = b.finish();
        assert!(!cse(&mut f));
    }

    /// A warm cache with an empty dirty log skips the scan entirely and
    /// reports it; a targeted dirty mark re-keys only the affected
    /// instruction and its availability behavior stays correct.
    #[test]
    fn clean_round_skips_and_dirty_round_rekeys_sparsely() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 2, BufKind::ParamOut);
        let a = b.smov(3.0);
        let x = b.sbin(BinOp::Mul, a, a);
        let y = b.sbin(BinOp::Mul, a, a);
        b.sstore(x, MemRef::new(t, 0));
        b.sstore(y, MemRef::new(t, 1));
        let mut f = b.finish();
        let mut cache = CseCache::default();
        let mut dirty = DirtyLog::all_dirty();
        let mut r0 = RoundStats::default();
        assert!(cse_incremental(&mut f, &mut cache, &mut dirty, &mut r0));
        assert!(r0.cse_rekeyed > 0);
        assert_eq!(r0.cse_reused, 0, "first scan computes everything");
        assert!(dirty.is_clean_for(Consumer::Cse), "the scan consumes the dirty log");
        // clean round: whole-pass skip
        let mut r1 = RoundStats::default();
        assert!(!cse_incremental(&mut f, &mut cache, &mut dirty, &mut r1));
        assert!(r1.cse_skipped);
        assert_eq!((r1.cse_rekeyed, r1.cse_reused), (0, 0));
        // targeted dirt: only the marked definition re-keys, the rest reuse
        dirty.mark_s(crate::instr::SReg(0));
        let mut r2 = RoundStats::default();
        assert!(!cse_incremental(&mut f, &mut cache, &mut dirty, &mut r2));
        assert!(!r2.cse_skipped);
        assert!(r2.cse_reused > 0, "clean instructions must reuse memoized keys");
        assert!(
            r2.cse_rekeyed < r0.cse_rekeyed,
            "a sparse dirty set must not re-key the whole function"
        );
    }

    /// The one-shot wrapper and an incremental run over a mutating round
    /// sequence agree with a from-scratch run (bit-identical rewrites).
    #[test]
    fn incremental_matches_scratch_after_mutation() {
        let build = || {
            let mut b = FunctionBuilder::new("f", 1);
            let t = b.buffer("t", 4, BufKind::ParamInOut);
            let a = b.sload(MemRef::new(t, 0));
            let x = b.sbin(BinOp::Mul, a, a);
            let y = b.sbin(BinOp::Mul, a, a);
            let z = b.sbin(BinOp::Add, x, y);
            b.sstore(z, MemRef::new(t, 1));
            b.sstore(x, MemRef::new(t, 2));
            b.sstore(y, MemRef::new(t, 3));
            b.finish()
        };
        // incremental: scan, then re-scan with everything marked dirty
        let mut f1 = build();
        let mut cache = CseCache::default();
        let mut dirty = DirtyLog::all_dirty();
        let mut r = RoundStats::default();
        cse_incremental(&mut f1, &mut cache, &mut dirty, &mut r);
        dirty.mark_all();
        cse_incremental(&mut f1, &mut cache, &mut dirty, &mut r);
        // scratch: two one-shot runs
        let mut f2 = build();
        cse(&mut f2);
        cse(&mut f2);
        assert_eq!(
            crate::pretty::function_to_string(&f1),
            crate::pretty::function_to_string(&f2),
            "incremental and from-scratch CSE must produce identical code"
        );
    }
}
