//! Common-subexpression elimination within straight-line regions.
//!
//! Pure register computations (arithmetic, broadcasts, shuffles, blends)
//! and loads are keyed on their operation and the *versions* of their
//! inputs; a repeated computation is replaced by a register move, which
//! copy propagation and DCE then dissolve. Loads participate with a
//! per-buffer epoch that is bumped by any store to the buffer (distinct
//! buffers never alias, by C-IR construction).
//!
//! Throughput notes: the pass streams over the body and rewrites repeated
//! computations *in place* (no rebuilt instruction vectors, no clones);
//! register versions and buffer epochs live in dense tables indexed by
//! register/buffer id; and commutative canonicalization uses the derived
//! [`Ord`] on the key types directly.

use crate::func::{CStmt, Function};
use crate::fxhash::FxHashMap;
use crate::instr::{BinOp, FmaKind, Instr, LaneSel, SOperand, SReg, VReg};

#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Key {
    SBin(BinOp, SKey, SKey),
    SFma(FmaKind, SKey, SKey, SKey),
    SSqrt(SKey),
    SLoad(usize, i64, u64),
    VBin(BinOp, VKey, VKey),
    VFma(FmaKind, VKey, VKey, VKey),
    VBroadcast(SKey),
    VShuffle(VKey, VKey, Vec<LaneSel>),
    VBlend(VKey, VKey, Vec<bool>),
    VLoad(usize, i64, Vec<Option<i64>>, u64),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum SKey {
    Reg(SReg, u32),
    Imm(u64),
}

type VKey = (VReg, u32);

/// Pass state: dense version/epoch tables plus the availability maps.
///
/// Table slots are `(generation, value)` pairs; a slot from an older
/// generation reads as the default, which makes [`Cse::reset`] O(1)
/// regardless of table size (no per-boundary refills).
struct Cse {
    gen: u32,
    svers: Vec<(u32, u32)>,
    vvers: Vec<(u32, u32)>,
    epochs: Vec<(u32, u64)>,
    avail_s: FxHashMap<Key, (SReg, u32)>,
    avail_v: FxHashMap<Key, (VReg, u32)>,
}

impl Cse {
    fn for_function(f: &Function) -> Self {
        Cse {
            gen: 0,
            svers: vec![(0, 0); f.n_sregs],
            vvers: vec![(0, 0); f.n_vregs],
            epochs: vec![(0, 0); f.buffers.len()],
            avail_s: FxHashMap::default(),
            avail_v: FxHashMap::default(),
        }
    }

    /// Forget everything (control-flow boundary).
    fn reset(&mut self) {
        self.gen += 1;
        self.avail_s.clear();
        self.avail_v.clear();
    }

    fn sver(&self, r: SReg) -> u32 {
        match self.svers.get(r.0) {
            Some((g, v)) if *g == self.gen => *v,
            _ => 0,
        }
    }
    fn vver(&self, r: VReg) -> u32 {
        match self.vvers.get(r.0) {
            Some((g, v)) if *g == self.gen => *v,
            _ => 0,
        }
    }
    fn epoch(&self, b: usize) -> u64 {
        match self.epochs.get(b) {
            Some((g, e)) if *g == self.gen => *e,
            _ => 0,
        }
    }
    fn bump_s(&mut self, r: SReg) {
        let gen = self.gen;
        super::grow_update(&mut self.svers, r.0, |s| {
            *s = if s.0 == gen { (gen, s.1 + 1) } else { (gen, 1) }
        });
    }
    fn bump_v(&mut self, r: VReg) {
        let gen = self.gen;
        super::grow_update(&mut self.vvers, r.0, |s| {
            *s = if s.0 == gen { (gen, s.1 + 1) } else { (gen, 1) }
        });
    }
    fn bump_epoch(&mut self, b: usize) {
        let gen = self.gen;
        super::grow_update(&mut self.epochs, b, |s| {
            *s = if s.0 == gen { (gen, s.1 + 1) } else { (gen, 1) }
        });
    }
    fn skey(&self, o: &SOperand) -> SKey {
        match o {
            SOperand::Reg(r) => SKey::Reg(*r, self.sver(*r)),
            SOperand::Imm(v) => SKey::Imm(v.to_bits()),
        }
    }
    fn vkey(&self, r: VReg) -> VKey {
        (r, self.vver(r))
    }
}

fn instr_key(st: &Cse, ins: &Instr) -> Option<Key> {
    match ins {
        Instr::SBin { op, a, b, .. } => {
            let (ka, kb) = (st.skey(a), st.skey(b));
            // commutative ops: canonical operand order
            let (ka, kb) = match op {
                BinOp::Add | BinOp::Mul if kb < ka => (kb, ka),
                _ => (ka, kb),
            };
            Some(Key::SBin(*op, ka, kb))
        }
        Instr::SFma { kind, a, b, c, .. } => {
            // the product commutes; the addend does not
            let (ka, kb) = (st.skey(a), st.skey(b));
            let (ka, kb) = if kb < ka { (kb, ka) } else { (ka, kb) };
            Some(Key::SFma(*kind, ka, kb, st.skey(c)))
        }
        Instr::SSqrt { a, .. } => Some(Key::SSqrt(st.skey(a))),
        Instr::SLoad { src, .. } => {
            src.offset.as_constant().map(|off| Key::SLoad(src.buf.0, off, st.epoch(src.buf.0)))
        }
        Instr::VBin { op, a, b, .. } => {
            let (ka, kb) = (st.vkey(*a), st.vkey(*b));
            let (ka, kb) = match op {
                BinOp::Add | BinOp::Mul if kb < ka => (kb, ka),
                _ => (ka, kb),
            };
            Some(Key::VBin(*op, ka, kb))
        }
        Instr::VFma { kind, a, b, c, .. } => {
            let (ka, kb) = (st.vkey(*a), st.vkey(*b));
            let (ka, kb) = if kb < ka { (kb, ka) } else { (ka, kb) };
            Some(Key::VFma(*kind, ka, kb, st.vkey(*c)))
        }
        Instr::VBroadcast { src, .. } => Some(Key::VBroadcast(st.skey(src))),
        Instr::VShuffle { a, b, sel, .. } => {
            Some(Key::VShuffle(st.vkey(*a), st.vkey(*b), sel.clone()))
        }
        Instr::VBlend { a, b, mask, .. } => {
            Some(Key::VBlend(st.vkey(*a), st.vkey(*b), mask.clone()))
        }
        Instr::VLoad { base, lanes, .. } => base
            .offset
            .as_constant()
            .map(|off| Key::VLoad(base.buf.0, off, lanes.clone(), st.epoch(base.buf.0))),
        _ => None,
    }
}

/// Process one instruction, replacing repeats with moves in place.
/// Returns `true` when the instruction was rewritten.
fn process(st: &mut Cse, ins: &mut Instr) -> bool {
    let key = instr_key(st, ins);
    let mut replaced = false;
    if let Some(k) = &key {
        if let Some(sdst) = ins.sreg_write() {
            if let Some((r, v)) = st.avail_s.get(k) {
                if st.sver(*r) == *v && *r != sdst {
                    *ins = Instr::SMov { dst: sdst, a: (*r).into() };
                    replaced = true;
                }
            }
        } else if let Some(vdst) = ins.vreg_write() {
            if let Some((r, v)) = st.avail_v.get(k) {
                if st.vver(*r) == *v && *r != vdst {
                    *ins = Instr::VMov { dst: vdst, src: *r };
                    replaced = true;
                }
            }
        }
    }
    // effects: bump versions/epochs, then record availability
    match &*ins {
        Instr::SStore { dst, .. } => st.bump_epoch(dst.buf.0),
        Instr::VStore { base, .. } => st.bump_epoch(base.buf.0),
        Instr::Call { .. } => {
            let gen = st.gen;
            st.epochs
                .iter_mut()
                .for_each(|s| *s = if s.0 == gen { (gen, s.1 + 1) } else { (gen, 1) });
            // calls clobber nothing in registers, but be safe:
            st.avail_s.clear();
            st.avail_v.clear();
        }
        _ => {}
    }
    if let Some(r) = ins.sreg_write() {
        st.bump_s(r);
    }
    if let Some(r) = ins.vreg_write() {
        st.bump_v(r);
    }
    if let Some(k) = key {
        if let Some(r) = ins.sreg_write() {
            st.avail_s.insert(k, (r, st.sver(r)));
        } else if let Some(r) = ins.vreg_write() {
            st.avail_v.insert(k, (r, st.vver(r)));
        }
    }
    replaced
}

fn walk(stmts: &mut [CStmt], st: &mut Cse) -> bool {
    let mut changed = false;
    for s in stmts {
        match s {
            CStmt::I(ins) => changed |= process(st, ins),
            CStmt::For { body, .. } => {
                st.reset();
                changed |= walk(body, st);
                st.reset();
            }
            CStmt::If { then_, else_, .. } => {
                st.reset();
                changed |= walk(then_, st);
                st.reset();
                changed |= walk(else_, st);
                st.reset();
            }
        }
    }
    changed
}

/// Eliminate common subexpressions in `f`; returns whether anything
/// changed.
pub fn cse(f: &mut Function) -> bool {
    let mut st = Cse::for_function(f);
    walk(&mut f.body, &mut st)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{BufKind, FunctionBuilder};
    use crate::instr::{BinOp, MemRef};

    #[test]
    fn repeated_scalar_computation_becomes_mov() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 2, BufKind::ParamOut);
        let a = b.smov(3.0);
        let x = b.sbin(BinOp::Mul, a, a);
        let y = b.sbin(BinOp::Mul, a, a);
        b.sstore(x, MemRef::new(t, 0));
        b.sstore(y, MemRef::new(t, 1));
        let mut f = b.finish();
        assert!(cse(&mut f), "must report a change");
        let mut muls = 0;
        let mut movs = 0;
        f.for_each_instr(&mut |i| match i {
            Instr::SBin { op: BinOp::Mul, .. } => muls += 1,
            Instr::SMov { .. } => movs += 1,
            _ => {}
        });
        assert_eq!(muls, 1);
        assert_eq!(movs, 2); // the original mov + the CSE replacement
    }

    #[test]
    fn commutative_ops_match_reversed_operands() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 2, BufKind::ParamOut);
        let a = b.smov(3.0);
        let c = b.smov(4.0);
        let x = b.sbin(BinOp::Add, a, c);
        let y = b.sbin(BinOp::Add, c, a);
        b.sstore(x, MemRef::new(t, 0));
        b.sstore(y, MemRef::new(t, 1));
        let mut f = b.finish();
        cse(&mut f);
        let mut adds = 0;
        f.for_each_instr(&mut |i| {
            if matches!(i, Instr::SBin { op: BinOp::Add, .. }) {
                adds += 1;
            }
        });
        assert_eq!(adds, 1);
    }

    #[test]
    fn commutative_imm_reg_mixes_match() {
        // Imm/Reg operand orders must canonicalize to the same key.
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 2, BufKind::ParamOut);
        let a = b.smov(3.0);
        let x = b.sbin(BinOp::Mul, a, 2.0);
        let y = b.sbin(BinOp::Mul, 2.0, a);
        b.sstore(x, MemRef::new(t, 0));
        b.sstore(y, MemRef::new(t, 1));
        let mut f = b.finish();
        cse(&mut f);
        let mut muls = 0;
        f.for_each_instr(&mut |i| {
            if matches!(i, Instr::SBin { op: BinOp::Mul, .. }) {
                muls += 1;
            }
        });
        assert_eq!(muls, 1);
    }

    #[test]
    fn subtraction_is_not_commuted() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 2, BufKind::ParamOut);
        let a = b.smov(3.0);
        let c = b.smov(4.0);
        let x = b.sbin(BinOp::Sub, a, c);
        let y = b.sbin(BinOp::Sub, c, a);
        b.sstore(x, MemRef::new(t, 0));
        b.sstore(y, MemRef::new(t, 1));
        let mut f = b.finish();
        cse(&mut f);
        let mut subs = 0;
        f.for_each_instr(&mut |i| {
            if matches!(i, Instr::SBin { op: BinOp::Sub, .. }) {
                subs += 1;
            }
        });
        assert_eq!(subs, 2);
    }

    #[test]
    fn store_bumps_buffer_epoch_for_loads() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 2, BufKind::ParamInOut);
        let l1 = b.sload(MemRef::new(t, 0));
        b.sstore(1.0, MemRef::new(t, 0));
        let l2 = b.sload(MemRef::new(t, 0));
        b.sstore(l1, MemRef::new(t, 1));
        b.sstore(l2, MemRef::new(t, 1));
        let mut f = b.finish();
        cse(&mut f);
        let mut loads = 0;
        f.for_each_instr(&mut |i| {
            if matches!(i, Instr::SLoad { .. }) {
                loads += 1;
            }
        });
        assert_eq!(loads, 2, "store must invalidate the load CSE entry");
    }

    #[test]
    fn redundant_load_removed() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 2, BufKind::ParamInOut);
        let l1 = b.sload(MemRef::new(t, 0));
        let l2 = b.sload(MemRef::new(t, 0));
        b.sstore(l1, MemRef::new(t, 1));
        b.sstore(l2, MemRef::new(t, 1));
        let mut f = b.finish();
        cse(&mut f);
        let mut loads = 0;
        f.for_each_instr(&mut |i| {
            if matches!(i, Instr::SLoad { .. }) {
                loads += 1;
            }
        });
        assert_eq!(loads, 1);
    }

    #[test]
    fn vector_cse_emits_vmov() {
        let mut b = FunctionBuilder::new("f", 4);
        let t = b.buffer("t", 8, BufKind::ParamInOut);
        let v1 = b.vload_contig(MemRef::new(t, 0));
        let x = b.vbin(BinOp::Mul, v1, v1);
        let y = b.vbin(BinOp::Mul, v1, v1);
        b.vstore_contig(x, MemRef::new(t, 0));
        b.vstore_contig(y, MemRef::new(t, 4));
        let mut f = b.finish();
        cse(&mut f);
        let mut vmuls = 0;
        let mut vmovs = 0;
        f.for_each_instr(&mut |i| match i {
            Instr::VBin { op: BinOp::Mul, .. } => vmuls += 1,
            Instr::VMov { .. } => vmovs += 1,
            _ => {}
        });
        assert_eq!(vmuls, 1);
        assert_eq!(vmovs, 1);
    }

    #[test]
    fn no_change_reports_false() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 1, BufKind::ParamOut);
        let a = b.smov(3.0);
        b.sstore(a, MemRef::new(t, 0));
        let mut f = b.finish();
        assert!(!cse(&mut f));
    }
}
