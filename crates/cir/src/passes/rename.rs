//! Register renaming (web splitting) after unrolling.
//!
//! Loop bodies reuse the same registers every iteration, so a fully
//! unrolled loop redefines each register once per former iteration. Those
//! redefinitions block store→load forwarding and CSE. This pass gives every
//! *re*definition within a straight-line run a fresh register and rewrites
//! the uses that follow, making long unrolled blocks effectively SSA.
//!
//! Soundness across control flow: at the end of each run, every renamed
//! register is copied back to its original name (`orig = fresh`), so code
//! in later blocks — including the next iteration of a still-rolled loop —
//! observes the same values as before. Copy propagation and DCE dissolve
//! the copies that turn out to be unnecessary.
//!
//! Throughput/determinism notes: reads are rewritten in place (no
//! per-instruction clones of lane maps and selectors), rename maps are
//! dense tables indexed by register id, and copy-backs are emitted in
//! ascending original-register order so the pass output is deterministic.

use crate::func::{CStmt, Function};
use crate::instr::{Instr, SOperand, SReg, VReg};

struct Renamer {
    next_s: usize,
    next_v: usize,
}

impl Renamer {
    fn fresh_s(&mut self) -> SReg {
        self.next_s += 1;
        SReg(self.next_s - 1)
    }
    fn fresh_v(&mut self) -> VReg {
        self.next_v += 1;
        VReg(self.next_v - 1)
    }
}

/// Dense `original → current` rename table with a defined-set.
struct RenameMap<R: Copy> {
    current: Vec<Option<R>>,
    defined: Vec<bool>,
}

impl<R: Copy> Default for RenameMap<R> {
    fn default() -> Self {
        RenameMap { current: Vec::new(), defined: Vec::new() }
    }
}

impl<R: Copy> RenameMap<R> {
    fn get(&self, i: usize) -> Option<R> {
        self.current.get(i).copied().flatten()
    }
    fn set(&mut self, i: usize, r: R) {
        super::grow_update(&mut self.current, i, |slot| *slot = Some(r));
    }
    fn clear_entry(&mut self, i: usize) {
        if i < self.current.len() {
            self.current[i] = None;
        }
    }
    fn is_defined(&self, i: usize) -> bool {
        self.defined.get(i).copied().unwrap_or(false)
    }
    fn mark_defined(&mut self, i: usize) {
        super::grow_update(&mut self.defined, i, |b| *b = true);
    }
    /// Drain live renames in ascending original-register order.
    fn drain_sorted(&mut self) -> impl Iterator<Item = (usize, R)> + '_ {
        self.current.iter_mut().enumerate().filter_map(|(i, slot)| slot.take().map(|r| (i, r)))
    }
}

fn map_sop(map: &RenameMap<SReg>, o: &mut SOperand) {
    if let SOperand::Reg(r) = o {
        if let Some(cur) = map.get(r.0) {
            *r = cur;
        }
    }
}

fn map_v(map: &RenameMap<VReg>, r: &mut VReg) {
    if let Some(cur) = map.get(r.0) {
        *r = cur;
    }
}

/// Rewrite the reads of `ins` through the maps, in place (writes untouched).
fn rewrite_reads(ins: &mut Instr, smap: &RenameMap<SReg>, vmap: &RenameMap<VReg>) {
    match ins {
        Instr::SStore { src, .. } => map_sop(smap, src),
        Instr::SBin { a, b, .. } => {
            map_sop(smap, a);
            map_sop(smap, b);
        }
        Instr::SFma { a, b, c, .. } => {
            map_sop(smap, a);
            map_sop(smap, b);
            map_sop(smap, c);
        }
        Instr::SSqrt { a, .. } | Instr::SMov { a, .. } => map_sop(smap, a),
        Instr::VStore { src, .. } | Instr::VMov { src, .. } => map_v(vmap, src),
        Instr::VBin { a, b, .. } | Instr::VShuffle { a, b, .. } | Instr::VBlend { a, b, .. } => {
            map_v(vmap, a);
            map_v(vmap, b);
        }
        Instr::VFma { a, b, c, .. } => {
            map_v(vmap, a);
            map_v(vmap, b);
            map_v(vmap, c);
        }
        Instr::VBroadcast { src, .. } => map_sop(smap, src),
        Instr::VExtract { src, .. } | Instr::VReduceAdd { src, .. } => map_v(vmap, src),
        Instr::SLoad { .. } | Instr::VLoad { .. } | Instr::Call { .. } => {}
    }
}

fn set_swrite(ins: &mut Instr, new: SReg) {
    match ins {
        Instr::SLoad { dst, .. }
        | Instr::SBin { dst, .. }
        | Instr::SFma { dst, .. }
        | Instr::SSqrt { dst, .. }
        | Instr::SMov { dst, .. }
        | Instr::VExtract { dst, .. }
        | Instr::VReduceAdd { dst, .. } => *dst = new,
        _ => {}
    }
}

fn set_vwrite(ins: &mut Instr, new: VReg) {
    match ins {
        Instr::VLoad { dst, .. }
        | Instr::VMov { dst, .. }
        | Instr::VBin { dst, .. }
        | Instr::VFma { dst, .. }
        | Instr::VBroadcast { dst, .. }
        | Instr::VShuffle { dst, .. }
        | Instr::VBlend { dst, .. } => *dst = new,
        _ => {}
    }
}

fn process_run(run: &mut Vec<Instr>, rn: &mut Renamer) {
    let mut smap = RenameMap::<SReg>::default();
    let mut vmap = RenameMap::<VReg>::default();
    for ins in run.iter_mut() {
        rewrite_reads(ins, &smap, &vmap);
        if let Some(w) = ins.sreg_write() {
            if smap.is_defined(w.0) {
                let fresh = rn.fresh_s();
                smap.set(w.0, fresh);
                set_swrite(ins, fresh);
            } else {
                smap.mark_defined(w.0);
                smap.clear_entry(w.0);
            }
        }
        if let Some(w) = ins.vreg_write() {
            if vmap.is_defined(w.0) {
                let fresh = rn.fresh_v();
                vmap.set(w.0, fresh);
                set_vwrite(ins, fresh);
            } else {
                vmap.mark_defined(w.0);
                vmap.clear_entry(w.0);
            }
        }
    }
    // copy renamed registers back to their original names for later
    // blocks, in deterministic (ascending register) order
    for (orig, cur) in smap.drain_sorted() {
        run.push(Instr::SMov { dst: SReg(orig), a: cur.into() });
    }
    for (orig, cur) in vmap.drain_sorted() {
        run.push(Instr::VMov { dst: VReg(orig), src: cur });
    }
}

fn walk(stmts: Vec<CStmt>, rn: &mut Renamer) -> Vec<CStmt> {
    let mut out = Vec::with_capacity(stmts.len());
    let mut run: Vec<Instr> = Vec::new();
    let flush = |run: &mut Vec<Instr>, rn: &mut Renamer, out: &mut Vec<CStmt>| {
        if !run.is_empty() {
            process_run(run, rn);
            out.extend(run.drain(..).map(CStmt::I));
        }
    };
    for s in stmts {
        match s {
            CStmt::I(i) => run.push(i),
            CStmt::For { var, lo, hi, step, body } => {
                flush(&mut run, rn, &mut out);
                out.push(CStmt::For { var, lo, hi, step, body: walk(body, rn) });
            }
            CStmt::If { cond, then_, else_ } => {
                flush(&mut run, rn, &mut out);
                out.push(CStmt::If { cond, then_: walk(then_, rn), else_: walk(else_, rn) });
            }
        }
    }
    flush(&mut run, rn, &mut out);
    out
}

/// Split register webs in `f` (see module docs).
pub fn rename(f: &mut Function) {
    let mut rn = Renamer { next_s: f.n_sregs, next_v: f.n_vregs };
    let body = std::mem::take(&mut f.body);
    f.body = walk(body, &mut rn);
    f.n_sregs = rn.next_s;
    f.n_vregs = rn.next_v;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{BufKind, FunctionBuilder};
    use crate::instr::{BinOp, MemRef};

    #[test]
    fn redefinitions_get_fresh_names() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 2, BufKind::ParamOut);
        let r = b.smov(1.0);
        b.sstore(r, MemRef::new(t, 0));
        b.instr(Instr::SMov { dst: r, a: 2.0.into() }); // redefinition
        b.sstore(r, MemRef::new(t, 1));
        let mut f = b.finish();
        rename(&mut f);
        // the two stores must now read different registers
        let mut stored: Vec<SOperand> = Vec::new();
        f.for_each_instr(&mut |i| {
            if let Instr::SStore { src, .. } = i {
                stored.push(*src);
            }
        });
        assert_eq!(stored.len(), 2);
        assert_ne!(stored[0], stored[1]);
    }

    #[test]
    fn copy_back_preserves_cross_block_values() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 4, BufKind::ParamOut);
        let r = b.smov(1.0);
        b.instr(Instr::SMov { dst: r, a: 2.0.into() }); // redefined in run
        let i = b.begin_for(0, 2, 1);
        b.sstore(r, MemRef::new(t, crate::affine::Affine::var(i)));
        b.end_for();
        let mut f = b.finish();
        rename(&mut f);
        // before the loop there must be a copy back into r
        let n_body = f.body.len();
        assert!(n_body >= 3);
        let has_copy_back = f
            .body
            .iter()
            .any(|s| matches!(s, CStmt::I(Instr::SMov { dst, a: SOperand::Reg(_) }) if *dst == r));
        assert!(has_copy_back, "{}", crate::pretty::function_to_string(&f));
    }

    #[test]
    fn first_definitions_keep_their_names() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 1, BufKind::ParamOut);
        let a = b.smov(1.0);
        let c = b.sbin(BinOp::Add, a, 1.0);
        b.sstore(c, MemRef::new(t, 0));
        let mut f = b.finish();
        let before = f.body.clone();
        rename(&mut f);
        assert_eq!(f.body, before, "no redefinitions, nothing to rename");
    }

    #[test]
    fn copy_backs_are_in_ascending_register_order() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 8, BufKind::ParamOut);
        // redefine several registers so multiple copy-backs are emitted
        let regs: Vec<SReg> = (0..4).map(|i| b.smov(i as f64)).collect();
        for (i, r) in regs.iter().enumerate() {
            b.instr(Instr::SMov { dst: *r, a: (10.0 + i as f64).into() });
        }
        let i = b.begin_for(0, 2, 1);
        for r in &regs {
            b.sstore(*r, MemRef::new(t, crate::affine::Affine::var(i)));
        }
        b.end_for();
        let mut f = b.finish();
        rename(&mut f);
        let mut copy_back_dsts = Vec::new();
        for s in &f.body {
            if let CStmt::I(Instr::SMov { dst, a: SOperand::Reg(_) }) = s {
                copy_back_dsts.push(dst.0);
            }
        }
        let mut sorted = copy_back_dsts.clone();
        sorted.sort_unstable();
        assert_eq!(copy_back_dsts, sorted, "copy-backs must be deterministic");
    }
}
