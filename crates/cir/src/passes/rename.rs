//! Register renaming (web splitting) after unrolling.
//!
//! Loop bodies reuse the same registers every iteration, so a fully
//! unrolled loop redefines each register once per former iteration. Those
//! redefinitions block store→load forwarding and CSE. This pass gives every
//! *re*definition within a straight-line run a fresh register and rewrites
//! the uses that follow, making long unrolled blocks effectively SSA.
//!
//! Soundness across control flow: at the end of each run, every renamed
//! register is copied back to its original name (`orig = fresh`), so code
//! in later blocks — including the next iteration of a still-rolled loop —
//! observes the same values as before. Copy propagation and DCE dissolve
//! the copies that turn out to be unnecessary.

use crate::func::{CStmt, Function};
use crate::instr::{Instr, SOperand, SReg, VReg};
use std::collections::{HashMap, HashSet};

struct Renamer {
    next_s: usize,
    next_v: usize,
}

impl Renamer {
    fn fresh_s(&mut self) -> SReg {
        self.next_s += 1;
        SReg(self.next_s - 1)
    }
    fn fresh_v(&mut self) -> VReg {
        self.next_v += 1;
        VReg(self.next_v - 1)
    }
}

fn map_sop(map: &HashMap<SReg, SReg>, o: &SOperand) -> SOperand {
    match o {
        SOperand::Reg(r) => SOperand::Reg(map.get(r).copied().unwrap_or(*r)),
        imm => *imm,
    }
}

fn map_v(map: &HashMap<VReg, VReg>, r: VReg) -> VReg {
    map.get(&r).copied().unwrap_or(r)
}

/// Rewrite the reads of `ins` through the maps (writes untouched).
fn rewrite_reads(
    ins: &Instr,
    smap: &HashMap<SReg, SReg>,
    vmap: &HashMap<VReg, VReg>,
) -> Instr {
    match ins {
        Instr::SStore { src, dst } => {
            Instr::SStore { src: map_sop(smap, src), dst: dst.clone() }
        }
        Instr::SBin { op, dst, a, b } => {
            Instr::SBin { op: *op, dst: *dst, a: map_sop(smap, a), b: map_sop(smap, b) }
        }
        Instr::SSqrt { dst, a } => Instr::SSqrt { dst: *dst, a: map_sop(smap, a) },
        Instr::SMov { dst, a } => Instr::SMov { dst: *dst, a: map_sop(smap, a) },
        Instr::VStore { src, base, lanes } => Instr::VStore {
            src: map_v(vmap, *src),
            base: base.clone(),
            lanes: lanes.clone(),
        },
        Instr::VMov { dst, src } => Instr::VMov { dst: *dst, src: map_v(vmap, *src) },
        Instr::VBin { op, dst, a, b } => {
            Instr::VBin { op: *op, dst: *dst, a: map_v(vmap, *a), b: map_v(vmap, *b) }
        }
        Instr::VBroadcast { dst, src } => {
            Instr::VBroadcast { dst: *dst, src: map_sop(smap, src) }
        }
        Instr::VShuffle { dst, a, b, sel } => Instr::VShuffle {
            dst: *dst,
            a: map_v(vmap, *a),
            b: map_v(vmap, *b),
            sel: sel.clone(),
        },
        Instr::VBlend { dst, a, b, mask } => Instr::VBlend {
            dst: *dst,
            a: map_v(vmap, *a),
            b: map_v(vmap, *b),
            mask: mask.clone(),
        },
        Instr::VExtract { dst, src, lane } => {
            Instr::VExtract { dst: *dst, src: map_v(vmap, *src), lane: *lane }
        }
        Instr::VReduceAdd { dst, src } => {
            Instr::VReduceAdd { dst: *dst, src: map_v(vmap, *src) }
        }
        other => other.clone(),
    }
}

fn set_swrite(ins: &mut Instr, new: SReg) {
    match ins {
        Instr::SLoad { dst, .. }
        | Instr::SBin { dst, .. }
        | Instr::SSqrt { dst, .. }
        | Instr::SMov { dst, .. }
        | Instr::VExtract { dst, .. }
        | Instr::VReduceAdd { dst, .. } => *dst = new,
        _ => {}
    }
}

fn set_vwrite(ins: &mut Instr, new: VReg) {
    match ins {
        Instr::VLoad { dst, .. }
        | Instr::VMov { dst, .. }
        | Instr::VBin { dst, .. }
        | Instr::VBroadcast { dst, .. }
        | Instr::VShuffle { dst, .. }
        | Instr::VBlend { dst, .. } => *dst = new,
        _ => {}
    }
}

fn process_run(run: Vec<Instr>, rn: &mut Renamer) -> Vec<Instr> {
    let mut smap: HashMap<SReg, SReg> = HashMap::new();
    let mut vmap: HashMap<VReg, VReg> = HashMap::new();
    let mut sdefined: HashSet<SReg> = HashSet::new();
    let mut vdefined: HashSet<VReg> = HashSet::new();
    let mut out = Vec::with_capacity(run.len());
    for ins in run {
        let mut ins = rewrite_reads(&ins, &smap, &vmap);
        if let Some(w) = ins.sreg_write() {
            if sdefined.contains(&w) {
                let fresh = rn.fresh_s();
                smap.insert(w, fresh);
                set_swrite(&mut ins, fresh);
            } else {
                sdefined.insert(w);
                smap.remove(&w);
            }
        }
        if let Some(w) = ins.vreg_write() {
            if vdefined.contains(&w) {
                let fresh = rn.fresh_v();
                vmap.insert(w, fresh);
                set_vwrite(&mut ins, fresh);
            } else {
                vdefined.insert(w);
                vmap.remove(&w);
            }
        }
        out.push(ins);
    }
    // copy renamed registers back to their original names for later blocks
    for (orig, cur) in smap {
        out.push(Instr::SMov { dst: orig, a: cur.into() });
    }
    for (orig, cur) in vmap {
        out.push(Instr::VMov { dst: orig, src: cur });
    }
    out
}

fn walk(stmts: Vec<CStmt>, rn: &mut Renamer) -> Vec<CStmt> {
    let mut out = Vec::new();
    let mut run: Vec<Instr> = Vec::new();
    let flush = |run: &mut Vec<Instr>, rn: &mut Renamer, out: &mut Vec<CStmt>| {
        if !run.is_empty() {
            out.extend(process_run(std::mem::take(run), rn).into_iter().map(CStmt::I));
        }
    };
    for s in stmts {
        match s {
            CStmt::I(i) => run.push(i),
            CStmt::For { var, lo, hi, step, body } => {
                flush(&mut run, rn, &mut out);
                out.push(CStmt::For { var, lo, hi, step, body: walk(body, rn) });
            }
            CStmt::If { cond, then_, else_ } => {
                flush(&mut run, rn, &mut out);
                out.push(CStmt::If { cond, then_: walk(then_, rn), else_: walk(else_, rn) });
            }
        }
    }
    flush(&mut run, rn, &mut out);
    out
}

/// Split register webs in `f` (see module docs).
pub fn rename(f: &mut Function) {
    let mut rn = Renamer { next_s: f.n_sregs, next_v: f.n_vregs };
    let body = std::mem::take(&mut f.body);
    f.body = walk(body, &mut rn);
    f.n_sregs = rn.next_s;
    f.n_vregs = rn.next_v;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{BufKind, FunctionBuilder};
    use crate::instr::{BinOp, MemRef};

    #[test]
    fn redefinitions_get_fresh_names() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 2, BufKind::ParamOut);
        let r = b.smov(1.0);
        b.sstore(r, MemRef::new(t, 0));
        b.instr(Instr::SMov { dst: r, a: 2.0.into() }); // redefinition
        b.sstore(r, MemRef::new(t, 1));
        let mut f = b.finish();
        rename(&mut f);
        // the two stores must now read different registers
        let mut stored: Vec<SOperand> = Vec::new();
        f.for_each_instr(&mut |i| {
            if let Instr::SStore { src, .. } = i {
                stored.push(*src);
            }
        });
        assert_eq!(stored.len(), 2);
        assert_ne!(stored[0], stored[1]);
    }

    #[test]
    fn copy_back_preserves_cross_block_values() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 4, BufKind::ParamOut);
        let r = b.smov(1.0);
        b.instr(Instr::SMov { dst: r, a: 2.0.into() }); // redefined in run
        let i = b.begin_for(0, 2, 1);
        b.sstore(r, MemRef::new(t, crate::affine::Affine::var(i)));
        b.end_for();
        let mut f = b.finish();
        rename(&mut f);
        // before the loop there must be a copy back into r
        let n_body = f.body.len();
        assert!(n_body >= 3);
        let has_copy_back = f.body.iter().any(|s| {
            matches!(s, CStmt::I(Instr::SMov { dst, a: SOperand::Reg(_) }) if *dst == r)
        });
        assert!(has_copy_back, "{}", crate::pretty::function_to_string(&f));
    }

    #[test]
    fn first_definitions_keep_their_names() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 1, BufKind::ParamOut);
        let a = b.smov(1.0);
        let c = b.sbin(BinOp::Add, a, 1.0);
        b.sstore(c, MemRef::new(t, 0));
        let mut f = b.finish();
        let before = f.body.clone();
        rename(&mut f);
        assert_eq!(f.body, before, "no redefinitions, nothing to rename");
    }
}
