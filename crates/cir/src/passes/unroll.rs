//! Full unrolling of constant-trip-count loops.
//!
//! Small-scale code profits from complete unrolling: it exposes constant
//! addresses to the load/store analysis and removes branch overhead. Loops
//! are unrolled innermost-first while the function's static instruction
//! count stays within a budget.

use crate::affine::LoopVar;
use crate::func::{CStmt, Function};
use crate::instr::Instr;

/// Substitute a loop variable with a constant everywhere in a statement.
fn subst_stmt(s: &CStmt, var: LoopVar, value: i64) -> CStmt {
    match s {
        CStmt::I(i) => CStmt::I(subst_instr(i, var, value)),
        CStmt::For { var: v, lo, hi, step, body } => CStmt::For {
            var: *v,
            lo: lo.substitute(var, value),
            hi: hi.substitute(var, value),
            step: *step,
            body: body.iter().map(|s| subst_stmt(s, var, value)).collect(),
        },
        CStmt::If { cond, then_, else_ } => CStmt::If {
            cond: cond.substitute(var, value),
            then_: then_.iter().map(|s| subst_stmt(s, var, value)).collect(),
            else_: else_.iter().map(|s| subst_stmt(s, var, value)).collect(),
        },
    }
}

fn subst_instr(i: &Instr, var: LoopVar, value: i64) -> Instr {
    let sub = |m: &crate::instr::MemRef| crate::instr::MemRef {
        buf: m.buf,
        offset: m.offset.substitute(var, value),
    };
    match i {
        Instr::SLoad { dst, src } => Instr::SLoad { dst: *dst, src: sub(src) },
        Instr::SStore { src, dst } => Instr::SStore { src: *src, dst: sub(dst) },
        Instr::VLoad { dst, base, lanes } => {
            Instr::VLoad { dst: *dst, base: sub(base), lanes: lanes.clone() }
        }
        Instr::VStore { src, base, lanes } => {
            Instr::VStore { src: *src, base: sub(base), lanes: lanes.clone() }
        }
        other => other.clone(),
    }
}

fn unroll_stmts(stmts: Vec<CStmt>, budget: &mut isize) -> Vec<CStmt> {
    let mut out = Vec::new();
    for s in stmts {
        match s {
            CStmt::For { var, lo, hi, step, body } => {
                let body: Vec<CStmt> = unroll_stmts(body, budget);
                let trip = match (lo.as_constant(), hi.as_constant()) {
                    (Some(l), Some(h)) if h > l => ((h - l) + step - 1) / step,
                    (Some(_), Some(_)) => 0,
                    _ => -1, // symbolic bounds: keep rolled
                };
                if trip == 0 {
                    continue;
                }
                let body_count: i64 = body.iter().map(|b| b.static_instr_count() as i64).sum();
                if trip > 0 && trip * body_count <= *budget as i64 {
                    *budget -= (trip * body_count) as isize;
                    let l = lo.as_constant().unwrap();
                    let h = hi.as_constant().unwrap();
                    let mut iv = l;
                    while iv < h {
                        for b in &body {
                            out.push(subst_stmt(b, var, iv));
                        }
                        iv += step;
                    }
                } else {
                    out.push(CStmt::For { var, lo, hi, step, body });
                }
            }
            CStmt::If { cond, then_, else_ } => {
                let then_ = unroll_stmts(then_, budget);
                let else_ = unroll_stmts(else_, budget);
                out.push(CStmt::If { cond, then_, else_ });
            }
            other => out.push(other),
        }
    }
    out
}

/// Unroll all constant loops in `f` while the static instruction count
/// stays at or below `max_instrs`.
pub fn unroll(f: &mut Function, max_instrs: usize) {
    let mut budget = max_instrs as isize - f.static_instr_count() as isize;
    if budget < 0 {
        budget = 0;
    }
    let body = std::mem::take(&mut f.body);
    f.body = unroll_stmts(body, &mut budget);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::Affine;
    use crate::func::{BufKind, FunctionBuilder};
    use crate::instr::MemRef;

    fn loop_copy(n: i64) -> Function {
        let mut b = FunctionBuilder::new("u", 1);
        let x = b.buffer("x", n as usize, BufKind::ParamIn);
        let y = b.buffer("y", n as usize, BufKind::ParamOut);
        let i = b.begin_for(0, n, 1);
        let r = b.sload(MemRef::new(x, Affine::var(i)));
        b.sstore(r, MemRef::new(y, Affine::var(i)));
        b.end_for();
        b.finish()
    }

    #[test]
    fn small_loop_fully_unrolls_with_constant_addresses() {
        let mut f = loop_copy(4);
        unroll(&mut f, 1000);
        assert_eq!(f.body.len(), 8);
        // every address must now be constant
        f.for_each_instr(&mut |i| match i {
            Instr::SLoad { src, .. } => assert!(src.offset.as_constant().is_some()),
            Instr::SStore { dst, .. } => assert!(dst.offset.as_constant().is_some()),
            _ => {}
        });
    }

    #[test]
    fn budget_prevents_explosion() {
        let mut f = loop_copy(1000);
        unroll(&mut f, 100);
        // stays rolled
        assert_eq!(f.body.len(), 1);
        assert!(matches!(f.body[0], CStmt::For { .. }));
    }

    #[test]
    fn nested_loops_unroll_inner_first() {
        let mut b = FunctionBuilder::new("n", 1);
        let x = b.buffer("x", 16, BufKind::ParamInOut);
        let i = b.begin_for(0, 4, 1);
        let j = b.begin_for(0, 4, 1);
        let addr = MemRef::new(x, Affine::var(i).scaled(4).plus(&Affine::var(j)));
        let r = b.sload(addr.clone());
        b.sstore(r, addr);
        b.end_for();
        b.end_for();
        let mut f = b.finish();
        unroll(&mut f, 1000);
        assert_eq!(f.body.len(), 32);
    }

    #[test]
    fn empty_range_loops_vanish() {
        let mut b = FunctionBuilder::new("e", 1);
        let x = b.buffer("x", 4, BufKind::ParamInOut);
        let i = b.begin_for(2, 2, 1);
        let r = b.sload(MemRef::new(x, Affine::var(i)));
        b.sstore(r, MemRef::new(x, Affine::var(i)));
        b.end_for();
        let mut f = b.finish();
        unroll(&mut f, 1000);
        assert!(f.body.is_empty());
    }

    #[test]
    fn step_respected() {
        let mut b = FunctionBuilder::new("s", 1);
        let x = b.buffer("x", 8, BufKind::ParamInOut);
        let i = b.begin_for(0, 8, 4);
        let r = b.sload(MemRef::new(x, Affine::var(i)));
        b.sstore(r, MemRef::new(x, Affine::var(i)));
        b.end_for();
        let mut f = b.finish();
        unroll(&mut f, 1000);
        assert_eq!(f.body.len(), 4); // two iterations, two instrs each
        match &f.body[2] {
            CStmt::I(Instr::SLoad { src, .. }) => {
                assert_eq!(src.offset.as_constant(), Some(4));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
