//! Full unrolling of constant-trip-count loops.
//!
//! Small-scale code profits from complete unrolling: it exposes constant
//! addresses to the load/store analysis and removes branch overhead. Loops
//! are unrolled innermost-first while the function's static instruction
//! count stays within a budget.

use crate::affine::LoopVar;
use crate::func::{CStmt, Function};
use crate::instr::Instr;

/// Whether a statement mentions `var` anywhere an unrolled copy would have
/// to rewrite it (memory offsets, nested bounds, conditions).
fn stmt_uses_var(s: &CStmt, var: LoopVar) -> bool {
    match s {
        CStmt::I(i) => match i {
            Instr::SLoad { src: m, .. }
            | Instr::SStore { dst: m, .. }
            | Instr::VLoad { base: m, .. }
            | Instr::VStore { base: m, .. } => m.offset.uses(var),
            _ => false,
        },
        CStmt::For { lo, hi, body, .. } => {
            lo.uses(var) || hi.uses(var) || body.iter().any(|s| stmt_uses_var(s, var))
        }
        CStmt::If { cond, then_, else_ } => {
            cond.uses(var)
                || then_.iter().any(|s| stmt_uses_var(s, var))
                || else_.iter().any(|s| stmt_uses_var(s, var))
        }
    }
}

/// Rewrite every use of `var` to the constant `value`, in place. Copies of
/// the loop-body template are plain clones; this walk then patches only
/// the induction-variable uses instead of rebuilding each statement tree.
fn subst_stmt_in_place(s: &mut CStmt, var: LoopVar, value: i64) {
    match s {
        CStmt::I(i) => subst_instr_in_place(i, var, value),
        CStmt::For { lo, hi, body, .. } => {
            lo.substitute_in_place(var, value);
            hi.substitute_in_place(var, value);
            for s in body {
                subst_stmt_in_place(s, var, value);
            }
        }
        CStmt::If { cond, then_, else_ } => {
            cond.substitute_in_place(var, value);
            for s in then_ {
                subst_stmt_in_place(s, var, value);
            }
            for s in else_ {
                subst_stmt_in_place(s, var, value);
            }
        }
    }
}

fn subst_instr_in_place(i: &mut Instr, var: LoopVar, value: i64) {
    match i {
        Instr::SLoad { src: m, .. }
        | Instr::SStore { dst: m, .. }
        | Instr::VLoad { base: m, .. }
        | Instr::VStore { base: m, .. } => m.offset.substitute_in_place(var, value),
        _ => {}
    }
}

fn unroll_stmts(stmts: Vec<CStmt>, budget: &mut isize) -> Vec<CStmt> {
    let mut out = Vec::new();
    for s in stmts {
        match s {
            CStmt::For { var, lo, hi, step, body } => {
                let body: Vec<CStmt> = unroll_stmts(body, budget);
                let trip = match (lo.as_constant(), hi.as_constant()) {
                    (Some(l), Some(h)) if h > l => ((h - l) + step - 1) / step,
                    (Some(_), Some(_)) => 0,
                    _ => -1, // symbolic bounds: keep rolled
                };
                if trip == 0 {
                    continue;
                }
                let body_count: i64 = body.iter().map(|b| b.static_instr_count() as i64).sum();
                if trip > 0 && trip * body_count <= *budget as i64 {
                    *budget -= (trip * body_count) as isize;
                    let l = lo.as_constant().unwrap();
                    let h = hi.as_constant().unwrap();
                    // The unrolled body is a *template*: copies are plain
                    // clones, induction-variable uses are rewritten in
                    // place, and statements that never mention the
                    // variable skip the rewrite walk entirely. The final
                    // iteration consumes the template without cloning.
                    let uses: Vec<bool> = body.iter().map(|b| stmt_uses_var(b, var)).collect();
                    let last = l + ((h - 1 - l) / step) * step;
                    let mut iv = l;
                    while iv < last {
                        for (b, used) in body.iter().zip(&uses) {
                            let mut copy = b.clone();
                            if *used {
                                subst_stmt_in_place(&mut copy, var, iv);
                            }
                            out.push(copy);
                        }
                        iv += step;
                    }
                    for (mut b, used) in body.into_iter().zip(uses) {
                        if used {
                            subst_stmt_in_place(&mut b, var, last);
                        }
                        out.push(b);
                    }
                } else {
                    out.push(CStmt::For { var, lo, hi, step, body });
                }
            }
            CStmt::If { cond, then_, else_ } => {
                let then_ = unroll_stmts(then_, budget);
                let else_ = unroll_stmts(else_, budget);
                out.push(CStmt::If { cond, then_, else_ });
            }
            other => out.push(other),
        }
    }
    out
}

/// Unroll all constant loops in `f` while the static instruction count
/// stays at or below `max_instrs`.
pub fn unroll(f: &mut Function, max_instrs: usize) {
    let mut budget = max_instrs as isize - f.static_instr_count() as isize;
    if budget < 0 {
        budget = 0;
    }
    let body = std::mem::take(&mut f.body);
    f.body = unroll_stmts(body, &mut budget);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::Affine;
    use crate::func::{BufKind, FunctionBuilder};
    use crate::instr::MemRef;

    fn loop_copy(n: i64) -> Function {
        let mut b = FunctionBuilder::new("u", 1);
        let x = b.buffer("x", n as usize, BufKind::ParamIn);
        let y = b.buffer("y", n as usize, BufKind::ParamOut);
        let i = b.begin_for(0, n, 1);
        let r = b.sload(MemRef::new(x, Affine::var(i)));
        b.sstore(r, MemRef::new(y, Affine::var(i)));
        b.end_for();
        b.finish()
    }

    #[test]
    fn small_loop_fully_unrolls_with_constant_addresses() {
        let mut f = loop_copy(4);
        unroll(&mut f, 1000);
        assert_eq!(f.body.len(), 8);
        // every address must now be constant
        f.for_each_instr(&mut |i| match i {
            Instr::SLoad { src, .. } => assert!(src.offset.as_constant().is_some()),
            Instr::SStore { dst, .. } => assert!(dst.offset.as_constant().is_some()),
            _ => {}
        });
    }

    #[test]
    fn budget_prevents_explosion() {
        let mut f = loop_copy(1000);
        unroll(&mut f, 100);
        // stays rolled
        assert_eq!(f.body.len(), 1);
        assert!(matches!(f.body[0], CStmt::For { .. }));
    }

    #[test]
    fn nested_loops_unroll_inner_first() {
        let mut b = FunctionBuilder::new("n", 1);
        let x = b.buffer("x", 16, BufKind::ParamInOut);
        let i = b.begin_for(0, 4, 1);
        let j = b.begin_for(0, 4, 1);
        let addr = MemRef::new(x, Affine::var(i).scaled(4).plus(&Affine::var(j)));
        let r = b.sload(addr.clone());
        b.sstore(r, addr);
        b.end_for();
        b.end_for();
        let mut f = b.finish();
        unroll(&mut f, 1000);
        assert_eq!(f.body.len(), 32);
    }

    #[test]
    fn empty_range_loops_vanish() {
        let mut b = FunctionBuilder::new("e", 1);
        let x = b.buffer("x", 4, BufKind::ParamInOut);
        let i = b.begin_for(2, 2, 1);
        let r = b.sload(MemRef::new(x, Affine::var(i)));
        b.sstore(r, MemRef::new(x, Affine::var(i)));
        b.end_for();
        let mut f = b.finish();
        unroll(&mut f, 1000);
        assert!(f.body.is_empty());
    }

    /// An outer loop whose body keeps an inner *rolled* loop with
    /// outer-var-dependent bounds: the template rewrite must patch the
    /// inner bounds in every copy.
    #[test]
    fn outer_var_in_rolled_inner_bounds() {
        let mut b = FunctionBuilder::new("tri", 1);
        let x = b.buffer("x", 64, BufKind::ParamInOut);
        let i = b.begin_for(0, 3, 1);
        let j = b.begin_for(0, 100, 1); // too big to unroll within budget
        let addr = MemRef::new(x, Affine::var(j));
        let r = b.sload(addr.clone());
        b.sstore(r, addr);
        b.end_for();
        b.end_for();
        let mut f = b.finish();
        // rewrite inner hi to depend on the outer var
        if let CStmt::For { body, .. } = &mut f.body[0] {
            if let CStmt::For { hi, .. } = &mut body[0] {
                *hi = Affine::var(i).scaled(10).offset(20);
            }
        }
        unroll(&mut f, 100);
        assert_eq!(f.body.len(), 3, "outer unrolled, inner rolled");
        for (copy, expect_hi) in f.body.iter().zip([20, 30, 40]) {
            match copy {
                CStmt::For { hi, .. } => assert_eq!(hi.as_constant(), Some(expect_hi)),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn step_respected() {
        let mut b = FunctionBuilder::new("s", 1);
        let x = b.buffer("x", 8, BufKind::ParamInOut);
        let i = b.begin_for(0, 8, 4);
        let r = b.sload(MemRef::new(x, Affine::var(i)));
        b.sstore(r, MemRef::new(x, Affine::var(i)));
        b.end_for();
        let mut f = b.finish();
        unroll(&mut f, 1000);
        assert_eq!(f.body.len(), 4); // two iterations, two instrs each
        match &f.body[2] {
            CStmt::I(Instr::SLoad { src, .. }) => {
                assert_eq!(src.offset.as_constant(), Some(4));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
