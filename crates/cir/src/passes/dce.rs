//! Dead code elimination.
//!
//! Two flavors, iterated to a fixpoint:
//!
//! * **register DCE**: a pure instruction whose destination register is
//!   never read anywhere in the function is removed (flow-insensitive but
//!   sound: reads inside loops count);
//! * **dead store elimination for local temporaries**: a store to a
//!   constant cell of a `Local` buffer is removed when no load anywhere in
//!   the function can observe that cell (no load of the cell, no
//!   symbolic-offset load of the buffer, and the buffer never escapes
//!   through a call). After the load/store forwarding pass this deletes
//!   the memory traffic the paper's Fig. 12 optimization makes redundant.

use crate::func::{BufKind, CStmt, Function};
use crate::instr::{Instr, SReg, VReg};
use std::collections::HashSet;

#[derive(Default)]
struct Usage {
    sreads: HashSet<SReg>,
    vreads: HashSet<VReg>,
    loaded_cells: HashSet<(usize, i64)>,
    symbolic_load_bufs: HashSet<usize>,
    call_bufs: HashSet<usize>,
}

fn collect(f: &Function) -> Usage {
    let mut u = Usage::default();
    f.for_each_instr(&mut |i| {
        for r in i.sreg_reads() {
            u.sreads.insert(r);
        }
        for r in i.vreg_reads() {
            u.vreads.insert(r);
        }
        match i {
            Instr::SLoad { src, .. } => match src.offset.as_constant() {
                Some(off) => {
                    u.loaded_cells.insert((src.buf.0, off));
                }
                None => {
                    u.symbolic_load_bufs.insert(src.buf.0);
                }
            },
            Instr::VLoad { base, lanes, .. } => match base.offset.as_constant() {
                Some(boff) => {
                    for l in lanes.iter().flatten() {
                        u.loaded_cells.insert((base.buf.0, boff + l));
                    }
                }
                None => {
                    u.symbolic_load_bufs.insert(base.buf.0);
                }
            },
            Instr::Call { bufs, .. } => {
                for b in bufs {
                    u.call_bufs.insert(b.0);
                }
            }
            _ => {}
        }
    });
    u
}

fn store_is_dead(f: &Function, u: &Usage, buf: usize, cells: &[i64]) -> bool {
    if f.buffers[buf].kind != BufKind::Local {
        return false;
    }
    if u.symbolic_load_bufs.contains(&buf) || u.call_bufs.contains(&buf) {
        return false;
    }
    cells.iter().all(|off| !u.loaded_cells.contains(&(buf, *off)))
}

fn sweep(f: &Function, u: &Usage, stmts: Vec<CStmt>, removed: &mut bool) -> Vec<CStmt> {
    let mut out = Vec::new();
    for s in stmts {
        match s {
            CStmt::I(ins) => {
                let dead = match &ins {
                    Instr::SStore { dst, .. } => match dst.offset.as_constant() {
                        Some(off) => store_is_dead(f, u, dst.buf.0, &[off]),
                        None => false,
                    },
                    Instr::VStore { base, lanes, .. } => match base.offset.as_constant() {
                        Some(boff) => {
                            let cells: Vec<i64> =
                                lanes.iter().flatten().map(|l| boff + l).collect();
                            store_is_dead(f, u, base.buf.0, &cells)
                        }
                        None => false,
                    },
                    Instr::Call { .. } => false,
                    other => {
                        let swrite_dead =
                            other.sreg_write().map_or(true, |r| !u.sreads.contains(&r));
                        let vwrite_dead =
                            other.vreg_write().map_or(true, |r| !u.vreads.contains(&r));
                        let writes_nothing =
                            other.sreg_write().is_none() && other.vreg_write().is_none();
                        !writes_nothing && swrite_dead && vwrite_dead
                    }
                };
                if dead {
                    *removed = true;
                } else {
                    out.push(CStmt::I(ins));
                }
            }
            CStmt::For { var, lo, hi, step, body } => {
                let body = sweep(f, u, body, removed);
                if body.is_empty() {
                    *removed = true;
                } else {
                    out.push(CStmt::For { var, lo, hi, step, body });
                }
            }
            CStmt::If { cond, then_, else_ } => {
                let then_ = sweep(f, u, then_, removed);
                let else_ = sweep(f, u, else_, removed);
                if then_.is_empty() && else_.is_empty() {
                    *removed = true;
                } else {
                    out.push(CStmt::If { cond, then_, else_ });
                }
            }
        }
    }
    out
}

/// Remove dead instructions and dead local stores from `f`, iterating to a
/// fixpoint.
pub fn dce(f: &mut Function) {
    loop {
        let u = collect(f);
        let mut removed = false;
        let body = std::mem::take(&mut f.body);
        f.body = sweep(f, &u, body, &mut removed);
        if !removed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::FunctionBuilder;
    use crate::instr::{BinOp, MemRef};

    #[test]
    fn unread_computation_chain_removed() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 1, BufKind::ParamOut);
        let a = b.smov(1.0);
        let c = b.sbin(BinOp::Add, a, 1.0); // feeds nothing
        let _ = c;
        let d = b.smov(9.0);
        b.sstore(d, MemRef::new(t, 0));
        let mut f = b.finish();
        dce(&mut f);
        assert_eq!(f.static_instr_count(), 2, "only the stored value survives");
    }

    #[test]
    fn stores_to_params_are_kept() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 1, BufKind::ParamOut);
        b.sstore(1.0, MemRef::new(t, 0));
        let mut f = b.finish();
        dce(&mut f);
        assert_eq!(f.static_instr_count(), 1);
    }

    #[test]
    fn unobserved_local_store_removed() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 2, BufKind::Local);
        let o = b.buffer("o", 1, BufKind::ParamOut);
        let a = b.smov(1.0);
        b.sstore(a, MemRef::new(t, 0)); // never loaded
        b.sstore(a, MemRef::new(o, 0));
        let mut f = b.finish();
        dce(&mut f);
        let mut stores = 0;
        f.for_each_instr(&mut |i| {
            if matches!(i, Instr::SStore { .. }) {
                stores += 1;
            }
        });
        assert_eq!(stores, 1);
    }

    #[test]
    fn observed_local_store_survives() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 2, BufKind::Local);
        let o = b.buffer("o", 1, BufKind::ParamOut);
        let a = b.smov(1.0);
        b.sstore(a, MemRef::new(t, 0));
        let l = b.sload(MemRef::new(t, 0));
        b.sstore(l, MemRef::new(o, 0));
        let mut f = b.finish();
        dce(&mut f);
        let mut stores = 0;
        f.for_each_instr(&mut |i| {
            if matches!(i, Instr::SStore { .. }) {
                stores += 1;
            }
        });
        assert_eq!(stores, 2);
    }

    #[test]
    fn symbolic_load_blocks_local_store_elimination() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 4, BufKind::Local);
        let o = b.buffer("o", 4, BufKind::ParamOut);
        let a = b.smov(1.0);
        b.sstore(a, MemRef::new(t, 2));
        let i = b.begin_for(0, 4, 1);
        let l = b.sload(MemRef::new(t, crate::affine::Affine::var(i)));
        b.sstore(l, MemRef::new(o, crate::affine::Affine::var(i)));
        b.end_for();
        let mut f = b.finish();
        dce(&mut f);
        let mut local_stores = 0;
        f.for_each_instr(&mut |ins| {
            if let Instr::SStore { dst, .. } = ins {
                if dst.buf == t {
                    local_stores += 1;
                }
            }
        });
        assert_eq!(local_stores, 1, "symbolic loads may observe the cell");
    }

    #[test]
    fn loop_carried_reads_keep_instructions() {
        // A register written before a loop and read inside it must survive.
        let mut b = FunctionBuilder::new("f", 1);
        let o = b.buffer("o", 4, BufKind::ParamOut);
        let acc = b.smov(0.0);
        let i = b.begin_for(0, 4, 1);
        let acc2 = b.sbin(BinOp::Add, acc, 1.0);
        b.instr(Instr::SMov { dst: acc, a: acc2.into() });
        b.sstore(acc, MemRef::new(o, crate::affine::Affine::var(i)));
        b.end_for();
        let mut f = b.finish();
        let before = f.static_instr_count();
        dce(&mut f);
        assert_eq!(f.static_instr_count(), before);
    }

    #[test]
    fn empty_control_flow_removed() {
        let mut b = FunctionBuilder::new("f", 1);
        b.begin_for(0, 4, 1);
        let dead = b.smov(1.0); // dead inside the loop
        let _ = dead;
        b.end_for();
        let mut f = b.finish();
        dce(&mut f);
        assert!(f.body.is_empty());
    }
}
