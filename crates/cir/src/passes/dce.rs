//! Dead code elimination.
//!
//! Two flavors, iterated to a fixpoint:
//!
//! * **register DCE**: a pure instruction whose destination register is
//!   never read anywhere in the function is removed (flow-insensitive but
//!   sound: reads inside loops count);
//! * **dead store elimination for local temporaries**: a store to a
//!   constant cell of a `Local` buffer is removed when no load anywhere in
//!   the function can observe that cell (no load of the cell, no
//!   symbolic-offset load of the buffer, and the buffer never escapes
//!   through a call). After the load/store forwarding pass this deletes
//!   the memory traffic the paper's Fig. 12 optimization makes redundant.
//!
//! Throughput notes: register read sets are dense bit tables indexed by
//! register id, usage is recollected into reused allocations each round,
//! and the sweep compacts statement vectors in place instead of rebuilding
//! them.

use crate::func::{BufKind, BufferDecl, CStmt, Function};
use crate::fxhash::FxHashSet;
use crate::instr::Instr;
use crate::passes::{Consumer, DirtyLog, DirtyView};

#[derive(Default)]
struct Usage {
    sreads: Vec<bool>,
    vreads: Vec<bool>,
    loaded_cells: FxHashSet<(usize, i64)>,
    symbolic_load_bufs: Vec<bool>,
    call_bufs: Vec<bool>,
}

impl Usage {
    fn reset(&mut self, f: &Function) {
        self.sreads.clear();
        self.sreads.resize(f.n_sregs, false);
        self.vreads.clear();
        self.vreads.resize(f.n_vregs, false);
        self.loaded_cells.clear();
        self.symbolic_load_bufs.clear();
        self.symbolic_load_bufs.resize(f.buffers.len(), false);
        self.call_bufs.clear();
        self.call_bufs.resize(f.buffers.len(), false);
    }

    fn sread(&self, r: usize) -> bool {
        self.sreads.get(r).copied().unwrap_or(false)
    }
    fn vread(&self, r: usize) -> bool {
        self.vreads.get(r).copied().unwrap_or(false)
    }
}

fn mark(v: &mut Vec<bool>, i: usize) {
    super::grow_update(v, i, |b| *b = true);
}

fn collect(f: &Function, u: &mut Usage) {
    u.reset(f);
    f.for_each_instr(&mut |i| {
        i.for_each_sreg_read(|r| mark(&mut u.sreads, r.0));
        i.for_each_vreg_read(|r| mark(&mut u.vreads, r.0));
        match i {
            Instr::SLoad { src, .. } => match src.offset.as_constant() {
                Some(off) => {
                    u.loaded_cells.insert((src.buf.0, off));
                }
                None => mark(&mut u.symbolic_load_bufs, src.buf.0),
            },
            Instr::VLoad { base, lanes, .. } => match base.offset.as_constant() {
                Some(boff) => {
                    for l in lanes.iter().flatten() {
                        u.loaded_cells.insert((base.buf.0, boff + l));
                    }
                }
                None => mark(&mut u.symbolic_load_bufs, base.buf.0),
            },
            Instr::Call { bufs, .. } => {
                for b in bufs {
                    mark(&mut u.call_bufs, b.0);
                }
            }
            _ => {}
        }
    });
}

fn store_is_dead(
    buffers: &[BufferDecl],
    u: &Usage,
    buf: usize,
    cells: impl Iterator<Item = i64>,
) -> bool {
    if buffers[buf].kind != BufKind::Local {
        return false;
    }
    if u.symbolic_load_bufs.get(buf).copied().unwrap_or(false)
        || u.call_bufs.get(buf).copied().unwrap_or(false)
    {
        return false;
    }
    for off in cells {
        if u.loaded_cells.contains(&(buf, off)) {
            return false;
        }
    }
    true
}

fn instr_is_dead(buffers: &[BufferDecl], u: &Usage, ins: &Instr) -> bool {
    match ins {
        Instr::SStore { dst, .. } => match dst.offset.as_constant() {
            Some(off) => store_is_dead(buffers, u, dst.buf.0, std::iter::once(off)),
            None => false,
        },
        Instr::VStore { base, lanes, .. } => match base.offset.as_constant() {
            Some(boff) => {
                store_is_dead(buffers, u, base.buf.0, lanes.iter().flatten().map(|l| boff + l))
            }
            None => false,
        },
        Instr::Call { .. } => false,
        other => {
            let swrite_dead = other.sreg_write().is_none_or(|r| !u.sread(r.0));
            let vwrite_dead = other.vreg_write().is_none_or(|r| !u.vread(r.0));
            let writes_nothing = other.sreg_write().is_none() && other.vreg_write().is_none();
            !writes_nothing && swrite_dead && vwrite_dead
        }
    }
}

/// Compact `stmts` in place, dropping dead instructions and emptied
/// control flow; sets `removed` when anything was dropped. Removals are
/// recorded into `dirty` for the incremental scans: a deleted definition
/// shifts reader versions (mark its register), its erased reads shift
/// deadness and single-use counts elsewhere (mark its operand registers
/// and referenced buffers), a deleted store shifts load epochs and cell
/// observability (mark its buffer), and a deleted `For`/`If` merges
/// straight-line regions (mark everything).
///
/// Runs with nothing dirty for this pass were already swept against the
/// same (unchanged, per the marking rules) read counts and kept whole, so
/// they are skipped without re-checking deadness.
fn sweep(
    buffers: &[BufferDecl],
    u: &Usage,
    stmts: &mut Vec<CStmt>,
    removed: &mut bool,
    dirty: &mut DirtyLog,
    view: &DirtyView,
) {
    let mut w = 0;
    let mut run_end = 0;
    let mut run_clean = false;
    for r in 0..stmts.len() {
        if r >= run_end {
            if matches!(stmts[r], CStmt::I(_)) {
                let (end, clean) = super::scan_run(dirty, view, stmts, r);
                run_end = end;
                run_clean = clean;
                if clean {
                    dirty.note_skip();
                }
            } else {
                run_end = r + 1;
                run_clean = false;
            }
        }
        let keep = match &mut stmts[r] {
            CStmt::I(_) if run_clean => true,
            CStmt::I(ins) => !instr_is_dead(buffers, u, ins),
            CStmt::For { body, .. } => {
                sweep(buffers, u, body, removed, dirty, view);
                !body.is_empty()
            }
            CStmt::If { then_, else_, .. } => {
                sweep(buffers, u, then_, removed, dirty, view);
                sweep(buffers, u, else_, removed, dirty, view);
                !(then_.is_empty() && else_.is_empty())
            }
        };
        if keep {
            if w != r {
                stmts.swap(w, r);
            }
            w += 1;
        } else {
            match &stmts[r] {
                CStmt::I(ins) => {
                    if let Some(reg) = ins.sreg_write() {
                        dirty.mark_s(reg);
                    }
                    if let Some(reg) = ins.vreg_write() {
                        dirty.mark_v(reg);
                    }
                    super::mark_reads(dirty, ins);
                }
                CStmt::For { .. } | CStmt::If { .. } => dirty.mark_all(),
            }
            *removed = true;
        }
    }
    stmts.truncate(w);
}

/// Remove dead instructions and dead local stores from `f`, iterating to a
/// fixpoint; returns whether anything was removed.
pub fn dce(f: &mut Function) -> bool {
    dce_tracked(f, &mut DirtyLog::default())
}

/// [`dce`], additionally recording removals into `dirty` for the
/// incremental scans, and skipping runs that are provably clean for this
/// pass.
pub fn dce_tracked(f: &mut Function, dirty: &mut DirtyLog) -> bool {
    if dirty.skip_enabled() && dirty.is_clean_for(Consumer::Dce) {
        // nothing changed since the last DCE fixpoint: deadness is a
        // function of the (unchanged) whole-function read sets
        dirty.note_skip();
        return false;
    }
    let view = dirty.begin(Consumer::Dce);
    let mut any = false;
    let mut u = Usage::default();
    loop {
        collect(f, &mut u);
        let mut removed = false;
        let mut body = std::mem::take(&mut f.body);
        sweep(&f.buffers, &u, &mut body, &mut removed, dirty, &view);
        f.body = body;
        if !removed {
            break;
        }
        any = true;
    }
    dirty.commit(Consumer::Dce, &view);
    any
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::FunctionBuilder;
    use crate::instr::{BinOp, MemRef};

    #[test]
    fn unread_computation_chain_removed() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 1, BufKind::ParamOut);
        let a = b.smov(1.0);
        let c = b.sbin(BinOp::Add, a, 1.0); // feeds nothing
        let _ = c;
        let d = b.smov(9.0);
        b.sstore(d, MemRef::new(t, 0));
        let mut f = b.finish();
        assert!(dce(&mut f), "must report removals");
        assert_eq!(f.static_instr_count(), 2, "only the stored value survives");
    }

    #[test]
    fn stores_to_params_are_kept() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 1, BufKind::ParamOut);
        b.sstore(1.0, MemRef::new(t, 0));
        let mut f = b.finish();
        assert!(!dce(&mut f), "nothing removable");
        assert_eq!(f.static_instr_count(), 1);
    }

    #[test]
    fn unobserved_local_store_removed() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 2, BufKind::Local);
        let o = b.buffer("o", 1, BufKind::ParamOut);
        let a = b.smov(1.0);
        b.sstore(a, MemRef::new(t, 0)); // never loaded
        b.sstore(a, MemRef::new(o, 0));
        let mut f = b.finish();
        dce(&mut f);
        let mut stores = 0;
        f.for_each_instr(&mut |i| {
            if matches!(i, Instr::SStore { .. }) {
                stores += 1;
            }
        });
        assert_eq!(stores, 1);
    }

    #[test]
    fn observed_local_store_survives() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 2, BufKind::Local);
        let o = b.buffer("o", 1, BufKind::ParamOut);
        let a = b.smov(1.0);
        b.sstore(a, MemRef::new(t, 0));
        let l = b.sload(MemRef::new(t, 0));
        b.sstore(l, MemRef::new(o, 0));
        let mut f = b.finish();
        dce(&mut f);
        let mut stores = 0;
        f.for_each_instr(&mut |i| {
            if matches!(i, Instr::SStore { .. }) {
                stores += 1;
            }
        });
        assert_eq!(stores, 2);
    }

    #[test]
    fn symbolic_load_blocks_local_store_elimination() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 4, BufKind::Local);
        let o = b.buffer("o", 4, BufKind::ParamOut);
        let a = b.smov(1.0);
        b.sstore(a, MemRef::new(t, 2));
        let i = b.begin_for(0, 4, 1);
        let l = b.sload(MemRef::new(t, crate::affine::Affine::var(i)));
        b.sstore(l, MemRef::new(o, crate::affine::Affine::var(i)));
        b.end_for();
        let mut f = b.finish();
        dce(&mut f);
        let mut local_stores = 0;
        f.for_each_instr(&mut |ins| {
            if let Instr::SStore { dst, .. } = ins {
                if dst.buf == t {
                    local_stores += 1;
                }
            }
        });
        assert_eq!(local_stores, 1, "symbolic loads may observe the cell");
    }

    #[test]
    fn loop_carried_reads_keep_instructions() {
        // A register written before a loop and read inside it must survive.
        let mut b = FunctionBuilder::new("f", 1);
        let o = b.buffer("o", 4, BufKind::ParamOut);
        let acc = b.smov(0.0);
        let i = b.begin_for(0, 4, 1);
        let acc2 = b.sbin(BinOp::Add, acc, 1.0);
        b.instr(Instr::SMov { dst: acc, a: acc2.into() });
        b.sstore(acc, MemRef::new(o, crate::affine::Affine::var(i)));
        b.end_for();
        let mut f = b.finish();
        let before = f.static_instr_count();
        dce(&mut f);
        assert_eq!(f.static_instr_count(), before);
    }

    #[test]
    fn empty_control_flow_removed() {
        let mut b = FunctionBuilder::new("f", 1);
        b.begin_for(0, 4, 1);
        let dead = b.smov(1.0); // dead inside the loop
        let _ = dead;
        b.end_for();
        let mut f = b.finish();
        dce(&mut f);
        assert!(f.body.is_empty());
    }
}
