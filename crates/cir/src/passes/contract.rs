//! FMA contraction: fuse multiply–add/sub chains into fused
//! multiply-adds.
//!
//! Within straight-line regions, an add or subtract whose operand is the
//! result of an earlier multiply becomes a fused [`crate::Instr::SFma`] /
//! [`crate::Instr::VFma`] — `a*b + c` as `fmadd`, `a*b - c` as `fmsub`,
//! and the factorization-update form `c - a*b` as `fnmadd` — when:
//!
//! * the multiply's operands still hold their values at the add/sub
//!   (checked with the same register-version discipline as the
//!   forwarding pass);
//! * the multiply's result is read *exactly once* in the whole function —
//!   by that add/sub. This keeps the transformation a strict win on the
//!   machine model: the dead multiply is removed by [`super::dce`], so
//!   one FMA replaces a mul (multiply port) plus an add/sub (add port),
//!   never adds port pressure, and the fused op completes within the add
//!   latency (see the `fma_latency` note in `slingen-cir::target`), so
//!   accumulation chains never lengthen.
//!
//! The pass only runs when the target has FMA
//! ([`crate::Target::has_fma`], threaded through
//! [`super::PassConfig::fma_contraction`]); the default pipeline is
//! unchanged on non-FMA targets.
//!
//! Rounding: the VM executes FMA with `f64::mul_add` (single rounding),
//! so contracted code can differ from the two-op sequence by up to 1 ULP
//! per fusion — the same caveat that applies to `-ffp-contract=fast` C
//! compilation of the emitted source.

use crate::func::{CStmt, Function};
use crate::instr::{BinOp, FmaKind, Instr, SOperand, SReg, VReg};
use crate::passes::{Consumer, DirtyLog, DirtyView};

/// A pending multiply whose result register may feed one add.
#[derive(Clone, Copy)]
struct SMul {
    /// Version of the destination when the multiply defined it.
    dst_ver: u32,
    a: SOperand,
    a_ver: u32,
    b: SOperand,
    b_ver: u32,
}

#[derive(Clone, Copy)]
struct VMul {
    dst_ver: u32,
    a: VReg,
    a_ver: u32,
    b: VReg,
    b_ver: u32,
}

/// Pass state: dense version tables plus the per-register multiply facts.
struct Contract {
    svers: Vec<u32>,
    vvers: Vec<u32>,
    smuls: Vec<Option<SMul>>,
    vmuls: Vec<Option<VMul>>,
    /// Whole-function read counts (single-use discipline; see module docs).
    sreads: Vec<u32>,
    vreads: Vec<u32>,
}

impl Contract {
    fn for_function(f: &Function) -> Self {
        let mut st = Contract {
            svers: vec![0; f.n_sregs],
            vvers: vec![0; f.n_vregs],
            smuls: vec![None; f.n_sregs],
            vmuls: vec![None; f.n_vregs],
            sreads: vec![0; f.n_sregs],
            vreads: vec![0; f.n_vregs],
        };
        f.for_each_instr(&mut |i| {
            for r in i.sreg_reads() {
                super::grow_update(&mut st.sreads, r.0, |n| *n += 1);
            }
            for r in i.vreg_reads() {
                super::grow_update(&mut st.vreads, r.0, |n| *n += 1);
            }
        });
        st
    }

    fn reset(&mut self) {
        self.smuls.iter_mut().for_each(|m| *m = None);
        self.vmuls.iter_mut().for_each(|m| *m = None);
    }

    fn sver(&self, r: SReg) -> u32 {
        self.svers.get(r.0).copied().unwrap_or(0)
    }
    fn vver(&self, r: VReg) -> u32 {
        self.vvers.get(r.0).copied().unwrap_or(0)
    }
    fn sop_ver(&self, o: &SOperand) -> u32 {
        match o {
            SOperand::Reg(r) => self.sver(*r),
            SOperand::Imm(_) => 0,
        }
    }
    fn bump_s(&mut self, r: SReg) {
        super::grow_update(&mut self.svers, r.0, |v| *v += 1);
    }
    fn bump_v(&mut self, r: VReg) {
        super::grow_update(&mut self.vvers, r.0, |v| *v += 1);
    }

    /// The multiply feeding scalar operand `o`, if it is a single-use
    /// register whose multiply operands are all still live.
    fn smul_for(&self, o: &SOperand) -> Option<(SReg, SMul)> {
        let SOperand::Reg(r) = o else { return None };
        let m = (*self.smuls.get(r.0)?)?;
        let live = self.sver(*r) == m.dst_ver
            && self.sop_ver(&m.a) == m.a_ver
            && self.sop_ver(&m.b) == m.b_ver;
        let single_use = self.sreads.get(r.0).copied().unwrap_or(0) == 1;
        (live && single_use).then_some((*r, m))
    }

    fn vmul_for(&self, r: VReg) -> Option<VMul> {
        let m = (*self.vmuls.get(r.0)?)?;
        let live =
            self.vver(r) == m.dst_ver && self.vver(m.a) == m.a_ver && self.vver(m.b) == m.b_ver;
        let single_use = self.vreads.get(r.0).copied().unwrap_or(0) == 1;
        (live && single_use).then_some(m)
    }
}

/// Rewrite one instruction in place; returns `true` on contraction. The
/// fused multiply's destination loses its single read, so it is marked
/// dirty (its definition dies; DCE must recheck its run).
fn process(st: &mut Contract, ins: &mut Instr, dirty: &mut DirtyLog) -> bool {
    let mut changed = false;
    match ins {
        Instr::SBin { op: op @ (BinOp::Add | BinOp::Sub), dst, a, b } => {
            // prefer the first operand's multiply; for Add fall back to
            // the second (addition commutes), deterministically
            if let Some((mr, m)) = st.smul_for(a) {
                let kind = match op {
                    BinOp::Add => FmaKind::MulAdd, // a*b + c
                    _ => FmaKind::MulSub,          // a*b - c
                };
                *ins = Instr::SFma { kind, dst: *dst, a: m.a, b: m.b, c: *b };
                dirty.mark_s(mr);
                changed = true;
            } else if let Some((mr, m)) = st.smul_for(b) {
                let kind = match op {
                    BinOp::Add => FmaKind::MulAdd, // c + a*b
                    _ => FmaKind::NegMulAdd,       // c - a*b
                };
                *ins = Instr::SFma { kind, dst: *dst, a: m.a, b: m.b, c: *a };
                dirty.mark_s(mr);
                changed = true;
            }
        }
        Instr::VBin { op: op @ (BinOp::Add | BinOp::Sub), dst, a, b } => {
            if let Some(m) = st.vmul_for(*a) {
                let kind = match op {
                    BinOp::Add => FmaKind::MulAdd,
                    _ => FmaKind::MulSub,
                };
                let mr = *a;
                *ins = Instr::VFma { kind, dst: *dst, a: m.a, b: m.b, c: *b };
                dirty.mark_v(mr);
                changed = true;
            } else if let Some(m) = st.vmul_for(*b) {
                let kind = match op {
                    BinOp::Add => FmaKind::MulAdd,
                    _ => FmaKind::NegMulAdd,
                };
                let mr = *b;
                *ins = Instr::VFma { kind, dst: *dst, a: m.a, b: m.b, c: *a };
                dirty.mark_v(mr);
                changed = true;
            }
        }
        _ => {}
    }
    // record effects *after* the (possibly rewritten) instruction: operand
    // versions are captured before the destination bump, so a multiply
    // that overwrites its own operand can never be fused later.
    let mul_fact_s = match &*ins {
        Instr::SBin { op: BinOp::Mul, dst, a, b } => Some((
            *dst,
            SMul { dst_ver: 0, a: *a, a_ver: st.sop_ver(a), b: *b, b_ver: st.sop_ver(b) },
        )),
        _ => None,
    };
    let mul_fact_v = match &*ins {
        Instr::VBin { op: BinOp::Mul, dst, a, b } => {
            Some((*dst, VMul { dst_ver: 0, a: *a, a_ver: st.vver(*a), b: *b, b_ver: st.vver(*b) }))
        }
        _ => None,
    };
    if let Some(r) = ins.sreg_write() {
        st.bump_s(r);
        super::grow_update(&mut st.smuls, r.0, |m| *m = None);
    }
    if let Some(r) = ins.vreg_write() {
        st.bump_v(r);
        super::grow_update(&mut st.vmuls, r.0, |m| *m = None);
    }
    if let Some((dst, mut m)) = mul_fact_s {
        m.dst_ver = st.sver(dst);
        super::grow_update(&mut st.smuls, dst.0, |slot| *slot = Some(m));
    }
    if let Some((dst, mut m)) = mul_fact_v {
        m.dst_ver = st.vver(dst);
        super::grow_update(&mut st.vmuls, dst.0, |slot| *slot = Some(m));
    }
    changed
}

fn walk(stmts: &mut [CStmt], st: &mut Contract, dirty: &mut DirtyLog, view: &DirtyView) -> bool {
    let mut changed = false;
    // Clean-run skipping (block memo): multiply facts are run-local and
    // the whole-function read counts can only have changed for marked
    // registers, so a clean run repeats its previous (non-)fusions.
    let mut run_end = 0;
    let mut run_clean = false;
    for r in 0..stmts.len() {
        if r >= run_end {
            if matches!(stmts[r], CStmt::I(_)) {
                let (end, clean) = super::scan_run(dirty, view, stmts, r);
                run_end = end;
                run_clean = clean;
                if clean {
                    dirty.note_skip();
                }
            } else {
                run_end = r + 1;
                run_clean = false;
            }
        }
        match &mut stmts[r] {
            CStmt::I(_) if run_clean => {}
            CStmt::I(ins) => {
                if process(st, ins, dirty) {
                    // the add/sub became an FMA: its key changed
                    if let Some(r) = ins.sreg_write() {
                        dirty.mark_s(r);
                    }
                    if let Some(r) = ins.vreg_write() {
                        dirty.mark_v(r);
                    }
                    changed = true;
                }
            }
            CStmt::For { body, .. } => {
                st.reset();
                changed |= walk(body, st, dirty, view);
                st.reset();
            }
            CStmt::If { then_, else_, .. } => {
                st.reset();
                changed |= walk(then_, st, dirty, view);
                st.reset();
                changed |= walk(else_, st, dirty, view);
                st.reset();
            }
        }
    }
    changed
}

/// Fuse single-use multiply–add chains in `f` into FMA instructions;
/// returns whether anything changed. The dead multiplies are left for
/// [`super::dce`] to collect.
pub fn contract(f: &mut Function) -> bool {
    contract_tracked(f, &mut DirtyLog::default())
}

/// [`contract`], additionally recording fused definitions into `dirty`
/// for the incremental scans, and skipping runs that are provably clean
/// for this pass.
pub fn contract_tracked(f: &mut Function, dirty: &mut DirtyLog) -> bool {
    if dirty.skip_enabled() && dirty.is_clean_for(Consumer::Contract) {
        dirty.note_skip();
        return false;
    }
    let view = dirty.begin(Consumer::Contract);
    let mut st = Contract::for_function(f);
    let changed = walk(&mut f.body, &mut st, dirty, &view);
    dirty.commit(Consumer::Contract, &view);
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{BufKind, FunctionBuilder};
    use crate::instr::MemRef;

    fn count(f: &Function, pred: impl Fn(&Instr) -> bool) -> usize {
        let mut n = 0;
        f.for_each_instr(&mut |i| {
            if pred(i) {
                n += 1;
            }
        });
        n
    }

    #[test]
    fn scalar_mul_add_contracts() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 1, BufKind::ParamOut);
        let x = b.smov(2.0);
        let y = b.smov(3.0);
        let m = b.sbin(BinOp::Mul, x, y);
        let s = b.sbin(BinOp::Add, m, 1.0);
        b.sstore(s, MemRef::new(t, 0));
        let mut f = b.finish();
        assert!(contract(&mut f));
        assert_eq!(count(&f, |i| matches!(i, Instr::SFma { .. })), 1);
        // the mul is now dead; DCE removes it
        assert!(super::super::dce::dce(&mut f));
        assert_eq!(count(&f, |i| matches!(i, Instr::SBin { op: BinOp::Mul, .. })), 0);
    }

    #[test]
    fn vector_mul_add_contracts_both_operand_orders() {
        for mul_first in [true, false] {
            let mut b = FunctionBuilder::new("f", 4);
            let t = b.buffer("t", 8, BufKind::ParamInOut);
            let vx = b.vload_contig(MemRef::new(t, 0));
            let vy = b.vload_contig(MemRef::new(t, 4));
            let m = b.vbin(BinOp::Mul, vx, vy);
            let s = if mul_first { b.vbin(BinOp::Add, m, vx) } else { b.vbin(BinOp::Add, vx, m) };
            b.vstore_contig(s, MemRef::new(t, 0));
            let mut f = b.finish();
            assert!(contract(&mut f), "mul_first={mul_first}");
            assert_eq!(count(&f, |i| matches!(i, Instr::VFma { .. })), 1);
        }
    }

    #[test]
    fn multi_use_mul_is_not_contracted() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 2, BufKind::ParamOut);
        let x = b.smov(2.0);
        let m = b.sbin(BinOp::Mul, x, x);
        let s = b.sbin(BinOp::Add, m, 1.0);
        b.sstore(s, MemRef::new(t, 0));
        b.sstore(m, MemRef::new(t, 1)); // second use of the mul result
        let mut f = b.finish();
        assert!(!contract(&mut f), "a multi-use mul must stay unfused");
    }

    #[test]
    fn operand_redefinition_blocks_contraction() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 1, BufKind::ParamOut);
        let x = b.smov(2.0);
        let m = b.sbin(BinOp::Mul, x, 3.0);
        // x changes between the mul and the add: fusing would read the new x
        b.instr(Instr::SMov { dst: x, a: 9.0.into() });
        let s = b.sbin(BinOp::Add, m, x);
        b.sstore(s, MemRef::new(t, 0));
        let mut f = b.finish();
        // the add's second operand (x) is fine, but the mul fact for m
        // references the old x — contraction of m must be rejected... the
        // mul's operands are x (redefined) and an imm, so m is invalid.
        assert!(!contract(&mut f));
    }

    #[test]
    fn self_overwriting_mul_is_rejected() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 1, BufKind::ParamOut);
        let x = b.smov(2.0);
        // x = x * 3.0 — the multiply destroys its own operand
        b.instr(Instr::SBin { op: BinOp::Mul, dst: x, a: x.into(), b: 3.0.into() });
        let s = b.sbin(BinOp::Add, x, 1.0);
        b.sstore(s, MemRef::new(t, 0));
        let mut f = b.finish();
        assert!(!contract(&mut f), "fusing would re-read the overwritten operand");
    }

    #[test]
    fn control_flow_boundaries_reset_facts() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 4, BufKind::ParamOut);
        let x = b.smov(2.0);
        let m = b.sbin(BinOp::Mul, x, 3.0);
        let i = b.begin_for(0, 2, 1);
        let s = b.sbin(BinOp::Add, m, 1.0);
        b.sstore(s, MemRef::new(t, crate::affine::Affine::var(i)));
        b.end_for();
        let mut f = b.finish();
        assert!(!contract(&mut f), "facts must not cross into loop bodies");
    }

    #[test]
    fn sub_forms_pick_the_right_kind() {
        // a*b - c => MulSub
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 1, BufKind::ParamOut);
        let x = b.smov(2.0);
        let m = b.sbin(BinOp::Mul, x, 3.0);
        let s = b.sbin(BinOp::Sub, m, 1.0);
        b.sstore(s, MemRef::new(t, 0));
        let mut f = b.finish();
        assert!(contract(&mut f));
        assert_eq!(count(&f, |i| matches!(i, Instr::SFma { kind: FmaKind::MulSub, .. })), 1);

        // c - a*b => NegMulAdd (the Cholesky/solver update form)
        let mut b = FunctionBuilder::new("f", 4);
        let t = b.buffer("t", 8, BufKind::ParamInOut);
        let vc = b.vload_contig(MemRef::new(t, 0));
        let vx = b.vload_contig(MemRef::new(t, 4));
        let m = b.vbin(BinOp::Mul, vx, vx);
        let s = b.vbin(BinOp::Sub, vc, m);
        b.vstore_contig(s, MemRef::new(t, 0));
        let mut f = b.finish();
        assert!(contract(&mut f));
        assert_eq!(count(&f, |i| matches!(i, Instr::VFma { kind: FmaKind::NegMulAdd, .. })), 1);
    }

    #[test]
    fn sub_does_not_commute_into_mul_sub() {
        // c - a*b must NOT become fmsub(a, b, c); kinds are order-exact
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 1, BufKind::ParamOut);
        let x = b.smov(2.0);
        let m = b.sbin(BinOp::Mul, x, 3.0);
        let c = b.smov(10.0);
        let s = b.sbin(BinOp::Sub, c, m);
        b.sstore(s, MemRef::new(t, 0));
        let mut f = b.finish();
        assert!(contract(&mut f));
        assert_eq!(count(&f, |i| matches!(i, Instr::SFma { kind: FmaKind::NegMulAdd, .. })), 1);
        assert_eq!(count(&f, |i| matches!(i, Instr::SFma { kind: FmaKind::MulSub, .. })), 0);
    }
}
