//! Scalar replacement and the domain-specific load/store analysis.
//!
//! This pass implements the paper's §3.3 optimization (Figs. 11–12): within
//! straight-line regions it tracks, per memory cell, which register lane
//! currently holds the cell's value. Loads whose bytes were all produced by
//! earlier stores are then replaced by register operations:
//!
//! * a scalar load becomes a scalar move ([`crate::Instr::SMov`]) or a lane
//!   extract;
//! * a vector load whose lanes live in one or two vector registers becomes
//!   a [`crate::Instr::VBlend`] (when lanes align) or a
//!   [`crate::Instr::VShuffle`] — the `smul9a`/`smul9b` example of Fig. 12;
//! * a vector load whose lanes are scattered scalar registers is left
//!   alone (re-packing through memory is what the hardware store buffer
//!   would do anyway).
//!
//! The stores themselves often become dead afterwards and are removed by
//! [`super::dce`] when the buffer is a local temporary, or kept when the
//! buffer is live-out (the paper keeps the `maskstore`s for the same
//! reason).
//!
//! Soundness relies on the C-IR invariant that distinct buffers never
//! alias. Conservative resets happen at control-flow boundaries and calls.
//!
//! Throughput notes: both `forward` and `copyprop` stream over the body
//! mutating instructions in place (no rebuilt vectors, no per-instruction
//! clones); register versions live in dense tables indexed by register id,
//! and copy facts are validated by version instead of being invalidated by
//! reverse scans.

use crate::func::{CStmt, Function};
use crate::fxhash::FxHashMap;
use crate::instr::{Instr, LaneSel, SOperand, SReg, VReg};
use crate::passes::{Consumer, DirtyLog, DirtyView};

/// Mark the destination register of `ins` in the dirty log (incremental
/// CSE seeding: the definition's content or existence changed).
fn mark_def(dirty: &mut DirtyLog, ins: &Instr) {
    if let Some(r) = ins.sreg_write() {
        dirty.mark_s(r);
    }
    if let Some(r) = ins.vreg_write() {
        dirty.mark_v(r);
    }
}

/// Who holds the current value of a memory cell.
#[derive(Debug, Clone, Copy, PartialEq)]
enum CellSrc {
    S(SReg, u32),
    VLane(VReg, u32, usize),
    Imm(f64),
}

/// Pass state: dense register-version tables plus the cell map.
struct State {
    svers: Vec<u32>,
    vvers: Vec<u32>,
    cells: FxHashMap<(usize, i64), CellSrc>,
}

impl State {
    fn for_function(f: &Function) -> Self {
        State { svers: vec![0; f.n_sregs], vvers: vec![0; f.n_vregs], cells: FxHashMap::default() }
    }
    fn sver(&self, r: SReg) -> u32 {
        self.svers.get(r.0).copied().unwrap_or(0)
    }
    fn vver(&self, r: VReg) -> u32 {
        self.vvers.get(r.0).copied().unwrap_or(0)
    }
    fn bump_s(&mut self, r: SReg) {
        super::grow_update(&mut self.svers, r.0, |v| *v += 1);
    }
    fn bump_v(&mut self, r: VReg) {
        super::grow_update(&mut self.vvers, r.0, |v| *v += 1);
    }
    fn valid(&self, c: &CellSrc) -> bool {
        match c {
            CellSrc::S(r, v) => self.sver(*r) == *v,
            CellSrc::VLane(r, v, _) => self.vver(*r) == *v,
            CellSrc::Imm(_) => true,
        }
    }
    fn invalidate_buffer(&mut self, buf: usize) {
        self.cells.retain(|(b, _), _| *b != buf);
    }
    fn clear_cells(&mut self) {
        self.cells.clear();
    }
}

/// Try to rewrite a vector load from tracked cells into a shuffle/blend.
///
/// Returns the replacement instruction, or `None` to keep the load.
fn rewrite_vload(dst: VReg, sources: &[Option<CellSrc>]) -> Option<Instr> {
    // All active lanes must be valid vector lanes (scalar sources would
    // need broadcast+blend chains that rarely pay off; see module docs).
    let mut regs: [Option<VReg>; 2] = [None, None];
    for s in sources.iter().flatten() {
        match s {
            CellSrc::VLane(r, _, _) => {
                if regs[0] == Some(*r) || regs[1] == Some(*r) {
                    continue;
                }
                if regs[0].is_none() {
                    regs[0] = Some(*r);
                } else if regs[1].is_none() {
                    regs[1] = Some(*r);
                } else {
                    return None; // more than two source registers
                }
            }
            _ => return None,
        }
    }
    let a = regs[0]?;
    let b = regs[1].unwrap_or(a);
    let sel: Vec<LaneSel> = sources
        .iter()
        .map(|s| match s {
            None => LaneSel::Zero,
            Some(CellSrc::VLane(r, _, lane)) => {
                if *r == a {
                    LaneSel::A(*lane)
                } else {
                    LaneSel::B(*lane)
                }
            }
            Some(_) => unreachable!("filtered above"),
        })
        .collect();
    // Blend pattern: every active lane i selects lane i of a source and no
    // zeros are required.
    let is_blend = sel.iter().enumerate().all(|(i, s)| match s {
        LaneSel::A(j) | LaneSel::B(j) => *j == i,
        LaneSel::Zero => false,
    });
    if is_blend && regs[1].is_some() {
        let mask = sel.iter().map(|s| matches!(s, LaneSel::B(_))).collect();
        return Some(Instr::VBlend { dst, a, b, mask });
    }
    Some(Instr::VShuffle { dst, a, b, sel })
}

/// Outcome of processing one instruction in place.
enum Outcome {
    Keep,
    Rewritten,
    Drop,
}

fn process(st: &mut State, ins: &mut Instr, ls_analysis: bool, scalar_repl: bool) -> Outcome {
    match ins {
        Instr::SStore { src, dst } => {
            if let Some(off) = dst.offset.as_constant() {
                let cell = match src {
                    SOperand::Reg(r) => CellSrc::S(*r, st.sver(*r)),
                    SOperand::Imm(v) => CellSrc::Imm(*v),
                };
                st.cells.insert((dst.buf.0, off), cell);
            } else {
                st.invalidate_buffer(dst.buf.0);
            }
            Outcome::Keep
        }
        Instr::VStore { src, base, lanes } => {
            if let Some(boff) = base.offset.as_constant() {
                let ver = st.vver(*src);
                for (lane, l) in lanes.iter().enumerate() {
                    if let Some(off) = l {
                        st.cells.insert((base.buf.0, boff + off), CellSrc::VLane(*src, ver, lane));
                    }
                }
            } else {
                st.invalidate_buffer(base.buf.0);
            }
            Outcome::Keep
        }
        Instr::SLoad { dst, src } => {
            let dst = *dst;
            let tracked = src.offset.as_constant().map(|off| (src.buf.0, off));
            let mut outcome = Outcome::Keep;
            if scalar_repl {
                if let Some(cellkey) = tracked {
                    if let Some(cell) = st.cells.get(&cellkey).copied() {
                        if st.valid(&cell) {
                            match cell {
                                CellSrc::S(r, _) if r != dst => {
                                    *ins = Instr::SMov { dst, a: r.into() };
                                    outcome = Outcome::Rewritten;
                                }
                                CellSrc::S(_, _) => {
                                    // load into the same register: drop
                                    outcome = Outcome::Drop;
                                }
                                CellSrc::Imm(v) => {
                                    *ins = Instr::SMov { dst, a: v.into() };
                                    outcome = Outcome::Rewritten;
                                }
                                CellSrc::VLane(r, _, lane) if ls_analysis => {
                                    *ins = Instr::VExtract { dst, src: r, lane };
                                    outcome = Outcome::Rewritten;
                                }
                                CellSrc::VLane(..) => {}
                            }
                        }
                    }
                }
            }
            st.bump_s(dst);
            // the register now also holds the cell's value
            if let Some(cellkey) = tracked {
                st.cells.insert(cellkey, CellSrc::S(dst, st.sver(dst)));
            }
            outcome
        }
        Instr::VLoad { dst, base, lanes } => {
            let dst = *dst;
            let boff = base.offset.as_constant();
            let mut replacement = None;
            if ls_analysis {
                if let Some(boff) = boff {
                    let sources: Vec<Option<CellSrc>> = lanes
                        .iter()
                        .map(|l| l.and_then(|off| st.cells.get(&(base.buf.0, boff + off)).copied()))
                        .collect();
                    let all_tracked = lanes
                        .iter()
                        .zip(&sources)
                        .all(|(l, s)| l.is_none() || s.is_some_and(|c| st.valid(&c)));
                    if all_tracked {
                        replacement = rewrite_vload(dst, &sources);
                    }
                }
            }
            st.bump_v(dst);
            // register lanes now mirror the loaded cells
            if let Some(boff) = boff {
                let ver = st.vver(dst);
                for (lane, l) in lanes.iter().enumerate() {
                    if let Some(off) = l {
                        st.cells.insert((base.buf.0, boff + off), CellSrc::VLane(dst, ver, lane));
                    }
                }
            }
            match replacement {
                Some(rep) => {
                    *ins = rep;
                    Outcome::Rewritten
                }
                None => Outcome::Keep,
            }
        }
        Instr::Call { .. } => {
            st.clear_cells();
            Outcome::Keep
        }
        other => {
            if let Some(r) = other.sreg_write() {
                st.bump_s(r);
            }
            if let Some(r) = other.vreg_write() {
                st.bump_v(r);
            }
            Outcome::Keep
        }
    }
}

fn walk(
    stmts: &mut Vec<CStmt>,
    st: &mut State,
    ls: bool,
    sr: bool,
    dirty: &mut DirtyLog,
    view: &DirtyView,
) -> bool {
    let mut changed = false;
    let mut w = 0;
    // Clean-run skipping (block memo): runs with nothing dirty for this
    // pass are kept verbatim without touching `st` — sound because cell
    // facts never cross run boundaries and version checks are run-local
    // equalities (see the module docs in `super`).
    let mut run_end = 0;
    let mut run_clean = false;
    for r in 0..stmts.len() {
        if r >= run_end {
            if matches!(stmts[r], CStmt::I(_)) {
                let (end, clean) = super::scan_run(dirty, view, stmts, r);
                run_end = end;
                run_clean = clean;
                if clean {
                    dirty.note_skip();
                }
            } else {
                run_end = r + 1;
                run_clean = false;
            }
        }
        let keep = match &mut stmts[r] {
            CStmt::I(_) if run_clean => true,
            CStmt::I(ins) => {
                // a rewritten or dropped load stops observing its buffer:
                // stores into it may become dead, so mark it too
                let load_buf = match ins {
                    Instr::SLoad { src, .. } => Some(src.buf.0),
                    Instr::VLoad { base, .. } => Some(base.buf.0),
                    _ => None,
                };
                match process(st, ins, ls, sr) {
                    Outcome::Keep => true,
                    Outcome::Rewritten => {
                        // the definition's content changed (load → mov/
                        // extract/shuffle/blend)
                        mark_def(dirty, ins);
                        if let Some(b) = load_buf {
                            dirty.mark_buf(b);
                        }
                        changed = true;
                        true
                    }
                    Outcome::Drop => {
                        // the definition disappears: later definitions of
                        // the register (and their readers) shift versions
                        mark_def(dirty, ins);
                        if let Some(b) = load_buf {
                            dirty.mark_buf(b);
                        }
                        changed = true;
                        false
                    }
                }
            }
            CStmt::For { body, .. } => {
                st.clear_cells();
                changed |= walk(body, st, ls, sr, dirty, view);
                st.clear_cells();
                true
            }
            CStmt::If { then_, else_, .. } => {
                st.clear_cells();
                changed |= walk(then_, st, ls, sr, dirty, view);
                st.clear_cells();
                changed |= walk(else_, st, ls, sr, dirty, view);
                st.clear_cells();
                true
            }
        };
        if keep {
            if w != r {
                stmts.swap(w, r);
            }
            w += 1;
        }
    }
    stmts.truncate(w);
    changed
}

/// Run scalar replacement (`scalar_repl`) and/or the load/store analysis
/// (`ls_analysis`) over `f`; returns whether anything changed.
pub fn forward(f: &mut Function, ls_analysis: bool, scalar_repl: bool) -> bool {
    forward_tracked(f, ls_analysis, scalar_repl, &mut DirtyLog::default())
}

/// [`forward`], additionally recording touched definitions into `dirty`
/// for the incremental scans, and skipping runs that are provably clean
/// for this pass.
pub fn forward_tracked(
    f: &mut Function,
    ls_analysis: bool,
    scalar_repl: bool,
    dirty: &mut DirtyLog,
) -> bool {
    if dirty.skip_enabled() && dirty.is_clean_for(Consumer::Forward) {
        // nothing changed since this pass last ran: rerunning it would
        // reproduce its own fixpoint
        dirty.note_skip();
        return false;
    }
    let view = dirty.begin(Consumer::Forward);
    let mut st = State::for_function(f);
    let mut body = std::mem::take(&mut f.body);
    let changed = walk(&mut body, &mut st, ls_analysis, scalar_repl, dirty, &view);
    f.body = body;
    dirty.commit(Consumer::Forward, &view);
    changed
}

// ---------------------------------------------------------------------
// Copy propagation
// ---------------------------------------------------------------------

/// Copy facts validated by source-register version: `copies[d] = (op, v)`
/// means `d` currently equals `op`, recorded when `op`'s register had
/// version `v`. A mismatching current version invalidates the fact lazily,
/// so redefinitions never require reverse scans.
///
/// Table slots carry a generation tag; slots from an older generation
/// read as the default, so [`CopyState::reset`] at control-flow
/// boundaries is O(1) regardless of register count.
struct CopyState {
    gen: u32,
    svers: Vec<(u32, u32)>,
    vvers: Vec<(u32, u32)>,
    scopies: Vec<(u32, Option<(SOperand, u32)>)>,
    vcopies: Vec<(u32, Option<(VReg, u32)>)>,
}

impl CopyState {
    fn for_function(f: &Function) -> Self {
        CopyState {
            gen: 0,
            svers: vec![(0, 0); f.n_sregs],
            vvers: vec![(0, 0); f.n_vregs],
            scopies: vec![(0, None); f.n_sregs],
            vcopies: vec![(0, None); f.n_vregs],
        }
    }
    fn reset(&mut self) {
        self.gen += 1;
    }
    fn sver(&self, r: SReg) -> u32 {
        match self.svers.get(r.0) {
            Some((g, v)) if *g == self.gen => *v,
            _ => 0,
        }
    }
    fn vver(&self, r: VReg) -> u32 {
        match self.vvers.get(r.0) {
            Some((g, v)) if *g == self.gen => *v,
            _ => 0,
        }
    }
    fn scopy(&self, r: SReg) -> Option<(SOperand, u32)> {
        match self.scopies.get(r.0) {
            Some((g, c)) if *g == self.gen => *c,
            _ => None,
        }
    }
    fn vcopy(&self, r: VReg) -> Option<(VReg, u32)> {
        match self.vcopies.get(r.0) {
            Some((g, c)) if *g == self.gen => *c,
            _ => None,
        }
    }
    fn write_s(&mut self, r: SReg) {
        let gen = self.gen;
        super::grow_update(&mut self.svers, r.0, |s| {
            *s = if s.0 == gen { (gen, s.1 + 1) } else { (gen, 1) }
        });
        super::grow_update(&mut self.scopies, r.0, |c| *c = (gen, None));
    }
    fn write_v(&mut self, r: VReg) {
        let gen = self.gen;
        super::grow_update(&mut self.vvers, r.0, |s| {
            *s = if s.0 == gen { (gen, s.1 + 1) } else { (gen, 1) }
        });
        super::grow_update(&mut self.vcopies, r.0, |c| *c = (gen, None));
    }
    /// Substitute a scalar operand; returns `true` on change. The
    /// substituted-away register lost a read (its definition may become
    /// dead or its multiply single-use), so it is marked dirty.
    fn subst_sop(&self, o: &mut SOperand, dirty: &mut DirtyLog) -> bool {
        if let SOperand::Reg(r) = *o {
            if let Some((src, v)) = self.scopy(r) {
                let live = match src {
                    SOperand::Reg(s) => self.sver(s) == v,
                    SOperand::Imm(_) => true,
                };
                if live && src != *o {
                    dirty.mark_s(r);
                    *o = src;
                    return true;
                }
            }
        }
        false
    }
    /// Substitute a vector register read; returns `true` on change.
    fn subst_v(&self, r: &mut VReg, dirty: &mut DirtyLog) -> bool {
        if let Some((src, v)) = self.vcopy(*r) {
            if self.vver(src) == v && src != *r {
                dirty.mark_v(*r);
                *r = src;
                return true;
            }
        }
        false
    }
    fn record_s(&mut self, dst: SReg, a: SOperand) {
        if matches!(a, SOperand::Reg(r) if r == dst) {
            return;
        }
        let ver = match a {
            SOperand::Reg(r) => self.sver(r),
            SOperand::Imm(_) => 0,
        };
        let gen = self.gen;
        super::grow_update(&mut self.scopies, dst.0, |c| *c = (gen, Some((a, ver))));
    }
    fn record_v(&mut self, dst: VReg, src: VReg) {
        if dst != src {
            let ver = self.vver(src);
            let gen = self.gen;
            super::grow_update(&mut self.vcopies, dst.0, |c| *c = (gen, Some((src, ver))));
        }
    }
}

fn copyprop_instr(st: &mut CopyState, ins: &mut Instr, dirty: &mut DirtyLog) -> bool {
    let mut changed = false;
    match ins {
        Instr::SMov { a, .. } | Instr::SSqrt { a, .. } => changed |= st.subst_sop(a, dirty),
        Instr::SBin { a, b, .. } => {
            changed |= st.subst_sop(a, dirty);
            changed |= st.subst_sop(b, dirty);
        }
        Instr::SFma { a, b, c, .. } => {
            changed |= st.subst_sop(a, dirty);
            changed |= st.subst_sop(b, dirty);
            changed |= st.subst_sop(c, dirty);
        }
        Instr::SStore { src, .. } => changed |= st.subst_sop(src, dirty),
        Instr::VBroadcast { src, .. } => changed |= st.subst_sop(src, dirty),
        Instr::VMov { src, .. } | Instr::VStore { src, .. } => changed |= st.subst_v(src, dirty),
        Instr::VBin { a, b, .. } | Instr::VShuffle { a, b, .. } | Instr::VBlend { a, b, .. } => {
            changed |= st.subst_v(a, dirty);
            changed |= st.subst_v(b, dirty);
        }
        Instr::VFma { a, b, c, .. } => {
            changed |= st.subst_v(a, dirty);
            changed |= st.subst_v(b, dirty);
            changed |= st.subst_v(c, dirty);
        }
        Instr::VExtract { src, .. } | Instr::VReduceAdd { src, .. } => {
            changed |= st.subst_v(src, dirty);
        }
        Instr::SLoad { .. } | Instr::VLoad { .. } | Instr::Call { .. } => {}
    }
    // Redefinitions invalidate (lazily, via versions), then new copy facts
    // are recorded from the rewritten instruction.
    if let Some(w) = ins.sreg_write() {
        st.write_s(w);
    }
    if let Some(w) = ins.vreg_write() {
        st.write_v(w);
    }
    if let Instr::SMov { dst, a } = ins {
        st.record_s(*dst, *a);
    }
    if let Instr::VMov { dst, src } = ins {
        st.record_v(*dst, *src);
    }
    changed
}

fn copyprop_walk(
    stmts: &mut [CStmt],
    st: &mut CopyState,
    dirty: &mut DirtyLog,
    view: &DirtyView,
) -> bool {
    let mut changed = false;
    let mut run_end = 0;
    let mut run_clean = false;
    for r in 0..stmts.len() {
        if r >= run_end {
            if matches!(stmts[r], CStmt::I(_)) {
                let (end, clean) = super::scan_run(dirty, view, stmts, r);
                run_end = end;
                run_clean = clean;
                if clean {
                    dirty.note_skip();
                }
            } else {
                run_end = r + 1;
                run_clean = false;
            }
        }
        match &mut stmts[r] {
            CStmt::I(_) if run_clean => {}
            CStmt::I(ins) => {
                if copyprop_instr(st, ins, dirty) {
                    // substituted operands change the definition's key
                    // (substitutions in stores have no key to invalidate)
                    mark_def(dirty, ins);
                    changed = true;
                }
            }
            CStmt::For { body, .. } => {
                st.reset();
                changed |= copyprop_walk(body, st, dirty, view);
                st.reset();
            }
            CStmt::If { then_, else_, .. } => {
                st.reset();
                changed |= copyprop_walk(then_, st, dirty, view);
                st.reset();
                changed |= copyprop_walk(else_, st, dirty, view);
                st.reset();
            }
        }
    }
    changed
}

/// Propagate scalar and vector copies within straight-line regions;
/// returns whether anything changed.
pub fn copyprop(f: &mut Function) -> bool {
    copyprop_tracked(f, &mut DirtyLog::default())
}

/// [`copyprop`], additionally recording touched definitions into `dirty`
/// for the incremental scans, and skipping runs that are provably clean
/// for this pass.
pub fn copyprop_tracked(f: &mut Function, dirty: &mut DirtyLog) -> bool {
    if dirty.skip_enabled() && dirty.is_clean_for(Consumer::Copyprop) {
        dirty.note_skip();
        return false;
    }
    let view = dirty.begin(Consumer::Copyprop);
    let mut st = CopyState::for_function(f);
    let changed = copyprop_walk(&mut f.body, &mut st, dirty, &view);
    dirty.commit(Consumer::Copyprop, &view);
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{BufKind, FunctionBuilder};
    use crate::instr::{BinOp, MemRef};

    #[test]
    fn scalar_store_load_forwards_to_mov() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 4, BufKind::Local);
        let r = b.smov(7.0);
        b.sstore(r, MemRef::new(t, 2));
        let l = b.sload(MemRef::new(t, 2));
        let _ = b.sbin(BinOp::Add, l, 1.0);
        let mut f = b.finish();
        assert!(forward(&mut f, true, true));
        let mut loads = 0;
        let mut movs = 0;
        f.for_each_instr(&mut |i| match i {
            Instr::SLoad { .. } => loads += 1,
            Instr::SMov { .. } => movs += 1,
            _ => {}
        });
        assert_eq!(loads, 0);
        assert!(movs >= 2); // original + forwarded
    }

    #[test]
    fn vector_round_trip_becomes_blend() {
        // Mirror of paper Fig. 12: two masked stores, then a load gathering
        // lanes from both stored registers at matching lane positions.
        let mut b = FunctionBuilder::new("f", 4);
        let s = b.buffer("S", 16, BufKind::ParamInOut);
        let va = b.vbroadcast(1.0);
        let vb = b.vbroadcast(2.0);
        b.vstore(va, MemRef::new(s, 0), vec![Some(0), Some(1), None, None]);
        b.vstore(vb, MemRef::new(s, 0), vec![None, None, Some(2), Some(3)]);
        let _v = b.vload_contig(MemRef::new(s, 0));
        let mut f = b.finish();
        forward(&mut f, true, true);
        let mut blends = 0;
        let mut loads = 0;
        f.for_each_instr(&mut |i| match i {
            Instr::VBlend { .. } => blends += 1,
            Instr::VLoad { .. } => loads += 1,
            _ => {}
        });
        assert_eq!(blends, 1, "{}", crate::pretty::function_to_string(&f));
        assert_eq!(loads, 0);
    }

    #[test]
    fn vector_gather_becomes_shuffle() {
        // Vertical (strided) reload of horizontally stored data — the exact
        // S(i:i+2, i+2) scenario of Fig. 11/12.
        let mut b = FunctionBuilder::new("f", 4);
        let s = b.buffer("S", 16, BufKind::ParamInOut);
        let va = b.vbroadcast(1.0);
        let vb = b.vbroadcast(2.0);
        // row 0: S[1..3] = va[0..2], row 1: S[6..8] = vb[0..2]
        b.vstore(va, MemRef::new(s, 1), vec![Some(0), Some(1), Some(2), None]);
        b.vstore(vb, MemRef::new(s, 6), vec![Some(0), Some(1), None, None]);
        // vertical load of S[2], S[6] (column 2 of rows 0-1)
        let _v = b.vload(MemRef::new(s, 2), vec![Some(0), Some(4), None, None]);
        let mut f = b.finish();
        forward(&mut f, true, true);
        let mut shuffles = 0;
        let mut vloads = 0;
        f.for_each_instr(&mut |i| match i {
            Instr::VShuffle { .. } => shuffles += 1,
            Instr::VLoad { .. } => vloads += 1,
            _ => {}
        });
        assert_eq!(shuffles, 1, "{}", crate::pretty::function_to_string(&f));
        assert_eq!(vloads, 0);
    }

    #[test]
    fn redefinition_invalidates_forwarding() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 2, BufKind::Local);
        let r = b.smov(7.0);
        b.sstore(r, MemRef::new(t, 0));
        // redefine r before the load: forwarding must not use the new value
        b.instr(Instr::SMov { dst: r, a: 9.0.into() });
        let _l = b.sload(MemRef::new(t, 0));
        let mut f = b.finish();
        forward(&mut f, true, true);
        let mut loads = 0;
        f.for_each_instr(&mut |i| {
            if matches!(i, Instr::SLoad { .. }) {
                loads += 1;
            }
        });
        assert_eq!(loads, 1, "stale register must not be forwarded");
    }

    #[test]
    fn control_flow_resets_state() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 2, BufKind::ParamInOut);
        let r = b.smov(7.0);
        b.sstore(r, MemRef::new(t, 0));
        let i = b.begin_for(0, 2, 1);
        let addr = MemRef::new(t, crate::affine::Affine::var(i));
        let x = b.sload(addr.clone());
        let y = b.sbin(BinOp::Add, x, 1.0);
        b.sstore(y, addr);
        b.end_for();
        let l = b.sload(MemRef::new(t, 0));
        b.sstore(l, MemRef::new(t, 1));
        let mut f = b.finish();
        forward(&mut f, true, true);
        // the load after the loop must remain a load
        let mut post_loop_loads = 0;
        for s in &f.body {
            if let CStmt::I(Instr::SLoad { .. }) = s {
                post_loop_loads += 1;
            }
        }
        assert_eq!(post_loop_loads, 1);
    }

    #[test]
    fn copyprop_chains() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 1, BufKind::ParamOut);
        let a = b.smov(3.0);
        let c = b.smov(a);
        let d = b.sbin(BinOp::Mul, c, c);
        b.sstore(d, MemRef::new(t, 0));
        let mut f = b.finish();
        assert!(copyprop(&mut f));
        // the multiply now reads the immediate origin registers
        let mut found = false;
        f.for_each_instr(&mut |i| {
            if let Instr::SBin { op: BinOp::Mul, a, b, .. } = i {
                assert_eq!(*a, SOperand::Imm(3.0));
                assert_eq!(*b, SOperand::Imm(3.0));
                found = true;
            }
        });
        assert!(found);
    }

    #[test]
    fn copyprop_respects_source_redefinition() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 2, BufKind::ParamInOut);
        let a = b.sload(MemRef::new(t, 0)); // opaque value
        let c = b.smov(a);
        // redefine the copy source: reads of c must NOT become reads of a
        b.instr(Instr::SMov { dst: a, a: 9.0.into() });
        b.sstore(c, MemRef::new(t, 1));
        let mut f = b.finish();
        copyprop(&mut f);
        let mut stored = None;
        f.for_each_instr(&mut |i| {
            if let Instr::SStore { src, .. } = i {
                stored = Some(*src);
            }
        });
        assert_eq!(stored, Some(SOperand::Reg(c)), "stale copy fact applied");
    }

    #[test]
    fn mixed_scalar_vector_sources_keep_load() {
        let mut b = FunctionBuilder::new("f", 4);
        let s = b.buffer("S", 8, BufKind::ParamInOut);
        let r = b.smov(5.0);
        b.sstore(r, MemRef::new(s, 0));
        let v = b.vbroadcast(1.0);
        b.vstore(v, MemRef::new(s, 1), vec![Some(0), Some(1), Some(2), None]);
        let _l = b.vload_contig(MemRef::new(s, 0));
        let mut f = b.finish();
        forward(&mut f, true, true);
        let mut vloads = 0;
        f.for_each_instr(&mut |i| {
            if matches!(i, Instr::VLoad { .. }) {
                vloads += 1;
            }
        });
        assert_eq!(vloads, 1, "mixed sources must not be rewritten");
    }
}
