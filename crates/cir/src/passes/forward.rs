//! Scalar replacement and the domain-specific load/store analysis.
//!
//! This pass implements the paper's §3.3 optimization (Figs. 11–12): within
//! straight-line regions it tracks, per memory cell, which register lane
//! currently holds the cell's value. Loads whose bytes were all produced by
//! earlier stores are then replaced by register operations:
//!
//! * a scalar load becomes a scalar move ([`crate::Instr::SMov`]) or a lane
//!   extract;
//! * a vector load whose lanes live in one or two vector registers becomes
//!   a [`crate::Instr::VBlend`] (when lanes align) or a
//!   [`crate::Instr::VShuffle`] — the `smul9a`/`smul9b` example of Fig. 12;
//! * a vector load whose lanes are scattered scalar registers is left
//!   alone (re-packing through memory is what the hardware store buffer
//!   would do anyway).
//!
//! The stores themselves often become dead afterwards and are removed by
//! [`super::dce`] when the buffer is a local temporary, or kept when the
//! buffer is live-out (the paper keeps the `maskstore`s for the same
//! reason).
//!
//! Soundness relies on the C-IR invariant that distinct buffers never
//! alias. Conservative resets happen at control-flow boundaries and calls.

use crate::func::{CStmt, Function};
use crate::instr::{Instr, LaneSel, SOperand, SReg, VReg};
use std::collections::HashMap;

/// Who holds the current value of a memory cell.
#[derive(Debug, Clone, Copy, PartialEq)]
enum CellSrc {
    S(SReg, u32),
    VLane(VReg, u32, usize),
    Imm(f64),
}

#[derive(Default)]
struct State {
    svers: HashMap<SReg, u32>,
    vvers: HashMap<VReg, u32>,
    cells: HashMap<(usize, i64), CellSrc>,
}

impl State {
    fn sver(&self, r: SReg) -> u32 {
        self.svers.get(&r).copied().unwrap_or(0)
    }
    fn vver(&self, r: VReg) -> u32 {
        self.vvers.get(&r).copied().unwrap_or(0)
    }
    fn bump_s(&mut self, r: SReg) {
        *self.svers.entry(r).or_insert(0) += 1;
    }
    fn bump_v(&mut self, r: VReg) {
        *self.vvers.entry(r).or_insert(0) += 1;
    }
    fn valid(&self, c: &CellSrc) -> bool {
        match c {
            CellSrc::S(r, v) => self.sver(*r) == *v,
            CellSrc::VLane(r, v, _) => self.vver(*r) == *v,
            CellSrc::Imm(_) => true,
        }
    }
    fn invalidate_buffer(&mut self, buf: usize) {
        self.cells.retain(|(b, _), _| *b != buf);
    }
    fn clear(&mut self) {
        self.cells.clear();
    }
}

/// Try to rewrite a vector load from tracked cells into shuffles/blends.
///
/// Returns the replacement instructions, or `None` to keep the load.
fn rewrite_vload(
    st: &State,
    dst: VReg,
    sources: &[Option<CellSrc>],
) -> Option<Vec<Instr>> {
    // All active lanes must be valid vector lanes (scalar sources would
    // need broadcast+blend chains that rarely pay off; see module docs).
    let mut regs: Vec<VReg> = Vec::new();
    for s in sources.iter().flatten() {
        match s {
            CellSrc::VLane(r, _, _) => {
                if !regs.contains(r) {
                    regs.push(*r);
                }
            }
            _ => return None,
        }
    }
    if regs.is_empty() || regs.len() > 2 {
        return None;
    }
    let a = regs[0];
    let b = *regs.get(1).unwrap_or(&regs[0]);
    let sel: Vec<LaneSel> = sources
        .iter()
        .map(|s| match s {
            None => LaneSel::Zero,
            Some(CellSrc::VLane(r, _, lane)) => {
                if *r == a {
                    LaneSel::A(*lane)
                } else {
                    LaneSel::B(*lane)
                }
            }
            Some(_) => unreachable!("filtered above"),
        })
        .collect();
    let _ = st;
    // Blend pattern: every active lane i selects lane i of a source and no
    // zeros are required.
    let is_blend = sel.iter().enumerate().all(|(i, s)| match s {
        LaneSel::A(j) | LaneSel::B(j) => *j == i,
        LaneSel::Zero => false,
    });
    if is_blend && regs.len() == 2 {
        let mask = sel.iter().map(|s| matches!(s, LaneSel::B(_))).collect();
        return Some(vec![Instr::VBlend { dst, a, b, mask }]);
    }
    Some(vec![Instr::VShuffle { dst, a, b, sel }])
}

fn process_block(
    instrs: Vec<Instr>,
    st: &mut State,
    ls_analysis: bool,
    scalar_repl: bool,
) -> Vec<Instr> {
    let mut out: Vec<Instr> = Vec::new();
    for ins in instrs {
        match &ins {
            Instr::SStore { src, dst } => {
                if let Some(off) = dst.offset.as_constant() {
                    let cell = match src {
                        SOperand::Reg(r) => CellSrc::S(*r, st.sver(*r)),
                        SOperand::Imm(v) => CellSrc::Imm(*v),
                    };
                    st.cells.insert((dst.buf.0, off), cell);
                } else {
                    st.invalidate_buffer(dst.buf.0);
                }
                out.push(ins);
            }
            Instr::VStore { src, base, lanes } => {
                if let Some(boff) = base.offset.as_constant() {
                    let ver = st.vver(*src);
                    for (lane, l) in lanes.iter().enumerate() {
                        if let Some(off) = l {
                            st.cells
                                .insert((base.buf.0, boff + off), CellSrc::VLane(*src, ver, lane));
                        }
                    }
                } else {
                    st.invalidate_buffer(base.buf.0);
                }
                out.push(ins);
            }
            Instr::SLoad { dst, src } => {
                let mut replaced = false;
                if scalar_repl {
                    if let Some(off) = src.offset.as_constant() {
                        if let Some(cell) = st.cells.get(&(src.buf.0, off)).copied() {
                            if st.valid(&cell) {
                                match cell {
                                    CellSrc::S(r, _) if r != *dst => {
                                        out.push(Instr::SMov { dst: *dst, a: r.into() });
                                        replaced = true;
                                    }
                                    CellSrc::S(_, _) => {
                                        // load into the same register: drop
                                        replaced = true;
                                    }
                                    CellSrc::Imm(v) => {
                                        out.push(Instr::SMov { dst: *dst, a: v.into() });
                                        replaced = true;
                                    }
                                    CellSrc::VLane(r, _, lane) if ls_analysis => {
                                        out.push(Instr::VExtract {
                                            dst: *dst,
                                            src: r,
                                            lane,
                                        });
                                        replaced = true;
                                    }
                                    CellSrc::VLane(..) => {}
                                }
                            }
                        }
                    }
                }
                if !replaced {
                    out.push(ins.clone());
                }
                st.bump_s(*dst);
                // the register now also holds the cell's value
                if let Instr::SLoad { dst, src } = &ins {
                    if let Some(off) = src.offset.as_constant() {
                        st.cells.insert((src.buf.0, off), CellSrc::S(*dst, st.sver(*dst)));
                    }
                }
            }
            Instr::VLoad { dst, base, lanes } => {
                let mut replaced = false;
                if ls_analysis {
                    if let Some(boff) = base.offset.as_constant() {
                        let sources: Vec<Option<CellSrc>> = lanes
                            .iter()
                            .map(|l| {
                                l.and_then(|off| {
                                    st.cells.get(&(base.buf.0, boff + off)).copied()
                                })
                            })
                            .collect();
                        let all_tracked = lanes
                            .iter()
                            .zip(&sources)
                            .all(|(l, s)| l.is_none() || s.map_or(false, |c| st.valid(&c)));
                        if all_tracked {
                            if let Some(reps) = rewrite_vload(st, *dst, &sources) {
                                out.extend(reps);
                                replaced = true;
                            }
                        }
                    }
                }
                if !replaced {
                    out.push(ins.clone());
                }
                st.bump_v(*dst);
                // register lanes now mirror the loaded cells
                if let Some(boff) = base.offset.as_constant() {
                    let ver = st.vver(*dst);
                    for (lane, l) in lanes.iter().enumerate() {
                        if let Some(off) = l {
                            st.cells
                                .insert((base.buf.0, boff + off), CellSrc::VLane(*dst, ver, lane));
                        }
                    }
                }
            }
            Instr::Call { .. } => {
                st.clear();
                out.push(ins);
            }
            other => {
                if let Some(r) = other.sreg_write() {
                    st.bump_s(r);
                }
                if let Some(r) = other.vreg_write() {
                    st.bump_v(r);
                }
                out.push(ins);
            }
        }
    }
    out
}

fn walk(stmts: Vec<CStmt>, ls: bool, sr: bool) -> Vec<CStmt> {
    let mut out = Vec::new();
    let mut st = State::default();
    let mut run: Vec<Instr> = Vec::new();
    let flush =
        |run: &mut Vec<Instr>, st: &mut State, out: &mut Vec<CStmt>| {
            if !run.is_empty() {
                let processed = process_block(std::mem::take(run), st, ls, sr);
                out.extend(processed.into_iter().map(CStmt::I));
            }
        };
    for s in stmts {
        match s {
            CStmt::I(i) => run.push(i),
            CStmt::For { var, lo, hi, step, body } => {
                flush(&mut run, &mut st, &mut out);
                st.clear();
                out.push(CStmt::For { var, lo, hi, step, body: walk(body, ls, sr) });
                st.clear();
            }
            CStmt::If { cond, then_, else_ } => {
                flush(&mut run, &mut st, &mut out);
                st.clear();
                out.push(CStmt::If {
                    cond,
                    then_: walk(then_, ls, sr),
                    else_: walk(else_, ls, sr),
                });
                st.clear();
            }
        }
    }
    flush(&mut run, &mut st, &mut out);
    out
}

/// Run scalar replacement (`scalar_repl`) and/or the load/store analysis
/// (`ls_analysis`) over `f`.
pub fn forward(f: &mut Function, ls_analysis: bool, scalar_repl: bool) {
    let body = std::mem::take(&mut f.body);
    f.body = walk(body, ls_analysis, scalar_repl);
}

// ---------------------------------------------------------------------
// Copy propagation
// ---------------------------------------------------------------------

#[derive(Default)]
struct CopyState {
    scopies: HashMap<SReg, SOperand>,
    vcopies: HashMap<VReg, VReg>,
}

fn subst_sop(st: &CopyState, o: &SOperand) -> SOperand {
    match o {
        SOperand::Reg(r) => st.scopies.get(r).copied().unwrap_or(*o),
        imm => *imm,
    }
}

fn subst_v(st: &CopyState, r: VReg) -> VReg {
    st.vcopies.get(&r).copied().unwrap_or(r)
}

fn copyprop_block(instrs: Vec<Instr>, st: &mut CopyState) -> Vec<Instr> {
    let mut out = Vec::new();
    for ins in instrs {
        let rewritten = match &ins {
            Instr::SMov { dst, a } => Instr::SMov { dst: *dst, a: subst_sop(st, a) },
            Instr::SBin { op, dst, a, b } => Instr::SBin {
                op: *op,
                dst: *dst,
                a: subst_sop(st, a),
                b: subst_sop(st, b),
            },
            Instr::SSqrt { dst, a } => Instr::SSqrt { dst: *dst, a: subst_sop(st, a) },
            Instr::SStore { src, dst } => {
                Instr::SStore { src: subst_sop(st, src), dst: dst.clone() }
            }
            Instr::VBroadcast { dst, src } => {
                Instr::VBroadcast { dst: *dst, src: subst_sop(st, src) }
            }
            Instr::VMov { dst, src } => Instr::VMov { dst: *dst, src: subst_v(st, *src) },
            Instr::VBin { op, dst, a, b } => Instr::VBin {
                op: *op,
                dst: *dst,
                a: subst_v(st, *a),
                b: subst_v(st, *b),
            },
            Instr::VStore { src, base, lanes } => Instr::VStore {
                src: subst_v(st, *src),
                base: base.clone(),
                lanes: lanes.clone(),
            },
            Instr::VShuffle { dst, a, b, sel } => Instr::VShuffle {
                dst: *dst,
                a: subst_v(st, *a),
                b: subst_v(st, *b),
                sel: sel.clone(),
            },
            Instr::VBlend { dst, a, b, mask } => Instr::VBlend {
                dst: *dst,
                a: subst_v(st, *a),
                b: subst_v(st, *b),
                mask: mask.clone(),
            },
            Instr::VExtract { dst, src, lane } => {
                Instr::VExtract { dst: *dst, src: subst_v(st, *src), lane: *lane }
            }
            Instr::VReduceAdd { dst, src } => {
                Instr::VReduceAdd { dst: *dst, src: subst_v(st, *src) }
            }
            other => other.clone(),
        };
        // Invalidate copies involving a redefined register, then record new
        // copy facts.
        if let Some(w) = rewritten.sreg_write() {
            st.scopies.remove(&w);
            st.scopies.retain(|_, v| !matches!(v, SOperand::Reg(r) if *r == w));
        }
        if let Some(w) = rewritten.vreg_write() {
            st.vcopies.remove(&w);
            st.vcopies.retain(|_, v| *v != w);
        }
        if let Instr::SMov { dst, a } = &rewritten {
            match a {
                SOperand::Reg(r) if r == dst => {}
                _ => {
                    st.scopies.insert(*dst, *a);
                }
            }
        }
        if let Instr::VMov { dst, src } = &rewritten {
            if dst != src {
                st.vcopies.insert(*dst, *src);
            }
        }
        out.push(rewritten);
    }
    out
}

fn copyprop_walk(stmts: Vec<CStmt>) -> Vec<CStmt> {
    let mut out = Vec::new();
    let mut st = CopyState::default();
    let mut run: Vec<Instr> = Vec::new();
    let flush = |run: &mut Vec<Instr>, st: &mut CopyState, out: &mut Vec<CStmt>| {
        if !run.is_empty() {
            out.extend(copyprop_block(std::mem::take(run), st).into_iter().map(CStmt::I));
        }
    };
    for s in stmts {
        match s {
            CStmt::I(i) => run.push(i),
            CStmt::For { var, lo, hi, step, body } => {
                flush(&mut run, &mut st, &mut out);
                st.scopies.clear();
                out.push(CStmt::For { var, lo, hi, step, body: copyprop_walk(body) });
                st.scopies.clear();
            }
            CStmt::If { cond, then_, else_ } => {
                flush(&mut run, &mut st, &mut out);
                st.scopies.clear();
                out.push(CStmt::If {
                    cond,
                    then_: copyprop_walk(then_),
                    else_: copyprop_walk(else_),
                });
                st.scopies.clear();
            }
        }
    }
    flush(&mut run, &mut st, &mut out);
    out
}

/// Propagate scalar copies within straight-line regions.
pub fn copyprop(f: &mut Function) {
    let body = std::mem::take(&mut f.body);
    f.body = copyprop_walk(body);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{BufKind, FunctionBuilder};
    use crate::instr::{BinOp, MemRef};

    #[test]
    fn scalar_store_load_forwards_to_mov() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 4, BufKind::Local);
        let r = b.smov(7.0);
        b.sstore(r, MemRef::new(t, 2));
        let l = b.sload(MemRef::new(t, 2));
        let _ = b.sbin(BinOp::Add, l, 1.0);
        let mut f = b.finish();
        forward(&mut f, true, true);
        let mut loads = 0;
        let mut movs = 0;
        f.for_each_instr(&mut |i| match i {
            Instr::SLoad { .. } => loads += 1,
            Instr::SMov { .. } => movs += 1,
            _ => {}
        });
        assert_eq!(loads, 0);
        assert!(movs >= 2); // original + forwarded
    }

    #[test]
    fn vector_round_trip_becomes_blend() {
        // Mirror of paper Fig. 12: two masked stores, then a load gathering
        // lanes from both stored registers at matching lane positions.
        let mut b = FunctionBuilder::new("f", 4);
        let s = b.buffer("S", 16, BufKind::ParamInOut);
        let va = b.vbroadcast(1.0);
        let vb = b.vbroadcast(2.0);
        b.vstore(va, MemRef::new(s, 0), vec![Some(0), Some(1), None, None]);
        b.vstore(vb, MemRef::new(s, 0), vec![None, None, Some(2), Some(3)]);
        let _v = b.vload_contig(MemRef::new(s, 0));
        let mut f = b.finish();
        forward(&mut f, true, true);
        let mut blends = 0;
        let mut loads = 0;
        f.for_each_instr(&mut |i| match i {
            Instr::VBlend { .. } => blends += 1,
            Instr::VLoad { .. } => loads += 1,
            _ => {}
        });
        assert_eq!(blends, 1, "{}", crate::pretty::function_to_string(&f));
        assert_eq!(loads, 0);
    }

    #[test]
    fn vector_gather_becomes_shuffle() {
        // Vertical (strided) reload of horizontally stored data — the exact
        // S(i:i+2, i+2) scenario of Fig. 11/12.
        let mut b = FunctionBuilder::new("f", 4);
        let s = b.buffer("S", 16, BufKind::ParamInOut);
        let va = b.vbroadcast(1.0);
        let vb = b.vbroadcast(2.0);
        // row 0: S[1..3] = va[0..2], row 1: S[6..8] = vb[0..2]
        b.vstore(va, MemRef::new(s, 1), vec![Some(0), Some(1), Some(2), None]);
        b.vstore(vb, MemRef::new(s, 6), vec![Some(0), Some(1), None, None]);
        // vertical load of S[2], S[6] (column 2 of rows 0-1)
        let _v = b.vload(MemRef::new(s, 2), vec![Some(0), Some(4), None, None]);
        let mut f = b.finish();
        forward(&mut f, true, true);
        let mut shuffles = 0;
        let mut vloads = 0;
        f.for_each_instr(&mut |i| match i {
            Instr::VShuffle { .. } => shuffles += 1,
            Instr::VLoad { .. } => vloads += 1,
            _ => {}
        });
        assert_eq!(shuffles, 1, "{}", crate::pretty::function_to_string(&f));
        assert_eq!(vloads, 0);
    }

    #[test]
    fn redefinition_invalidates_forwarding() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 2, BufKind::Local);
        let r = b.smov(7.0);
        b.sstore(r, MemRef::new(t, 0));
        // redefine r before the load: forwarding must not use the new value
        b.instr(Instr::SMov { dst: r, a: 9.0.into() });
        let _l = b.sload(MemRef::new(t, 0));
        let mut f = b.finish();
        forward(&mut f, true, true);
        let mut loads = 0;
        f.for_each_instr(&mut |i| {
            if matches!(i, Instr::SLoad { .. }) {
                loads += 1;
            }
        });
        assert_eq!(loads, 1, "stale register must not be forwarded");
    }

    #[test]
    fn control_flow_resets_state() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 2, BufKind::ParamInOut);
        let r = b.smov(7.0);
        b.sstore(r, MemRef::new(t, 0));
        let i = b.begin_for(0, 2, 1);
        let addr = MemRef::new(t, crate::affine::Affine::var(i));
        let x = b.sload(addr.clone());
        let y = b.sbin(BinOp::Add, x, 1.0);
        b.sstore(y, addr);
        b.end_for();
        let l = b.sload(MemRef::new(t, 0));
        b.sstore(l, MemRef::new(t, 1));
        let mut f = b.finish();
        forward(&mut f, true, true);
        // the load after the loop must remain a load
        let mut post_loop_loads = 0;
        for s in &f.body {
            if let CStmt::I(Instr::SLoad { .. }) = s {
                post_loop_loads += 1;
            }
        }
        assert_eq!(post_loop_loads, 1);
    }

    #[test]
    fn copyprop_chains() {
        let mut b = FunctionBuilder::new("f", 1);
        let t = b.buffer("t", 1, BufKind::ParamOut);
        let a = b.smov(3.0);
        let c = b.smov(a);
        let d = b.sbin(BinOp::Mul, c, c);
        b.sstore(d, MemRef::new(t, 0));
        let mut f = b.finish();
        copyprop(&mut f);
        // the multiply now reads the immediate origin registers
        let mut found = false;
        f.for_each_instr(&mut |i| {
            if let Instr::SBin { op: BinOp::Mul, a, b, .. } = i {
                assert_eq!(*a, SOperand::Imm(3.0));
                assert_eq!(*b, SOperand::Imm(3.0));
                found = true;
            }
        });
        assert!(found);
    }

    #[test]
    fn mixed_scalar_vector_sources_keep_load() {
        let mut b = FunctionBuilder::new("f", 4);
        let s = b.buffer("S", 8, BufKind::ParamInOut);
        let r = b.smov(5.0);
        b.sstore(r, MemRef::new(s, 0));
        let v = b.vbroadcast(1.0);
        b.vstore(v, MemRef::new(s, 1), vec![Some(0), Some(1), Some(2), None]);
        let _l = b.vload_contig(MemRef::new(s, 0));
        let mut f = b.finish();
        forward(&mut f, true, true);
        let mut vloads = 0;
        f.for_each_instr(&mut |i| {
            if matches!(i, Instr::VLoad { .. }) {
                vloads += 1;
            }
        });
        assert_eq!(vloads, 1, "mixed sources must not be rewritten");
    }
}
