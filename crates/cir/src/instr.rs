//! C-IR instructions.
//!
//! The instruction set mirrors what SLinGen's backend needs to express
//! vectorized small-scale linear algebra: scalar FP arithmetic, vector FP
//! arithmetic of a fixed width ν, and the data-movement vocabulary of the
//! paper — `Vecload`/`Vecstore` with per-lane position maps, broadcasts,
//! shuffles, and blends (Figs. 11–12).
//!
//! Vector loads and stores carry an explicit *lane map*: lane `i` of the
//! register corresponds to memory element `base + lane[i]` (`None` = lane
//! is not accessed; loads fill such lanes with zero). A contiguous map
//! `[0, 1, .., ν-1]` is a plain (unaligned) vector access; anything else
//! models the paper's Loaders/Storers for leftovers, strided (vertical)
//! access, and structured matrices, and is *costed* accordingly by the
//! performance model.

use crate::affine::Affine;
use crate::func::BufId;
use std::fmt;

/// A scalar (double-precision) register variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SReg(pub usize);

impl fmt::Display for SReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A vector register variable of the function's width ν.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub usize);

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A memory reference: element index `offset` into buffer `buf`.
///
/// Offsets are in *elements* (doubles), not bytes, and may involve loop
/// variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// The referenced buffer.
    pub buf: BufId,
    /// Affine element offset.
    pub offset: Affine,
}

impl MemRef {
    /// Reference `buf[offset]`.
    pub fn new(buf: BufId, offset: impl Into<Affine>) -> MemRef {
        MemRef { buf, offset: offset.into() }
    }

    /// This reference displaced by a constant number of elements.
    pub fn displaced(&self, delta: i64) -> MemRef {
        MemRef { buf: self.buf, offset: self.offset.offset(delta) }
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.buf, self.offset)
    }
}

/// Scalar operand: a register or an immediate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SOperand {
    /// A scalar register.
    Reg(SReg),
    /// An immediate double constant.
    Imm(f64),
}

impl From<SReg> for SOperand {
    fn from(r: SReg) -> SOperand {
        SOperand::Reg(r)
    }
}

impl From<f64> for SOperand {
    fn from(v: f64) -> SOperand {
        SOperand::Imm(v)
    }
}

impl fmt::Display for SOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SOperand::Reg(r) => write!(f, "{r}"),
            SOperand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// Binary floating-point operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl BinOp {
    /// Apply to concrete values.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
        })
    }
}

/// The sign pattern of a fused multiply-add (the x86 FMA3 forms the
/// contraction pass needs: Cholesky-style updates are `c - a*b`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FmaKind {
    /// `a * b + c` (`fmadd`).
    MulAdd,
    /// `a * b - c` (`fmsub`).
    MulSub,
    /// `c - a * b` (`fnmadd`).
    NegMulAdd,
}

impl FmaKind {
    /// Apply to concrete values, fused (single rounding): every form is
    /// an exact `mul_add` with sign-flipped operands.
    pub fn apply(self, a: f64, b: f64, c: f64) -> f64 {
        match self {
            FmaKind::MulAdd => a.mul_add(b, c),
            FmaKind::MulSub => a.mul_add(b, -c),
            FmaKind::NegMulAdd => (-a).mul_add(b, c),
        }
    }

    /// The equivalent two-op result (rounded product, then add/sub).
    pub fn apply_unfused(self, a: f64, b: f64, c: f64) -> f64 {
        match self {
            FmaKind::MulAdd => a * b + c,
            FmaKind::MulSub => a * b - c,
            FmaKind::NegMulAdd => c - a * b,
        }
    }

    /// The intrinsic name stem (`fmadd`, `fmsub`, `fnmadd`).
    pub fn intrinsic_stem(self) -> &'static str {
        match self {
            FmaKind::MulAdd => "fmadd",
            FmaKind::MulSub => "fmsub",
            FmaKind::NegMulAdd => "fnmadd",
        }
    }
}

impl fmt::Display for FmaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.intrinsic_stem())
    }
}

/// One lane of a two-source shuffle: pick lane `lane` from source `a`/`b`,
/// or produce zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LaneSel {
    /// Take the given lane of the first source.
    A(usize),
    /// Take the given lane of the second source.
    B(usize),
    /// Produce 0.0.
    Zero,
}

impl fmt::Display for LaneSel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaneSel::A(i) => write!(f, "a{i}"),
            LaneSel::B(i) => write!(f, "b{i}"),
            LaneSel::Zero => write!(f, "0"),
        }
    }
}

/// A C-IR instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    // ---- scalar ----
    /// `dst = mem`
    SLoad {
        /// Destination scalar register.
        dst: SReg,
        /// Source memory location.
        src: MemRef,
    },
    /// `mem = src`
    SStore {
        /// Stored value.
        src: SOperand,
        /// Destination memory location.
        dst: MemRef,
    },
    /// `dst = a op b`
    SBin {
        /// Operation.
        op: BinOp,
        /// Destination.
        dst: SReg,
        /// First operand.
        a: SOperand,
        /// Second operand.
        b: SOperand,
    },
    /// `dst = sqrt(a)`
    SSqrt {
        /// Destination.
        dst: SReg,
        /// Operand.
        a: SOperand,
    },
    /// Fused multiply-add, `dst = ±(a * b) ± c` per [`FmaKind`] (single
    /// rounding).
    ///
    /// Produced by the [`crate::passes::contract`] pass on FMA-capable
    /// targets. The VM executes it with `f64::mul_add`, so the result can
    /// differ from the separate mul+add/sub sequence by up to 1 ULP per
    /// contraction (the intermediate product is not rounded).
    SFma {
        /// Sign pattern.
        kind: FmaKind,
        /// Destination.
        dst: SReg,
        /// Multiplicand.
        a: SOperand,
        /// Multiplier.
        b: SOperand,
        /// Addend.
        c: SOperand,
    },
    /// `dst = a` (register copy / immediate materialization)
    SMov {
        /// Destination.
        dst: SReg,
        /// Source.
        a: SOperand,
    },
    // ---- vector ----
    /// Vector load with per-lane offsets relative to `base` (the paper's
    /// `Vecload`). Lane `i` reads `base + lanes[i]`; `None` lanes are 0.
    VLoad {
        /// Destination vector register.
        dst: VReg,
        /// Base address.
        base: MemRef,
        /// Per-lane element offsets.
        lanes: Vec<Option<i64>>,
    },
    /// Vector store with per-lane offsets (the paper's `Vecstore`). Lane
    /// `i` writes `base + lanes[i]`; `None` lanes are suppressed (masked).
    VStore {
        /// Source vector register.
        src: VReg,
        /// Base address.
        base: MemRef,
        /// Per-lane element offsets.
        lanes: Vec<Option<i64>>,
    },
    /// `dst = src` (vector register copy; inserted by CSE).
    VMov {
        /// Destination.
        dst: VReg,
        /// Source.
        src: VReg,
    },
    /// `dst = a op b`, element-wise.
    VBin {
        /// Operation.
        op: BinOp,
        /// Destination.
        dst: VReg,
        /// First operand.
        a: VReg,
        /// Second operand.
        b: VReg,
    },
    /// Fused multiply-add, element-wise (see [`Instr::SFma`]).
    VFma {
        /// Sign pattern.
        kind: FmaKind,
        /// Destination.
        dst: VReg,
        /// Multiplicand.
        a: VReg,
        /// Multiplier.
        b: VReg,
        /// Addend.
        c: VReg,
    },
    /// Broadcast a scalar register/immediate into all lanes.
    VBroadcast {
        /// Destination.
        dst: VReg,
        /// Broadcast value.
        src: SOperand,
    },
    /// Two-source lane permute (`dst[i] = sel[i]`); subsumes unpacks,
    /// permutes, and single-source shuffles (set `b = a`).
    VShuffle {
        /// Destination.
        dst: VReg,
        /// First source.
        a: VReg,
        /// Second source.
        b: VReg,
        /// Per-lane selection.
        sel: Vec<LaneSel>,
    },
    /// Per-lane select: `dst[i] = if mask[i] { b[i] } else { a[i] }`
    /// (AVX `blend` with an immediate mask).
    VBlend {
        /// Destination.
        dst: VReg,
        /// First source (mask bit 0).
        a: VReg,
        /// Second source (mask bit 1).
        b: VReg,
        /// Per-lane mask.
        mask: Vec<bool>,
    },
    /// Extract one lane into a scalar register.
    VExtract {
        /// Destination scalar.
        dst: SReg,
        /// Source vector.
        src: VReg,
        /// Lane index.
        lane: usize,
    },
    /// Horizontal sum of all lanes into a scalar register.
    VReduceAdd {
        /// Destination scalar.
        dst: SReg,
        /// Source vector.
        src: VReg,
    },
    /// Opaque call into a pre-built library kernel (used only by the
    /// library-based *baselines*; SLinGen's own output never contains
    /// calls). The callee is named so the VM can dispatch, and the cost
    /// model charges the interface overhead the paper attributes to
    /// fixed library APIs.
    Call {
        /// Kernel name (resolved by the VM's kernel registry).
        kernel: String,
        /// Buffer arguments.
        bufs: Vec<BufId>,
        /// Integer arguments (sizes, leading dimensions, flags).
        ints: Vec<i64>,
    },
}

/// Instruction classes used by the performance model (issue ports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InstrClass {
    /// Memory read.
    Load,
    /// Memory write.
    Store,
    /// FP add/sub (scalar or vector).
    FAdd,
    /// FP multiply.
    FMul,
    /// Fused multiply-add (issues on the multiply port).
    Fma,
    /// FP divide or square root (the unpipelined divider).
    FDivSqrt,
    /// Lane permute (shuffle port).
    Shuffle,
    /// Blend.
    Blend,
    /// Register move / broadcast from register.
    Mov,
    /// Library call overhead.
    Call,
}

impl InstrClass {
    /// All instruction classes, for iteration.
    pub const ALL: [InstrClass; 10] = [
        InstrClass::Load,
        InstrClass::Store,
        InstrClass::FAdd,
        InstrClass::FMul,
        InstrClass::Fma,
        InstrClass::FDivSqrt,
        InstrClass::Shuffle,
        InstrClass::Blend,
        InstrClass::Mov,
        InstrClass::Call,
    ];

    /// Inverse of the `Display` names — used by the persistent tuning
    /// cache, so the names above are a stable wire format.
    pub fn parse(s: &str) -> Option<InstrClass> {
        InstrClass::ALL.iter().copied().find(|c| c.to_string() == s)
    }
}

impl fmt::Display for InstrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstrClass::Load => "load",
            InstrClass::Store => "store",
            InstrClass::FAdd => "fadd",
            InstrClass::FMul => "fmul",
            InstrClass::Fma => "fma",
            InstrClass::FDivSqrt => "fdiv",
            InstrClass::Shuffle => "shuffle",
            InstrClass::Blend => "blend",
            InstrClass::Mov => "mov",
            InstrClass::Call => "call",
        };
        f.write_str(s)
    }
}

impl Instr {
    /// The primary issue class of this instruction.
    pub fn class(&self) -> InstrClass {
        match self {
            Instr::SLoad { .. } | Instr::VLoad { .. } => InstrClass::Load,
            Instr::SStore { .. } | Instr::VStore { .. } => InstrClass::Store,
            Instr::SBin { op, .. } | Instr::VBin { op, .. } => match op {
                BinOp::Add | BinOp::Sub => InstrClass::FAdd,
                BinOp::Mul => InstrClass::FMul,
                BinOp::Div => InstrClass::FDivSqrt,
            },
            Instr::SFma { .. } | Instr::VFma { .. } => InstrClass::Fma,
            Instr::SSqrt { .. } => InstrClass::FDivSqrt,
            Instr::SMov { .. } | Instr::VMov { .. } => InstrClass::Mov,
            Instr::VBroadcast { .. } => InstrClass::Mov,
            Instr::VShuffle { .. } => InstrClass::Shuffle,
            Instr::VBlend { .. } => InstrClass::Blend,
            Instr::VExtract { .. } => InstrClass::Shuffle,
            Instr::VReduceAdd { .. } => InstrClass::FAdd,
            Instr::Call { .. } => InstrClass::Call,
        }
    }

    /// Scalar registers read by this instruction.
    pub fn sreg_reads(&self) -> Vec<SReg> {
        let mut out = Vec::new();
        self.for_each_sreg_read(|r| out.push(r));
        out
    }

    /// Visit every scalar register read, without allocating. The hot
    /// paths (DCE usage collection, the scheduler's readiness scan) call
    /// this once per instruction per scan; [`Instr::sreg_reads`] is the
    /// allocating convenience wrapper.
    pub fn for_each_sreg_read(&self, mut visit: impl FnMut(SReg)) {
        let mut push = |o: &SOperand| {
            if let SOperand::Reg(r) = o {
                visit(*r);
            }
        };
        match self {
            Instr::SStore { src, .. } => push(src),
            Instr::SBin { a, b, .. } => {
                push(a);
                push(b);
            }
            Instr::SFma { a, b, c, .. } => {
                push(a);
                push(b);
                push(c);
            }
            Instr::SSqrt { a, .. } | Instr::SMov { a, .. } => push(a),
            Instr::VBroadcast { src, .. } => push(src),
            _ => {}
        }
    }

    /// Vector registers read by this instruction.
    pub fn vreg_reads(&self) -> Vec<VReg> {
        let mut out = Vec::new();
        self.for_each_vreg_read(|r| out.push(r));
        out
    }

    /// Visit every vector register read, without allocating (see
    /// [`Instr::for_each_sreg_read`]).
    pub fn for_each_vreg_read(&self, mut visit: impl FnMut(VReg)) {
        match self {
            Instr::VStore { src, .. } | Instr::VMov { src, .. } => visit(*src),
            Instr::VBin { a, b, .. }
            | Instr::VShuffle { a, b, .. }
            | Instr::VBlend { a, b, .. } => {
                visit(*a);
                visit(*b);
            }
            Instr::VFma { a, b, c, .. } => {
                visit(*a);
                visit(*b);
                visit(*c);
            }
            Instr::VExtract { src, .. } | Instr::VReduceAdd { src, .. } => visit(*src),
            _ => {}
        }
    }

    /// The scalar register written, if any.
    pub fn sreg_write(&self) -> Option<SReg> {
        match self {
            Instr::SLoad { dst, .. }
            | Instr::SBin { dst, .. }
            | Instr::SFma { dst, .. }
            | Instr::SSqrt { dst, .. }
            | Instr::SMov { dst, .. }
            | Instr::VExtract { dst, .. }
            | Instr::VReduceAdd { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// The vector register written, if any.
    pub fn vreg_write(&self) -> Option<VReg> {
        match self {
            Instr::VLoad { dst, .. }
            | Instr::VMov { dst, .. }
            | Instr::VBin { dst, .. }
            | Instr::VFma { dst, .. }
            | Instr::VBroadcast { dst, .. }
            | Instr::VShuffle { dst, .. }
            | Instr::VBlend { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// Whether this instruction touches memory (including calls).
    pub fn touches_memory(&self) -> bool {
        matches!(
            self,
            Instr::SLoad { .. }
                | Instr::SStore { .. }
                | Instr::VLoad { .. }
                | Instr::VStore { .. }
                | Instr::Call { .. }
        )
    }

    /// Double-precision flops performed (vector ops count ν per active
    /// lane set; used for flops/cycle reporting).
    pub fn flops(&self, width: usize) -> u64 {
        match self {
            Instr::SBin { .. } | Instr::SSqrt { .. } => 1,
            Instr::SFma { .. } => 2,
            Instr::VBin { .. } => width as u64,
            Instr::VFma { .. } => 2 * width as u64,
            Instr::VReduceAdd { .. } => width.saturating_sub(1) as u64,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::Affine;

    #[test]
    fn classes() {
        let m = MemRef::new(BufId(0), Affine::zero());
        assert_eq!(Instr::SLoad { dst: SReg(0), src: m.clone() }.class(), InstrClass::Load);
        assert_eq!(
            Instr::SBin { op: BinOp::Div, dst: SReg(0), a: SReg(1).into(), b: SReg(2).into() }
                .class(),
            InstrClass::FDivSqrt
        );
        assert_eq!(
            Instr::VBin { op: BinOp::Mul, dst: VReg(0), a: VReg(1), b: VReg(2) }.class(),
            InstrClass::FMul
        );
        assert_eq!(
            Instr::VBlend { dst: VReg(0), a: VReg(1), b: VReg(2), mask: vec![true, false] }.class(),
            InstrClass::Blend
        );
    }

    #[test]
    fn read_write_sets() {
        let i = Instr::SBin { op: BinOp::Add, dst: SReg(3), a: SReg(1).into(), b: 2.0.into() };
        assert_eq!(i.sreg_reads(), vec![SReg(1)]);
        assert_eq!(i.sreg_write(), Some(SReg(3)));
        assert_eq!(i.vreg_write(), None);

        let v = Instr::VShuffle {
            dst: VReg(0),
            a: VReg(1),
            b: VReg(2),
            sel: vec![LaneSel::A(0), LaneSel::B(1)],
        };
        assert_eq!(v.vreg_reads(), vec![VReg(1), VReg(2)]);
        assert_eq!(v.vreg_write(), Some(VReg(0)));
    }

    #[test]
    fn fma_reads_writes_and_class() {
        let s = Instr::SFma {
            kind: FmaKind::MulAdd,
            dst: SReg(3),
            a: SReg(0).into(),
            b: 2.0.into(),
            c: SReg(1).into(),
        };
        assert_eq!(s.class(), InstrClass::Fma);
        assert_eq!(s.sreg_reads(), vec![SReg(0), SReg(1)]);
        assert_eq!(s.sreg_write(), Some(SReg(3)));
        assert_eq!(s.flops(1), 2);
        let v = Instr::VFma {
            kind: FmaKind::NegMulAdd,
            dst: VReg(3),
            a: VReg(0),
            b: VReg(1),
            c: VReg(2),
        };
        assert_eq!(v.class(), InstrClass::Fma);
        assert_eq!(v.vreg_reads(), vec![VReg(0), VReg(1), VReg(2)]);
        assert_eq!(v.vreg_write(), Some(VReg(3)));
        assert_eq!(v.flops(4), 8);
        assert!(!v.touches_memory());
    }

    #[test]
    fn fma_kinds_apply_their_sign_patterns() {
        assert_eq!(FmaKind::MulAdd.apply(2.0, 3.0, 4.0), 10.0);
        assert_eq!(FmaKind::MulSub.apply(2.0, 3.0, 4.0), 2.0);
        assert_eq!(FmaKind::NegMulAdd.apply(2.0, 3.0, 4.0), -2.0);
        for k in [FmaKind::MulAdd, FmaKind::MulSub, FmaKind::NegMulAdd] {
            assert_eq!(k.apply(2.0, 3.0, 4.0), k.apply_unfused(2.0, 3.0, 4.0));
        }
    }

    #[test]
    fn flop_counting() {
        let add = Instr::VBin { op: BinOp::Add, dst: VReg(0), a: VReg(1), b: VReg(2) };
        assert_eq!(add.flops(4), 4);
        let red = Instr::VReduceAdd { dst: SReg(0), src: VReg(1) };
        assert_eq!(red.flops(4), 3);
        let mov = Instr::SMov { dst: SReg(0), a: 1.0.into() };
        assert_eq!(mov.flops(4), 0);
    }

    #[test]
    fn memref_displacement() {
        let m = MemRef::new(BufId(2), Affine::constant(5));
        assert_eq!(m.displaced(3).offset.as_constant(), Some(8));
        assert_eq!(m.to_string(), "buf2[5]");
    }

    #[test]
    fn binop_apply() {
        assert_eq!(BinOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(BinOp::Sub.apply(2.0, 3.0), -1.0);
        assert_eq!(BinOp::Mul.apply(2.0, 3.0), 6.0);
        assert_eq!(BinOp::Div.apply(6.0, 3.0), 2.0);
    }
}
