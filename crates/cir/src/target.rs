//! Target/ISA descriptors: the machine-description layer that makes the
//! generator retargetable (paper §3: LGen/SLinGen emit SSE4, AVX, and KNC
//! code from one machine description).
//!
//! A [`Target`] names an instruction-set level; its [`TargetDesc`] bundles
//! everything the rest of the system needs to specialize for it:
//!
//! * the supported vector widths ν (the autotuner derives its ν axis from
//!   these — code wider than the vector unit is never a candidate);
//! * instruction *capabilities*: fused multiply-add, masked loads/stores,
//!   and immediate blends (capabilities gate both the Stage-3
//!   [`crate::passes::contract`] pass and the intrinsic families the
//!   unparser may emit);
//! * a per-op latency/throughput [`CostTable`] from which
//!   `slingen-perf`'s `Machine` is built.
//!
//! Four targets ship: [`Target::Scalar`], [`Target::Sse2`],
//! [`Target::Avx2`] (the historical default — its cost table is the Sandy
//! Bridge model the reproduction has always used), and
//! [`Target::Avx2Fma`] (the same core with FMA, Haswell-style: fused ops
//! issue on the multiply port). New backends (AVX-512, NEON) are one new
//! descriptor plus an unparser emitter away.

use std::fmt;

/// An instruction-set target for code generation, modeling, and emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Target {
    /// Plain scalar C (no vector unit).
    Scalar,
    /// 128-bit SSE2: vector arithmetic, no immediate blends, no masked
    /// memory ops (leftovers go through element code).
    Sse2,
    /// 256-bit AVX2: masked loads/stores, immediate blends; no FMA. The
    /// default target, cost-modeled as the paper's Sandy Bridge i7-2600.
    Avx2,
    /// 256-bit AVX2 with fused multiply-add (`_mm256_fmadd_pd`).
    Avx2Fma,
}

/// Per-op latency/throughput numbers of a target (fractional cycles).
///
/// Capacities are unit-slots per cycle; memory units are 128-bit (a
/// 256-bit access consumes two). These feed `slingen_perf::Machine`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostTable {
    /// FP multiplies issued per cycle (FMA shares this port).
    pub fmul_per_cycle: f64,
    /// FP adds issued per cycle.
    pub fadd_per_cycle: f64,
    /// Shuffles issued per cycle.
    pub shuffle_per_cycle: f64,
    /// Blends issued per cycle.
    pub blend_per_cycle: f64,
    /// Register moves/broadcasts per cycle.
    pub mov_per_cycle: f64,
    /// Load unit-slots per cycle (128-bit units).
    pub load_units_per_cycle: f64,
    /// Store unit-slots per cycle (128-bit units).
    pub store_units_per_cycle: f64,
    /// FP multiply latency.
    pub fmul_latency: f64,
    /// FP add latency.
    pub fadd_latency: f64,
    /// Fused multiply-add latency (meaningful when `fma` is set).
    pub fma_latency: f64,
    /// Shuffle latency.
    pub shuffle_latency: f64,
    /// Blend latency.
    pub blend_latency: f64,
    /// Move latency.
    pub mov_latency: f64,
    /// L1 load-to-use latency.
    pub load_latency: f64,
    /// Store-to-load forwarding latency.
    pub store_latency: f64,
    /// Divider occupancy & latency for a scalar divide/sqrt.
    pub div_scalar_cycles: f64,
    /// Divider occupancy & latency for a vector divide/sqrt.
    pub div_vector_cycles: f64,
    /// Front-end cycles per library call.
    pub call_overhead_cycles: f64,
    /// The vector width the peak numbers assume.
    pub nominal_width: usize,
}

/// The full descriptor of one target: name, widths, capabilities, costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetDesc {
    /// Short stable name (used in cache keys, CLI flags, file names).
    pub name: &'static str,
    /// Human-readable machine-model name.
    pub machine_name: &'static str,
    /// Supported vector widths ν, ascending; always contains 1.
    pub widths: &'static [usize],
    /// Fused multiply-add available (`fma()` / `_mm_fmadd_pd` /
    /// `_mm256_fmadd_pd`).
    pub fma: bool,
    /// Masked vector loads/stores available (`maskload`/`maskstore`).
    pub masked_mem: bool,
    /// Immediate lane blends available (`blendpd`).
    pub blend: bool,
    /// Latency/throughput tables.
    pub costs: CostTable,
}

/// The historical Sandy Bridge numbers (the reproduction's original fixed
/// machine model); AVX2 inherits them unchanged so the default target's
/// output and modeled cycles stay identical to the pre-target-refactor
/// generator.
const SANDY_BRIDGE_COSTS: CostTable = CostTable {
    fmul_per_cycle: 1.0,
    fadd_per_cycle: 1.0,
    shuffle_per_cycle: 1.0,
    blend_per_cycle: 2.0,
    mov_per_cycle: 3.0,
    load_units_per_cycle: 2.0,
    store_units_per_cycle: 1.0,
    fmul_latency: 5.0,
    fadd_latency: 3.0,
    fma_latency: 5.0,
    shuffle_latency: 1.0,
    blend_latency: 1.0,
    mov_latency: 1.0,
    load_latency: 4.0,
    store_latency: 4.0,
    div_scalar_cycles: 22.0,
    div_vector_cycles: 44.0,
    call_overhead_cycles: 120.0,
    nominal_width: 4,
};

const SCALAR_DESC: TargetDesc = TargetDesc {
    name: "scalar",
    machine_name: "scalar x86-64 (SSE2 scalar, double)",
    widths: &[1],
    fma: false,
    masked_mem: false,
    blend: false,
    costs: CostTable {
        nominal_width: 1,
        // one flop per slot either way; the divider never sees vectors
        div_vector_cycles: 22.0,
        ..SANDY_BRIDGE_COSTS
    },
};

const SSE2_DESC: TargetDesc = TargetDesc {
    name: "sse2",
    machine_name: "SSE2 (128-bit, double)",
    widths: &[1, 2],
    fma: false,
    masked_mem: false,
    blend: false,
    costs: CostTable {
        nominal_width: 2,
        // a 128-bit divide occupies the divider for less than a 256-bit one
        div_vector_cycles: 32.0,
        ..SANDY_BRIDGE_COSTS
    },
};

const AVX2_DESC: TargetDesc = TargetDesc {
    name: "avx2",
    machine_name: "Sandy Bridge (i7-2600, AVX, double)",
    widths: &[1, 2, 4],
    fma: false,
    masked_mem: true,
    blend: true,
    costs: SANDY_BRIDGE_COSTS,
};

const AVX2_FMA_DESC: TargetDesc = TargetDesc {
    name: "avx2fma",
    machine_name: "Haswell-class (AVX2+FMA, double)",
    widths: &[1, 2, 4],
    fma: true,
    masked_mem: true,
    blend: true,
    // identical core otherwise, so Avx2Fma-vs-Avx2 deltas isolate the
    // effect of contraction rather than of unrelated cost-table changes.
    // The fused op completes within the *add* latency (Skylake-style
    // cores execute FP adds on the FMA units at equal latency), so
    // contracting an accumulation chain — where the addend is the
    // loop-carried dependency — never lengthens the critical path.
    costs: CostTable { fma_latency: 3.0, ..SANDY_BRIDGE_COSTS },
};

impl Target {
    /// All shipped targets, in capability order.
    pub const ALL: [Target; 4] = [Target::Scalar, Target::Sse2, Target::Avx2, Target::Avx2Fma];

    /// The full descriptor.
    pub fn desc(self) -> &'static TargetDesc {
        match self {
            Target::Scalar => &SCALAR_DESC,
            Target::Sse2 => &SSE2_DESC,
            Target::Avx2 => &AVX2_DESC,
            Target::Avx2Fma => &AVX2_FMA_DESC,
        }
    }

    /// Short stable name (`scalar`, `sse2`, `avx2`, `avx2fma`).
    pub fn name(self) -> &'static str {
        self.desc().name
    }

    /// Supported vector widths ν, ascending.
    pub fn widths(self) -> &'static [usize] {
        self.desc().widths
    }

    /// The widest supported ν.
    pub fn max_width(self) -> usize {
        *self.desc().widths.last().expect("non-empty width list")
    }

    /// Whether `nu` is a supported vector width.
    pub fn supports_width(self, nu: usize) -> bool {
        self.desc().widths.contains(&nu)
    }

    /// Fused multiply-add available.
    pub fn has_fma(self) -> bool {
        self.desc().fma
    }

    /// Masked vector loads/stores available.
    pub fn has_masked_mem(self) -> bool {
        self.desc().masked_mem
    }

    /// Immediate lane blends available.
    pub fn has_blend(self) -> bool {
        self.desc().blend
    }

    /// Per-op latency/throughput tables.
    pub fn costs(self) -> &'static CostTable {
        &self.desc().costs
    }

    /// Parse a target from its stable name (case-insensitive; accepts a
    /// few aliases like `avx` and `avx2+fma`).
    pub fn parse(s: &str) -> Option<Target> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" | "none" => Some(Target::Scalar),
            "sse2" | "sse" => Some(Target::Sse2),
            "avx2" | "avx" => Some(Target::Avx2),
            "avx2fma" | "avx2+fma" | "fma" => Some(Target::Avx2Fma),
            _ => None,
        }
    }
}

impl Default for Target {
    /// The historical default: AVX2 without FMA (Sandy Bridge model).
    fn default() -> Self {
        Target::Avx2
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_target_supports_scalar_width() {
        for t in Target::ALL {
            assert!(t.supports_width(1), "{t} must support ν=1");
            assert_eq!(*t.widths().first().unwrap(), 1);
        }
    }

    #[test]
    fn widths_are_ascending_and_max_matches() {
        for t in Target::ALL {
            let w = t.widths();
            assert!(w.windows(2).all(|p| p[0] < p[1]), "{t} widths not ascending");
            assert_eq!(t.max_width(), *w.last().unwrap());
        }
    }

    #[test]
    fn names_round_trip_through_parse() {
        for t in Target::ALL {
            assert_eq!(Target::parse(t.name()), Some(t), "{t}");
        }
        assert_eq!(Target::parse("AVX2+FMA"), Some(Target::Avx2Fma));
        assert_eq!(Target::parse("mmx"), None);
    }

    #[test]
    fn capability_lattice_is_monotone() {
        // each shipped target is at least as capable as the previous one
        assert!(!Target::Scalar.has_fma() && !Target::Scalar.has_blend());
        assert!(!Target::Sse2.has_masked_mem() && !Target::Sse2.has_blend());
        assert!(Target::Avx2.has_masked_mem() && Target::Avx2.has_blend());
        assert!(!Target::Avx2.has_fma());
        assert!(Target::Avx2Fma.has_fma());
    }

    #[test]
    fn avx2_costs_are_the_sandy_bridge_numbers() {
        let c = Target::Avx2.costs();
        assert_eq!(c.fmul_latency, 5.0);
        assert_eq!(c.div_vector_cycles, 44.0);
        assert_eq!(c.nominal_width, 4);
    }

    #[test]
    fn cost_tables_are_distinct_per_target() {
        // nominal width + capability mix distinguish every pair
        let fingerprints: Vec<(usize, f64, bool)> = Target::ALL
            .iter()
            .map(|t| (t.costs().nominal_width, t.costs().div_vector_cycles, t.has_fma()))
            .collect();
        for i in 0..fingerprints.len() {
            for j in i + 1..fingerprints.len() {
                assert_ne!(fingerprints[i], fingerprints[j], "{:?}", (i, j));
            }
        }
    }

    #[test]
    fn default_is_avx2() {
        assert_eq!(Target::default(), Target::Avx2);
    }
}
