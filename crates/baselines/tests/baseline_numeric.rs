//! Baselines must be *correct* competitors: every flavor's output is
//! checked against SLinGen's verified output on the same workloads.

use slingen::apps;
use slingen_baselines::{baseline_codegen, Flavor};
use slingen_ir::{OpId, Program};
use slingen_lgen::BufferMap;
use slingen_vm::{BufferSet, NullMonitor};

fn run_baseline(program: &Program, flavor: Flavor, seed: u64) -> Vec<(OpId, Vec<f64>)> {
    let code =
        baseline_codegen(program, flavor).unwrap_or_else(|e| panic!("{}: {e}", flavor.label()));
    let mut fb = slingen_cir::FunctionBuilder::new("probe", 4);
    let map = BufferMap::build(program, &mut fb);
    let mut bufs = BufferSet::for_function(&code.function);
    for (op, data) in slingen::workload::inputs(program, seed) {
        bufs.set(map.buf(op), &data);
    }
    slingen_vm::execute_with_lib(&code.function, &mut bufs, Some(&code.kernels), &mut NullMonitor)
        .unwrap_or_else(|e| panic!("{}: {e}", flavor.label()));
    program
        .operands()
        .iter()
        .enumerate()
        .map(|(i, _)| (OpId(i), bufs.get(map.buf(OpId(i))).to_vec()))
        .collect()
}

fn run_slingen(program: &Program, seed: u64) -> Vec<(OpId, Vec<f64>)> {
    let g = slingen::generate(program, &slingen::Options::default()).expect("slingen");
    let mut fb = slingen_cir::FunctionBuilder::new("probe", 4);
    let map = BufferMap::build(program, &mut fb);
    let mut bufs = BufferSet::for_function(&g.function);
    for (op, data) in slingen::workload::inputs(program, seed) {
        bufs.set(map.buf(op), &data);
    }
    slingen_vm::execute(&g.function, &mut bufs, &mut NullMonitor).unwrap();
    program
        .operands()
        .iter()
        .enumerate()
        .map(|(i, _)| (OpId(i), bufs.get(map.buf(OpId(i))).to_vec()))
        .collect()
}

fn compare(program: &Program, a: &[(OpId, Vec<f64>)], b: &[(OpId, Vec<f64>)], what: &str) {
    for (i, decl) in program.operands().iter().enumerate() {
        if !decl.io.writable() {
            continue;
        }
        let (rows, cols) = (decl.shape.rows, decl.shape.cols);
        let (x, y) = (&a[i].1, &b[i].1);
        for r in 0..rows {
            for c in 0..cols {
                if decl.structure.is_zero_at(r, c) {
                    continue;
                }
                let d = (x[r * cols + c] - y[r * cols + c]).abs();
                assert!(
                    d < 1e-8,
                    "{what}: {}({r},{c}): {} vs {}",
                    decl.name,
                    x[r * cols + c],
                    y[r * cols + c]
                );
            }
        }
    }
}

const FLAVORS: [Flavor; 7] = [
    Flavor::Icc,
    Flavor::ClangPolly,
    Flavor::Eigen,
    Flavor::Mkl,
    Flavor::Cl1ckMkl { nb: 4 },
    Flavor::Relapack,
    Flavor::Recsy,
];

#[test]
fn all_flavors_correct_on_potrf() {
    let p = apps::potrf(12);
    let reference = run_slingen(&p, 77);
    for flavor in FLAVORS {
        let got = run_baseline(&p, flavor, 77);
        compare(&p, &got, &reference, &flavor.label());
    }
}

#[test]
fn all_flavors_correct_on_trsyl() {
    let p = apps::trsyl(8);
    let reference = run_slingen(&p, 78);
    for flavor in FLAVORS {
        let got = run_baseline(&p, flavor, 78);
        compare(&p, &got, &reference, &flavor.label());
    }
}

#[test]
fn all_flavors_correct_on_kf() {
    let p = apps::kf(4);
    let reference = run_slingen(&p, 79);
    for flavor in [Flavor::Icc, Flavor::Eigen, Flavor::Mkl] {
        let got = run_baseline(&p, flavor, 79);
        compare(&p, &got, &reference, &flavor.label());
    }
}

#[test]
fn library_flavors_pay_call_overhead() {
    // the MKL flavor's modeled cycles must include the interface overhead
    let p = apps::potrf(8);
    let code = baseline_codegen(&p, Flavor::Mkl).unwrap();
    let mut fb = slingen_cir::FunctionBuilder::new("probe", 4);
    let map = BufferMap::build(&p, &mut fb);
    let mut bufs = BufferSet::for_function(&code.function);
    for (op, data) in slingen::workload::inputs(&p, 5) {
        bufs.set(map.buf(op), &data);
    }
    let report = slingen_perf::measure(
        &code.function,
        &mut bufs,
        Some(&code.kernels),
        &Flavor::Mkl.machine(),
    )
    .unwrap();
    assert!(
        report.cycles >= 150.0,
        "one call = at least the interface overhead, got {}",
        report.cycles
    );
    assert!(report.count(slingen_cir::InstrClass::Call) >= 1);
}
