//! Library-based competitors: MKL, Cl1ck+MKL, ReLAPACK, RECSY.
//!
//! These implement the input program as a sequence of `Call` instructions
//! into a kernel library. Each call pays the machine model's fixed
//! interface overhead — the cost the paper attributes to library APIs on
//! small sizes — and the kernels themselves are vectorized but *generic*
//! (loop-based, moderately unrolled), unlike SLinGen's size-specialized
//! straight-line output.
//!
//! * [`LibraryStyle::WholeStatement`] (MKL): one call per LA statement
//!   (one `dgemm`/`dpotrf`/`dtrsm`... per line of the program).
//! * [`LibraryStyle::Blocked`] (Cl1ck+MKL): the blocked algorithm derived
//!   by the synthesis engine with block size `nb`; every block operation
//!   becomes a BLAS-style call (runs of scalar/codelet statements between
//!   block operations group into one LAPACK-style call, matching Cl1ck's
//!   use of unblocked kernels on the diagonal).
//! * [`LibraryStyle::Recursive`] (ReLAPACK / RECSY): recursive halving —
//!   modeled as blocking with `nb = max(ν, n/2)` whose sub-operations call
//!   kernels; RECSY additionally pays a larger per-call overhead through
//!   its [`crate::Flavor::machine`].

use crate::BaselineCode;
use slingen_cir::passes::{optimize, PassConfig};
use slingen_cir::{BufKind, FunctionBuilder, Instr};
use slingen_ir::Program;
use slingen_lgen::{lower_program, BufferMap, LowerOptions};
use slingen_synth::program::{BasicProgram, BasicStmt};
use slingen_synth::{synthesize_program, AlgorithmDb, Policy};
use slingen_vm::KernelLib;

/// Library decomposition granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LibraryStyle {
    /// One kernel call per LA statement (MKL).
    WholeStatement,
    /// Blocked algorithm with the given block size (Cl1ck+MKL).
    Blocked {
        /// Block size `nb` of the Cl1ck algorithm.
        nb: usize,
    },
    /// Recursive halving (ReLAPACK/RECSY).
    Recursive,
}

/// Kernel code quality: vectorized but generic (library routines serve
/// all sizes, so loops dominate and unrolling is bounded).
fn kernel_passes() -> PassConfig {
    PassConfig {
        unroll_budget: 384,
        load_store_analysis: true,
        scalar_replacement: true,
        cse: true,
        fma_contraction: false,
        iterations: 2,
        block_memo: true,
    }
}

/// Generate library-based code for `program`.
///
/// # Errors
///
/// Propagates synthesis/lowering failures.
pub fn library_codegen(
    program: &Program,
    style: LibraryStyle,
) -> Result<BaselineCode, Box<dyn std::error::Error>> {
    let max_dim =
        program.operands().iter().map(|o| o.shape.rows.max(o.shape.cols)).max().unwrap_or(1);
    let nb = match style {
        LibraryStyle::WholeStatement => max_dim.max(1),
        LibraryStyle::Blocked { nb } => nb.max(1),
        LibraryStyle::Recursive => (max_dim / 2).max(4),
    };
    // Stage 1 at the library's block granularity.
    let mut db = AlgorithmDb::new();
    let basic = synthesize_program(program, Policy::Lazy, nb, &mut db)?;

    // group statements into kernel-sized units: block operations (large
    // left-hand sides) stand alone; runs of codelet-level statements merge
    // into one unblocked-kernel call
    let big = (nb * nb / 2).max(2);
    let mut groups: Vec<Vec<BasicStmt>> = Vec::new();
    let mut run: Vec<BasicStmt> = Vec::new();
    for stmt in &basic.stmts {
        let area = (stmt.lhs.r1 - stmt.lhs.r0) * (stmt.lhs.c1 - stmt.lhs.c0);
        if area >= big {
            if !run.is_empty() {
                groups.push(std::mem::take(&mut run));
            }
            groups.push(vec![stmt.clone()]);
        } else {
            run.push(stmt.clone());
        }
    }
    if !run.is_empty() {
        groups.push(run);
    }

    // kernels: each group lowered as its own function over the program's
    // full parameter list
    let mut kernels = KernelLib::new();
    let opts = LowerOptions { nu: 4, loop_threshold: 8 };
    let mut kernel_names = Vec::new();
    for (i, group) in groups.iter().enumerate() {
        let name = format!("{}_k{}", program.name(), i);
        let bp = BasicProgram { stmts: group.clone() };
        let mut kf = lower_program(program, &bp, &name, &opts)?;
        optimize(&mut kf, &kernel_passes());
        kernel_names.push(kernels.register(kf));
    }

    // the main function: declare the same buffers, call each kernel
    let mut fb = FunctionBuilder::new(program.name(), 4);
    let map = BufferMap::build(program, &mut fb);
    let param_bufs: Vec<slingen_cir::BufId> = {
        // parameter order = declaration order of non-local buffers
        let probe = {
            let mut pfb = FunctionBuilder::new("probe", 4);
            let _ = BufferMap::build(program, &mut pfb);
            pfb.finish()
        };
        probe.params().map(|(id, _)| id).collect()
    };
    let _ = &map;
    for name in kernel_names {
        // kernels may declare local temporaries; the call passes only the
        // shared parameter buffers, in matching order
        let expected = kernels.get(&name).map(|k| k.params().count()).unwrap_or(0);
        let bufs: Vec<slingen_cir::BufId> = param_bufs.iter().copied().take(expected).collect();
        fb.instr(Instr::Call { kernel: name, bufs, ints: vec![] });
    }
    let function = fb.finish();
    debug_assert!(function.buffers.iter().all(|b| b.kind != BufKind::Local));
    Ok(BaselineCode { function, kernels })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slingen_ir::structure::StorageHalf;
    use slingen_ir::{Expr, OperandDecl, ProgramBuilder, Properties, Structure};

    fn potrf_program(n: usize) -> Program {
        let mut b = ProgramBuilder::new("potrf");
        let s = b.declare(
            OperandDecl::mat_in("S", n, n)
                .with_structure(Structure::Symmetric(StorageHalf::Upper))
                .with_properties(Properties::pd()),
        );
        let u = b.declare(
            OperandDecl::mat_out("U", n, n)
                .with_structure(Structure::UpperTriangular)
                .with_properties(Properties::ns()),
        );
        b.equation(Expr::op(u).t().mul(Expr::op(u)), Expr::op(s));
        b.build().unwrap()
    }

    #[test]
    fn whole_statement_style_emits_one_call_per_statement() {
        let p = potrf_program(8);
        let code = library_codegen(&p, LibraryStyle::WholeStatement).unwrap();
        let mut calls = 0;
        code.function.for_each_instr(&mut |i| {
            if matches!(i, Instr::Call { .. }) {
                calls += 1;
            }
        });
        // one LAPACK call (plus at most a copy-in call)
        assert!(calls <= 2, "MKL: {calls} calls for a single potrf");
        assert!(!code.kernels.is_empty());
    }

    #[test]
    fn blocked_style_emits_more_calls() {
        let p = potrf_program(16);
        let mkl = library_codegen(&p, LibraryStyle::WholeStatement).unwrap();
        let cl1ck = library_codegen(&p, LibraryStyle::Blocked { nb: 4 }).unwrap();
        let count = |f: &slingen_cir::Function| {
            let mut n = 0;
            f.for_each_instr(&mut |i| {
                if matches!(i, Instr::Call { .. }) {
                    n += 1;
                }
            });
            n
        };
        assert!(
            count(&cl1ck.function) > count(&mkl.function),
            "blocked algorithms make more library calls"
        );
    }
}
