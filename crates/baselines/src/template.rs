//! The Eigen-style competitor: vectorized fixed-size expression templates.
//!
//! Eigen inlines everything (no call overhead) and vectorizes, but:
//! each statement is evaluated in isolation (C++ templates cannot fuse
//! across statements), kernels are generic loop code rather than
//! size-specialized straight-line code, and there is no algorithmic
//! autotuning. We model this by lowering with loops preferred, disabling
//! the cross-statement load/store forwarding, and capping unrolling.

use crate::BaselineCode;
use slingen_cir::passes::{optimize, PassConfig};
use slingen_ir::Program;
use slingen_lgen::{lower_program, LowerOptions};
use slingen_synth::{synthesize_program, AlgorithmDb, Policy};
use slingen_vm::KernelLib;

/// Generate Eigen-style template code.
///
/// # Errors
///
/// Propagates synthesis/lowering failures.
pub fn template_codegen(program: &Program) -> Result<BaselineCode, Box<dyn std::error::Error>> {
    let mut db = AlgorithmDb::new();
    let basic = synthesize_program(program, Policy::Lazy, 4, &mut db)?;
    let opts = LowerOptions { nu: 4, loop_threshold: 8 };
    let mut f = lower_program(program, &basic, program.name(), &opts)?;
    let passes = PassConfig {
        unroll_budget: 512,
        load_store_analysis: false,
        scalar_replacement: false,
        cse: true,
        fma_contraction: false,
        iterations: 2,
        block_memo: true,
    };
    optimize(&mut f, &passes);
    Ok(BaselineCode { function: f, kernels: KernelLib::new() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slingen_ir::{Expr, OperandDecl, ProgramBuilder};

    #[test]
    fn template_code_is_vectorized() {
        let mut b = ProgramBuilder::new("axpyish");
        let a = b.declare(OperandDecl::mat_in("A", 8, 8));
        let c = b.declare(OperandDecl::mat_in("B", 8, 8));
        let y = b.declare(OperandDecl::mat_out("Y", 8, 8));
        b.assign(y, Expr::op(a).mul(Expr::op(c)));
        let p = b.build().unwrap();
        let code = template_codegen(&p).unwrap();
        let mut vops = 0;
        code.function.for_each_instr(&mut |i| {
            if matches!(i, slingen_cir::Instr::VBin { .. }) {
                vops += 1;
            }
        });
        assert!(vops > 0, "Eigen baseline vectorizes");
    }
}
