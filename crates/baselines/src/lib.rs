//! # slingen-baselines
//!
//! The paper's competitors, reimplemented as *code generation strategies*
//! that produce C-IR executed by the same VM and costed by the same
//! machine model as SLinGen's output. Each strategy captures the
//! mechanism behind the corresponding competitor's performance profile:
//!
//! | Flavor | Mechanism |
//! |--------|-----------|
//! | [`Flavor::Icc`] | straightforward scalar C, well optimized (scalar replacement, unrolling) but not vectorized — "icc -O3" on handwritten loop code |
//! | [`Flavor::ClangPolly`] | scalar C with fewer scalar optimizations — "clang -O3 -polly" on the same code |
//! | [`Flavor::Eigen`] | vectorized fixed-size templates: per-statement kernels, generic loop code, no cross-statement optimization, no algorithmic specialization |
//! | [`Flavor::Mkl`] | library calls: one `Call` per LA statement into vectorized but generically-tiled kernels, each paying the fixed-interface overhead |
//! | [`Flavor::Cl1ckMkl`] | Cl1ck's blocked algorithms (block size `nb`) where every block operation is an MKL-style kernel call |
//! | [`Flavor::Relapack`] | recursive blocking (halving) over MKL-style kernel calls |
//! | [`Flavor::Recsy`] | recursive Sylvester-type solver with heavyweight generic machinery (larger per-call overhead) |
//!
//! Every generator is numerically validated against the same oracle as
//! SLinGen's own output — baselines must be *correct* competitors.

pub mod library;
pub mod scalar;
pub mod template;

pub use library::{library_codegen, LibraryStyle};
pub use scalar::scalar_codegen;
pub use template::template_codegen;

use slingen_cir::Function;
use slingen_ir::Program;
use slingen_perf::Machine;
use slingen_vm::KernelLib;

/// Competitor identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flavor {
    /// Intel icc 16 on straightforward C.
    Icc,
    /// clang 4 + Polly 3.9 on straightforward C.
    ClangPolly,
    /// Eigen 3.3.4 fixed-size templates.
    Eigen,
    /// Intel MKL 11.3.2 (sequential).
    Mkl,
    /// Cl1ck-generated blocked algorithm implemented with MKL, block size
    /// `nb`.
    Cl1ckMkl {
        /// Block size of the blocked algorithm.
        nb: usize,
    },
    /// ReLAPACK-style recursive blocking over MKL kernels.
    Relapack,
    /// RECSY-style recursive Sylvester solvers.
    Recsy,
}

impl Flavor {
    /// Display label matching the paper's plot legends.
    pub fn label(&self) -> String {
        match self {
            Flavor::Icc => "icc".to_string(),
            Flavor::ClangPolly => "clang/Polly".to_string(),
            Flavor::Eigen => "Eigen".to_string(),
            Flavor::Mkl => "MKL".to_string(),
            Flavor::Cl1ckMkl { nb } => format!("Cl1ck+MKL (nb={nb})"),
            Flavor::Relapack => "ReLAPACK".to_string(),
            Flavor::Recsy => "RECSY".to_string(),
        }
    }

    /// The machine model this competitor is measured on: identical
    /// hardware, but the library interface overhead applies only to
    /// library-based flavors (the paper's "overhead due to fixed
    /// interfaces").
    pub fn machine(&self) -> Machine {
        let base = Machine::sandy_bridge();
        match self {
            Flavor::Icc | Flavor::ClangPolly | Flavor::Eigen => base.with_call_overhead(0.0),
            Flavor::Mkl | Flavor::Cl1ckMkl { .. } => base.with_call_overhead(150.0),
            Flavor::Relapack => base.with_call_overhead(150.0),
            Flavor::Recsy => base.with_call_overhead(900.0),
        }
    }
}

/// A generated competitor implementation.
#[derive(Debug)]
pub struct BaselineCode {
    /// The C-IR entry function.
    pub function: Function,
    /// Kernel library for `Call`-based flavors (empty otherwise).
    pub kernels: KernelLib,
}

/// Generate competitor code for `program`.
///
/// # Errors
///
/// Propagates synthesis/lowering errors (the supported program class is
/// the same as SLinGen's).
pub fn baseline_codegen(
    program: &Program,
    flavor: Flavor,
) -> Result<BaselineCode, Box<dyn std::error::Error>> {
    match flavor {
        Flavor::Icc => scalar_codegen(program, true),
        Flavor::ClangPolly => scalar_codegen(program, false),
        Flavor::Eigen => template_codegen(program),
        Flavor::Mkl => library_codegen(program, LibraryStyle::WholeStatement),
        Flavor::Cl1ckMkl { nb } => library_codegen(program, LibraryStyle::Blocked { nb }),
        Flavor::Relapack => library_codegen(program, LibraryStyle::Recursive),
        // RECSY recurses down to tiny kernels, paying its heavyweight
        // generic machinery on every one (the paper measures it an order
        // of magnitude behind on small operands)
        Flavor::Recsy => library_codegen(program, LibraryStyle::Blocked { nb: 4 }),
    }
}
