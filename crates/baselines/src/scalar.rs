//! Straightforward-C competitors: scalar code as a good (icc) or plain
//! (clang/Polly) optimizing compiler would produce from handwritten loops
//! with hardcoded sizes (the paper's "straightforward code" baseline).

use crate::BaselineCode;
use slingen_cir::passes::{optimize, PassConfig};
use slingen_ir::Program;
use slingen_lgen::{lower_program, LowerOptions};
use slingen_synth::{synthesize_program, AlgorithmDb, Policy};
use slingen_vm::KernelLib;

/// Generate scalar code. `good_compiler = true` models icc (scalar
/// replacement, CSE, aggressive unrolling); `false` models clang/Polly
/// (polyhedral rescheduling helps little at these sizes, and fewer scalar
/// optimizations apply).
///
/// # Errors
///
/// Propagates synthesis/lowering failures.
pub fn scalar_codegen(
    program: &Program,
    good_compiler: bool,
) -> Result<BaselineCode, Box<dyn std::error::Error>> {
    let mut db = AlgorithmDb::new();
    let basic = synthesize_program(program, Policy::Lazy, 1, &mut db)?;
    let opts = LowerOptions { nu: 1, loop_threshold: 9_999_999 };
    let mut f = lower_program(program, &basic, program.name(), &opts)?;
    let passes = if good_compiler {
        PassConfig {
            unroll_budget: 1 << 13,
            load_store_analysis: false,
            scalar_replacement: true,
            cse: true,
            fma_contraction: false,
            iterations: 3,
            block_memo: true,
        }
    } else {
        PassConfig {
            unroll_budget: 1 << 10,
            load_store_analysis: false,
            scalar_replacement: false,
            cse: true,
            fma_contraction: false,
            iterations: 1,
            block_memo: true,
        }
    };
    optimize(&mut f, &passes);
    Ok(BaselineCode { function: f, kernels: KernelLib::new() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slingen_cir::Instr;
    use slingen_ir::{Expr, OperandDecl, ProgramBuilder};

    fn small_gemm() -> Program {
        let mut b = ProgramBuilder::new("gemm");
        let a = b.declare(OperandDecl::mat_in("A", 4, 4));
        let c = b.declare(OperandDecl::mat_in("B", 4, 4));
        let y = b.declare(OperandDecl::mat_out("Y", 4, 4));
        b.assign(y, Expr::op(a).mul(Expr::op(c)));
        b.build().unwrap()
    }

    #[test]
    fn scalar_code_has_no_vector_instructions() {
        let p = small_gemm();
        let code = scalar_codegen(&p, true).unwrap();
        code.function.for_each_instr(&mut |i| {
            assert!(
                !matches!(i, Instr::VBin { .. } | Instr::VLoad { .. } | Instr::VStore { .. }),
                "scalar baseline must not vectorize"
            );
        });
    }

    #[test]
    fn icc_beats_polly_in_instruction_count() {
        // scalar replacement + CSE shrink the stream
        let p = small_gemm();
        let icc = scalar_codegen(&p, true).unwrap();
        let polly = scalar_codegen(&p, false).unwrap();
        assert!(
            icc.function.static_instr_count() <= polly.function.static_instr_count(),
            "icc model should be at least as tight"
        );
    }
}
