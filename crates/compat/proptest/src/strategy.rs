//! The strategy combinators used by the workspace's property tests.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::sync::Arc;

/// A reference-counted type-erased strategy (clonable, unlike `Box`).
pub type BoxedStrategy<T> = Arc<dyn Strategy<Value = T>>;

/// Generates values of one type from an RNG stream.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Build recursive values: `recurse` receives a strategy for the
    /// previous depth level; leaves are drawn from `self`. The size
    /// arguments of the real API are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base: BoxedStrategy<Self::Value> = Arc::new(self);
        let mut cur = base.clone();
        for _ in 0..depth {
            let deeper: BoxedStrategy<Self::Value> = Arc::new(recurse(cur));
            // Two leaf arms keep the expected tree size finite.
            cur = Arc::new(Union::new(vec![base.clone(), base.clone(), deeper]));
        }
        cur
    }

    /// Type-erase.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Arc::new(self)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `.prop_map(..)` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Types with a canonical unconstrained strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for `any::<T>()`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )+};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )+};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}
