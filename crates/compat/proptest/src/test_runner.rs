//! Deterministic RNG and configuration for the shim runner.

/// Configuration accepted by `proptest! { #![proptest_config(..)] .. }`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// splitmix64: tiny, fast, and deterministic across runs and platforms.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test's fully qualified name so distinct tests draw
    /// distinct (but reproducible) streams.
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0x9e3779b97f4a7c15u64;
        for b in name.bytes() {
            seed = seed.wrapping_mul(0x100000001b3).wrapping_add(b as u64);
        }
        TestRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}
