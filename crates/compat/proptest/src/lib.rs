//! A minimal, offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this shim provides the
//! subset of the proptest API the workspace's property tests use:
//! [`Strategy`] with `prop_map`/`prop_recursive`/`boxed`, [`Just`],
//! integer-range and tuple strategies, `any::<bool>()`,
//! `prop::collection::vec`, and the `proptest!`, `prop_oneof!`,
//! `prop_assert!`, `prop_assert_eq!` macros.
//!
//! Differences from the real crate: generation is a deterministic
//! splitmix64 stream (same inputs on every run), and failing cases are
//! reported by panic without shrinking. Both trade-offs are acceptable for
//! CI regression testing; swap the real crate back in by deleting this
//! shim from `[workspace.dependencies]` when registry access exists.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    /// The real proptest's prelude exposes the crate root as `prop`.
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Run the body for each generated case, panicking on the first failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { @cfg $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            @cfg $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (@cfg $cfg:expr;
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    let _ = case;
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )+
    };
}

/// Uniformly choose among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Assert within a proptest body (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality within a proptest body (plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}
