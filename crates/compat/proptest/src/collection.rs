//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy producing `Vec`s with lengths drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// `Vec` strategy with `len` in `len_range`.
pub fn vec<S: Strategy>(element: S, len_range: Range<usize>) -> VecStrategy<S> {
    assert!(len_range.start < len_range.end, "empty length range");
    VecStrategy { element, len: len_range }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
