//! A minimal, offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this shim provides the
//! subset of the criterion API the workspace benches use: [`Criterion`],
//! benchmark groups, [`Bencher::iter`], and the `criterion_group!` /
//! `criterion_main!` macros. Timing is plain wall-clock: each benchmark is
//! calibrated with a few probe iterations, then run long enough for a
//! stable mean, and the per-iteration time is printed as
//! `bench: <group>/<name> ... <time>`.
//!
//! Environment knobs:
//! * `BENCH_TARGET_MS` — target measurement window per benchmark
//!   (default 300 ms);
//! * `BENCH_JSON` — when set to a path, machine-readable results are
//!   appended as JSON lines `{"id": .., "ns_per_iter": ..}`.

use std::hint::black_box;
use std::io::Write;
use std::time::{Duration, Instant};

/// One measured benchmark result.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/name` identifier.
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations in the measurement window.
    pub iters: u64,
}

/// Top-level harness state.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

fn target_window() -> Duration {
    let ms =
        std::env::var("BENCH_TARGET_MS").ok().and_then(|v| v.parse::<u64>().ok()).unwrap_or(300);
    Duration::from_millis(ms)
}

fn run_one(id: &str, f: &mut dyn FnMut(&mut Bencher)) -> BenchResult {
    // Calibrate with one iteration.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let window = target_window();
    let iters = (window.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    let ns = b.elapsed.as_nanos() as f64 / iters as f64;
    BenchResult { id: id.to_string(), ns_per_iter: ns, iters }
}

fn report(r: &BenchResult) {
    let (val, unit) = if r.ns_per_iter >= 1e9 {
        (r.ns_per_iter / 1e9, "s")
    } else if r.ns_per_iter >= 1e6 {
        (r.ns_per_iter / 1e6, "ms")
    } else if r.ns_per_iter >= 1e3 {
        (r.ns_per_iter / 1e3, "us")
    } else {
        (r.ns_per_iter, "ns")
    };
    println!("bench: {:<40} {:>10.3} {}/iter  ({} iters)", r.id, val, unit, r.iters);
    if let Ok(path) = std::env::var("BENCH_JSON") {
        if let Ok(mut fh) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(
                fh,
                "{{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"iters\": {}}}",
                r.id, r.ns_per_iter, r.iters
            );
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.into() }
    }

    /// Run an ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let r = run_one(&id.into(), &mut f);
        report(&r);
        self.results.push(r);
        self
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes its own window.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        let r = run_one(&full, &mut f);
        report(&r);
        self.parent.results.push(r);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` times the supplied routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, preventing the result from being optimized away.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declare a function running the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
