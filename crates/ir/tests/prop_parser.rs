//! Property-based parser validation: pretty-printing a random well-typed
//! expression and parsing it back must reproduce the exact tree
//! (precedence, associativity, and transpose binding are all exercised).

use proptest::prelude::*;
use slingen_ir::parse::Parser;
use slingen_ir::{expr::display_expr, Expr, OpId, Stmt};

/// Random 4×4-shaped expressions over: A, B (4×4 In), C (4×4 Out), and
/// scalar alpha. Transposes only on operands (the LA surface form).
fn expr_4x4() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::op(OpId(0))),                        // A
        Just(Expr::op(OpId(1))),                        // B
        Just(Expr::op(OpId(0)).t()),                    // A'
        Just(Expr::op(OpId(1)).t()),                    // B'
        Just(Expr::op(OpId(3)).mul(Expr::op(OpId(0)))), // alpha * A
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.add(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.sub(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.mul(b)),
            inner.clone().prop_map(|a| a.neg()),
        ]
    })
}

const DECLS: &str = "
    Mat A(4, 4) <In>;
    Mat B(4, 4) <In>;
    Mat C(4, 4) <Out>;
    Sca alpha <In>;
";

fn names(id: OpId) -> String {
    ["A", "B", "C", "alpha"][id.0].to_string()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_parse_round_trip(e in expr_4x4()) {
        let text = format!("{DECLS}\nC = {};", display_expr(&e, &names));
        let program = Parser::new().parse(&text).unwrap_or_else(|err| {
            panic!("re-parse failed for `{}`: {err}", display_expr(&e, &names))
        });
        match &program.statements()[0] {
            Stmt::Assign { rhs, .. } => prop_assert_eq!(
                rhs,
                &e,
                "round trip changed the tree for `{}`",
                display_expr(&e, &names)
            ),
            other => prop_assert!(false, "unexpected statement {:?}", other),
        }
    }
}
