//! Text parser for the LA language (paper Fig. 4).
//!
//! The concrete syntax follows the paper's examples (Fig. 5):
//!
//! ```text
//! Mat H(k, n) <In>;
//! Mat P(k, k) <In, UpSym, PD>;
//! Mat S(k, k) <Out, UpSym, PD>;
//! Mat U(k, k) <Out, UpTri, NS, ow(S)>;
//! Mat B(k, k) <Out>;
//! S = H * H' + R;
//! U' * U = S;
//! U' * B = P;
//! ```
//!
//! * Transposition is written `X'` (postfix) — the ASCII rendering of the
//!   paper's `Xᵀ`.
//! * Inversion is `inv(X)` or `(X)^-1`.
//! * `sqrt(x)` and `/` are allowed on scalar subexpressions.
//! * Sizes may be integer literals or symbolic parameters bound via
//!   [`Parser::with_param`].
//! * Loops: `for (i = 0:N) { ... }` (uniform bodies; see
//!   [`crate::program::Stmt::For`]).
//! * Comments run from `#` or `//` to end of line.

use crate::expr::{Expr, OpId};
use crate::program::{IoType, OperandDecl, Program, Stmt};
use crate::shape::Shape;
use crate::structure::{Properties, StorageHalf, Structure};
use crate::LaError;
use std::collections::HashMap;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(usize),
    Float(f64),
    LParen,
    RParen,
    LBrace,
    RBrace,
    LAngle,
    RAngle,
    Comma,
    Semi,
    Eq,
    Plus,
    Minus,
    Star,
    Slash,
    Quote,
    Colon,
    /// `^-1`
    InvSuffix,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, LaError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                toks.push((Tok::LParen, i));
                i += 1;
            }
            ')' => {
                toks.push((Tok::RParen, i));
                i += 1;
            }
            '{' => {
                toks.push((Tok::LBrace, i));
                i += 1;
            }
            '}' => {
                toks.push((Tok::RBrace, i));
                i += 1;
            }
            '<' => {
                toks.push((Tok::LAngle, i));
                i += 1;
            }
            '>' => {
                toks.push((Tok::RAngle, i));
                i += 1;
            }
            ',' => {
                toks.push((Tok::Comma, i));
                i += 1;
            }
            ';' => {
                toks.push((Tok::Semi, i));
                i += 1;
            }
            '=' => {
                toks.push((Tok::Eq, i));
                i += 1;
            }
            '+' => {
                toks.push((Tok::Plus, i));
                i += 1;
            }
            '-' => {
                toks.push((Tok::Minus, i));
                i += 1;
            }
            '*' => {
                toks.push((Tok::Star, i));
                i += 1;
            }
            '/' => {
                toks.push((Tok::Slash, i));
                i += 1;
            }
            '\'' => {
                toks.push((Tok::Quote, i));
                i += 1;
            }
            ':' => {
                toks.push((Tok::Colon, i));
                i += 1;
            }
            '^' => {
                // only ^T (transpose) and ^-1 (inverse) are legal
                if src[i..].starts_with("^-1") {
                    toks.push((Tok::InvSuffix, i));
                    i += 3;
                } else if src[i..].starts_with("^T") {
                    toks.push((Tok::Quote, i));
                    i += 2;
                } else {
                    return Err(LaError::Lex {
                        offset: i,
                        message: "expected `^T` or `^-1`".into(),
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b'.' {
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                    let v: f64 = src[start..i].parse().map_err(|_| LaError::Lex {
                        offset: start,
                        message: "bad float literal".into(),
                    })?;
                    toks.push((Tok::Float(v), start));
                } else {
                    let v: usize = src[start..i].parse().map_err(|_| LaError::Lex {
                        offset: start,
                        message: "bad integer literal".into(),
                    })?;
                    toks.push((Tok::Int(v), start));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                toks.push((Tok::Ident(src[start..i].to_string()), start));
            }
            other => {
                return Err(LaError::Lex {
                    offset: i,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(toks)
}

/// Parser for LA source text.
///
/// Symbolic sizes (like `k` and `n` in the paper's Fig. 5) must be bound to
/// concrete values with [`Parser::with_param`] before parsing — SLinGen
/// targets fixed-size operands.
#[derive(Debug, Clone, Default)]
pub struct Parser {
    params: HashMap<String, usize>,
    name: String,
}

impl Parser {
    /// A parser with no bound size parameters, program name `"la_program"`.
    pub fn new() -> Self {
        Parser { params: HashMap::new(), name: "la_program".to_string() }
    }

    /// Bind a symbolic size parameter.
    pub fn with_param(mut self, name: &str, value: usize) -> Self {
        self.params.insert(name.to_string(), value);
        self
    }

    /// Set the program name (becomes the generated C function's name).
    pub fn with_name(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Parse `src` into a validated [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`LaError`] for lexical, syntactic, or semantic problems
    /// (including everything the type checker rejects).
    pub fn parse(&self, src: &str) -> Result<Program, LaError> {
        let toks = lex(src)?;
        let mut st = ParseState {
            toks: &toks,
            pos: 0,
            params: &self.params,
            operands: Vec::new(),
            by_name: HashMap::new(),
        };
        let mut statements = Vec::new();
        while !st.at_end() {
            if st.peek_decl_keyword() {
                st.parse_declaration()?;
            } else {
                statements.push(st.parse_statement()?);
            }
        }
        Program::from_parts(self.name.clone(), st.operands, statements)
    }
}

struct ParseState<'a> {
    toks: &'a [(Tok, usize)],
    pos: usize,
    params: &'a HashMap<String, usize>,
    operands: Vec<OperandDecl>,
    by_name: HashMap<String, OpId>,
}

impl<'a> ParseState<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn offset(&self) -> usize {
        self.toks.get(self.pos).map(|(_, o)| *o).unwrap_or(usize::MAX)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), LaError> {
        let off = self.offset();
        match self.bump() {
            Some(t) if t == tok => Ok(()),
            other => Err(LaError::Parse {
                offset: off,
                message: format!("expected {what}, found {other:?}"),
            }),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, LaError> {
        let off = self.offset();
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(LaError::Parse {
                offset: off,
                message: format!("expected {what}, found {other:?}"),
            }),
        }
    }

    fn peek_decl_keyword(&self) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == "Mat" || s == "Vec" || s == "Sca")
    }

    fn parse_size(&mut self) -> Result<usize, LaError> {
        let off = self.offset();
        match self.bump() {
            Some(Tok::Int(v)) => Ok(v),
            Some(Tok::Ident(name)) => {
                self.params.get(&name).copied().ok_or(LaError::UnboundSize(name))
            }
            other => Err(LaError::Parse {
                offset: off,
                message: format!("expected size, found {other:?}"),
            }),
        }
    }

    fn parse_declaration(&mut self) -> Result<(), LaError> {
        let kind = self.expect_ident("declaration keyword")?;
        let name = self.expect_ident("operand name")?;
        let shape = match kind.as_str() {
            "Mat" => {
                self.expect(Tok::LParen, "`(`")?;
                let rows = self.parse_size()?;
                self.expect(Tok::Comma, "`,`")?;
                let cols = self.parse_size()?;
                self.expect(Tok::RParen, "`)`")?;
                Shape::matrix(rows, cols)
            }
            "Vec" => {
                self.expect(Tok::LParen, "`(`")?;
                let n = self.parse_size()?;
                self.expect(Tok::RParen, "`)`")?;
                Shape::vector(n)
            }
            "Sca" => Shape::scalar(),
            other => {
                return Err(LaError::Parse {
                    offset: self.offset(),
                    message: format!("unknown declaration keyword `{other}`"),
                })
            }
        };
        self.expect(Tok::LAngle, "`<`")?;
        let mut io = None;
        let mut structure = Structure::General;
        let mut properties = Properties::none();
        let mut overwrites = None;
        loop {
            let attr = self.expect_ident("declaration attribute")?;
            match attr.as_str() {
                "In" => io = Some(IoType::In),
                "Out" => io = Some(IoType::Out),
                "InOut" => io = Some(IoType::InOut),
                "LoTri" => structure = Structure::LowerTriangular,
                "UpTri" => structure = Structure::UpperTriangular,
                "LoSym" => structure = Structure::Symmetric(StorageHalf::Lower),
                "UpSym" => structure = Structure::Symmetric(StorageHalf::Upper),
                "Diag" => structure = Structure::Diagonal,
                "PD" => properties.positive_definite = true,
                "NS" => properties.non_singular = true,
                "UnitDiag" => properties.unit_diagonal = true,
                "ow" => {
                    self.expect(Tok::LParen, "`(`")?;
                    let target = self.expect_ident("operand name")?;
                    self.expect(Tok::RParen, "`)`")?;
                    overwrites =
                        Some(*self.by_name.get(&target).ok_or(LaError::UnknownOperand(target))?);
                }
                other => {
                    return Err(LaError::Parse {
                        offset: self.offset(),
                        message: format!("unknown attribute `{other}`"),
                    })
                }
            }
            match self.bump() {
                Some(Tok::Comma) => continue,
                Some(Tok::RAngle) => break,
                other => {
                    return Err(LaError::Parse {
                        offset: self.offset(),
                        message: format!("expected `,` or `>`, found {other:?}"),
                    })
                }
            }
        }
        self.expect(Tok::Semi, "`;`")?;
        let io = io.ok_or(LaError::Parse {
            offset: self.offset(),
            message: format!("operand `{name}` lacks an In/Out/InOut attribute"),
        })?;
        // PD implies non-singular.
        if properties.positive_definite {
            properties.non_singular = true;
        }
        if self.by_name.contains_key(&name) {
            return Err(LaError::DuplicateOperand(name));
        }
        let id = OpId(self.operands.len());
        self.by_name.insert(name.clone(), id);
        self.operands.push(OperandDecl { name, shape, structure, properties, io, overwrites });
        Ok(())
    }

    fn parse_statement(&mut self) -> Result<Stmt, LaError> {
        if let Some(Tok::Ident(kw)) = self.peek() {
            if kw == "for" {
                return self.parse_for();
            }
        }
        let lhs = self.parse_expr()?;
        self.expect(Tok::Eq, "`=`")?;
        let rhs = self.parse_expr()?;
        self.expect(Tok::Semi, "`;`")?;
        // `id = expr` is an sBLAC; anything else on the left is an HLAC.
        if let Expr::Operand(id) = lhs {
            if rhs.contains_inverse() {
                Ok(Stmt::Equation { lhs: Expr::Operand(id), rhs })
            } else {
                Ok(Stmt::Assign { lhs: id, rhs })
            }
        } else {
            Ok(Stmt::Equation { lhs, rhs })
        }
    }

    fn parse_for(&mut self) -> Result<Stmt, LaError> {
        self.expect_ident("`for`")?;
        self.expect(Tok::LParen, "`(`")?;
        let _var = self.expect_ident("loop variable")?;
        self.expect(Tok::Eq, "`=`")?;
        let off = self.offset();
        let lo = match self.bump() {
            Some(Tok::Int(v)) => v,
            other => {
                return Err(LaError::Parse {
                    offset: off,
                    message: format!("expected loop lower bound, found {other:?}"),
                })
            }
        };
        self.expect(Tok::Colon, "`:`")?;
        let hi = self.parse_size()?;
        self.expect(Tok::RParen, "`)`")?;
        self.expect(Tok::LBrace, "`{`")?;
        let mut body = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            if self.at_end() {
                return Err(LaError::Parse {
                    offset: self.offset(),
                    message: "unterminated for loop".into(),
                });
            }
            body.push(self.parse_statement()?);
        }
        self.expect(Tok::RBrace, "`}`")?;
        Ok(Stmt::For { count: hi.saturating_sub(lo), body })
    }

    // expression grammar:
    //   expr    := term (('+'|'-') term)*
    //   term    := factor (('*'|'/') factor)*
    //   factor  := '-' factor | postfix
    //   postfix := atom ("'" | "^-1")*
    //   atom    := ident | number | '(' expr ')' | 'sqrt' '(' expr ')'
    //            | 'inv' '(' expr ')'
    fn parse_expr(&mut self) -> Result<Expr, LaError> {
        let mut lhs = self.parse_term()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.bump();
                    let rhs = self.parse_term()?;
                    lhs = lhs.add(rhs);
                }
                Some(Tok::Minus) => {
                    self.bump();
                    let rhs = self.parse_term()?;
                    lhs = lhs.sub(rhs);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_term(&mut self) -> Result<Expr, LaError> {
        let mut lhs = self.parse_factor()?;
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.bump();
                    let rhs = self.parse_factor()?;
                    lhs = lhs.mul(rhs);
                }
                Some(Tok::Slash) => {
                    self.bump();
                    let rhs = self.parse_factor()?;
                    lhs = lhs.div(rhs);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_factor(&mut self) -> Result<Expr, LaError> {
        if self.peek() == Some(&Tok::Minus) {
            self.bump();
            let inner = self.parse_factor()?;
            return Ok(inner.neg());
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr, LaError> {
        let mut e = self.parse_atom()?;
        loop {
            match self.peek() {
                Some(Tok::Quote) => {
                    self.bump();
                    e = e.t();
                }
                Some(Tok::InvSuffix) => {
                    self.bump();
                    e = e.inv();
                }
                _ => return Ok(e),
            }
        }
    }

    fn parse_atom(&mut self) -> Result<Expr, LaError> {
        let off = self.offset();
        match self.bump() {
            Some(Tok::Ident(name)) => match name.as_str() {
                "sqrt" => {
                    self.expect(Tok::LParen, "`(`")?;
                    let e = self.parse_expr()?;
                    self.expect(Tok::RParen, "`)`")?;
                    Ok(e.sqrt())
                }
                "inv" => {
                    self.expect(Tok::LParen, "`(`")?;
                    let e = self.parse_expr()?;
                    self.expect(Tok::RParen, "`)`")?;
                    Ok(e.inv())
                }
                _ => {
                    let id =
                        self.by_name.get(&name).copied().ok_or(LaError::UnknownOperand(name))?;
                    Ok(Expr::Operand(id))
                }
            },
            Some(Tok::Int(v)) => Ok(Expr::Lit(v as f64)),
            Some(Tok::Float(v)) => Ok(Expr::Lit(v)),
            Some(Tok::LParen) => {
                let e = self.parse_expr()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(e)
            }
            other => Err(LaError::Parse {
                offset: off,
                message: format!("expected expression, found {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG5: &str = "
        Mat H(k, n) <In>;
        Mat P(k, k) <In, UpSym, PD>;
        Mat R(k, k) <In, UpSym, PD>;
        Mat S(k, k) <Out, UpSym, PD>;
        Mat U(k, k) <Out, UpTri, NS, ow(S)>;
        Mat B(k, k) <Out>;
        S = H * H' + R;
        U' * U = S;
        U' * B = P;
    ";

    fn parse_fig5() -> Program {
        Parser::new().with_param("k", 4).with_param("n", 8).parse(FIG5).unwrap()
    }

    #[test]
    fn parses_fig5_program() {
        let p = parse_fig5();
        assert_eq!(p.operands().len(), 6);
        assert_eq!(p.statements().len(), 3);
        let u = p.find("U").unwrap();
        assert_eq!(p.operand(u).structure, Structure::UpperTriangular);
        assert!(p.operand(u).properties.non_singular);
        assert_eq!(p.operand(u).overwrites, Some(p.find("S").unwrap()));
        let s = p.find("S").unwrap();
        assert_eq!(p.operand(s).structure, Structure::Symmetric(StorageHalf::Upper));
        assert!(p.operand(s).properties.positive_definite);
        assert!(matches!(&p.statements()[0], Stmt::Assign { .. }));
        assert!(matches!(&p.statements()[1], Stmt::Equation { .. }));
        assert!(matches!(&p.statements()[2], Stmt::Equation { .. }));
    }

    #[test]
    fn unbound_size_fails() {
        let err = Parser::new().with_param("k", 4).parse(FIG5).unwrap_err();
        assert_eq!(err, LaError::UnboundSize("n".into()));
    }

    #[test]
    fn caret_forms() {
        let src = "
            Mat A(4, 4) <In, NS>;
            Mat X(4, 4) <Out>;
            X = A^T * inv(A) * (A)^-1;
        ";
        let p = Parser::new().parse(src).unwrap();
        // statement has inverses -> classified as HLAC.
        assert!(p.statements()[0].is_hlac());
    }

    #[test]
    fn scalar_and_vector_declarations() {
        let src = "
            Sca alpha <In>;
            Vec x(8) <In>;
            Vec y(8) <Out>;
            y = alpha * x + y;
        ";
        // y read+written: must be InOut
        assert!(Parser::new().parse(src).is_err());
        let src_ok = "
            Sca alpha <In>;
            Vec x(8) <In>;
            Vec y(8) <InOut>;
            y = alpha * x + y;
        ";
        let p = Parser::new().parse(src_ok).unwrap();
        assert_eq!(p.operand(p.find("y").unwrap()).io, IoType::InOut);
    }

    #[test]
    fn comments_are_skipped() {
        let src = "
            # leading comment
            Sca a <In>;   // trailing comment
            Sca b <Out>;
            b = sqrt(a) / a; # another
        ";
        let p = Parser::new().parse(src).unwrap();
        assert_eq!(p.statements().len(), 1);
    }

    #[test]
    fn for_loop_parses() {
        let src = "
            Mat A(4, 4) <In>;
            Mat C(4, 4) <InOut>;
            for (i = 0:3) {
                C = C + A;
            }
        ";
        let p = Parser::new().parse(src).unwrap();
        match &p.statements()[0] {
            Stmt::For { count, body } => {
                assert_eq!(*count, 3);
                assert_eq!(body.len(), 1);
            }
            other => panic!("expected for loop, got {other:?}"),
        }
    }

    #[test]
    fn negation_and_precedence() {
        let src = "
            Sca a <In>;
            Sca b <In>;
            Sca c <Out>;
            c = -a * b + a / b;
        ";
        let p = Parser::new().parse(src).unwrap();
        let rendered = match &p.statements()[0] {
            Stmt::Assign { rhs, .. } => p.render_expr(rhs),
            _ => unreachable!(),
        };
        assert_eq!(rendered, "-a * b + a / b");
    }

    #[test]
    fn error_positions_reported() {
        let err = Parser::new().parse("Mat A(4, 4) <In>; A @ B;").unwrap_err();
        assert!(matches!(err, LaError::Lex { .. }));
        let err = Parser::new().parse("Mat A(4, 4) <Wrong>;").unwrap_err();
        assert!(matches!(err, LaError::Parse { .. }));
        let err = Parser::new().parse("Mat A(4, 4) <In>; B = A;").unwrap_err();
        assert!(matches!(err, LaError::UnknownOperand(_)));
    }

    #[test]
    fn duplicate_declaration_rejected() {
        let err = Parser::new().parse("Mat A(4, 4) <In>; Mat A(4, 4) <Out>;").unwrap_err();
        assert_eq!(err, LaError::DuplicateOperand("A".into()));
    }

    #[test]
    fn print_parse_round_trip() {
        let p = parse_fig5();
        let text = p.to_string();
        assert!(text.contains("S = H * H' + R;"));
        assert!(text.contains("U' * U = S;"));
    }
}
