//! # slingen-ir
//!
//! The mathematical intermediate representation of SLinGen: the **LA**
//! language (paper Fig. 4), expressions over scalars/vectors/matrices,
//! matrix structures and their propagation algebra, and the program
//! type-checker.
//!
//! An LA program declares fixed-size operands and a sequence of statements,
//! which are either *sBLACs* (basic linear algebra computations: `+`, `-`,
//! `*`, transpose, and scalar `/`, `sqrt`) or *HLACs* (higher-level
//! computations: equations with an expression left-hand side, such as
//! `U' * U = S`, or explicit inverses).
//!
//! ```
//! use slingen_ir::parse::Parser;
//!
//! let src = "
//!     Mat H(k, n) <In>;
//!     Mat P(k, k) <In, UpSym, PD>;
//!     Mat R(k, k) <In, UpSym, PD>;
//!     Mat S(k, k) <Out, UpSym, PD>;
//!     Mat U(k, k) <Out, UpTri, NS, ow(S)>;
//!     Mat B(k, k) <Out>;
//!     S = H * H' + R;
//!     U' * U = S;
//!     U' * B = P;
//! ";
//! let program = Parser::new()
//!     .with_param("k", 4)
//!     .with_param("n", 8)
//!     .parse(src)?;
//! assert_eq!(program.statements().len(), 3);
//! # Ok::<(), slingen_ir::LaError>(())
//! ```

pub mod expr;
pub mod parse;
pub mod program;
pub mod shape;
pub mod structure;
pub mod typecheck;

pub use expr::{Expr, OpId};
pub use program::{IoType, OperandDecl, Program, ProgramBuilder, Stmt};
pub use shape::Shape;
pub use structure::{Properties, Structure};

use std::fmt;

/// Errors produced while parsing or validating LA programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaError {
    /// Lexical error at a byte offset with a message.
    Lex { offset: usize, message: String },
    /// Parse error at a byte offset with a message.
    Parse { offset: usize, message: String },
    /// A symbolic size was not bound to a concrete value.
    UnboundSize(String),
    /// An identifier was referenced but never declared.
    UnknownOperand(String),
    /// An identifier was declared twice.
    DuplicateOperand(String),
    /// Shapes do not conform for the attempted operation.
    ShapeMismatch { context: String, left: Shape, right: Shape },
    /// `/` or `sqrt` was applied to a non-scalar expression.
    NonScalarOp(String),
    /// A statement writes to an operand that was declared `In`.
    WriteToInput(String),
    /// An HLAC was malformed (e.g. no unknown on the left-hand side).
    InvalidHlac(String),
    /// `ow(..)` names an operand with a different shape.
    InvalidOverwrite(String),
}

impl fmt::Display for LaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaError::Lex { offset, message } => {
                write!(f, "lexical error at offset {offset}: {message}")
            }
            LaError::Parse { offset, message } => {
                write!(f, "parse error at offset {offset}: {message}")
            }
            LaError::UnboundSize(name) => write!(f, "unbound symbolic size `{name}`"),
            LaError::UnknownOperand(name) => write!(f, "unknown operand `{name}`"),
            LaError::DuplicateOperand(name) => write!(f, "operand `{name}` declared twice"),
            LaError::ShapeMismatch { context, left, right } => {
                write!(f, "shape mismatch in {context}: {left} vs {right}")
            }
            LaError::NonScalarOp(what) => {
                write!(f, "operation `{what}` is only defined on scalars")
            }
            LaError::WriteToInput(name) => {
                write!(f, "statement writes to input operand `{name}`")
            }
            LaError::InvalidHlac(message) => write!(f, "invalid HLAC: {message}"),
            LaError::InvalidOverwrite(message) => write!(f, "invalid ow(..): {message}"),
        }
    }
}

impl std::error::Error for LaError {}
