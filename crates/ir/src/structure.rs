//! Matrix structures and the propagation algebra.
//!
//! Structures are central to SLinGen: the Cl1ck-style synthesis engine uses
//! them to partition equations (a triangular matrix splits into two
//! triangular diagonal blocks, one zero block, and one general block), and
//! the LGen-style tiling stage uses them to skip zero regions and halve the
//! work on symmetric operands.
//!
//! The algebra in this module answers: *given the structures of `A` and `B`,
//! what do we know about `A + B`, `A * B`, and `Aᵀ`?* The rules are sound
//! (the result structure is implied by the operand structures) but not
//! complete (the result may have more structure than reported); this mirrors
//! the paper's structure propagation in LGen [40, 41].

// The expression-builder methods intentionally mirror the LA surface
// syntax (`a.add(b)`, `a.mul(b)`); they are not operator-trait impls.
#![allow(clippy::should_implement_trait)]

use std::fmt;

/// Which half of a symmetric matrix is stored / meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageHalf {
    /// The lower triangle holds the data (`LoSym`).
    Lower,
    /// The upper triangle holds the data (`UpSym`).
    Upper,
}

impl StorageHalf {
    /// The opposite half.
    pub fn flipped(self) -> StorageHalf {
        match self {
            StorageHalf::Lower => StorageHalf::Upper,
            StorageHalf::Upper => StorageHalf::Lower,
        }
    }
}

/// The structure of a matrix operand or expression.
///
/// `Zero` and `Identity` appear only as derived structures during synthesis
/// (a partitioned triangular matrix has a zero off-diagonal block); the LA
/// surface language only declares the first five.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Structure {
    /// No structure: a general dense matrix.
    #[default]
    General,
    /// Lower triangular (`LoTri`): entries above the diagonal are zero.
    LowerTriangular,
    /// Upper triangular (`UpTri`): entries below the diagonal are zero.
    UpperTriangular,
    /// Symmetric, with the given storage half (`LoSym` / `UpSym`).
    Symmetric(StorageHalf),
    /// Diagonal.
    Diagonal,
    /// Identically zero.
    Zero,
    /// The identity matrix.
    Identity,
}

impl Structure {
    /// Structure of the transpose.
    ///
    /// ```
    /// use slingen_ir::Structure;
    /// assert_eq!(
    ///     Structure::LowerTriangular.transposed(),
    ///     Structure::UpperTriangular
    /// );
    /// ```
    pub fn transposed(self) -> Structure {
        match self {
            Structure::LowerTriangular => Structure::UpperTriangular,
            Structure::UpperTriangular => Structure::LowerTriangular,
            Structure::Symmetric(half) => Structure::Symmetric(half.flipped()),
            other => other,
        }
    }

    /// Structure of a sum `A + B` (also covers `A - B`).
    pub fn add(self, other: Structure) -> Structure {
        use Structure::*;
        match (self.canonical(), other.canonical()) {
            (Zero, s) | (s, Zero) => s,
            (a, b) if a == b => a,
            // Identity is diagonal for the purposes of addition structure.
            (Identity, b) => Diagonal.add(b),
            (a, Identity) => a.add(Diagonal),
            (Diagonal, LowerTriangular) | (LowerTriangular, Diagonal) => LowerTriangular,
            (Diagonal, UpperTriangular) | (UpperTriangular, Diagonal) => UpperTriangular,
            (Diagonal, Symmetric(h)) | (Symmetric(h), Diagonal) => Symmetric(h),
            // Symmetric halves merge: symmetry is preserved regardless of
            // which half is stored; keep the left operand's storage.
            (Symmetric(h), Symmetric(_)) => Symmetric(h),
            _ => General,
        }
    }

    /// Structure of a product `A * B`.
    pub fn mul(self, other: Structure) -> Structure {
        use Structure::*;
        match (self.canonical(), other.canonical()) {
            (Zero, _) | (_, Zero) => Zero,
            (Identity, s) => s,
            (s, Identity) => s,
            (Diagonal, Diagonal) => Diagonal,
            (Diagonal, LowerTriangular) | (LowerTriangular, Diagonal) => LowerTriangular,
            (Diagonal, UpperTriangular) | (UpperTriangular, Diagonal) => UpperTriangular,
            (LowerTriangular, LowerTriangular) => LowerTriangular,
            (UpperTriangular, UpperTriangular) => UpperTriangular,
            _ => General,
        }
    }

    /// Structure after negation (structure is preserved; identity becomes
    /// diagonal because `-I` is no longer the identity).
    pub fn negated(self) -> Structure {
        match self {
            Structure::Identity => Structure::Diagonal,
            other => other,
        }
    }

    /// Collapse `Symmetric` storage distinctions for algebraic matching
    /// while keeping the variant itself.
    fn canonical(self) -> Structure {
        self
    }

    /// Whether entry `(i, j)` of an `n × n` matrix with this structure is
    /// known to be zero a priori.
    ///
    /// For non-square shapes only `Zero` forces zeros; triangular structure
    /// is only meaningful on square operands, as in the paper.
    pub fn is_zero_at(self, i: usize, j: usize) -> bool {
        match self {
            Structure::Zero => true,
            Structure::LowerTriangular => j > i,
            Structure::UpperTriangular => i > j,
            Structure::Diagonal => i != j,
            Structure::Identity => i != j,
            _ => false,
        }
    }

    /// Whether `(i, j)` is stored redundantly (mirrored from the other half)
    /// for symmetric structures.
    pub fn is_mirrored_at(self, i: usize, j: usize) -> bool {
        match self {
            Structure::Symmetric(StorageHalf::Upper) => i > j,
            Structure::Symmetric(StorageHalf::Lower) => j > i,
            _ => false,
        }
    }

    /// Whether this structure implies symmetry of the matrix values.
    pub fn is_symmetric(self) -> bool {
        matches!(
            self,
            Structure::Symmetric(_) | Structure::Diagonal | Structure::Zero | Structure::Identity
        )
    }

    /// Whether this structure is triangular (including diagonal/identity).
    pub fn is_triangular(self) -> bool {
        matches!(
            self,
            Structure::LowerTriangular
                | Structure::UpperTriangular
                | Structure::Diagonal
                | Structure::Identity
                | Structure::Zero
        )
    }

    /// The number of *stored, potentially nonzero* entries of an
    /// `rows × cols` operand with this structure. Symmetric operands use
    /// full storage (the paper's storage scheme) but only `stored` entries
    /// carry independent information.
    pub fn meaningful_entries(self, rows: usize, cols: usize) -> usize {
        let n = rows.min(cols);
        match self {
            Structure::General => rows * cols,
            Structure::LowerTriangular | Structure::UpperTriangular => n * (n + 1) / 2,
            Structure::Symmetric(_) => n * (n + 1) / 2,
            Structure::Diagonal => n,
            Structure::Identity | Structure::Zero => 0,
        }
    }
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Structure::General => "Gen",
            Structure::LowerTriangular => "LoTri",
            Structure::UpperTriangular => "UpTri",
            Structure::Symmetric(StorageHalf::Lower) => "LoSym",
            Structure::Symmetric(StorageHalf::Upper) => "UpSym",
            Structure::Diagonal => "Diag",
            Structure::Zero => "Zero",
            Structure::Identity => "Id",
        };
        f.write_str(s)
    }
}

/// Non-structural matrix properties from the LA grammar.
///
/// `PD` (positive definite) and `NS` (non-singular) license algorithmic
/// choices in the synthesis engine (e.g. Cholesky requires `PD`; triangular
/// solves require `NS`); `UnitDiag` marks an implicit unit diagonal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Properties {
    /// Symmetric positive definite.
    pub positive_definite: bool,
    /// Non-singular.
    pub non_singular: bool,
    /// Unit diagonal (for triangular operands).
    pub unit_diagonal: bool,
}

impl Properties {
    /// No properties.
    pub fn none() -> Self {
        Properties::default()
    }

    /// Positive definite (implies non-singular).
    pub fn pd() -> Self {
        Properties { positive_definite: true, non_singular: true, unit_diagonal: false }
    }

    /// Non-singular.
    pub fn ns() -> Self {
        Properties { positive_definite: false, non_singular: true, unit_diagonal: false }
    }

    /// Merge with another property set (union of guarantees).
    pub fn and(self, other: Properties) -> Properties {
        Properties {
            positive_definite: self.positive_definite || other.positive_definite,
            non_singular: self.non_singular || other.non_singular,
            unit_diagonal: self.unit_diagonal || other.unit_diagonal,
        }
    }
}

impl fmt::Display for Properties {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        let mut put = |f: &mut fmt::Formatter<'_>, s: &str| -> fmt::Result {
            if wrote {
                f.write_str(", ")?;
            }
            wrote = true;
            f.write_str(s)
        };
        if self.positive_definite {
            put(f, "PD")?;
        }
        if self.non_singular {
            put(f, "NS")?;
        }
        if self.unit_diagonal {
            put(f, "UnitDiag")?;
        }
        if !wrote {
            f.write_str("-")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Structure::*;

    #[test]
    fn transpose_involution() {
        for s in [
            General,
            LowerTriangular,
            UpperTriangular,
            Symmetric(StorageHalf::Lower),
            Symmetric(StorageHalf::Upper),
            Diagonal,
            Zero,
            Identity,
        ] {
            assert_eq!(s.transposed().transposed(), s);
        }
    }

    #[test]
    fn zero_is_additive_identity() {
        for s in [General, LowerTriangular, Symmetric(StorageHalf::Upper), Diagonal] {
            assert_eq!(Zero.add(s), s);
            assert_eq!(s.add(Zero), s);
        }
    }

    #[test]
    fn zero_is_multiplicative_annihilator() {
        for s in [General, LowerTriangular, UpperTriangular, Diagonal, Identity] {
            assert_eq!(Zero.mul(s), Zero);
            assert_eq!(s.mul(Zero), Zero);
        }
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        for s in [General, LowerTriangular, UpperTriangular, Diagonal] {
            assert_eq!(Identity.mul(s), s);
            assert_eq!(s.mul(Identity), s);
        }
    }

    #[test]
    fn triangular_products() {
        assert_eq!(LowerTriangular.mul(LowerTriangular), LowerTriangular);
        assert_eq!(UpperTriangular.mul(UpperTriangular), UpperTriangular);
        assert_eq!(LowerTriangular.mul(UpperTriangular), General);
        assert_eq!(UpperTriangular.mul(LowerTriangular), General);
    }

    #[test]
    fn triangular_sums() {
        assert_eq!(LowerTriangular.add(LowerTriangular), LowerTriangular);
        assert_eq!(LowerTriangular.add(UpperTriangular), General);
        assert_eq!(LowerTriangular.add(Diagonal), LowerTriangular);
        assert_eq!(Symmetric(StorageHalf::Upper).add(Diagonal), Symmetric(StorageHalf::Upper));
    }

    #[test]
    fn symmetric_times_symmetric_is_general() {
        let s = Symmetric(StorageHalf::Upper);
        assert_eq!(s.mul(s), General);
    }

    #[test]
    fn zero_pattern_queries() {
        assert!(LowerTriangular.is_zero_at(0, 2));
        assert!(!LowerTriangular.is_zero_at(2, 0));
        assert!(UpperTriangular.is_zero_at(2, 0));
        assert!(Diagonal.is_zero_at(1, 2));
        assert!(!Diagonal.is_zero_at(1, 1));
        assert!(!General.is_zero_at(0, 5));
        assert!(Symmetric(StorageHalf::Upper).is_mirrored_at(3, 1));
        assert!(!Symmetric(StorageHalf::Upper).is_mirrored_at(1, 3));
    }

    #[test]
    fn meaningful_entry_counts() {
        assert_eq!(General.meaningful_entries(4, 4), 16);
        assert_eq!(LowerTriangular.meaningful_entries(4, 4), 10);
        assert_eq!(Symmetric(StorageHalf::Upper).meaningful_entries(4, 4), 10);
        assert_eq!(Diagonal.meaningful_entries(4, 4), 4);
        assert_eq!(Zero.meaningful_entries(4, 4), 0);
    }

    #[test]
    fn properties_merge() {
        let p = Properties::pd().and(Properties { unit_diagonal: true, ..Properties::none() });
        assert!(p.positive_definite && p.non_singular && p.unit_diagonal);
        assert_eq!(Properties::pd().to_string(), "PD, NS");
        assert_eq!(Properties::none().to_string(), "-");
    }

    /// Soundness of the propagation rules against concrete dense matrices:
    /// generate matrices matching the operand structures, compute, and check
    /// that the claimed result structure's zero pattern holds.
    #[test]
    fn propagation_soundness_dense_check() {
        let n = 5usize;
        let structures = [
            General,
            LowerTriangular,
            UpperTriangular,
            Symmetric(StorageHalf::Upper),
            Diagonal,
            Zero,
            Identity,
        ];
        let mk = |s: Structure| -> Vec<f64> {
            let mut m = vec![0.0; n * n];
            for i in 0..n {
                for j in 0..n {
                    if s.is_zero_at(i, j) {
                        continue;
                    }
                    let v = (1 + i * 7 + j * 3) as f64;
                    m[i * n + j] = match s {
                        Identity => {
                            if i == j {
                                1.0
                            } else {
                                0.0
                            }
                        }
                        Symmetric(_) => (1 + i.min(j) * 7 + i.max(j) * 3) as f64,
                        _ => v,
                    };
                }
            }
            m
        };
        for &sa in &structures {
            for &sb in &structures {
                let a = mk(sa);
                let b = mk(sb);
                // addition
                let claimed = sa.add(sb);
                for i in 0..n {
                    for j in 0..n {
                        if claimed.is_zero_at(i, j) {
                            assert_eq!(
                                a[i * n + j] + b[i * n + j],
                                0.0,
                                "add {sa} + {sb} claimed zero at ({i},{j})"
                            );
                        }
                    }
                }
                // multiplication
                let claimed = sa.mul(sb);
                for i in 0..n {
                    for j in 0..n {
                        if claimed.is_zero_at(i, j) {
                            let mut acc = 0.0;
                            for k in 0..n {
                                acc += a[i * n + k] * b[k * n + j];
                            }
                            assert_eq!(acc, 0.0, "mul {sa} * {sb} claimed zero at ({i},{j})");
                        }
                    }
                }
            }
        }
    }
}
