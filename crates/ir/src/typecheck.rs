//! Shape and well-formedness checking for LA programs.
//!
//! Checks performed:
//! * every operand reference resolves;
//! * `+`, `-`, `*` conform (with scalars acting as scaling factors);
//! * `/` and `sqrt` apply to scalars only;
//! * assignment left-hand sides are writable (`Out`/`InOut`) and their
//!   shapes match the right-hand side;
//! * HLAC equations are well-formed: the left side contains at least one
//!   output operand (the unknown), shapes conform, and inverses apply to
//!   square non-singular operands;
//! * `ow(..)` targets have identical shapes.

use crate::expr::{Expr, OpId};
use crate::program::{Program, Stmt};
use crate::shape::Shape;
use crate::LaError;

/// Infer the shape of `expr` against `program`'s operand table.
///
/// # Errors
///
/// Returns [`LaError::ShapeMismatch`] or [`LaError::NonScalarOp`] when the
/// expression is ill-formed.
pub fn infer_shape(program: &Program, expr: &Expr) -> Result<Shape, LaError> {
    match expr {
        Expr::Operand(id) => {
            if id.0 >= program.operands().len() {
                return Err(LaError::UnknownOperand(format!("{id}")));
            }
            Ok(program.operand(*id).shape)
        }
        Expr::Lit(_) => Ok(Shape::scalar()),
        Expr::Add(a, b) | Expr::Sub(a, b) => {
            let sa = infer_shape(program, a)?;
            let sb = infer_shape(program, b)?;
            sa.add(&sb).ok_or_else(|| LaError::ShapeMismatch {
                context: "addition".into(),
                left: sa,
                right: sb,
            })
        }
        Expr::Mul(a, b) => {
            let sa = infer_shape(program, a)?;
            let sb = infer_shape(program, b)?;
            sa.mul(&sb).ok_or_else(|| LaError::ShapeMismatch {
                context: "multiplication".into(),
                left: sa,
                right: sb,
            })
        }
        Expr::Neg(e) => infer_shape(program, e),
        Expr::Transpose(e) => Ok(infer_shape(program, e)?.transposed()),
        Expr::Inverse(e) => {
            let s = infer_shape(program, e)?;
            if !s.is_square() {
                return Err(LaError::InvalidHlac(format!("inverse of non-square {s} expression")));
            }
            Ok(s)
        }
        Expr::Div(a, b) => {
            let sa = infer_shape(program, a)?;
            let sb = infer_shape(program, b)?;
            if !sb.is_scalar() {
                return Err(LaError::NonScalarOp("division".into()));
            }
            // vector / scalar is allowed (element-wise), as produced by the
            // paper's rewrite rule R0; scalar / scalar is ordinary division.
            Ok(sa)
        }
        Expr::Sqrt(e) => {
            let s = infer_shape(program, e)?;
            if !s.is_scalar() {
                return Err(LaError::NonScalarOp("sqrt".into()));
            }
            Ok(s)
        }
    }
}

/// Validate a whole program. Called by [`Program`] constructors.
pub fn check(program: &Program) -> Result<(), LaError> {
    for (i, o) in program.operands().iter().enumerate() {
        if program.operands().iter().skip(i + 1).any(|p| p.name == o.name) {
            return Err(LaError::DuplicateOperand(o.name.clone()));
        }
        if let Some(target) = o.overwrites {
            if target.0 >= program.operands().len() {
                return Err(LaError::InvalidOverwrite(format!(
                    "`{}` overwrites undeclared operand",
                    o.name
                )));
            }
            let t = program.operand(target);
            if t.shape != o.shape {
                return Err(LaError::InvalidOverwrite(format!(
                    "`{}` ({}) overwrites `{}` ({}) of different shape",
                    o.name, o.shape, t.name, t.shape
                )));
            }
        }
    }
    // Operands carrying a value at entry are defined; `Out` operands become
    // defined by the statement that computes them.
    let mut defined: Vec<bool> =
        program.operands().iter().map(|o| o.io.readable_at_entry()).collect();
    check_stmts(program, program.statements(), &mut defined)
}

fn require_defined(
    program: &Program,
    defined: &[bool],
    expr: &Expr,
    context: &str,
) -> Result<(), LaError> {
    let mut err = None;
    expr.for_each_operand(&mut |id| {
        if !defined[id.0] && err.is_none() {
            err = Some(LaError::InvalidHlac(format!(
                "operand `{}` read in {context} before being computed",
                program.operand(id).name
            )));
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn check_stmts(program: &Program, stmts: &[Stmt], defined: &mut Vec<bool>) -> Result<(), LaError> {
    for stmt in stmts {
        match stmt {
            Stmt::Assign { lhs, rhs } => {
                if lhs.0 >= program.operands().len() {
                    return Err(LaError::UnknownOperand(format!("{lhs}")));
                }
                let decl = program.operand(*lhs);
                if !decl.io.writable() {
                    return Err(LaError::WriteToInput(decl.name.clone()));
                }
                let rs = infer_shape(program, rhs)?;
                if rs != decl.shape {
                    return Err(LaError::ShapeMismatch {
                        context: format!("assignment to {}", decl.name),
                        left: decl.shape,
                        right: rs,
                    });
                }
                require_defined(program, defined, rhs, "an sBLAC right-hand side")?;
                defined[lhs.0] = true;
            }
            Stmt::Equation { lhs, rhs } => {
                let ls = infer_shape(program, lhs)?;
                let rs = infer_shape(program, rhs)?;
                if ls != rs {
                    return Err(LaError::ShapeMismatch {
                        context: "equation".into(),
                        left: ls,
                        right: rs,
                    });
                }
                require_defined(program, defined, rhs, "an HLAC right-hand side")?;
                // Unknowns: writable left-hand operands not yet defined.
                // Already-computed outputs on the left act as known inputs
                // (e.g. `U` in the paper's `U' * B = P`).
                let unknowns = equation_unknowns(program, defined, lhs);
                if unknowns.is_empty() {
                    return Err(LaError::InvalidHlac(
                        "equation left-hand side contains no unknown output operand".into(),
                    ));
                }
                // Non-writable LHS operands must also be defined (they are).
                for id in unknowns {
                    defined[id.0] = true;
                }
            }
            Stmt::For { body, .. } => check_stmts(program, body, defined)?,
        }
    }
    Ok(())
}

/// The unknowns of an HLAC equation given the set of already-defined
/// operands: writable left-hand operands that have not been computed yet.
pub fn equation_unknowns(program: &Program, defined: &[bool], lhs: &Expr) -> Vec<OpId> {
    let mut unknowns = Vec::new();
    lhs.for_each_operand(&mut |id| {
        if program.operand(id).io.writable() && !defined[id.0] && !unknowns.contains(&id) {
            unknowns.push(id);
        }
    });
    unknowns
}

/// The set of operands written by a statement (LHS of assignments; output
/// operands appearing in equation left-hand sides).
pub fn written_operands(program: &Program, stmt: &Stmt) -> Vec<OpId> {
    let mut out = Vec::new();
    match stmt {
        Stmt::Assign { lhs, .. } => out.push(*lhs),
        Stmt::Equation { lhs, .. } => {
            lhs.for_each_operand(&mut |id| {
                if program.operand(id).io.writable() && !out.contains(&id) {
                    out.push(id);
                }
            });
        }
        Stmt::For { body, .. } => {
            for s in body {
                for id in written_operands(program, s) {
                    if !out.contains(&id) {
                        out.push(id);
                    }
                }
            }
        }
    }
    out
}

/// The set of operands read by a statement.
pub fn read_operands(program: &Program, stmt: &Stmt) -> Vec<OpId> {
    let mut out = Vec::new();
    let mut push = |id: OpId| {
        if !out.contains(&id) {
            out.push(id);
        }
    };
    match stmt {
        Stmt::Assign { rhs, .. } => rhs.for_each_operand(&mut push),
        Stmt::Equation { lhs, rhs } => {
            rhs.for_each_operand(&mut push);
            // Known operands on the LHS (e.g. the L in `L * x = b` once L is
            // computed) count as reads too.
            lhs.for_each_operand(&mut |id| {
                if !program.operand(id).io.writable() && !out.contains(&id) {
                    out.push(id);
                }
            });
        }
        Stmt::For { body, .. } => {
            for s in body {
                for id in read_operands(program, s) {
                    if !out.contains(&id) {
                        out.push(id);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{OperandDecl, ProgramBuilder};
    use crate::structure::{Properties, StorageHalf, Structure};

    fn kalman_fragment() -> ProgramBuilder {
        // Fig. 5 of the paper with k = 4, n = 8.
        let mut b = ProgramBuilder::new("kf_fragment");
        b.declare(OperandDecl::mat_in("H", 4, 8));
        b.declare(
            OperandDecl::mat_in("P", 4, 4)
                .with_structure(Structure::Symmetric(StorageHalf::Upper))
                .with_properties(Properties::pd()),
        );
        b.declare(
            OperandDecl::mat_in("R", 4, 4)
                .with_structure(Structure::Symmetric(StorageHalf::Upper))
                .with_properties(Properties::pd()),
        );
        b.declare(
            OperandDecl::mat_out("S", 4, 4)
                .with_structure(Structure::Symmetric(StorageHalf::Upper))
                .with_properties(Properties::pd()),
        );
        b.declare(
            OperandDecl::mat_out("U", 4, 4)
                .with_structure(Structure::UpperTriangular)
                .with_properties(Properties::ns()),
        );
        b.declare(OperandDecl::mat_out("B", 4, 4));
        b
    }

    #[test]
    fn kalman_fragment_checks() {
        let mut b = kalman_fragment();
        let h = b.lookup("H").unwrap();
        let r = b.lookup("R").unwrap();
        let s = b.lookup("S").unwrap();
        let u = b.lookup("U").unwrap();
        let bb = b.lookup("B").unwrap();
        let p = b.lookup("P").unwrap();
        b.assign(s, Expr::op(h).mul(Expr::op(h).t()).add(Expr::op(r)));
        b.equation(Expr::op(u).t().mul(Expr::op(u)), Expr::op(s));
        b.equation(Expr::op(u).t().mul(Expr::op(bb)), Expr::op(p));
        let program = b.build().unwrap();
        assert_eq!(program.statements().len(), 3);
        assert!(!program.statements()[0].is_hlac());
        assert!(program.statements()[1].is_hlac());
    }

    #[test]
    fn rejects_shape_mismatch_in_mul() {
        let mut b = ProgramBuilder::new("bad");
        let a = b.declare(OperandDecl::mat_in("A", 3, 4));
        let c = b.declare(OperandDecl::mat_out("C", 3, 3));
        b.assign(c, Expr::op(a).mul(Expr::op(a)));
        assert!(matches!(b.build(), Err(LaError::ShapeMismatch { .. })));
    }

    #[test]
    fn rejects_assignment_shape_mismatch() {
        let mut b = ProgramBuilder::new("bad");
        let a = b.declare(OperandDecl::mat_in("A", 3, 4));
        let c = b.declare(OperandDecl::mat_out("C", 3, 3));
        b.assign(c, Expr::op(a));
        assert!(matches!(b.build(), Err(LaError::ShapeMismatch { .. })));
    }

    #[test]
    fn rejects_vector_sqrt() {
        let mut b = ProgramBuilder::new("bad");
        let x = b.declare(OperandDecl::vec_in("x", 4));
        let y = b.declare(OperandDecl::vec_out("y", 4));
        b.assign(y, Expr::op(x).sqrt());
        assert!(matches!(b.build(), Err(LaError::NonScalarOp(_))));
    }

    #[test]
    fn rejects_matrix_division() {
        let mut b = ProgramBuilder::new("bad");
        let a = b.declare(OperandDecl::mat_in("A", 4, 4));
        let c = b.declare(OperandDecl::mat_out("C", 4, 4));
        b.assign(c, Expr::op(a).div(Expr::op(a)));
        assert!(matches!(b.build(), Err(LaError::NonScalarOp(_))));
    }

    #[test]
    fn allows_vector_by_scalar_division() {
        // Produced by the paper's rewrite rule R0: x = b / lambda.
        let mut b = ProgramBuilder::new("r0");
        let lam = b.declare(OperandDecl::sca_in("lambda"));
        let v = b.declare(OperandDecl::vec_in("b", 4));
        let x = b.declare(OperandDecl::vec_out("x", 4));
        b.assign(x, Expr::op(v).div(Expr::op(lam)));
        assert!(b.build().is_ok());
    }

    #[test]
    fn rejects_equation_without_unknown() {
        let mut b = ProgramBuilder::new("bad");
        let a = b.declare(OperandDecl::mat_in("A", 4, 4));
        let c = b.declare(OperandDecl::mat_in("C", 4, 4));
        b.equation(Expr::op(a), Expr::op(c));
        assert!(matches!(b.build(), Err(LaError::InvalidHlac(_))));
    }

    #[test]
    fn rejects_inverse_of_rectangular() {
        let mut b = ProgramBuilder::new("bad");
        let a = b.declare(OperandDecl::mat_in("A", 3, 4));
        let c = b.declare(OperandDecl::mat_out("C", 3, 4));
        b.assign(c, Expr::op(a).inv());
        assert!(matches!(b.build(), Err(LaError::InvalidHlac(_))));
    }

    #[test]
    fn rejects_bad_overwrite_shape() {
        let mut b = ProgramBuilder::new("bad");
        let s = b.declare(OperandDecl::mat_in("S", 4, 4));
        let mut u = OperandDecl::mat_out("U", 3, 3);
        u.overwrites = Some(s);
        let uid = b.declare(u);
        b.assign(uid, Expr::Lit(0.0).mul(Expr::op(uid)));
        assert!(matches!(b.build(), Err(LaError::InvalidOverwrite(_))));
    }

    #[test]
    fn read_write_sets() {
        let mut b = kalman_fragment();
        let h = b.lookup("H").unwrap();
        let r = b.lookup("R").unwrap();
        let s = b.lookup("S").unwrap();
        let u = b.lookup("U").unwrap();
        b.assign(s, Expr::op(h).mul(Expr::op(h).t()).add(Expr::op(r)));
        b.equation(Expr::op(u).t().mul(Expr::op(u)), Expr::op(s));
        let p = b.build().unwrap();
        assert_eq!(written_operands(&p, &p.statements()[0]), vec![s]);
        assert_eq!(read_operands(&p, &p.statements()[0]), vec![h, r]);
        assert_eq!(written_operands(&p, &p.statements()[1]), vec![u]);
        assert_eq!(read_operands(&p, &p.statements()[1]), vec![s]);
    }
}
