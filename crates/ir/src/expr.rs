//! Expression trees over declared operands.
//!
//! LA expressions combine operands with `+`, `-`, `*`, transposition, and —
//! on scalars only — division and square root. Explicit inverses appear only
//! in HLAC statements (`X = (A)^-1`) and are eliminated by the synthesis
//! stage.

// The expression-builder methods intentionally mirror the LA surface
// syntax (`a.add(b)`, `a.mul(b)`); they are not operator-trait impls.
#![allow(clippy::should_implement_trait)]

use crate::shape::Shape;
use std::fmt;

/// Index of an operand in its [`crate::Program`]'s operand table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub usize);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// An LA expression.
///
/// Construction helpers keep trees tidy (`Expr::add`, `Expr::mul`, ...). The
/// tree stores no shapes; shapes are recomputed by
/// [`crate::typecheck::infer_shape`] against a program's operand table.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A reference to a declared operand.
    Operand(OpId),
    /// A floating-point literal (scalar).
    Lit(f64),
    /// `lhs + rhs`.
    Add(Box<Expr>, Box<Expr>),
    /// `lhs - rhs`.
    Sub(Box<Expr>, Box<Expr>),
    /// `lhs * rhs` (matrix, matrix-vector, or scalar scaling).
    Mul(Box<Expr>, Box<Expr>),
    /// `-e`.
    Neg(Box<Expr>),
    /// `eᵀ`.
    Transpose(Box<Expr>),
    /// `e⁻¹` — HLAC-only; removed by synthesis.
    Inverse(Box<Expr>),
    /// Scalar division `lhs / rhs`.
    Div(Box<Expr>, Box<Expr>),
    /// Scalar square root `√e`.
    Sqrt(Box<Expr>),
}

impl Expr {
    /// An operand leaf.
    pub fn op(id: OpId) -> Expr {
        Expr::Operand(id)
    }

    /// `self + rhs`.
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }

    /// `-self`.
    pub fn neg(self) -> Expr {
        Expr::Neg(Box::new(self))
    }

    /// `selfᵀ`.
    pub fn t(self) -> Expr {
        Expr::Transpose(Box::new(self))
    }

    /// `self⁻¹`.
    pub fn inv(self) -> Expr {
        Expr::Inverse(Box::new(self))
    }

    /// `self / rhs` (scalars only; checked by the type checker).
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(rhs))
    }

    /// `√self` (scalars only; checked by the type checker).
    pub fn sqrt(self) -> Expr {
        Expr::Sqrt(Box::new(self))
    }

    /// Visit every operand reference in the expression.
    pub fn for_each_operand(&self, f: &mut impl FnMut(OpId)) {
        match self {
            Expr::Operand(id) => f(*id),
            Expr::Lit(_) => {}
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.for_each_operand(f);
                b.for_each_operand(f);
            }
            Expr::Neg(e) | Expr::Transpose(e) | Expr::Inverse(e) | Expr::Sqrt(e) => {
                e.for_each_operand(f)
            }
        }
    }

    /// All distinct operands referenced, in first-occurrence order.
    pub fn operands(&self) -> Vec<OpId> {
        let mut seen = Vec::new();
        self.for_each_operand(&mut |id| {
            if !seen.contains(&id) {
                seen.push(id);
            }
        });
        seen
    }

    /// Whether the expression contains an [`Expr::Inverse`] node.
    pub fn contains_inverse(&self) -> bool {
        match self {
            Expr::Inverse(_) => true,
            Expr::Operand(_) | Expr::Lit(_) => false,
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.contains_inverse() || b.contains_inverse()
            }
            Expr::Neg(e) | Expr::Transpose(e) | Expr::Sqrt(e) => e.contains_inverse(),
        }
    }

    /// Whether the expression is a bare operand, possibly transposed.
    pub fn as_plain_operand(&self) -> Option<(OpId, bool)> {
        match self {
            Expr::Operand(id) => Some((*id, false)),
            Expr::Transpose(inner) => match inner.as_ref() {
                Expr::Operand(id) => Some((*id, true)),
                _ => None,
            },
            _ => None,
        }
    }

    /// Number of nodes in the tree (a crude size metric used by tests and
    /// the autotuner's tie-breaking).
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Operand(_) | Expr::Lit(_) => 1,
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                1 + a.node_count() + b.node_count()
            }
            Expr::Neg(e) | Expr::Transpose(e) | Expr::Inverse(e) | Expr::Sqrt(e) => {
                1 + e.node_count()
            }
        }
    }

    /// Rewrite operand references with `f` (used when splicing programs).
    pub fn map_operands(&self, f: &impl Fn(OpId) -> OpId) -> Expr {
        match self {
            Expr::Operand(id) => Expr::Operand(f(*id)),
            Expr::Lit(v) => Expr::Lit(*v),
            Expr::Add(a, b) => Expr::Add(Box::new(a.map_operands(f)), Box::new(b.map_operands(f))),
            Expr::Sub(a, b) => Expr::Sub(Box::new(a.map_operands(f)), Box::new(b.map_operands(f))),
            Expr::Mul(a, b) => Expr::Mul(Box::new(a.map_operands(f)), Box::new(b.map_operands(f))),
            Expr::Div(a, b) => Expr::Div(Box::new(a.map_operands(f)), Box::new(b.map_operands(f))),
            Expr::Neg(e) => Expr::Neg(Box::new(e.map_operands(f))),
            Expr::Transpose(e) => Expr::Transpose(Box::new(e.map_operands(f))),
            Expr::Inverse(e) => Expr::Inverse(Box::new(e.map_operands(f))),
            Expr::Sqrt(e) => Expr::Sqrt(Box::new(e.map_operands(f))),
        }
    }
}

/// Render an expression with operand names resolved through `names`.
pub fn display_expr(expr: &Expr, names: &dyn Fn(OpId) -> String) -> String {
    fn prec(e: &Expr) -> u8 {
        match e {
            Expr::Add(..) | Expr::Sub(..) => 1,
            Expr::Mul(..) | Expr::Div(..) => 2,
            Expr::Neg(..) => 3,
            _ => 4,
        }
    }
    fn go(e: &Expr, names: &dyn Fn(OpId) -> String, parent: u8, out: &mut String) {
        let p = prec(e);
        let paren = p < parent;
        if paren {
            out.push('(');
        }
        match e {
            Expr::Operand(id) => out.push_str(&names(*id)),
            Expr::Lit(v) => out.push_str(&format!("{v}")),
            Expr::Add(a, b) => {
                go(a, names, p, out);
                out.push_str(" + ");
                go(b, names, p + 1, out);
            }
            Expr::Sub(a, b) => {
                go(a, names, p, out);
                out.push_str(" - ");
                go(b, names, p + 1, out);
            }
            Expr::Mul(a, b) => {
                go(a, names, p, out);
                out.push_str(" * ");
                go(b, names, p + 1, out);
            }
            Expr::Div(a, b) => {
                go(a, names, p, out);
                out.push_str(" / ");
                go(b, names, p + 1, out);
            }
            Expr::Neg(a) => {
                out.push('-');
                go(a, names, p, out);
            }
            Expr::Transpose(a) => {
                go(a, names, 4, out);
                out.push('\'');
            }
            Expr::Inverse(a) => {
                out.push_str("inv(");
                go(a, names, 0, out);
                out.push(')');
            }
            Expr::Sqrt(a) => {
                out.push_str("sqrt(");
                go(a, names, 0, out);
                out.push(')');
            }
        }
        if paren {
            out.push(')');
        }
    }
    let mut out = String::new();
    go(expr, names, 0, &mut out);
    out
}

/// A shape-annotated view used by consumers that need both. Constructed by
/// the type checker.
#[derive(Debug, Clone, PartialEq)]
pub struct TypedExpr {
    /// The expression.
    pub expr: Expr,
    /// Its inferred shape.
    pub shape: Shape,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(id: OpId) -> String {
        ["A", "B", "C", "x", "y", "a"][id.0].to_string()
    }

    #[test]
    fn builder_helpers_produce_expected_trees() {
        let e = Expr::op(OpId(0)).mul(Expr::op(OpId(1)).t()).add(Expr::op(OpId(2)));
        assert_eq!(
            e,
            Expr::Add(
                Box::new(Expr::Mul(
                    Box::new(Expr::Operand(OpId(0))),
                    Box::new(Expr::Transpose(Box::new(Expr::Operand(OpId(1)))))
                )),
                Box::new(Expr::Operand(OpId(2)))
            )
        );
    }

    #[test]
    fn display_respects_precedence() {
        let e = Expr::op(OpId(0)).add(Expr::op(OpId(1))).mul(Expr::op(OpId(2)));
        assert_eq!(display_expr(&e, &names), "(A + B) * C");
        let e = Expr::op(OpId(0)).mul(Expr::op(OpId(1)).add(Expr::op(OpId(2))));
        assert_eq!(display_expr(&e, &names), "A * (B + C)");
        let e = Expr::op(OpId(0)).t().mul(Expr::op(OpId(3)));
        assert_eq!(display_expr(&e, &names), "A' * x");
        let e = Expr::op(OpId(0)).sub(Expr::op(OpId(1)).sub(Expr::op(OpId(2))));
        assert_eq!(display_expr(&e, &names), "A - (B - C)");
    }

    #[test]
    fn operand_collection_dedups_in_order() {
        let e = Expr::op(OpId(2)).mul(Expr::op(OpId(0))).add(Expr::op(OpId(2)));
        assert_eq!(e.operands(), vec![OpId(2), OpId(0)]);
    }

    #[test]
    fn inverse_detection() {
        let e = Expr::op(OpId(0)).mul(Expr::op(OpId(1)).inv());
        assert!(e.contains_inverse());
        let e = Expr::op(OpId(0)).mul(Expr::op(OpId(1)));
        assert!(!e.contains_inverse());
    }

    #[test]
    fn plain_operand_views() {
        assert_eq!(Expr::op(OpId(1)).as_plain_operand(), Some((OpId(1), false)));
        assert_eq!(Expr::op(OpId(1)).t().as_plain_operand(), Some((OpId(1), true)));
        assert_eq!(Expr::op(OpId(1)).t().t().as_plain_operand(), None);
        assert_eq!(Expr::op(OpId(0)).add(Expr::op(OpId(1))).as_plain_operand(), None);
    }

    #[test]
    fn map_operands_relabels() {
        let e = Expr::op(OpId(0)).mul(Expr::op(OpId(1)));
        let shifted = e.map_operands(&|id| OpId(id.0 + 3));
        assert_eq!(shifted.operands(), vec![OpId(3), OpId(4)]);
    }

    #[test]
    fn node_count() {
        let e = Expr::op(OpId(0)).mul(Expr::op(OpId(1)).t()).add(Expr::op(OpId(2)));
        assert_eq!(e.node_count(), 6);
    }
}
