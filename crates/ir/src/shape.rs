//! Fixed operand shapes.
//!
//! SLinGen targets computations on *fixed-size* operands: every dimension is
//! a concrete `usize` known at generation time. Vectors are column vectors
//! (`n × 1`), scalars are `1 × 1`.

use std::fmt;

/// The shape (rows × columns) of an operand or expression.
///
/// ```
/// use slingen_ir::Shape;
/// let a = Shape::matrix(3, 4);
/// let b = Shape::matrix(4, 2);
/// assert_eq!(a.mul(&b), Some(Shape::matrix(3, 2)));
/// assert_eq!(a.transposed(), Shape::matrix(4, 3));
/// assert!(Shape::scalar().is_scalar());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Shape {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl Shape {
    /// A general `rows × cols` matrix shape.
    pub fn matrix(rows: usize, cols: usize) -> Self {
        Shape { rows, cols }
    }

    /// A column vector of length `n` (shape `n × 1`).
    pub fn vector(n: usize) -> Self {
        Shape { rows: n, cols: 1 }
    }

    /// The scalar shape `1 × 1`.
    pub fn scalar() -> Self {
        Shape { rows: 1, cols: 1 }
    }

    /// Whether this shape is `1 × 1`.
    pub fn is_scalar(&self) -> bool {
        self.rows == 1 && self.cols == 1
    }

    /// Whether this shape is a column or row vector (but not a scalar).
    pub fn is_vector(&self) -> bool {
        !self.is_scalar() && (self.rows == 1 || self.cols == 1)
    }

    /// Whether the shape is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the shape has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shape of the transpose.
    pub fn transposed(&self) -> Shape {
        Shape { rows: self.cols, cols: self.rows }
    }

    /// Shape of the sum `self + other`, if conformable.
    ///
    /// Scalars broadcast with scalars only: LA has no implicit broadcasting.
    pub fn add(&self, other: &Shape) -> Option<Shape> {
        if self == other {
            Some(*self)
        } else {
            None
        }
    }

    /// Shape of the product `self * other`, if conformable.
    ///
    /// Scalar operands act as scaling factors on either side.
    pub fn mul(&self, other: &Shape) -> Option<Shape> {
        if self.is_scalar() {
            Some(*other)
        } else if other.is_scalar() {
            Some(*self)
        } else if self.cols == other.rows {
            Some(Shape { rows: self.rows, cols: other.cols })
        } else {
            None
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_vector_matrix_classification() {
        assert!(Shape::scalar().is_scalar());
        assert!(!Shape::scalar().is_vector());
        assert!(Shape::vector(5).is_vector());
        assert!(!Shape::vector(5).is_scalar());
        assert!(Shape::matrix(1, 7).is_vector());
        assert!(!Shape::matrix(3, 4).is_vector());
        assert!(Shape::matrix(4, 4).is_square());
        assert!(!Shape::matrix(3, 4).is_square());
    }

    #[test]
    fn add_requires_equal_shapes() {
        let a = Shape::matrix(3, 4);
        assert_eq!(a.add(&Shape::matrix(3, 4)), Some(a));
        assert_eq!(a.add(&Shape::matrix(4, 3)), None);
    }

    #[test]
    fn mul_conformability() {
        let a = Shape::matrix(3, 4);
        let b = Shape::matrix(4, 2);
        assert_eq!(a.mul(&b), Some(Shape::matrix(3, 2)));
        assert_eq!(b.mul(&a), None);
        // Scalars scale anything.
        assert_eq!(Shape::scalar().mul(&a), Some(a));
        assert_eq!(a.mul(&Shape::scalar()), Some(a));
    }

    #[test]
    fn transpose_swaps_dims() {
        assert_eq!(Shape::matrix(3, 4).transposed(), Shape::matrix(4, 3));
        assert_eq!(Shape::vector(5).transposed(), Shape::matrix(1, 5));
    }

    #[test]
    fn display() {
        assert_eq!(Shape::matrix(3, 4).to_string(), "3x4");
    }
}
