//! LA programs: operand declarations plus a statement sequence.

use crate::expr::{display_expr, Expr, OpId};
use crate::shape::Shape;
use crate::structure::{Properties, Structure};
use crate::LaError;
use std::fmt;

/// Input/output classification of a declared operand (paper Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoType {
    /// Read-only input.
    In,
    /// Output computed by the program.
    Out,
    /// Both read as input and overwritten (`InOut`).
    InOut,
}

impl IoType {
    /// Whether statements may write this operand.
    pub fn writable(self) -> bool {
        !matches!(self, IoType::In)
    }

    /// Whether the operand carries an initial value at entry.
    pub fn readable_at_entry(self) -> bool {
        !matches!(self, IoType::Out)
    }
}

impl fmt::Display for IoType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IoType::In => "In",
            IoType::Out => "Out",
            IoType::InOut => "InOut",
        })
    }
}

/// A declared operand: scalar, vector, or matrix of fixed size.
#[derive(Debug, Clone, PartialEq)]
pub struct OperandDecl {
    /// Source-level name.
    pub name: String,
    /// Fixed shape (vectors are `n × 1`, scalars `1 × 1`).
    pub shape: Shape,
    /// Matrix structure (always `General` for vectors/scalars).
    pub structure: Structure,
    /// PD/NS/UnitDiag properties.
    pub properties: Properties,
    /// Input/output classification.
    pub io: IoType,
    /// `ow(X)`: this output shares storage with operand `X`.
    pub overwrites: Option<OpId>,
}

impl OperandDecl {
    /// A general input matrix.
    pub fn mat_in(name: &str, rows: usize, cols: usize) -> Self {
        OperandDecl {
            name: name.to_string(),
            shape: Shape::matrix(rows, cols),
            structure: Structure::General,
            properties: Properties::none(),
            io: IoType::In,
            overwrites: None,
        }
    }

    /// A general output matrix.
    pub fn mat_out(name: &str, rows: usize, cols: usize) -> Self {
        OperandDecl { io: IoType::Out, ..Self::mat_in(name, rows, cols) }
    }

    /// An input column vector.
    pub fn vec_in(name: &str, n: usize) -> Self {
        OperandDecl {
            name: name.to_string(),
            shape: Shape::vector(n),
            structure: Structure::General,
            properties: Properties::none(),
            io: IoType::In,
            overwrites: None,
        }
    }

    /// An output column vector.
    pub fn vec_out(name: &str, n: usize) -> Self {
        OperandDecl { io: IoType::Out, ..Self::vec_in(name, n) }
    }

    /// An input scalar.
    pub fn sca_in(name: &str) -> Self {
        OperandDecl {
            name: name.to_string(),
            shape: Shape::scalar(),
            structure: Structure::General,
            properties: Properties::none(),
            io: IoType::In,
            overwrites: None,
        }
    }

    /// An output scalar.
    pub fn sca_out(name: &str) -> Self {
        OperandDecl { io: IoType::Out, ..Self::sca_in(name) }
    }

    /// Set the structure (builder style).
    pub fn with_structure(mut self, s: Structure) -> Self {
        self.structure = s;
        self
    }

    /// Set the properties (builder style).
    pub fn with_properties(mut self, p: Properties) -> Self {
        self.properties = p;
        self
    }

    /// Set the IO type (builder style).
    pub fn with_io(mut self, io: IoType) -> Self {
        self.io = io;
        self
    }
}

/// A statement of an LA program.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// An sBLAC (or auxiliary scalar computation): `lhs = expr`.
    Assign {
        /// The written operand.
        lhs: OpId,
        /// The right-hand side.
        rhs: Expr,
    },
    /// An HLAC: an equation whose left side is an expression containing the
    /// unknown (e.g. `U' * U = S`), or an assignment whose right side uses
    /// an explicit inverse.
    Equation {
        /// Left-hand side (contains the unknown output operand).
        lhs: Expr,
        /// Right-hand side (fully known when the statement executes).
        rhs: Expr,
    },
    /// A counted loop over a statement body. The LA surface language allows
    /// loops whose bodies access operands uniformly; iteration-dependent
    /// indexing stays internal to the synthesis engine, as in the paper's
    /// examples.
    For {
        /// Number of iterations.
        count: usize,
        /// Loop body.
        body: Vec<Stmt>,
    },
}

impl Stmt {
    /// Whether this statement is an HLAC (needs the synthesis stage).
    pub fn is_hlac(&self) -> bool {
        match self {
            Stmt::Assign { rhs, .. } => rhs.contains_inverse(),
            Stmt::Equation { .. } => true,
            Stmt::For { body, .. } => body.iter().any(Stmt::is_hlac),
        }
    }
}

/// A validated LA program.
///
/// Construct with [`ProgramBuilder`] or [`crate::parse::Parser`]; both run
/// the type checker before returning.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    name: String,
    operands: Vec<OperandDecl>,
    statements: Vec<Stmt>,
}

impl Program {
    pub(crate) fn from_parts(
        name: String,
        operands: Vec<OperandDecl>,
        statements: Vec<Stmt>,
    ) -> Result<Self, LaError> {
        let program = Program { name, operands, statements };
        crate::typecheck::check(&program)?;
        Ok(program)
    }

    /// The program's name (used for the generated C function).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operand table.
    pub fn operands(&self) -> &[OperandDecl] {
        &self.operands
    }

    /// The statement sequence.
    pub fn statements(&self) -> &[Stmt] {
        &self.statements
    }

    /// Look up an operand declaration.
    pub fn operand(&self, id: OpId) -> &OperandDecl {
        &self.operands[id.0]
    }

    /// Find an operand by name.
    pub fn find(&self, name: &str) -> Option<OpId> {
        self.operands.iter().position(|o| o.name == name).map(OpId)
    }

    /// Operands that are program inputs (`In` or `InOut`).
    pub fn inputs(&self) -> impl Iterator<Item = (OpId, &OperandDecl)> {
        self.operands
            .iter()
            .enumerate()
            .filter(|(_, o)| o.io.readable_at_entry())
            .map(|(i, o)| (OpId(i), o))
    }

    /// Operands that are program outputs (`Out` or `InOut`).
    pub fn outputs(&self) -> impl Iterator<Item = (OpId, &OperandDecl)> {
        self.operands.iter().enumerate().filter(|(_, o)| o.io.writable()).map(|(i, o)| (OpId(i), o))
    }

    /// Render `expr` with this program's operand names.
    pub fn render_expr(&self, expr: &Expr) -> String {
        display_expr(expr, &|id: OpId| self.operands[id.0].name.clone())
    }

    /// Total flop estimate for one execution, counting 2·m·n·k per `m×k` by
    /// `k×n` product, m·n per addition, and structure-aware discounts. Used
    /// for reporting performance in flops/cycle.
    pub fn statement_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::For { count: c, body } => c * count(body),
                    _ => 1,
                })
                .sum()
        }
        count(&self.statements)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program {} {{", self.name)?;
        for o in &self.operands {
            let kind = if o.shape.is_scalar() {
                "Sca".to_string()
            } else if o.shape.cols == 1 {
                format!("Vec ..({})", o.shape.rows)
            } else {
                format!("Mat ..({}, {})", o.shape.rows, o.shape.cols)
            };
            writeln!(f, "  {kind} {} <{}, {}, {}>;", o.name, o.io, o.structure, o.properties)?;
        }
        fn fmt_stmts(
            p: &Program,
            stmts: &[Stmt],
            indent: usize,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            for s in stmts {
                match s {
                    Stmt::Assign { lhs, rhs } => writeln!(
                        f,
                        "{:indent$}{} = {};",
                        "",
                        p.operand(*lhs).name,
                        p.render_expr(rhs),
                        indent = indent
                    )?,
                    Stmt::Equation { lhs, rhs } => writeln!(
                        f,
                        "{:indent$}{} = {};",
                        "",
                        p.render_expr(lhs),
                        p.render_expr(rhs),
                        indent = indent
                    )?,
                    Stmt::For { count, body } => {
                        writeln!(f, "{:indent$}for (i = 0:{count}) {{", "", indent = indent)?;
                        fmt_stmts(p, body, indent + 2, f)?;
                        writeln!(f, "{:indent$}}}", "", indent = indent)?;
                    }
                }
            }
            Ok(())
        }
        fmt_stmts(self, &self.statements, 2, f)?;
        writeln!(f, "}}")
    }
}

/// Incremental construction of LA programs from Rust code (the programmatic
/// alternative to the text parser).
///
/// ```
/// use slingen_ir::{ProgramBuilder, OperandDecl, Expr, Structure, Properties};
///
/// let mut b = ProgramBuilder::new("axpy_like");
/// let alpha = b.declare(OperandDecl::sca_in("alpha"));
/// let x = b.declare(OperandDecl::vec_in("x", 8));
/// let y = b.declare(OperandDecl::vec_out("y", 8));
/// b.assign(y, Expr::op(alpha).mul(Expr::op(x)));
/// let program = b.build()?;
/// assert_eq!(program.statements().len(), 1);
/// # Ok::<(), slingen_ir::LaError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    operands: Vec<OperandDecl>,
    statements: Vec<Stmt>,
}

impl ProgramBuilder {
    /// Start a new program.
    pub fn new(name: &str) -> Self {
        ProgramBuilder { name: name.to_string(), operands: Vec::new(), statements: Vec::new() }
    }

    /// Declare an operand and return its id.
    pub fn declare(&mut self, decl: OperandDecl) -> OpId {
        self.operands.push(decl);
        OpId(self.operands.len() - 1)
    }

    /// Append an sBLAC `lhs = rhs`.
    pub fn assign(&mut self, lhs: OpId, rhs: Expr) -> &mut Self {
        self.statements.push(Stmt::Assign { lhs, rhs });
        self
    }

    /// Append an HLAC equation `lhs = rhs` (unknown on the left).
    pub fn equation(&mut self, lhs: Expr, rhs: Expr) -> &mut Self {
        self.statements.push(Stmt::Equation { lhs, rhs });
        self
    }

    /// Append a pre-built statement.
    pub fn push(&mut self, stmt: Stmt) -> &mut Self {
        self.statements.push(stmt);
        self
    }

    /// Resolve an operand by name.
    pub fn lookup(&self, name: &str) -> Option<OpId> {
        self.operands.iter().position(|o| o.name == name).map(OpId)
    }

    /// Validate and produce the [`Program`].
    ///
    /// # Errors
    ///
    /// Returns any [`LaError`] produced by the type checker (shape
    /// mismatches, writes to inputs, malformed HLACs, ...).
    pub fn build(self) -> Result<Program, LaError> {
        Program::from_parts(self.name, self.operands, self.statements)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_and_checks() {
        let mut b = ProgramBuilder::new("t");
        let a = b.declare(OperandDecl::mat_in("A", 4, 4));
        let c = b.declare(OperandDecl::mat_out("C", 4, 4));
        b.assign(c, Expr::op(a).mul(Expr::op(a).t()));
        let p = b.build().unwrap();
        assert_eq!(p.name(), "t");
        assert_eq!(p.operands().len(), 2);
        assert_eq!(p.find("A"), Some(OpId(0)));
        assert_eq!(p.find("missing"), None);
        assert_eq!(p.inputs().count(), 1);
        assert_eq!(p.outputs().count(), 1);
    }

    #[test]
    fn builder_rejects_write_to_input() {
        let mut b = ProgramBuilder::new("bad");
        let a = b.declare(OperandDecl::mat_in("A", 4, 4));
        let x = b.declare(OperandDecl::mat_in("X", 4, 4));
        b.assign(a, Expr::op(x));
        assert!(matches!(b.build(), Err(LaError::WriteToInput(_))));
    }

    #[test]
    fn hlac_detection() {
        let mut b = ProgramBuilder::new("h");
        let s = b.declare(
            OperandDecl::mat_in("S", 4, 4)
                .with_structure(Structure::Symmetric(crate::structure::StorageHalf::Upper))
                .with_properties(Properties::pd()),
        );
        let u = b.declare(
            OperandDecl::mat_out("U", 4, 4)
                .with_structure(Structure::UpperTriangular)
                .with_properties(Properties::ns()),
        );
        b.equation(Expr::op(u).t().mul(Expr::op(u)), Expr::op(s));
        let p = b.build().unwrap();
        assert!(p.statements()[0].is_hlac());
    }

    #[test]
    fn statement_count_includes_loops() {
        let mut b = ProgramBuilder::new("l");
        let a = b.declare(OperandDecl::mat_in("A", 2, 2));
        let c = b.declare(OperandDecl::mat_out("C", 2, 2));
        b.push(Stmt::For {
            count: 3,
            body: vec![Stmt::Assign { lhs: c, rhs: Expr::op(a).add(Expr::op(c)) }],
        });
        // InOut needed for C since it is read in the loop body; rebuild.
        let mut b2 = ProgramBuilder::new("l");
        let a2 = b2.declare(OperandDecl::mat_in("A", 2, 2));
        let c2 = b2.declare(OperandDecl::mat_out("C", 2, 2).with_io(IoType::InOut));
        b2.push(Stmt::For {
            count: 3,
            body: vec![Stmt::Assign { lhs: c2, rhs: Expr::op(a2).add(Expr::op(c2)) }],
        });
        let p = b2.build().unwrap();
        assert_eq!(p.statement_count(), 3);
        let _ = (a, b);
    }

    #[test]
    fn display_round_trips_names() {
        let mut b = ProgramBuilder::new("show");
        let a = b.declare(OperandDecl::mat_in("A", 4, 4));
        let c = b.declare(OperandDecl::mat_out("C", 4, 4));
        b.assign(c, Expr::op(a).t().mul(Expr::op(a)));
        let p = b.build().unwrap();
        let text = p.to_string();
        assert!(text.contains("C = A' * A;"), "got: {text}");
    }
}
