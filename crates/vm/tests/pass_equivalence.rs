//! Property-based validation of the Stage-3 optimization pipeline: for
//! randomized straight-line C-IR programs, `optimize` must preserve VM
//! semantics exactly, at every pass configuration.

use proptest::prelude::*;
use slingen_cir::passes::{optimize, PassConfig};
use slingen_cir::{Affine, BinOp, BufKind, FunctionBuilder, MemRef};
use slingen_vm::{BufferSet, NullMonitor};

/// A tiny random program: a sequence of ops over two 16-element buffers
/// and a small register pool, with loops sprinkled in.
#[derive(Debug, Clone)]
enum Op {
    Load { buf: u8, off: u8 },
    Store { buf: u8, off: u8, reg: u8 },
    Bin { op: u8, a: u8, b: u8 },
    Sqrt { a: u8 },
    VLoad { buf: u8, off: u8, masked: bool },
    VStore { buf: u8, off: u8, vreg: u8 },
    VBin { op: u8, a: u8, b: u8 },
    Bcast { a: u8 },
    Loop { body_len: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..2u8, 0..12u8).prop_map(|(buf, off)| Op::Load { buf, off }),
        (0..2u8, 0..12u8, 0..6u8).prop_map(|(buf, off, reg)| Op::Store { buf, off, reg }),
        (0..3u8, 0..6u8, 0..6u8).prop_map(|(op, a, b)| Op::Bin { op, a, b }),
        (0..6u8,).prop_map(|(a,)| Op::Sqrt { a }),
        (0..2u8, 0..12u8, any::<bool>()).prop_map(|(buf, off, masked)| Op::VLoad {
            buf,
            off,
            masked
        }),
        (0..2u8, 0..12u8, 0..4u8).prop_map(|(buf, off, vreg)| Op::VStore { buf, off, vreg }),
        (0..3u8, 0..4u8, 0..4u8).prop_map(|(op, a, b)| Op::VBin { op, a, b }),
        (0..6u8,).prop_map(|(a,)| Op::Bcast { a }),
        (1..4u8,).prop_map(|(body_len,)| Op::Loop { body_len }),
    ]
}

fn build(ops: &[Op]) -> slingen_cir::Function {
    let mut b = FunctionBuilder::new("rand", 4);
    let bufs = [
        b.buffer("x", 16, BufKind::ParamInOut),
        b.buffer("y", 16, BufKind::ParamInOut),
    ];
    // seed registers so all indices are defined
    let mut sregs = Vec::new();
    for i in 0..6 {
        sregs.push(b.smov(1.0 + i as f64 * 0.25));
    }
    let mut vregs = Vec::new();
    for i in 0..4 {
        vregs.push(b.vbroadcast(0.5 + i as f64 * 0.5));
    }
    let binop = |o: u8| match o {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        _ => BinOp::Mul,
    };
    let mut i = 0;
    while i < ops.len() {
        match ops[i] {
            Op::Load { buf, off } => {
                let r = b.sload(MemRef::new(bufs[buf as usize], off as i64));
                sregs[(off % 6) as usize] = r;
            }
            Op::Store { buf, off, reg } => {
                b.sstore(sregs[reg as usize], MemRef::new(bufs[buf as usize], off as i64));
            }
            Op::Bin { op, a, b: bb } => {
                let r = b.sbin(binop(op), sregs[a as usize], sregs[bb as usize]);
                sregs[(a % 6) as usize] = r;
            }
            Op::Sqrt { a } => {
                // keep the domain positive: square first
                let sq = b.sbin(BinOp::Mul, sregs[a as usize], sregs[a as usize]);
                let r = b.ssqrt(sq);
                sregs[(a % 6) as usize] = r;
            }
            Op::VLoad { buf, off, masked } => {
                let lanes = if masked {
                    vec![Some(0), Some(1), None, Some(3)]
                } else {
                    vec![Some(0), Some(1), Some(2), Some(3)]
                };
                let v = b.vload(MemRef::new(bufs[buf as usize], off as i64), lanes);
                vregs[(off % 4) as usize] = v;
            }
            Op::VStore { buf, off, vreg } => {
                b.vstore_contig(vregs[vreg as usize], MemRef::new(bufs[buf as usize], off as i64));
            }
            Op::VBin { op, a, b: bb } => {
                let v = b.vbin(binop(op), vregs[a as usize], vregs[bb as usize]);
                vregs[(a % 4) as usize] = v;
            }
            Op::Bcast { a } => {
                let v = b.vbroadcast(sregs[a as usize]);
                vregs[(a % 4) as usize] = v;
            }
            Op::Loop { body_len } => {
                let lv = b.begin_for(0, 3, 1);
                let take = (body_len as usize).min(ops.len() - i - 1);
                for op in &ops[i + 1..i + 1 + take] {
                    if let Op::Store { buf, off, reg } = op {
                        let addr = MemRef::new(
                            bufs[*buf as usize],
                            Affine::var(lv).plus(&Affine::constant(*off as i64 % 8)),
                        );
                        b.sstore(sregs[*reg as usize], addr);
                    }
                }
                b.end_for();
                i += take;
            }
        }
        i += 1;
    }
    b.finish()
}

fn run(f: &slingen_cir::Function) -> (Vec<f64>, Vec<f64>) {
    let mut bufs = BufferSet::for_function(f);
    let x: Vec<f64> = (0..16).map(|i| (i as f64) * 0.3 - 2.0).collect();
    let y: Vec<f64> = (0..16).map(|i| 5.0 - (i as f64) * 0.7).collect();
    bufs.set(slingen_cir::BufId(0), &x);
    bufs.set(slingen_cir::BufId(1), &y);
    slingen_vm::execute(f, &mut bufs, &mut NullMonitor).unwrap();
    (
        bufs.get(slingen_cir::BufId(0)).to_vec(),
        bufs.get(slingen_cir::BufId(1)).to_vec(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn optimize_preserves_semantics(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let f0 = build(&ops);
        let baseline = run(&f0);
        for config in [PassConfig::default(), PassConfig::minimal(), PassConfig {
            load_store_analysis: true,
            scalar_replacement: false,
            cse: false,
            iterations: 1,
            unroll_budget: 1 << 12,
        }] {
            let mut f = f0.clone();
            optimize(&mut f, &config);
            let got = run(&f);
            prop_assert_eq!(&got.0, &baseline.0, "buffer x differs under {:?}", config);
            prop_assert_eq!(&got.1, &baseline.1, "buffer y differs under {:?}", config);
        }
    }
}
