//! Property-based validation of the Stage-3 optimization pipeline: for
//! randomized straight-line C-IR programs, `optimize` must preserve VM
//! semantics exactly, at every pass configuration.

use proptest::prelude::*;
use slingen_cir::passes::{optimize, PassConfig};
use slingen_cir::{Affine, BinOp, BufKind, FunctionBuilder, MemRef};
use slingen_vm::{BufferSet, NullMonitor};

/// A tiny random program: a sequence of ops over two 16-element buffers
/// and a small register pool, with loops sprinkled in.
#[derive(Debug, Clone)]
enum Op {
    Load { buf: u8, off: u8 },
    Store { buf: u8, off: u8, reg: u8 },
    Bin { op: u8, a: u8, b: u8 },
    Sqrt { a: u8 },
    VLoad { buf: u8, off: u8, masked: bool },
    VStore { buf: u8, off: u8, vreg: u8 },
    VBin { op: u8, a: u8, b: u8 },
    Bcast { a: u8 },
    Loop { body_len: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..2u8, 0..12u8).prop_map(|(buf, off)| Op::Load { buf, off }),
        (0..2u8, 0..12u8, 0..6u8).prop_map(|(buf, off, reg)| Op::Store { buf, off, reg }),
        (0..3u8, 0..6u8, 0..6u8).prop_map(|(op, a, b)| Op::Bin { op, a, b }),
        (0..6u8,).prop_map(|(a,)| Op::Sqrt { a }),
        (0..2u8, 0..12u8, any::<bool>()).prop_map(|(buf, off, masked)| Op::VLoad {
            buf,
            off,
            masked
        }),
        (0..2u8, 0..12u8, 0..4u8).prop_map(|(buf, off, vreg)| Op::VStore { buf, off, vreg }),
        (0..3u8, 0..4u8, 0..4u8).prop_map(|(op, a, b)| Op::VBin { op, a, b }),
        (0..6u8,).prop_map(|(a,)| Op::Bcast { a }),
        (1..4u8,).prop_map(|(body_len,)| Op::Loop { body_len }),
    ]
}

fn build(ops: &[Op]) -> slingen_cir::Function {
    let mut b = FunctionBuilder::new("rand", 4);
    let bufs = [b.buffer("x", 16, BufKind::ParamInOut), b.buffer("y", 16, BufKind::ParamInOut)];
    // seed registers so all indices are defined
    let mut sregs = Vec::new();
    for i in 0..6 {
        sregs.push(b.smov(1.0 + i as f64 * 0.25));
    }
    let mut vregs = Vec::new();
    for i in 0..4 {
        vregs.push(b.vbroadcast(0.5 + i as f64 * 0.5));
    }
    let binop = |o: u8| match o {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        _ => BinOp::Mul,
    };
    let mut i = 0;
    while i < ops.len() {
        match ops[i] {
            Op::Load { buf, off } => {
                let r = b.sload(MemRef::new(bufs[buf as usize], off as i64));
                sregs[(off % 6) as usize] = r;
            }
            Op::Store { buf, off, reg } => {
                b.sstore(sregs[reg as usize], MemRef::new(bufs[buf as usize], off as i64));
            }
            Op::Bin { op, a, b: bb } => {
                let r = b.sbin(binop(op), sregs[a as usize], sregs[bb as usize]);
                sregs[(a % 6) as usize] = r;
            }
            Op::Sqrt { a } => {
                // keep the domain positive: square first
                let sq = b.sbin(BinOp::Mul, sregs[a as usize], sregs[a as usize]);
                let r = b.ssqrt(sq);
                sregs[(a % 6) as usize] = r;
            }
            Op::VLoad { buf, off, masked } => {
                let lanes = if masked {
                    vec![Some(0), Some(1), None, Some(3)]
                } else {
                    vec![Some(0), Some(1), Some(2), Some(3)]
                };
                let v = b.vload(MemRef::new(bufs[buf as usize], off as i64), lanes);
                vregs[(off % 4) as usize] = v;
            }
            Op::VStore { buf, off, vreg } => {
                b.vstore_contig(vregs[vreg as usize], MemRef::new(bufs[buf as usize], off as i64));
            }
            Op::VBin { op, a, b: bb } => {
                let v = b.vbin(binop(op), vregs[a as usize], vregs[bb as usize]);
                vregs[(a % 4) as usize] = v;
            }
            Op::Bcast { a } => {
                let v = b.vbroadcast(sregs[a as usize]);
                vregs[(a % 4) as usize] = v;
            }
            Op::Loop { body_len } => {
                let lv = b.begin_for(0, 3, 1);
                let take = (body_len as usize).min(ops.len() - i - 1);
                for op in &ops[i + 1..i + 1 + take] {
                    if let Op::Store { buf, off, reg } = op {
                        let addr = MemRef::new(
                            bufs[*buf as usize],
                            Affine::var(lv).plus(&Affine::constant(*off as i64 % 8)),
                        );
                        b.sstore(sregs[*reg as usize], addr);
                    }
                }
                b.end_for();
                i += take;
            }
        }
        i += 1;
    }
    b.finish()
}

fn run(f: &slingen_cir::Function) -> (Vec<f64>, Vec<f64>) {
    let mut bufs = BufferSet::for_function(f);
    let x: Vec<f64> = (0..16).map(|i| (i as f64) * 0.3 - 2.0).collect();
    let y: Vec<f64> = (0..16).map(|i| 5.0 - (i as f64) * 0.7).collect();
    bufs.set(slingen_cir::BufId(0), &x);
    bufs.set(slingen_cir::BufId(1), &y);
    slingen_vm::execute(f, &mut bufs, &mut NullMonitor).unwrap();
    (bufs.get(slingen_cir::BufId(0)).to_vec(), bufs.get(slingen_cir::BufId(1)).to_vec())
}

// ---------------------------------------------------------------------
// Whole-app equivalence: for every benchmark program in `slingen::apps`,
// the optimized function must produce bit-identical outputs to the
// unoptimized lowering on seeded workloads, at every vector width and
// policy. This is the regression guard for the pass-pipeline refactor.
// ---------------------------------------------------------------------

mod apps_equivalence {
    use slingen_cir::passes::{optimize, PassConfig};
    use slingen_cir::{BufId, Function};
    use slingen_lgen::{lower_program, BufferMap, LowerOptions};
    use slingen_synth::{synthesize_program, AlgorithmDb, Policy};
    use slingen_vm::{BufferSet, NullMonitor};

    /// Execute `f` on the program's seeded workload; return the final
    /// contents of every live-out parameter buffer.
    fn run(
        program: &slingen_ir::Program,
        f: &Function,
        nu: usize,
        seed: u64,
    ) -> Vec<(BufId, Vec<f64>)> {
        let mut fb = slingen_cir::FunctionBuilder::new("probe", nu);
        let map = BufferMap::build(program, &mut fb);
        let mut bufs = BufferSet::for_function(f);
        for (op, data) in slingen::workload::inputs(program, seed) {
            bufs.set(map.buf(op), &data);
        }
        slingen_vm::execute(f, &mut bufs, &mut NullMonitor).expect("vm execution");
        f.params()
            .filter(|(_, d)| d.kind.live_out())
            .map(|(id, _)| (id, bufs.get(id).to_vec()))
            .collect()
    }

    fn assert_equivalent(program: &slingen_ir::Program, nu: usize, policy: Policy, seed: u64) {
        let mut db = AlgorithmDb::new();
        let basic = synthesize_program(program, policy, nu, &mut db).expect("synthesis");
        let opts = LowerOptions { nu, loop_threshold: 64 };
        let f0 = lower_program(program, &basic, program.name(), &opts).expect("lowering");
        let mut fopt = f0.clone();
        optimize(&mut fopt, &PassConfig::default());
        let baseline = run(program, &f0, nu, seed);
        let optimized = run(program, &fopt, nu, seed);
        assert_eq!(baseline.len(), optimized.len());
        for ((id, want), (id2, got)) in baseline.iter().zip(&optimized) {
            assert_eq!(id, id2);
            assert_eq!(want.len(), got.len());
            for (i, (w, g)) in want.iter().zip(got).enumerate() {
                assert!(
                    w.to_bits() == g.to_bits(),
                    "{} nu={nu} {policy}: buffer {id} element {i}: {w:?} vs {g:?}",
                    program.name(),
                );
            }
        }
    }

    fn check_app(program: slingen_ir::Program) {
        for nu in [1usize, 4] {
            for policy in Policy::ALL {
                assert_equivalent(&program, nu, policy, 0x5EED);
            }
        }
    }

    #[test]
    fn potrf_bit_identical() {
        check_app(slingen::apps::potrf(8));
    }

    #[test]
    fn trsyl_bit_identical() {
        check_app(slingen::apps::trsyl(8));
    }

    #[test]
    fn trlya_bit_identical() {
        check_app(slingen::apps::trlya(8));
    }

    #[test]
    fn trtri_bit_identical() {
        check_app(slingen::apps::trtri(8));
    }

    #[test]
    fn kf_bit_identical() {
        check_app(slingen::apps::kf(4));
    }

    #[test]
    fn gpr_bit_identical() {
        check_app(slingen::apps::gpr(4));
    }

    #[test]
    fn l1a_bit_identical() {
        check_app(slingen::apps::l1a(4));
    }

    // -----------------------------------------------------------------
    // Golden static-instruction counts: optimization *quality* must not
    // silently regress. Update these deliberately (with a note in the
    // PR) if a pass change improves or trades off code size.
    // -----------------------------------------------------------------

    fn optimized_count(program: &slingen_ir::Program) -> usize {
        let mut db = AlgorithmDb::new();
        let basic = synthesize_program(program, Policy::Lazy, 4, &mut db).unwrap();
        let opts = LowerOptions { nu: 4, loop_threshold: 64 };
        let mut f = lower_program(program, &basic, program.name(), &opts).unwrap();
        optimize(&mut f, &PassConfig::default());
        f.static_instr_count()
    }

    #[test]
    fn golden_instr_count_potrf8() {
        assert_eq!(optimized_count(&slingen::apps::potrf(8)), GOLDEN_POTRF8);
    }

    #[test]
    fn golden_instr_count_kf8() {
        assert_eq!(optimized_count(&slingen::apps::kf(8)), GOLDEN_KF8);
    }

    const GOLDEN_POTRF8: usize = 246;
    // 3836 → 3831 when the cleanup-iteration cap was raised past 3: kf8
    // needs 5 rounds to reach its fixpoint, and the old cap silently
    // stopped one copyprop/DCE wave short.
    const GOLDEN_KF8: usize = 3831;
}

// ---------------------------------------------------------------------
// Cross-target equivalence: for every benchmark app, every shipped
// target, and every ν the target supports, the target-specialized
// Stage-3 pipeline must preserve VM semantics. Non-FMA targets run the
// same passes as before and must stay bit-identical; the FMA target runs
// the contraction pass, whose fused ops round once instead of twice, so
// it is compared against the two-op reference under a tight relative
// tolerance (each contraction perturbs by <= 1 ULP).
// ---------------------------------------------------------------------

mod target_equivalence {
    use slingen_cir::passes::{optimize, PassConfig};
    use slingen_cir::{BufId, Function, Target};
    use slingen_lgen::{lower_program, BufferMap, LowerOptions};
    use slingen_synth::{synthesize_program, AlgorithmDb, Policy};
    use slingen_vm::{BufferSet, NullMonitor};

    /// Documented ULP caveat of the FMA path: relative tolerance for the
    /// fused-vs-two-op comparison (1-ULP perturbations compounded
    /// through a small factorization stay far inside this bound).
    const FMA_RELATIVE_TOLERANCE: f64 = 1e-9;

    fn run(
        program: &slingen_ir::Program,
        f: &Function,
        nu: usize,
        seed: u64,
    ) -> Vec<(BufId, Vec<f64>)> {
        let mut fb = slingen_cir::FunctionBuilder::new("probe", nu);
        let map = BufferMap::build(program, &mut fb);
        let mut bufs = BufferSet::for_function(f);
        for (op, data) in slingen::workload::inputs(program, seed) {
            bufs.set(map.buf(op), &data);
        }
        slingen_vm::execute(f, &mut bufs, &mut NullMonitor).expect("vm execution");
        f.params()
            .filter(|(_, d)| d.kind.live_out())
            .map(|(id, _)| (id, bufs.get(id).to_vec()))
            .collect()
    }

    fn check_app_on_targets(program: slingen_ir::Program) {
        let seed = 0x7A96;
        for target in Target::ALL {
            for &nu in target.widths() {
                let mut db = AlgorithmDb::new();
                let basic =
                    synthesize_program(&program, Policy::Lazy, nu, &mut db).expect("synthesis");
                let opts = LowerOptions { nu, loop_threshold: 64 };
                let f0 = lower_program(&program, &basic, program.name(), &opts).expect("lowering");
                let mut fopt = f0.clone();
                optimize(&mut fopt, &PassConfig::default().for_target(target));
                let baseline = run(&program, &f0, nu, seed);
                let optimized = run(&program, &fopt, nu, seed);
                assert_eq!(baseline.len(), optimized.len());
                for ((id, want), (id2, got)) in baseline.iter().zip(&optimized) {
                    assert_eq!(id, id2);
                    for (i, (w, g)) in want.iter().zip(got).enumerate() {
                        if target.has_fma() {
                            let tol = FMA_RELATIVE_TOLERANCE * w.abs().max(1.0);
                            assert!(
                                (w - g).abs() <= tol,
                                "{} {target} nu={nu}: buffer {id} element {i}: {w:?} vs {g:?}",
                                program.name(),
                            );
                        } else {
                            assert!(
                                w.to_bits() == g.to_bits(),
                                "{} {target} nu={nu}: buffer {id} element {i}: {w:?} vs {g:?} \
                                 (non-FMA targets must stay bit-identical)",
                                program.name(),
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn potrf_equivalent_on_all_targets() {
        check_app_on_targets(slingen::apps::potrf(8));
    }

    #[test]
    fn trsyl_equivalent_on_all_targets() {
        check_app_on_targets(slingen::apps::trsyl(8));
    }

    #[test]
    fn trlya_equivalent_on_all_targets() {
        check_app_on_targets(slingen::apps::trlya(8));
    }

    #[test]
    fn trtri_equivalent_on_all_targets() {
        check_app_on_targets(slingen::apps::trtri(8));
    }

    #[test]
    fn kf_equivalent_on_all_targets() {
        check_app_on_targets(slingen::apps::kf(4));
    }

    #[test]
    fn gpr_equivalent_on_all_targets() {
        check_app_on_targets(slingen::apps::gpr(4));
    }

    #[test]
    fn l1a_equivalent_on_all_targets() {
        check_app_on_targets(slingen::apps::l1a(4));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn optimize_preserves_semantics(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let f0 = build(&ops);
        let baseline = run(&f0);
        for config in [PassConfig::default(), PassConfig::minimal(), PassConfig {
            load_store_analysis: true,
            scalar_replacement: false,
            cse: false,
            iterations: 1,
            unroll_budget: 1 << 12,
            ..PassConfig::default()
        }] {
            let mut f = f0.clone();
            optimize(&mut f, &config);
            let got = run(&f);
            prop_assert_eq!(&got.0, &baseline.0, "buffer x differs under {:?}", config);
            prop_assert_eq!(&got.1, &baseline.1, "buffer y differs under {:?}", config);
        }
    }
}
