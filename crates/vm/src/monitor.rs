//! Execution monitors: observers of the dynamic instruction stream.

use slingen_cir::{Instr, InstrClass};
use std::collections::BTreeMap;

/// One executed instruction with its resolved memory effects.
///
/// Memory cells are `(global buffer index, element index)` pairs; buffer
/// indices are global to the VM run (callee locals get fresh indices), so
/// a monitor can track cross-call dependences.
#[derive(Debug)]
pub struct Event<'a> {
    /// The executed instruction.
    pub instr: &'a Instr,
    /// Vector width ν of the executing function.
    pub width: usize,
    /// Memory cells read.
    pub reads: Vec<(usize, i64)>,
    /// Memory cells written.
    pub writes: Vec<(usize, i64)>,
}

/// Observer of executed instructions.
pub trait Monitor {
    /// Called once per dynamically executed instruction.
    fn event(&mut self, event: &Event<'_>);

    /// Polled by the interpreter after each statement; returning `true`
    /// abandons the run early (the remaining statements never execute and
    /// output buffers are left partial). Used by budgeted measurement:
    /// the autotuner's cycle-budget cutoff stops modeling a variant as
    /// soon as its estimate exceeds the incumbent's.
    fn should_stop(&self) -> bool {
        false
    }
}

/// A monitor that ignores everything (pure execution).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullMonitor;

impl Monitor for NullMonitor {
    fn event(&mut self, _event: &Event<'_>) {}
}

/// Counts dynamic instructions by class, plus flops.
///
/// ```
/// use slingen_vm::{CountingMonitor, Monitor};
/// let counts = CountingMonitor::default();
/// assert_eq!(counts.total(), 0);
/// ```
#[derive(Debug, Default, Clone)]
pub struct CountingMonitor {
    counts: BTreeMap<InstrClass, u64>,
    flops: u64,
}

impl CountingMonitor {
    /// Dynamic count for one class.
    pub fn count(&self, class: InstrClass) -> u64 {
        self.counts.get(&class).copied().unwrap_or(0)
    }

    /// Total dynamic instructions observed.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Total double-precision flops performed.
    pub fn flops(&self) -> u64 {
        self.flops
    }

    /// All (class, count) pairs.
    pub fn by_class(&self) -> impl Iterator<Item = (InstrClass, u64)> + '_ {
        self.counts.iter().map(|(c, n)| (*c, *n))
    }
}

impl Monitor for CountingMonitor {
    fn event(&mut self, event: &Event<'_>) {
        *self.counts.entry(event.instr.class()).or_insert(0) += 1;
        self.flops += event.instr.flops(event.width);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slingen_cir::{BinOp, SReg};

    #[test]
    fn counting_monitor_tallies() {
        let mut m = CountingMonitor::default();
        let i = Instr::SBin { op: BinOp::Mul, dst: SReg(0), a: 1.0.into(), b: 2.0.into() };
        let ev = Event { instr: &i, width: 1, reads: vec![], writes: vec![] };
        m.event(&ev);
        m.event(&ev);
        assert_eq!(m.count(InstrClass::FMul), 2);
        assert_eq!(m.count(InstrClass::FAdd), 0);
        assert_eq!(m.total(), 2);
        assert_eq!(m.flops(), 2);
    }
}
