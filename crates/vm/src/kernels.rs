//! Kernel libraries: named C-IR functions callable through
//! [`slingen_cir::Instr::Call`].
//!
//! Library-based baselines (the MKL-, ReLAPACK-, RECSY-style competitors)
//! model a fixed-interface library: the caller emits `Call` instructions
//! and pays the interface overhead in the cost model, while the kernel
//! bodies are ordinary C-IR executed by the same VM. Kernels are
//! *size-specialized on demand* by their generators and memoized here —
//! the VM only sees the finished functions.

use slingen_cir::Function;
use std::collections::HashMap;

/// A registry of callable kernels.
#[derive(Debug, Default)]
pub struct KernelLib {
    kernels: HashMap<String, Function>,
}

impl KernelLib {
    /// An empty library.
    pub fn new() -> Self {
        KernelLib::default()
    }

    /// Register `f` under its function name. Returns the name.
    ///
    /// # Panics
    ///
    /// Panics if a different function is already registered under the same
    /// name (identical re-registration is allowed and ignored).
    pub fn register(&mut self, f: Function) -> String {
        let name = f.name.clone();
        if let Some(existing) = self.kernels.get(&name) {
            assert_eq!(existing, &f, "kernel `{name}` re-registered with different body");
            return name;
        }
        self.kernels.insert(name.clone(), f);
        name
    }

    /// Look up a kernel by name.
    pub fn get(&self, name: &str) -> Option<&Function> {
        self.kernels.get(name)
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.kernels.contains_key(name)
    }

    /// Number of registered kernels.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slingen_cir::FunctionBuilder;

    #[test]
    fn register_and_lookup() {
        let mut lib = KernelLib::new();
        let f = FunctionBuilder::new("dgemm_4_4_4", 4).finish();
        let name = lib.register(f);
        assert_eq!(name, "dgemm_4_4_4");
        assert!(lib.contains("dgemm_4_4_4"));
        assert!(!lib.contains("dgemm_8_8_8"));
        assert_eq!(lib.len(), 1);
    }

    #[test]
    fn identical_reregistration_is_ok() {
        let mut lib = KernelLib::new();
        lib.register(FunctionBuilder::new("k", 1).finish());
        lib.register(FunctionBuilder::new("k", 1).finish());
        assert_eq!(lib.len(), 1);
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn conflicting_reregistration_panics() {
        let mut lib = KernelLib::new();
        lib.register(FunctionBuilder::new("k", 1).finish());
        lib.register(FunctionBuilder::new("k", 4).finish());
    }
}
