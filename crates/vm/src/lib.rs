//! # slingen-vm
//!
//! A virtual machine for SLinGen's C-IR.
//!
//! The paper compiles the generated C and measures it on a Sandy Bridge
//! machine; this reproduction instead *executes* the generated C-IR
//! directly. The VM serves two purposes:
//!
//! 1. **Correctness oracle** — generated code runs on real `f64` buffers
//!    and its results are compared against reference implementations
//!    (`slingen-blas`);
//! 2. **Instruction stream source** — every executed instruction is
//!    reported to a [`Monitor`] with resolved memory cells, which the
//!    performance model (`slingen-perf`) consumes to estimate cycles in
//!    the spirit of the ERM roofline tool used by the paper.
//!
//! Library-style baselines use [`slingen_cir::Instr::Call`]; calls are
//! resolved through a [`KernelLib`] of pre-generated C-IR kernels, executed
//! in the same VM activation mechanism (callee locals get fresh buffers).

pub mod exec;
pub mod kernels;
pub mod monitor;

pub use exec::{execute, execute_with_lib, BufferSet, VmError};
pub use kernels::KernelLib;
pub use monitor::{CountingMonitor, Event, Monitor, NullMonitor};
