//! The C-IR interpreter.

use crate::kernels::KernelLib;
use crate::monitor::{Event, Monitor};
use slingen_cir::{BufKind, CStmt, Function, Instr, LaneSel, MemRef, SOperand};
use std::fmt;

/// Errors raised during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// Memory access outside a buffer's declared length.
    OutOfBounds {
        /// Buffer name.
        buffer: String,
        /// Offending element index.
        index: i64,
        /// Declared length.
        len: usize,
    },
    /// `Call` to a kernel that is not registered.
    UnknownKernel(String),
    /// `Call` argument count does not match the callee's parameters.
    BadCallArity {
        /// Kernel name.
        kernel: String,
        /// Arguments supplied.
        given: usize,
        /// Parameters expected.
        expected: usize,
    },
    /// The function references a buffer id outside its table.
    BadBuffer(usize),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::OutOfBounds { buffer, index, len } => {
                write!(f, "out-of-bounds access: {buffer}[{index}] (len {len})")
            }
            VmError::UnknownKernel(name) => write!(f, "unknown kernel `{name}`"),
            VmError::BadCallArity { kernel, given, expected } => {
                write!(f, "call to `{kernel}` with {given} buffers, expected {expected}")
            }
            VmError::BadBuffer(id) => write!(f, "invalid buffer id {id}"),
        }
    }
}

impl std::error::Error for VmError {}

/// The caller-visible memory of a VM run: one `Vec<f64>` per buffer of the
/// top-level function (parameters *and* locals, in declaration order).
///
/// ```
/// use slingen_cir::{FunctionBuilder, BufKind};
/// use slingen_vm::BufferSet;
///
/// let mut b = FunctionBuilder::new("f", 1);
/// let x = b.buffer("x", 3, BufKind::ParamIn);
/// let f = b.finish();
/// let mut bufs = BufferSet::for_function(&f);
/// bufs.set(x, &[1.0, 2.0, 3.0]);
/// assert_eq!(bufs.get(x), &[1.0, 2.0, 3.0]);
/// ```
#[derive(Debug, Clone)]
pub struct BufferSet {
    data: Vec<Vec<f64>>,
}

impl BufferSet {
    /// Zero-initialized buffers sized from `f`'s declarations.
    pub fn for_function(f: &Function) -> Self {
        BufferSet { data: f.buffers.iter().map(|b| vec![0.0; b.len]).collect() }
    }

    /// Overwrite a buffer's contents.
    ///
    /// # Panics
    ///
    /// Panics if `values` length differs from the declared length.
    pub fn set(&mut self, id: slingen_cir::BufId, values: &[f64]) {
        assert_eq!(self.data[id.0].len(), values.len(), "buffer {} length mismatch", id.0);
        self.data[id.0].copy_from_slice(values);
    }

    /// Read a buffer's contents.
    pub fn get(&self, id: slingen_cir::BufId) -> &[f64] {
        &self.data[id.0]
    }

    /// Number of buffers.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether there are no buffers.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Global memory during a run: top-level buffers first, then transient
/// activations' locals.
struct Memory {
    bufs: Vec<Vec<f64>>,
    names: Vec<String>,
}

struct Activation<'f> {
    f: &'f Function,
    /// Local BufId -> global buffer index.
    map: Vec<usize>,
    sregs: Vec<f64>,
    vregs: Vec<Vec<f64>>,
    loopvars: Vec<i64>,
}

struct Vm<'l, 'm> {
    mem: Memory,
    lib: Option<&'l KernelLib>,
    monitor: &'m mut dyn Monitor,
}

/// Execute `f` against `buffers` without a kernel library.
///
/// # Errors
///
/// Returns [`VmError`] on out-of-bounds accesses or unresolvable calls.
pub fn execute(
    f: &Function,
    buffers: &mut BufferSet,
    monitor: &mut dyn Monitor,
) -> Result<(), VmError> {
    execute_with_lib(f, buffers, None, monitor)
}

/// Execute `f` against `buffers`, resolving [`Instr::Call`]s in `lib`.
///
/// If the monitor's [`Monitor::should_stop`] turns true mid-run, execution
/// stops early and returns `Ok(())` with partial output buffers; the
/// monitor itself knows it requested the stop.
///
/// # Errors
///
/// Returns [`VmError`] on out-of-bounds accesses, unknown kernels, or call
/// arity mismatches.
pub fn execute_with_lib(
    f: &Function,
    buffers: &mut BufferSet,
    lib: Option<&KernelLib>,
    monitor: &mut dyn Monitor,
) -> Result<(), VmError> {
    let mem = Memory {
        bufs: std::mem::take(&mut buffers.data),
        names: f.buffers.iter().map(|b| b.name.clone()).collect(),
    };
    let mut vm = Vm { mem, lib, monitor };
    let map: Vec<usize> = (0..f.buffers.len()).collect();
    let result = vm.run(f, map).map(|_continue| ());
    buffers.data = vm.mem.bufs;
    buffers.data.truncate(f.buffers.len());
    result
}

impl<'l, 'm> Vm<'l, 'm> {
    /// Returns `Ok(false)` when the monitor requested an early stop.
    fn run(&mut self, f: &Function, map: Vec<usize>) -> Result<bool, VmError> {
        let mut act = Activation {
            f,
            map,
            sregs: vec![0.0; f.n_sregs],
            vregs: vec![vec![0.0; f.width]; f.n_vregs],
            loopvars: vec![0; f.n_loopvars],
        };
        self.exec_stmts(&f.body, &mut act)
    }

    fn exec_stmts(&mut self, stmts: &[CStmt], act: &mut Activation<'_>) -> Result<bool, VmError> {
        for s in stmts {
            match s {
                CStmt::I(i) => {
                    if !self.exec_instr(i, act)? {
                        return Ok(false);
                    }
                }
                CStmt::For { var, lo, hi, step, body } => {
                    let lo = lo.eval(&|v| act.loopvars[v.0]);
                    let hi = hi.eval(&|v| act.loopvars[v.0]);
                    let mut iv = lo;
                    while iv < hi {
                        act.loopvars[var.0] = iv;
                        if !self.exec_stmts(body, act)? {
                            return Ok(false);
                        }
                        iv += step;
                    }
                }
                CStmt::If { cond, then_, else_ } => {
                    let taken = if cond.eval(&|v| act.loopvars[v.0]) { then_ } else { else_ };
                    if !self.exec_stmts(taken, act)? {
                        return Ok(false);
                    }
                }
            }
        }
        Ok(true)
    }

    fn resolve(
        &self,
        m: &MemRef,
        extra: i64,
        act: &Activation<'_>,
    ) -> Result<(usize, i64), VmError> {
        let local = m.buf.0;
        if local >= act.map.len() {
            return Err(VmError::BadBuffer(local));
        }
        let global = act.map[local];
        let idx = m.offset.eval(&|v| act.loopvars[v.0]) + extra;
        let len = self.mem.bufs[global].len();
        if idx < 0 || idx as usize >= len {
            return Err(VmError::OutOfBounds {
                buffer: self
                    .mem
                    .names
                    .get(global)
                    .cloned()
                    .unwrap_or_else(|| format!("buf{global}")),
                index: idx,
                len,
            });
        }
        Ok((global, idx))
    }

    fn sval(&self, o: &SOperand, act: &Activation<'_>) -> f64 {
        match o {
            SOperand::Reg(r) => act.sregs[r.0],
            SOperand::Imm(v) => *v,
        }
    }

    /// Returns `Ok(false)` when the monitor requested an early stop.
    fn exec_instr(&mut self, i: &Instr, act: &mut Activation<'_>) -> Result<bool, VmError> {
        let mut reads: Vec<(usize, i64)> = Vec::new();
        let mut writes: Vec<(usize, i64)> = Vec::new();
        match i {
            Instr::SLoad { dst, src } => {
                let (g, idx) = self.resolve(src, 0, act)?;
                act.sregs[dst.0] = self.mem.bufs[g][idx as usize];
                reads.push((g, idx));
            }
            Instr::SStore { src, dst } => {
                let v = self.sval(src, act);
                let (g, idx) = self.resolve(dst, 0, act)?;
                self.mem.bufs[g][idx as usize] = v;
                writes.push((g, idx));
            }
            Instr::SBin { op, dst, a, b } => {
                act.sregs[dst.0] = op.apply(self.sval(a, act), self.sval(b, act));
            }
            Instr::SSqrt { dst, a } => {
                act.sregs[dst.0] = self.sval(a, act).sqrt();
            }
            Instr::SFma { kind, dst, a, b, c } => {
                // fused (single rounding): can differ from the two-op
                // mul+add sequence by up to 1 ULP
                act.sregs[dst.0] =
                    kind.apply(self.sval(a, act), self.sval(b, act), self.sval(c, act));
            }
            Instr::SMov { dst, a } => {
                act.sregs[dst.0] = self.sval(a, act);
            }
            Instr::VLoad { dst, base, lanes } => {
                let mut vals = vec![0.0; act.f.width];
                for (lane, l) in lanes.iter().enumerate() {
                    if let Some(off) = l {
                        let (g, idx) = self.resolve(base, *off, act)?;
                        vals[lane] = self.mem.bufs[g][idx as usize];
                        reads.push((g, idx));
                    }
                }
                act.vregs[dst.0] = vals;
            }
            Instr::VStore { src, base, lanes } => {
                for (lane, l) in lanes.iter().enumerate() {
                    if let Some(off) = l {
                        let (g, idx) = self.resolve(base, *off, act)?;
                        self.mem.bufs[g][idx as usize] = act.vregs[src.0][lane];
                        writes.push((g, idx));
                    }
                }
            }
            Instr::VMov { dst, src } => {
                let v = act.vregs[src.0].clone();
                act.vregs[dst.0] = v;
            }
            Instr::VBin { op, dst, a, b } => {
                let mut vals = vec![0.0; act.f.width];
                for (lane, v) in vals.iter_mut().enumerate() {
                    *v = op.apply(act.vregs[a.0][lane], act.vregs[b.0][lane]);
                }
                act.vregs[dst.0] = vals;
            }
            Instr::VFma { kind, dst, a, b, c } => {
                let mut vals = vec![0.0; act.f.width];
                for (lane, v) in vals.iter_mut().enumerate() {
                    *v = kind.apply(
                        act.vregs[a.0][lane],
                        act.vregs[b.0][lane],
                        act.vregs[c.0][lane],
                    );
                }
                act.vregs[dst.0] = vals;
            }
            Instr::VBroadcast { dst, src } => {
                let v = self.sval(src, act);
                act.vregs[dst.0] = vec![v; act.f.width];
            }
            Instr::VShuffle { dst, a, b, sel } => {
                let mut vals = vec![0.0; act.f.width];
                for (lane, s) in sel.iter().enumerate() {
                    vals[lane] = match s {
                        LaneSel::A(j) => act.vregs[a.0][*j],
                        LaneSel::B(j) => act.vregs[b.0][*j],
                        LaneSel::Zero => 0.0,
                    };
                }
                act.vregs[dst.0] = vals;
            }
            Instr::VBlend { dst, a, b, mask } => {
                let mut vals = vec![0.0; act.f.width];
                for lane in 0..act.f.width {
                    vals[lane] =
                        if mask[lane] { act.vregs[b.0][lane] } else { act.vregs[a.0][lane] };
                }
                act.vregs[dst.0] = vals;
            }
            Instr::VExtract { dst, src, lane } => {
                act.sregs[dst.0] = act.vregs[src.0][*lane];
            }
            Instr::VReduceAdd { dst, src } => {
                act.sregs[dst.0] = act.vregs[src.0].iter().sum();
            }
            Instr::Call { kernel, bufs, ints: _ } => {
                // report the call itself first (interface overhead)
                self.monitor.event(&Event {
                    instr: i,
                    width: act.f.width,
                    reads: Vec::new(),
                    writes: Vec::new(),
                });
                let lib = self.lib.ok_or_else(|| VmError::UnknownKernel(kernel.clone()))?;
                let callee =
                    lib.get(kernel).ok_or_else(|| VmError::UnknownKernel(kernel.clone()))?;
                let expected = callee.params().count();
                if bufs.len() != expected {
                    return Err(VmError::BadCallArity {
                        kernel: kernel.clone(),
                        given: bufs.len(),
                        expected,
                    });
                }
                // map callee buffers: params to caller buffers, locals fresh
                let mut map = vec![usize::MAX; callee.buffers.len()];
                let mut arg = 0;
                let base_len = self.mem.bufs.len();
                for (idx, decl) in callee.buffers.iter().enumerate() {
                    if decl.kind == BufKind::Local {
                        self.mem.bufs.push(vec![0.0; decl.len]);
                        self.mem.names.push(format!("{}::{}", kernel, decl.name));
                        map[idx] = self.mem.bufs.len() - 1;
                    } else {
                        let local = bufs[arg].0;
                        if local >= act.map.len() {
                            return Err(VmError::BadBuffer(local));
                        }
                        map[idx] = act.map[local];
                        arg += 1;
                    }
                }
                let keep_going = self.run(callee, map)?;
                // free callee locals
                self.mem.bufs.truncate(base_len);
                self.mem.names.truncate(base_len);
                return Ok(keep_going);
            }
        }
        self.monitor.event(&Event { instr: i, width: act.f.width, reads, writes });
        Ok(!self.monitor.should_stop())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{CountingMonitor, NullMonitor};
    use slingen_cir::{Affine, BinOp, FunctionBuilder, InstrClass};

    #[test]
    fn scalar_axpy_executes() {
        // y = 2*x + y over 4 elements, scalar loop
        let mut b = FunctionBuilder::new("axpy", 1);
        let x = b.buffer("x", 4, BufKind::ParamIn);
        let y = b.buffer("y", 4, BufKind::ParamInOut);
        let i = b.begin_for(0, 4, 1);
        let rx = b.sload(MemRef::new(x, Affine::var(i)));
        let ry = b.sload(MemRef::new(y, Affine::var(i)));
        let ax = b.sbin(BinOp::Mul, rx, 2.0);
        let s = b.sbin(BinOp::Add, ax, ry);
        b.sstore(s, MemRef::new(y, Affine::var(i)));
        b.end_for();
        let f = b.finish();
        let mut bufs = BufferSet::for_function(&f);
        bufs.set(x, &[1.0, 2.0, 3.0, 4.0]);
        bufs.set(y, &[10.0, 20.0, 30.0, 40.0]);
        execute(&f, &mut bufs, &mut NullMonitor).unwrap();
        assert_eq!(bufs.get(y), &[12.0, 24.0, 36.0, 48.0]);
    }

    #[test]
    fn vector_ops_execute() {
        let mut b = FunctionBuilder::new("v", 4);
        let x = b.buffer("x", 4, BufKind::ParamIn);
        let y = b.buffer("y", 4, BufKind::ParamOut);
        let v = b.vload_contig(MemRef::new(x, 0));
        let w = b.vbin(BinOp::Mul, v, v);
        let sh = b.vshuffle(w, w, vec![LaneSel::A(3), LaneSel::A(2), LaneSel::B(1), LaneSel::Zero]);
        b.vstore_contig(sh, MemRef::new(y, 0));
        let f = b.finish();
        let mut bufs = BufferSet::for_function(&f);
        bufs.set(x, &[1.0, 2.0, 3.0, 4.0]);
        execute(&f, &mut bufs, &mut NullMonitor).unwrap();
        assert_eq!(bufs.get(y), &[16.0, 9.0, 4.0, 0.0]);
    }

    #[test]
    fn masked_load_zeroes_inactive_lanes() {
        let mut b = FunctionBuilder::new("m", 4);
        let x = b.buffer("x", 2, BufKind::ParamIn);
        let y = b.buffer("y", 4, BufKind::ParamOut);
        let v = b.vload(MemRef::new(x, 0), vec![Some(0), Some(1), None, None]);
        b.vstore_contig(v, MemRef::new(y, 0));
        let f = b.finish();
        let mut bufs = BufferSet::for_function(&f);
        bufs.set(x, &[5.0, 6.0]);
        execute(&f, &mut bufs, &mut NullMonitor).unwrap();
        assert_eq!(bufs.get(y), &[5.0, 6.0, 0.0, 0.0]);
    }

    #[test]
    fn blend_extract_reduce() {
        let mut b = FunctionBuilder::new("ber", 4);
        let y = b.buffer("y", 3, BufKind::ParamOut);
        let a = b.vbroadcast(1.0);
        let c = b.vbroadcast(2.0);
        let bl = b.vblend(a, c, vec![false, true, false, true]); // 1,2,1,2
        let e = b.vextract(bl, 1);
        b.sstore(e, MemRef::new(y, 0));
        let r = b.vreduce_add(bl);
        b.sstore(r, MemRef::new(y, 1));
        let q = b.ssqrt(16.0);
        b.sstore(q, MemRef::new(y, 2));
        let f = b.finish();
        let mut bufs = BufferSet::for_function(&f);
        execute(&f, &mut bufs, &mut NullMonitor).unwrap();
        assert_eq!(bufs.get(y), &[2.0, 6.0, 4.0]);
    }

    #[test]
    fn fma_is_fused_single_rounding() {
        let mut b = FunctionBuilder::new("fma", 4);
        let y = b.buffer("y", 8, BufKind::ParamOut);
        // scalar: fused result of (1 + 2^-27)^2 - 1 keeps the 2^-54 tail
        // that the two-op path rounds away
        let eps = 1.0 + 2.0f64.powi(-27);
        let a = b.smov(eps);
        let neg1 = b.smov(-1.0);
        let fused = b.sfma(slingen_cir::FmaKind::MulAdd, a, a, neg1);
        b.sstore(fused, MemRef::new(y, 0));
        let m = b.sbin(BinOp::Mul, a, a);
        let two_op = b.sbin(BinOp::Add, m, neg1);
        b.sstore(two_op, MemRef::new(y, 1));
        // vector: plain values, lanewise c - a*b (the Cholesky update form)
        let va = b.vbroadcast(3.0);
        let vb = b.vbroadcast(4.0);
        let vc = b.vbroadcast(29.0);
        let vf = b.vfma(slingen_cir::FmaKind::NegMulAdd, va, vb, vc);
        b.vstore_contig(vf, MemRef::new(y, 4));
        let f = b.finish();
        let mut bufs = BufferSet::for_function(&f);
        let mut mon = CountingMonitor::default();
        execute(&f, &mut bufs, &mut mon).unwrap();
        let out = bufs.get(y);
        assert_eq!(out[0], eps.mul_add(eps, -1.0));
        assert_eq!(out[1], eps * eps - 1.0);
        assert!(out[0] != out[1], "fused and two-op results must differ on this probe");
        assert_eq!(&out[4..8], &[17.0; 4]);
        assert_eq!(mon.count(InstrClass::Fma), 2);
        // flops: scalar fma = 2, vector fma = 2*width = 8, mul+add = 2
        assert_eq!(mon.flops(), 2 + 8 + 2);
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let mut b = FunctionBuilder::new("oob", 1);
        let x = b.buffer("x", 2, BufKind::ParamInOut);
        let r = b.sload(MemRef::new(x, 5));
        b.sstore(r, MemRef::new(x, 0));
        let f = b.finish();
        let mut bufs = BufferSet::for_function(&f);
        let err = execute(&f, &mut bufs, &mut NullMonitor).unwrap_err();
        assert!(matches!(err, VmError::OutOfBounds { index: 5, len: 2, .. }));
    }

    #[test]
    fn monitor_sees_all_instructions() {
        let mut b = FunctionBuilder::new("cnt", 1);
        let x = b.buffer("x", 4, BufKind::ParamInOut);
        let i = b.begin_for(0, 4, 1);
        let r = b.sload(MemRef::new(x, Affine::var(i)));
        let d = b.sbin(BinOp::Div, r, 3.0);
        b.sstore(d, MemRef::new(x, Affine::var(i)));
        b.end_for();
        let f = b.finish();
        let mut bufs = BufferSet::for_function(&f);
        let mut m = CountingMonitor::default();
        execute(&f, &mut bufs, &mut m).unwrap();
        assert_eq!(m.count(InstrClass::Load), 4);
        assert_eq!(m.count(InstrClass::FDivSqrt), 4);
        assert_eq!(m.count(InstrClass::Store), 4);
        assert_eq!(m.flops(), 4);
    }

    #[test]
    fn calls_execute_kernels_with_fresh_locals() {
        // kernel: c[0] = a[0] + a[1], uses a local scratch
        let mut kb = FunctionBuilder::new("sum2", 1);
        let ka = kb.buffer("a", 2, BufKind::ParamIn);
        let kt = kb.buffer("scratch", 1, BufKind::Local);
        let kc = kb.buffer("c", 1, BufKind::ParamOut);
        let r0 = kb.sload(MemRef::new(ka, 0));
        let r1 = kb.sload(MemRef::new(ka, 1));
        let s = kb.sbin(BinOp::Add, r0, r1);
        kb.sstore(s, MemRef::new(kt, 0));
        let t = kb.sload(MemRef::new(kt, 0));
        kb.sstore(t, MemRef::new(kc, 0));
        let kernel = kb.finish();
        let mut lib = KernelLib::new();
        lib.register(kernel);

        let mut b = FunctionBuilder::new("main", 1);
        let a = b.buffer("a", 2, BufKind::ParamIn);
        let c = b.buffer("c", 1, BufKind::ParamOut);
        b.instr(Instr::Call { kernel: "sum2".into(), bufs: vec![a, c], ints: vec![] });
        let f = b.finish();
        let mut bufs = BufferSet::for_function(&f);
        bufs.set(a, &[3.0, 4.0]);
        let mut m = CountingMonitor::default();
        execute_with_lib(&f, &mut bufs, Some(&lib), &mut m).unwrap();
        assert_eq!(bufs.get(c), &[7.0]);
        assert_eq!(m.count(InstrClass::Call), 1);
        assert_eq!(m.count(InstrClass::FAdd), 1);
        // caller's buffer set is restored to its own two buffers
        assert_eq!(bufs.len(), 2);
    }

    #[test]
    fn unknown_kernel_errors() {
        let mut b = FunctionBuilder::new("main", 1);
        let a = b.buffer("a", 1, BufKind::ParamInOut);
        b.instr(Instr::Call { kernel: "nope".into(), bufs: vec![a], ints: vec![] });
        let f = b.finish();
        let mut bufs = BufferSet::for_function(&f);
        let lib = KernelLib::new();
        let err = execute_with_lib(&f, &mut bufs, Some(&lib), &mut NullMonitor).unwrap_err();
        assert_eq!(err, VmError::UnknownKernel("nope".into()));
    }

    #[test]
    fn call_arity_checked() {
        let mut lib = KernelLib::new();
        let mut kb = FunctionBuilder::new("k", 1);
        kb.buffer("a", 1, BufKind::ParamIn);
        kb.buffer("b", 1, BufKind::ParamOut);
        lib.register(kb.finish());
        let mut b = FunctionBuilder::new("main", 1);
        let a = b.buffer("a", 1, BufKind::ParamInOut);
        b.instr(Instr::Call { kernel: "k".into(), bufs: vec![a], ints: vec![] });
        let f = b.finish();
        let mut bufs = BufferSet::for_function(&f);
        let err = execute_with_lib(&f, &mut bufs, Some(&lib), &mut NullMonitor).unwrap_err();
        assert!(matches!(err, VmError::BadCallArity { .. }));
    }

    #[test]
    fn if_branches_follow_conditions() {
        use slingen_cir::{CmpOp, Cond};
        let mut b = FunctionBuilder::new("br", 1);
        let y = b.buffer("y", 4, BufKind::ParamOut);
        let i = b.begin_for(0, 4, 1);
        b.begin_if(Cond::new(Affine::var(i), CmpOp::Lt, Affine::constant(2)));
        b.sstore(1.0, MemRef::new(y, Affine::var(i)));
        b.begin_else();
        b.sstore(2.0, MemRef::new(y, Affine::var(i)));
        b.end_if();
        b.end_for();
        let f = b.finish();
        let mut bufs = BufferSet::for_function(&f);
        execute(&f, &mut bufs, &mut NullMonitor).unwrap();
        assert_eq!(bufs.get(y), &[1.0, 1.0, 2.0, 2.0]);
    }
}

#[cfg(test)]
mod nested_call_tests {
    use super::*;
    use crate::kernels::KernelLib;
    use crate::monitor::{CountingMonitor, NullMonitor};
    use slingen_cir::{BinOp, FunctionBuilder, Instr, MemRef};

    /// Kernels calling kernels: locals at each activation stay isolated
    /// and the buffer table is restored after every return.
    #[test]
    fn nested_kernel_calls() {
        let mut lib = KernelLib::new();
        // inner: b[0] = a[0] * 2
        let mut ib = FunctionBuilder::new("double", 1);
        let ia = ib.buffer("a", 1, BufKind::ParamIn);
        let ibuf = ib.buffer("b", 1, BufKind::ParamOut);
        let r = ib.sload(MemRef::new(ia, 0));
        let d = ib.sbin(BinOp::Mul, r, 2.0);
        ib.sstore(d, MemRef::new(ibuf, 0));
        lib.register(ib.finish());
        // outer: scratch = double(a); out = double(scratch)
        let mut ob = FunctionBuilder::new("quad", 1);
        let oa = ob.buffer("a", 1, BufKind::ParamIn);
        let scratch = ob.buffer("scratch", 1, BufKind::Local);
        let oout = ob.buffer("out", 1, BufKind::ParamOut);
        ob.instr(Instr::Call { kernel: "double".into(), bufs: vec![oa, scratch], ints: vec![] });
        ob.instr(Instr::Call { kernel: "double".into(), bufs: vec![scratch, oout], ints: vec![] });
        lib.register(ob.finish());
        // main
        let mut mb = FunctionBuilder::new("main", 1);
        let ma = mb.buffer("a", 1, BufKind::ParamIn);
        let mout = mb.buffer("out", 1, BufKind::ParamOut);
        mb.instr(Instr::Call { kernel: "quad".into(), bufs: vec![ma, mout], ints: vec![] });
        let f = mb.finish();
        let mut bufs = BufferSet::for_function(&f);
        bufs.set(ma, &[3.0]);
        let mut m = CountingMonitor::default();
        execute_with_lib(&f, &mut bufs, Some(&lib), &mut m).unwrap();
        assert_eq!(bufs.get(mout), &[12.0]);
        assert_eq!(m.count(slingen_cir::InstrClass::Call), 3);
        assert_eq!(bufs.len(), 2, "caller buffers restored");
    }

    /// Repeated calls reuse fresh (zeroed) locals every time.
    #[test]
    fn locals_are_fresh_per_activation() {
        let mut lib = KernelLib::new();
        // kernel: out[0] = scratch[0] + 1 (scratch must start at 0)
        let mut kb = FunctionBuilder::new("probe", 1);
        let scratch = kb.buffer("scratch", 1, BufKind::Local);
        let kout = kb.buffer("out", 1, BufKind::ParamInOut);
        let r = kb.sload(MemRef::new(scratch, 0));
        let prev = kb.sload(MemRef::new(kout, 0));
        let one = kb.sbin(BinOp::Add, r, 1.0);
        let acc = kb.sbin(BinOp::Add, prev, one);
        kb.sstore(acc, MemRef::new(kout, 0));
        // poison the scratch for the *next* activation (must not leak)
        kb.sstore(99.0, MemRef::new(scratch, 0));
        lib.register(kb.finish());
        let mut mb = FunctionBuilder::new("main", 1);
        let mo = mb.buffer("out", 1, BufKind::ParamInOut);
        for _ in 0..3 {
            mb.instr(Instr::Call { kernel: "probe".into(), bufs: vec![mo], ints: vec![] });
        }
        let f = mb.finish();
        let mut bufs = BufferSet::for_function(&f);
        execute_with_lib(&f, &mut bufs, Some(&lib), &mut NullMonitor).unwrap();
        assert_eq!(bufs.get(mo), &[3.0], "each call adds exactly 1");
    }
}
