//! Property-based validation of Stage 2: for randomized sBLAC statements
//! (random shapes, operators, transposes, scalar coefficients), the
//! lowered vectorized code must agree with the reference evaluator at
//! every vector width.

use proptest::prelude::*;
use slingen_ir::{Expr, OpId, OperandDecl, Program, ProgramBuilder};
use slingen_lgen::{lower_program, BufferMap, LowerOptions};
use slingen_synth::{synthesize_program, AlgorithmDb, Policy};
use slingen_vm::{BufferSet, NullMonitor};
use std::collections::HashMap;

/// A recipe for one random sBLAC: Y = term1 (op) term2 where each term is
/// A·B, A·Bᵀ, Aᵀ·B, a plain operand, or a scaled operand.
#[derive(Debug, Clone)]
struct Recipe {
    m: usize,
    n: usize,
    k: usize,
    term1: u8,
    term2: u8,
    combine_sub: bool,
    with_scale: bool,
}

fn recipe() -> impl Strategy<Value = Recipe> {
    (1usize..10, 1usize..10, 1usize..10, 0u8..4, 0u8..4, any::<bool>(), any::<bool>()).prop_map(
        |(m, n, k, term1, term2, combine_sub, with_scale)| Recipe {
            m,
            n,
            k,
            term1,
            term2,
            combine_sub,
            with_scale,
        },
    )
}

fn build_program(r: &Recipe) -> (Program, Vec<OpId>) {
    let mut b = ProgramBuilder::new("prop");
    let a1 = b.declare(OperandDecl::mat_in("A1", r.m, r.k));
    let b1 = b.declare(OperandDecl::mat_in("B1", r.k, r.n));
    let a1t = b.declare(OperandDecl::mat_in("A1t", r.k, r.m));
    let b1t = b.declare(OperandDecl::mat_in("B1t", r.n, r.k));
    let c = b.declare(OperandDecl::mat_in("C", r.m, r.n));
    let alpha = b.declare(OperandDecl::sca_in("alpha"));
    let y = b.declare(OperandDecl::mat_out("Y", r.m, r.n));
    let term = |which: u8| -> Expr {
        match which {
            0 => Expr::op(a1).mul(Expr::op(b1)),
            1 => Expr::op(a1).mul(Expr::op(b1t).t()),
            2 => Expr::op(a1t).t().mul(Expr::op(b1)),
            _ => Expr::op(c),
        }
    };
    let t1 = if r.with_scale { Expr::op(alpha).mul(term(r.term1)) } else { term(r.term1) };
    let t2 = term(r.term2);
    let rhs = if r.combine_sub { t1.sub(t2) } else { t1.add(t2) };
    b.assign(y, rhs);
    let p = b.build().unwrap();
    (p, vec![a1, b1, a1t, b1t, c, alpha, y])
}

fn inputs_for(p: &Program, seed: u64) -> Vec<(OpId, Vec<f64>)> {
    use slingen_blas::testgen;
    p.operands()
        .iter()
        .enumerate()
        .filter(|(_, d)| d.io.readable_at_entry())
        .map(|(i, d)| {
            (
                OpId(i),
                testgen::general(d.shape.rows, d.shape.cols, seed + i as u64).as_slice().to_vec(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn lowering_matches_reference(r in recipe(), seed in 1u64..1000) {
        let (p, ids) = build_program(&r);
        let y = *ids.last().unwrap();
        let ins = inputs_for(&p, seed);

        // reference evaluation of the basic program
        let mut db = AlgorithmDb::new();
        let basic = synthesize_program(&p, Policy::Lazy, 4, &mut db).unwrap();
        let mut ref_bufs: HashMap<OpId, Vec<f64>> = p
            .operands()
            .iter()
            .enumerate()
            .map(|(i, o)| (OpId(i), vec![0.0; o.shape.rows * o.shape.cols]))
            .collect();
        for (op, data) in &ins {
            ref_bufs.insert(*op, data.clone());
        }
        slingen_synth::program::eval::run(&p, &basic, &mut ref_bufs);

        for nu in [1usize, 2, 4] {
            for threshold in [1usize, 1_000_000] {
                let opts = LowerOptions { nu, loop_threshold: threshold };
                let f = lower_program(&p, &basic, "prop", &opts).unwrap();
                let mut fb = slingen_cir::FunctionBuilder::new("probe", nu);
                let map = BufferMap::build(&p, &mut fb);
                let mut bufs = BufferSet::for_function(&f);
                for (op, data) in &ins {
                    bufs.set(map.buf(*op), data);
                }
                slingen_vm::execute(&f, &mut bufs, &mut NullMonitor).unwrap();
                let got = bufs.get(map.buf(y));
                let expect = &ref_bufs[&y];
                for (i, (g, e)) in got.iter().zip(expect).enumerate() {
                    prop_assert!(
                        (g - e).abs() < 1e-9,
                        "nu={} thr={} elem {}: {} vs {} (recipe {:?})",
                        nu, threshold, i, g, e, r
                    );
                }
            }
        }
    }
}
