//! End-to-end numeric validation of Stage 2 (+ Stage 3 passes):
//! synthesized basic programs are lowered to C-IR, executed by the VM,
//! and compared against the `slingen-blas` oracle and the reference
//! evaluator — across vector widths, policies, and optimization levels.

use slingen_blas::{testgen, Uplo};
use slingen_cir::passes::{optimize, PassConfig};
use slingen_ir::structure::StorageHalf;
use slingen_ir::{Expr, OpId, OperandDecl, Program, ProgramBuilder, Properties, Structure};
use slingen_lgen::{lower_program, BufferMap, LowerOptions};
use slingen_synth::{synthesize_program, AlgorithmDb, Policy};
use slingen_vm::{BufferSet, NullMonitor};

/// Lower + (optionally) optimize + execute; returns the final buffers.
fn run_pipeline(
    program: &Program,
    policy: Policy,
    nu: usize,
    optimize_passes: bool,
    inputs: &[(OpId, Vec<f64>)],
) -> Vec<(OpId, Vec<f64>)> {
    let mut db = AlgorithmDb::new();
    let basic = synthesize_program(program, policy, nu, &mut db).expect("synthesis");
    let opts = LowerOptions { nu, loop_threshold: 16 };
    let mut f = lower_program(program, &basic, program.name(), &opts).expect("lowering");
    if optimize_passes {
        optimize(&mut f, &PassConfig::default());
    }
    // map operands to buffers for IO
    let mut fb_probe = slingen_cir::FunctionBuilder::new("probe", nu);
    let map = BufferMap::build(program, &mut fb_probe);
    let mut bufs = BufferSet::for_function(&f);
    for (op, data) in inputs {
        bufs.set(map.buf(*op), data);
    }
    slingen_vm::execute(&f, &mut bufs, &mut NullMonitor).expect("execution");
    program
        .operands()
        .iter()
        .enumerate()
        .map(|(i, _)| (OpId(i), bufs.get(map.buf(OpId(i))).to_vec()))
        .collect()
}

fn get(outs: &[(OpId, Vec<f64>)], op: OpId) -> &[f64] {
    &outs.iter().find(|(o, _)| *o == op).unwrap().1
}

#[test]
fn potrf_full_pipeline_matches_lapack() {
    for &n in &[1usize, 2, 3, 4, 5, 8, 12] {
        for &nu in &[1usize, 2, 4] {
            for policy in Policy::ALL {
                for opt in [false, true] {
                    let mut b = ProgramBuilder::new("potrf");
                    let s = b.declare(
                        OperandDecl::mat_in("S", n, n)
                            .with_structure(Structure::Symmetric(StorageHalf::Upper))
                            .with_properties(Properties::pd()),
                    );
                    let u = b.declare(
                        OperandDecl::mat_out("U", n, n)
                            .with_structure(Structure::UpperTriangular)
                            .with_properties(Properties::ns()),
                    );
                    b.equation(Expr::op(u).t().mul(Expr::op(u)), Expr::op(s));
                    let p = b.build().unwrap();

                    let spd = testgen::spd(n, 11 + n as u64);
                    let outs = run_pipeline(&p, policy, nu, opt, &[(s, spd.as_slice().to_vec())]);
                    let mut expect = spd.as_slice().to_vec();
                    slingen_blas::dpotrf(Uplo::Upper, n, &mut expect, n);
                    let got = get(&outs, u);
                    for i in 0..n {
                        for j in i..n {
                            assert!(
                                (got[i * n + j] - expect[i * n + j]).abs() < 1e-9,
                                "n={n} nu={nu} {policy} opt={opt} ({i},{j}): {} vs {}",
                                got[i * n + j],
                                expect[i * n + j]
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn potrf_with_ow_shares_storage() {
    // the paper's Fig. 5 style: U overwrites S
    let n = 8;
    let mut b = ProgramBuilder::new("potrf_ow");
    let s = b.declare(
        OperandDecl::mat_in("S", n, n)
            .with_structure(Structure::Symmetric(StorageHalf::Upper))
            .with_properties(Properties::pd()),
    );
    let mut udecl = OperandDecl::mat_out("U", n, n)
        .with_structure(Structure::UpperTriangular)
        .with_properties(Properties::ns());
    udecl.overwrites = Some(s);
    let u = b.declare(udecl);
    b.equation(Expr::op(u).t().mul(Expr::op(u)), Expr::op(s));
    let p = b.build().unwrap();

    let spd = testgen::spd(n, 99);
    let outs = run_pipeline(&p, Policy::Lazy, 4, true, &[(s, spd.as_slice().to_vec())]);
    let mut expect = spd.as_slice().to_vec();
    slingen_blas::dpotrf(Uplo::Upper, n, &mut expect, n);
    let got = get(&outs, u);
    for i in 0..n {
        for j in i..n {
            assert!((got[i * n + j] - expect[i * n + j]).abs() < 1e-9, "({i},{j})");
        }
    }
}

#[test]
fn trsyl_full_pipeline() {
    for &(m, n) in &[(2usize, 2usize), (4, 4), (5, 7), (12, 12)] {
        for policy in Policy::ALL {
            let mut b = ProgramBuilder::new("trsyl");
            let l = b.declare(
                OperandDecl::mat_in("L", m, m)
                    .with_structure(Structure::LowerTriangular)
                    .with_properties(Properties::ns()),
            );
            let u = b.declare(
                OperandDecl::mat_in("U", n, n)
                    .with_structure(Structure::UpperTriangular)
                    .with_properties(Properties::ns()),
            );
            let c = b.declare(OperandDecl::mat_in("C", m, n));
            let x = b.declare(OperandDecl::mat_out("X", m, n));
            b.equation(Expr::op(l).mul(Expr::op(x)).add(Expr::op(x).mul(Expr::op(u))), Expr::op(c));
            let p = b.build().unwrap();

            let lt = testgen::well_conditioned_triangular(m, Uplo::Lower, 21);
            let ut = testgen::well_conditioned_triangular(n, Uplo::Upper, 22);
            let rhs = testgen::general(m, n, 23);
            let outs = run_pipeline(
                &p,
                policy,
                4,
                true,
                &[
                    (l, lt.as_slice().to_vec()),
                    (u, ut.as_slice().to_vec()),
                    (c, rhs.as_slice().to_vec()),
                ],
            );
            let mut expect = rhs.as_slice().to_vec();
            slingen_blas::dtrsyl(m, n, lt.as_slice(), m, ut.as_slice(), n, &mut expect, n);
            let got = get(&outs, x);
            let diff = got.iter().zip(&expect).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
            assert!(diff < 1e-9, "m={m} n={n} {policy}: {diff}");
        }
    }
}

#[test]
fn trlya_full_pipeline() {
    for &n in &[2usize, 4, 6, 12] {
        for policy in Policy::ALL {
            let mut b = ProgramBuilder::new("trlya");
            let l = b.declare(
                OperandDecl::mat_in("L", n, n)
                    .with_structure(Structure::LowerTriangular)
                    .with_properties(Properties::ns()),
            );
            let s = b.declare(
                OperandDecl::mat_in("S", n, n)
                    .with_structure(Structure::Symmetric(StorageHalf::Lower)),
            );
            let x = b.declare(
                OperandDecl::mat_out("X", n, n)
                    .with_structure(Structure::Symmetric(StorageHalf::Lower)),
            );
            b.equation(
                Expr::op(l).mul(Expr::op(x)).add(Expr::op(x).mul(Expr::op(l).t())),
                Expr::op(s),
            );
            let p = b.build().unwrap();

            let lt = testgen::well_conditioned_triangular(n, Uplo::Lower, 31);
            let sym = testgen::symmetrize(&testgen::general(n, n, 32), Uplo::Lower);
            let outs = run_pipeline(
                &p,
                policy,
                4,
                true,
                &[(l, lt.as_slice().to_vec()), (s, sym.as_slice().to_vec())],
            );
            let mut expect = sym.as_slice().to_vec();
            slingen_blas::dtrlya(n, lt.as_slice(), n, &mut expect, n);
            let got = get(&outs, x);
            let diff = got.iter().zip(&expect).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
            assert!(diff < 1e-9, "n={n} {policy}: {diff}");
        }
    }
}

#[test]
fn trtri_full_pipeline() {
    for &n in &[2usize, 4, 7, 12] {
        for policy in Policy::ALL {
            let mut b = ProgramBuilder::new("trtri");
            let l = b.declare(
                OperandDecl::mat_in("L", n, n)
                    .with_structure(Structure::LowerTriangular)
                    .with_properties(Properties::ns()),
            );
            let x = b.declare(
                OperandDecl::mat_out("X", n, n)
                    .with_structure(Structure::LowerTriangular)
                    .with_properties(Properties::ns()),
            );
            b.equation(Expr::op(x), Expr::op(l).inv());
            let p = b.build().unwrap();

            let lt = testgen::well_conditioned_triangular(n, Uplo::Lower, 41);
            let outs = run_pipeline(&p, policy, 4, true, &[(l, lt.as_slice().to_vec())]);
            let mut expect = lt.as_slice().to_vec();
            slingen_blas::dtrtri(Uplo::Lower, n, &mut expect, n);
            let got = get(&outs, x);
            for i in 0..n {
                for j in 0..=i {
                    assert!(
                        (got[i * n + j] - expect[i * n + j]).abs() < 1e-9,
                        "n={n} {policy} ({i},{j})"
                    );
                }
            }
        }
    }
}

#[test]
fn app_style_sblacs_with_nested_products() {
    // Y = F·P·Fᵀ + Q — nested product needs a lowering temporary
    for &n in &[3usize, 4, 8, 13] {
        for &nu in &[1usize, 4] {
            let mut b = ProgramBuilder::new("cov");
            let f = b.declare(OperandDecl::mat_in("F", n, n));
            let pm = b.declare(
                OperandDecl::mat_in("P", n, n)
                    .with_structure(Structure::Symmetric(StorageHalf::Upper)),
            );
            let q = b.declare(OperandDecl::mat_in("Q", n, n));
            let y = b.declare(OperandDecl::mat_out("Y", n, n));
            b.assign(y, Expr::op(f).mul(Expr::op(pm)).mul(Expr::op(f).t()).add(Expr::op(q)));
            let p = b.build().unwrap();

            let fm = testgen::general(n, n, 51);
            let pmat = testgen::symmetrize(&testgen::general(n, n, 52), Uplo::Upper);
            let qm = testgen::general(n, n, 53);
            let outs = run_pipeline(
                &p,
                Policy::Lazy,
                nu,
                true,
                &[
                    (f, fm.as_slice().to_vec()),
                    (pm, pmat.as_slice().to_vec()),
                    (q, qm.as_slice().to_vec()),
                ],
            );
            let expect = fm.matmul(&pmat).matmul(&fm.transposed()).add(&qm);
            let got = get(&outs, y);
            let diff = got
                .iter()
                .zip(expect.as_slice())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            assert!(diff < 1e-9, "n={n} nu={nu}: {diff}");
        }
    }
}

#[test]
fn vector_statements_and_dots() {
    // v0 = z − H·y ; phi = kᵀ·t1 (matrix-vector + dot, from kf and gpr)
    let (k, n) = (5usize, 9usize);
    let mut b = ProgramBuilder::new("vecops");
    let h = b.declare(OperandDecl::mat_in("H", k, n));
    let y = b.declare(OperandDecl::vec_in("y", n));
    let z = b.declare(OperandDecl::vec_in("z", k));
    let v0 = b.declare(OperandDecl::vec_out("v0", k));
    let t1 = b.declare(OperandDecl::vec_in("t1", n));
    let kv = b.declare(OperandDecl::vec_in("kvec", n));
    let phi = b.declare(OperandDecl::sca_out("phi"));
    b.assign(v0, Expr::op(z).sub(Expr::op(h).mul(Expr::op(y))));
    b.assign(phi, Expr::op(kv).t().mul(Expr::op(t1)));
    let p = b.build().unwrap();

    let hm = testgen::general(k, n, 61);
    let yv = testgen::vector(n, 62);
    let zv = testgen::vector(k, 63);
    let t1v = testgen::vector(n, 64);
    let kvv = testgen::vector(n, 65);
    for &nu in &[1usize, 2, 4] {
        let outs = run_pipeline(
            &p,
            Policy::Lazy,
            nu,
            true,
            &[
                (h, hm.as_slice().to_vec()),
                (y, yv.clone()),
                (z, zv.clone()),
                (t1, t1v.clone()),
                (kv, kvv.clone()),
            ],
        );
        let mut expect_v0 = zv.clone();
        for i in 0..k {
            let mut acc = 0.0;
            for j in 0..n {
                acc += hm[(i, j)] * yv[j];
            }
            expect_v0[i] -= acc;
        }
        let got_v0 = get(&outs, v0);
        for i in 0..k {
            assert!((got_v0[i] - expect_v0[i]).abs() < 1e-10, "nu={nu} v0[{i}]");
        }
        let expect_phi: f64 = kvv.iter().zip(&t1v).map(|(a, b)| a * b).sum();
        assert!((get(&outs, phi)[0] - expect_phi).abs() < 1e-10, "nu={nu} phi");
    }
}

#[test]
fn division_rewrites_use_reciprocal() {
    // x = b / lambda — R0-form statement; check R1 lowering emits exactly
    // one division
    let n = 8;
    let mut b = ProgramBuilder::new("r0r1");
    let lam = b.declare(OperandDecl::sca_in("lambda"));
    let bv = b.declare(OperandDecl::vec_in("b", n));
    let x = b.declare(OperandDecl::vec_out("x", n));
    b.assign(x, Expr::op(bv).div(Expr::op(lam)));
    let p = b.build().unwrap();
    let mut db = AlgorithmDb::new();
    let basic = synthesize_program(&p, Policy::Lazy, 4, &mut db).unwrap();
    let f = lower_program(&p, &basic, "r0r1", &LowerOptions { nu: 4, loop_threshold: 64 }).unwrap();
    let mut divs = 0;
    f.for_each_instr(&mut |i| {
        if matches!(
            i,
            slingen_cir::Instr::SBin { op: slingen_cir::BinOp::Div, .. }
                | slingen_cir::Instr::VBin { op: slingen_cir::BinOp::Div, .. }
        ) {
            divs += 1;
        }
    });
    assert_eq!(divs, 1, "rule R1: one reciprocal, then scaling");
    // and it must be numerically right
    let bvec = testgen::vector(n, 71);
    let outs = run_pipeline(&p, Policy::Lazy, 4, true, &[(lam, vec![2.5]), (bv, bvec.clone())]);
    let got = get(&outs, x);
    for i in 0..n {
        assert!((got[i] - bvec[i] / 2.5).abs() < 1e-12);
    }
}

#[test]
fn looped_and_unrolled_agree() {
    // same statement through the loop path and the unrolled path
    let n = 17; // odd size exercises edge peeling
    let mut b = ProgramBuilder::new("gemm");
    let a = b.declare(OperandDecl::mat_in("A", n, n));
    let c = b.declare(OperandDecl::mat_in("Bm", n, n));
    let y = b.declare(OperandDecl::mat_out("Y", n, n));
    b.assign(y, Expr::op(a).mul(Expr::op(c)));
    let p = b.build().unwrap();
    let am = testgen::general(n, n, 81);
    let bm = testgen::general(n, n, 82);
    let expect = am.matmul(&bm);

    for threshold in [1usize, 1_000_000] {
        let mut db = AlgorithmDb::new();
        let basic = synthesize_program(&p, Policy::Lazy, 4, &mut db).unwrap();
        let f =
            lower_program(&p, &basic, "gemm", &LowerOptions { nu: 4, loop_threshold: threshold })
                .unwrap();
        let mut fb_probe = slingen_cir::FunctionBuilder::new("probe", 4);
        let map = BufferMap::build(&p, &mut fb_probe);
        let mut bufs = BufferSet::for_function(&f);
        bufs.set(map.buf(a), am.as_slice());
        bufs.set(map.buf(c), bm.as_slice());
        slingen_vm::execute(&f, &mut bufs, &mut NullMonitor).unwrap();
        let got = bufs.get(map.buf(y));
        let diff =
            got.iter().zip(expect.as_slice()).map(|(x, y)| (x - y).abs()).fold(0.0f64, f64::max);
        assert!(diff < 1e-10, "threshold={threshold}: {diff}");
        // low threshold must actually produce loops
        if threshold == 1 {
            let has_loop = f.body.iter().any(|s| matches!(s, slingen_cir::CStmt::For { .. }));
            assert!(has_loop, "loop path not taken");
        }
    }
}

#[test]
fn row_division_vectorizes_as_scaling() {
    // Fig. 10: after R0/R1, a row of divisions becomes one reciprocal and
    // vector multiplies — the generated code must contain vector muls fed
    // by a broadcast reciprocal rather than per-element divisions.
    let n = 8;
    let mut b = ProgramBuilder::new("rowdiv");
    let lam = b.declare(OperandDecl::sca_in("lambda"));
    let s = b.declare(OperandDecl::mat_in("S", n, n));
    let x = b.declare(OperandDecl::mat_out("X", n, n));
    b.assign(x, Expr::op(s).div(Expr::op(lam)));
    let p = b.build().unwrap();
    let mut db = AlgorithmDb::new();
    let basic = synthesize_program(&p, Policy::Lazy, 4, &mut db).unwrap();
    let f =
        lower_program(&p, &basic, "rowdiv", &LowerOptions { nu: 4, loop_threshold: 1000 }).unwrap();
    let mut divs = 0;
    let mut vmuls = 0;
    f.for_each_instr(&mut |i| match i {
        slingen_cir::Instr::SBin { op: slingen_cir::BinOp::Div, .. } => divs += 1,
        slingen_cir::Instr::VBin { op: slingen_cir::BinOp::Div, .. } => divs += 1,
        slingen_cir::Instr::VBin { op: slingen_cir::BinOp::Mul, .. } => vmuls += 1,
        _ => {}
    });
    assert_eq!(divs, 1, "one reciprocal for the whole statement");
    assert!(vmuls >= n * n / 4, "vectorized scaling ν-BLACs");
}

#[test]
fn structure_skipping_reduces_work() {
    // multiplying by a triangular operand must execute fewer flops than
    // the same shapes with general operands
    let n = 16;
    let count_flops = |structured: bool| {
        let mut b = ProgramBuilder::new("tri");
        let l = if structured {
            b.declare(OperandDecl::mat_in("L", n, n).with_structure(Structure::LowerTriangular))
        } else {
            b.declare(OperandDecl::mat_in("L", n, n))
        };
        let c = b.declare(OperandDecl::mat_in("C", n, n));
        let y = b.declare(OperandDecl::mat_out("Y", n, n));
        b.assign(y, Expr::op(l).mul(Expr::op(c)));
        let p = b.build().unwrap();
        let mut db = AlgorithmDb::new();
        let basic = synthesize_program(&p, Policy::Lazy, 4, &mut db).unwrap();
        let f =
            lower_program(&p, &basic, "tri", &LowerOptions { nu: 4, loop_threshold: 1_000_000 })
                .unwrap();
        let mut fb = slingen_cir::FunctionBuilder::new("probe", 4);
        let map = BufferMap::build(&p, &mut fb);
        let mut bufs = BufferSet::for_function(&f);
        bufs.set(map.buf(l), testgen::well_conditioned_triangular(n, Uplo::Lower, 5).as_slice());
        bufs.set(map.buf(c), testgen::general(n, n, 6).as_slice());
        let mut m = slingen_vm::CountingMonitor::default();
        slingen_vm::execute(&f, &mut bufs, &mut m).unwrap();
        m.flops()
    };
    let tri = count_flops(true);
    let gen = count_flops(false);
    assert!(
        (tri as f64) < 0.75 * gen as f64,
        "triangular structure must cut flops: {tri} vs {gen}"
    );
}
