//! # slingen-lgen
//!
//! Stage 2 of SLinGen (paper §3.2): lowering basic LA programs to C-IR.
//!
//! Every statement of a [`slingen_synth::BasicProgram`] — an sBLAC over
//! operand regions, a scalar `sqrt`/`div`, or a region copy — is tiled
//! into ν-sized pieces and mapped onto vectorized codelets, the role the
//! 18 ν-BLACs play in LGen:
//!
//! * elementwise tiles (add/sub/scale/copy) load ν-wide row chunks;
//! * matrix products use the broadcast×row outer-product kernel
//!   (broadcast `A[i,k]`, multiply with a row chunk of `B`, accumulate);
//! * dot-shaped contractions accumulate lane-wise partial sums and reduce;
//! * divisions by a scalar region apply the paper's rule R1: one scalar
//!   reciprocal, then a scaling ν-BLAC (Table 2 / Fig. 10);
//! * Loaders/Storers materialize as per-lane offset maps: contiguous,
//!   strided (transposed reads), masked edges, and structure-masked
//!   accesses of triangular operands.
//!
//! Structure is exploited as in the paper: statements whose operands carry
//! structural zeros skip zero tiles and mask partial (diagonal-straddling)
//! chunks; symmetric/triangular left-hand sides restrict computation to
//! the stored canonical part.
//!
//! Dense statements with many tiles are emitted as affine `For` nests over
//! full tiles with peeled edges (multi-level tiling); the Stage-3 unroller
//! decides how much of that becomes straight-line code.

pub mod layout;
pub mod lower;

pub use layout::BufferMap;
pub use lower::{lower_program, lower_program_profiled, LowerOptions, LowerProfile};

use std::fmt;

/// Errors from the lowering stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LgenError {
    /// The statement shape cannot be lowered.
    Unsupported(String),
    /// Dimension mismatch inside a statement.
    Shape(String),
}

impl fmt::Display for LgenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LgenError::Unsupported(s) => write!(f, "unsupported statement: {s}"),
            LgenError::Shape(s) => write!(f, "shape error: {s}"),
        }
    }
}

impl std::error::Error for LgenError {}
