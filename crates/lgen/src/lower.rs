//! Statement lowering: basic LA statements → tiled, vectorized C-IR.

use crate::layout::BufferMap;
use crate::LgenError;
use slingen_cir::{
    Affine, BinOp, BufKind, Function, FunctionBuilder, MemRef, SOperand, SReg, VReg,
};
use slingen_ir::{Program, Structure};
use slingen_synth::program::{BasicProgram, BasicStmt, VExpr};
use slingen_synth::term::View;

/// Lowering options.
#[derive(Debug, Clone, Copy)]
pub struct LowerOptions {
    /// Vector width ν (1 = scalar code).
    pub nu: usize,
    /// Statements whose estimated tile work exceeds this emit affine loops
    /// instead of straight-line code (the Stage-3 unroller may re-expand
    /// them within its budget).
    pub loop_threshold: usize,
}

impl LowerOptions {
    /// Options for one point of the autotuner's variant space: vector
    /// width ν and the loop-vs-straight-line threshold are exactly the
    /// code-level coordinates of a `VariantSpec`.
    pub fn new(nu: usize, loop_threshold: usize) -> Self {
        LowerOptions { nu, loop_threshold }
    }
}

impl Default for LowerOptions {
    fn default() -> Self {
        LowerOptions::new(4, 64)
    }
}

/// The loop-decision profile of one lowering: the estimated tile-work
/// value of every statement eligible for the loop-vs-straight-line
/// decision, in lowering order.
///
/// Eligibility and the work estimate depend only on the basic program
/// and ν — never on the loop threshold (the threshold only picks which
/// emitter runs, and no emitter changes the statement sequence) — so a
/// profile recorded at one threshold predicts the decisions at *every*
/// threshold: two thresholds that induce the same [`loop
/// count`](LowerProfile::loop_class) produce byte-identical lowerings.
/// The autotuner uses this to skip Stage 2/3 for provably-colliding
/// variants.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LowerProfile {
    works: Vec<usize>,
}

impl LowerProfile {
    /// How many eligible statements emit loops at `loop_threshold` — the
    /// canonical equivalence class of the threshold for this (program,
    /// policy, ν): equal class ⇒ identical decisions everywhere ⇒
    /// byte-identical generated code.
    pub fn loop_class(&self, loop_threshold: usize) -> usize {
        self.works.iter().filter(|&&w| w > loop_threshold).count()
    }

    /// Number of loop-eligible statements recorded.
    pub fn len(&self) -> usize {
        self.works.len()
    }

    /// Whether no statement was loop-eligible (every threshold collides).
    pub fn is_empty(&self) -> bool {
        self.works.is_empty()
    }
}

/// Lower a basic program into one C-IR function named `name`.
///
/// # Errors
///
/// Returns [`LgenError`] for statement shapes outside the supported class
/// (which the synthesis stage never produces).
pub fn lower_program(
    program: &Program,
    basic: &BasicProgram,
    name: &str,
    opts: &LowerOptions,
) -> Result<Function, LgenError> {
    lower_program_profiled(program, basic, name, opts).map(|(f, _)| f)
}

/// [`lower_program`], additionally returning the [`LowerProfile`]
/// recorded during this (real) lowering — profile and function cannot
/// drift apart because they come from the same walk.
pub fn lower_program_profiled(
    program: &Program,
    basic: &BasicProgram,
    name: &str,
    opts: &LowerOptions,
) -> Result<(Function, LowerProfile), LgenError> {
    let mut fb = FunctionBuilder::new(name, opts.nu);
    let bufs = BufferMap::build(program, &mut fb);
    let mut ctx =
        Ctx { program, fb, bufs, opts: *opts, temp_count: 0, profile: LowerProfile::default() };
    for stmt in &basic.stmts {
        ctx.lower_stmt(stmt)?;
    }
    Ok((ctx.fb.finish(), ctx.profile))
}

/// A scalar multiplicative factor of a product term.
#[derive(Debug, Clone)]
enum SFactor {
    View(View),
    Lit(f64),
    /// `1 / view` — the paper's R1 reciprocal rewrite.
    Recip(View),
}

/// One additive term: ±(Π scalars)·(0–2 matrix factors).
#[derive(Debug, Clone)]
struct ProductTerm {
    neg: bool,
    scalars: Vec<SFactor>,
    mats: Vec<View>,
}

struct Ctx<'p> {
    program: &'p Program,
    fb: FunctionBuilder,
    bufs: BufferMap,
    opts: LowerOptions,
    temp_count: usize,
    profile: LowerProfile,
}

impl<'p> Ctx<'p> {
    fn nu(&self) -> usize {
        self.opts.nu
    }

    // ---- addressing ----

    fn elem_addr(&self, v: &View, i: &Affine, j: &Affine) -> MemRef {
        let (r, c) = if v.trans { (j, i) } else { (i, j) };
        let stride = self.bufs.stride(v.op) as i64;
        let off = r.offset(v.r0 as i64).scaled(stride).plus(&c.offset(v.c0 as i64));
        MemRef::new(self.bufs.buf(v.op), off)
    }

    fn elem_addr_c(&self, v: &View, i: usize, j: usize) -> MemRef {
        self.elem_addr(v, &Affine::constant(i as i64), &Affine::constant(j as i64))
    }

    /// Structure of the operand backing a view (temps are dense).
    fn op_structure(&self, v: &View) -> Structure {
        if self.bufs.is_temp(v.op) {
            Structure::General
        } else {
            self.program.operand(v.op).structure
        }
    }

    /// Whether element `(i, j)` of the view (view coordinates) is
    /// structurally zero in the operand's storage.
    fn elem_zero(&self, v: &View, i: usize, j: usize) -> bool {
        let (r, c) = if v.trans { (j, i) } else { (i, j) };
        self.op_structure(v).is_zero_at(v.r0 + r, v.c0 + c)
    }

    /// Whether storing element `(i, j)` of the LHS view is suppressed
    /// (structural-zero half of triangular outputs, mirrored half of
    /// symmetric outputs restricted to canonical storage).
    fn store_dead(&self, v: &View, i: usize, j: usize) -> bool {
        let (r, c) = (v.r0 + i, v.c0 + j);
        match v.structure {
            Structure::LowerTriangular | Structure::UpperTriangular => v.structure.is_zero_at(r, c),
            Structure::Symmetric(_) => v.structure.is_mirrored_at(r, c),
            _ => false,
        }
    }

    /// Lane delta (elements) between consecutive columns of a view row.
    fn row_delta(&self, v: &View) -> i64 {
        if v.trans {
            self.bufs.stride(v.op) as i64
        } else {
            1
        }
    }

    /// Lane delta between consecutive rows of a view column.
    fn col_delta(&self, v: &View) -> i64 {
        if v.trans {
            1
        } else {
            self.bufs.stride(v.op) as i64
        }
    }

    /// Load a masked row chunk `v[i, j0 .. j0+len)`. Returns `None` if all
    /// lanes are structurally zero.
    fn load_row_chunk(&mut self, v: &View, i: usize, j0: usize, len: usize) -> Option<VReg> {
        let nu = self.nu();
        let delta = self.row_delta(v);
        let lanes: Vec<Option<i64>> = (0..nu)
            .map(|l| {
                if l < len && !self.elem_zero(v, i, j0 + l) {
                    Some(l as i64 * delta)
                } else {
                    None
                }
            })
            .collect();
        if lanes.iter().all(Option::is_none) {
            return None;
        }
        let base = self.elem_addr_c(v, i, j0);
        Some(self.fb.vload(base, lanes))
    }

    /// Load a masked column chunk `v[i0 .. i0+len, j)`.
    fn load_col_chunk(&mut self, v: &View, i0: usize, j: usize, len: usize) -> Option<VReg> {
        let nu = self.nu();
        let delta = self.col_delta(v);
        let lanes: Vec<Option<i64>> = (0..nu)
            .map(|l| {
                if l < len && !self.elem_zero(v, i0 + l, j) {
                    Some(l as i64 * delta)
                } else {
                    None
                }
            })
            .collect();
        if lanes.iter().all(Option::is_none) {
            return None;
        }
        let base = self.elem_addr_c(v, i0, j);
        Some(self.fb.vload(base, lanes))
    }

    /// Broadcast-load one element (all lanes identical — costed as a
    /// single broadcast load by the machine model).
    fn load_bcast(&mut self, v: &View, i: usize, j: usize) -> VReg {
        let nu = self.nu();
        let base = self.elem_addr_c(v, i, j);
        self.fb.vload(base, vec![Some(0); nu])
    }

    fn load_bcast_affine(&mut self, v: &View, i: &Affine, j: &Affine) -> VReg {
        let nu = self.nu();
        let base = self.elem_addr(v, i, j);
        self.fb.vload(base, vec![Some(0); nu])
    }

    // ---- scalar expression path ----

    fn scalar_view(&mut self, v: &View) -> SReg {
        let addr = self.elem_addr_c(v, 0, 0);
        self.fb.sload(addr)
    }

    fn eval_scalar(&mut self, e: &VExpr) -> Result<SOperand, LgenError> {
        match e {
            VExpr::Lit(x) => Ok(SOperand::Imm(*x)),
            VExpr::View(v) if v.is_scalar() => Ok(self.scalar_view(v).into()),
            VExpr::Add(a, b) | VExpr::Sub(a, b) => {
                let op = if matches!(e, VExpr::Add(..)) { BinOp::Add } else { BinOp::Sub };
                let x = self.eval_scalar(a)?;
                let y = self.eval_scalar(b)?;
                Ok(self.fb.sbin(op, x, y).into())
            }
            VExpr::Mul(a, b) => {
                // dot-shaped contraction: (1×k)·(k×1)
                if a.rows() == 1 && b.cols() == 1 && a.cols() > 1 {
                    match (a.as_ref(), b.as_ref()) {
                        (VExpr::View(av), VExpr::View(bv)) => return Ok(self.dot(av, bv)?.into()),
                        _ => {
                            return Err(LgenError::Unsupported(
                                "dot of compound expressions".into(),
                            ))
                        }
                    }
                }
                let x = self.eval_scalar(a)?;
                let y = self.eval_scalar(b)?;
                Ok(self.fb.sbin(BinOp::Mul, x, y).into())
            }
            VExpr::Div(a, b) => {
                let x = self.eval_scalar(a)?;
                let y = self.eval_scalar(b)?;
                Ok(self.fb.sbin(BinOp::Div, x, y).into())
            }
            VExpr::Sqrt(a) => {
                let x = self.eval_scalar(a)?;
                Ok(self.fb.ssqrt(x).into())
            }
            VExpr::Neg(a) => {
                let x = self.eval_scalar(a)?;
                Ok(self.fb.sbin(BinOp::Sub, 0.0, x).into())
            }
            VExpr::View(v) => {
                Err(LgenError::Shape(format!("non-scalar view {v} in scalar context")))
            }
        }
    }

    /// Vectorized dot product of a `1×k` view with a `k×1` view.
    fn dot(&mut self, a: &View, b: &View) -> Result<SReg, LgenError> {
        let k = a.cols();
        if b.rows() != k {
            return Err(LgenError::Shape("dot length mismatch".into()));
        }
        let nu = self.nu();
        if nu == 1 || k <= 2 * nu {
            // short contractions: scalar accumulation avoids putting the
            // horizontal reduce on the (often division-bound) critical
            // path — the ν-BLAC choice LGen makes for small codelets
            let mut acc: Option<SReg> = None;
            for p in 0..k {
                if self.elem_zero(a, 0, p) || self.elem_zero(b, p, 0) {
                    continue;
                }
                let xa = self.fb.sload(self.elem_addr_c(a, 0, p));
                let xb = self.fb.sload(self.elem_addr_c(b, p, 0));
                let prod = self.fb.sbin(BinOp::Mul, xa, xb);
                acc = Some(match acc {
                    None => prod,
                    Some(s) => self.fb.sbin(BinOp::Add, s, prod),
                });
            }
            return Ok(acc.unwrap_or_else(|| self.fb.smov(0.0)));
        }
        let mut acc: Option<VReg> = None;
        let mut p = 0;
        while p < k {
            let len = nu.min(k - p);
            let va = self.load_row_chunk(a, 0, p, len);
            let vb = self.load_col_chunk(b, p, 0, len);
            if let (Some(va), Some(vb)) = (va, vb) {
                let prod = self.fb.vbin(BinOp::Mul, va, vb);
                acc = Some(match acc {
                    None => prod,
                    Some(s) => self.fb.vbin(BinOp::Add, s, prod),
                });
            }
            p += len;
        }
        Ok(match acc {
            Some(v) => self.fb.vreduce_add(v),
            None => self.fb.smov(0.0),
        })
    }

    // ---- term normalization ----

    fn fresh_temp(&mut self, rows: usize, cols: usize) -> View {
        self.temp_count += 1;
        let name = format!("tmp{}", self.temp_count);
        let buf = self.fb.buffer(&name, rows * cols, BufKind::Local);
        // temps live outside the program's operand table: register them as
        // pseudo-operands via a dedicated id space
        let op = self.register_temp(buf, rows, cols);
        View { op, r0: 0, r1: rows, c0: 0, c1: cols, trans: false, structure: Structure::General }
    }

    fn register_temp(
        &mut self,
        buf: slingen_cir::BufId,
        rows: usize,
        cols: usize,
    ) -> slingen_ir::OpId {
        self.bufs.register_temp(buf, rows, cols)
    }

    /// Materialize a sub-expression into a fresh temporary.
    fn materialize(&mut self, e: &VExpr) -> Result<View, LgenError> {
        let (r, c) = (e.rows(), e.cols());
        let t = self.fresh_temp(r, c);
        self.lower_stmt(&BasicStmt { lhs: t, rhs: e.clone() })?;
        Ok(t)
    }

    fn flatten(&mut self, e: &VExpr) -> Result<Vec<ProductTerm>, LgenError> {
        match e {
            VExpr::View(v) => {
                if v.is_scalar() {
                    Ok(vec![ProductTerm {
                        neg: false,
                        scalars: vec![SFactor::View(*v)],
                        mats: vec![],
                    }])
                } else {
                    Ok(vec![ProductTerm { neg: false, scalars: vec![], mats: vec![*v] }])
                }
            }
            VExpr::Lit(x) => {
                Ok(vec![ProductTerm { neg: false, scalars: vec![SFactor::Lit(*x)], mats: vec![] }])
            }
            VExpr::Neg(a) => {
                let mut ts = self.flatten(a)?;
                for t in &mut ts {
                    t.neg = !t.neg;
                }
                Ok(ts)
            }
            VExpr::Add(a, b) | VExpr::Sub(a, b) => {
                let mut ts = self.flatten(a)?;
                let mut rs = self.flatten(b)?;
                if matches!(e, VExpr::Sub(..)) {
                    for t in &mut rs {
                        t.neg = !t.neg;
                    }
                }
                ts.extend(rs);
                Ok(ts)
            }
            VExpr::Mul(a, b) => {
                let fa = self.flatten(a)?;
                let fa = if fa.len() == 1 {
                    fa.into_iter().next().unwrap()
                } else {
                    let t = self.materialize(a)?;
                    ProductTerm { neg: false, scalars: vec![], mats: vec![t] }
                };
                let fb = self.flatten(b)?;
                let fb = if fb.len() == 1 {
                    fb.into_iter().next().unwrap()
                } else {
                    let t = self.materialize(b)?;
                    ProductTerm { neg: false, scalars: vec![], mats: vec![t] }
                };
                let mut mats = fa.mats;
                mats.extend(fb.mats);
                while mats.len() > 2 {
                    // contract the leftmost pair into a temporary
                    let m0 = mats.remove(0);
                    let m1 = mats.remove(0);
                    let t = self.materialize(&VExpr::Mul(
                        Box::new(VExpr::View(m0)),
                        Box::new(VExpr::View(m1)),
                    ))?;
                    mats.insert(0, t);
                }
                let mut scalars = fa.scalars;
                scalars.extend(fb.scalars);
                Ok(vec![ProductTerm { neg: fa.neg ^ fb.neg, scalars, mats }])
            }
            VExpr::Div(a, b) => {
                let mut ts = self.flatten(a)?;
                let recip = match b.as_ref() {
                    VExpr::View(v) if v.is_scalar() => SFactor::Recip(*v),
                    VExpr::Lit(x) => SFactor::Lit(1.0 / x),
                    other => {
                        return Err(LgenError::Unsupported(format!("non-scalar divisor {other:?}")))
                    }
                };
                for t in &mut ts {
                    t.scalars.push(recip.clone());
                }
                Ok(ts)
            }
            VExpr::Sqrt(_) => Err(LgenError::Unsupported("sqrt outside scalar statements".into())),
        }
    }

    /// Evaluate a term's scalar coefficient once (rule R1 for
    /// reciprocals). Returns `None` when the coefficient is 1.
    fn eval_coeff(&mut self, t: &ProductTerm) -> Option<SOperand> {
        let mut acc: Option<SOperand> = None;
        for f in &t.scalars {
            let v: SOperand = match f {
                SFactor::Lit(x) => (*x).into(),
                SFactor::View(v) => self.scalar_view(v).into(),
                SFactor::Recip(v) => {
                    let s = self.scalar_view(v);
                    self.fb.sbin(BinOp::Div, 1.0, s).into()
                }
            };
            acc = Some(match acc {
                None => v,
                Some(a) => self.fb.sbin(BinOp::Mul, a, v).into(),
            });
        }
        acc
    }

    // ---- statement lowering ----

    fn lower_stmt(&mut self, stmt: &BasicStmt) -> Result<(), LgenError> {
        let lhs = &stmt.lhs;
        if lhs.is_scalar() {
            let val = self.eval_scalar(&stmt.rhs)?;
            let addr = self.elem_addr_c(lhs, 0, 0);
            self.fb.sstore(val, addr);
            return Ok(());
        }
        let terms = self.flatten(&stmt.rhs)?;
        // Output aliasing: a contraction that *reads* the destination
        // buffer (e.g. `x = F·x + B·u`) cannot be computed in place tile
        // by tile. Evaluate into a temporary, then copy. Element-aligned
        // reads of the destination (accumulations like `X = X − A·B`)
        // remain in place.
        let lhs_buf = self.bufs.buf(lhs.op);
        let overlaps = |v: &slingen_synth::term::View| {
            self.bufs.buf(v.op) == lhs_buf
                && v.r0 < lhs.r1
                && lhs.r0 < v.r1
                && v.c0 < lhs.c1
                && lhs.c0 < v.c1
        };
        let aligned = |v: &slingen_synth::term::View| {
            !v.trans && (v.r0, v.r1, v.c0, v.c1) == (lhs.r0, lhs.r1, lhs.c0, lhs.c1)
        };
        let hazard = terms.iter().any(|t| {
            let product = t.mats.len() == 2;
            t.mats.iter().any(|v| overlaps(v) && (product || !aligned(v)))
        });
        if hazard {
            let tmp = self.fresh_temp(lhs.rows(), lhs.cols());
            self.lower_stmt(&BasicStmt { lhs: tmp, rhs: stmt.rhs.clone() })?;
            return self.lower_stmt(&BasicStmt { lhs: *lhs, rhs: VExpr::View(tmp) });
        }
        // evaluate coefficients once per statement
        let coeffs: Vec<Option<SOperand>> =
            terms.iter().map(|t| self.eval_coeff(t)).collect::<Vec<_>>();

        let dense = lhs.structure == Structure::General
            && terms.iter().all(|t| {
                t.mats.iter().all(|v| {
                    matches!(self.op_structure(v), Structure::General | Structure::Symmetric(_))
                })
            });
        let nu = self.nu();
        let (rows, cols) = (lhs.rows(), lhs.cols());
        let tiles = rows.div_ceil(nu) * cols.div_ceil(nu);
        let work: usize = tiles
            * terms
                .iter()
                .map(|t| match t.mats.len() {
                    2 => t.mats[0].cols().div_ceil(nu).max(1),
                    _ => 1,
                })
                .sum::<usize>()
                .max(1);
        if dense && nu > 1 && cols > 1 {
            // loop-eligible: the threshold decides below; record the work
            // value so the profile can replay this decision at any
            // threshold (see `LowerProfile`)
            self.profile.works.push(work);
        }
        if dense && nu > 1 && work > self.opts.loop_threshold && cols > 1 {
            self.emit_looped(lhs, &terms, &coeffs)?;
        } else if cols == 1 && rows > 1 && nu > 1 {
            self.emit_vector(lhs, &terms, &coeffs)?;
        } else {
            self.emit_unrolled(lhs, &terms, &coeffs)?;
        }
        Ok(())
    }

    /// Straight-line tiles (structure-aware; handles every statement
    /// shape).
    fn emit_unrolled(
        &mut self,
        lhs: &View,
        terms: &[ProductTerm],
        coeffs: &[Option<SOperand>],
    ) -> Result<(), LgenError> {
        let nu = self.nu();
        let (rows, cols) = (lhs.rows(), lhs.cols());
        let mut ti = 0;
        while ti < rows {
            let tr = nu.min(rows - ti);
            let mut tj = 0;
            while tj < cols {
                let tc = nu.min(cols - tj);
                self.emit_tile(lhs, terms, coeffs, ti, tr, tj, tc)?;
                tj += tc;
            }
            ti += tr;
        }
        Ok(())
    }

    /// One `tr × tc` tile at concrete origin, lanes along columns.
    #[allow(clippy::too_many_arguments)]
    fn emit_tile(
        &mut self,
        lhs: &View,
        terms: &[ProductTerm],
        coeffs: &[Option<SOperand>],
        ti: usize,
        tr: usize,
        tj: usize,
        tc: usize,
    ) -> Result<(), LgenError> {
        let nu = self.nu();
        // store masks per row; skip fully dead tiles
        let store_lanes: Vec<Vec<Option<i64>>> = (0..tr)
            .map(|r| {
                let delta = self.row_delta(lhs);
                (0..nu)
                    .map(|l| {
                        if l < tc && !self.store_dead(lhs, ti + r, tj + l) {
                            Some(l as i64 * delta)
                        } else {
                            None
                        }
                    })
                    .collect()
            })
            .collect();
        if store_lanes.iter().all(|ls| ls.iter().all(Option::is_none)) {
            return Ok(());
        }
        if nu == 1 {
            return self.emit_tile_scalar(lhs, terms, coeffs, ti, tr, tj, tc, &store_lanes);
        }
        let mut acc: Vec<Option<VReg>> = vec![None; tr];
        let add = |fb: &mut FunctionBuilder,
                   acc: &mut Vec<Option<VReg>>,
                   r: usize,
                   v: VReg,
                   neg: bool| {
            acc[r] = Some(match acc[r] {
                None => {
                    if neg {
                        let z = fb.vbroadcast(0.0);
                        fb.vbin(BinOp::Sub, z, v)
                    } else {
                        v
                    }
                }
                Some(a) => fb.vbin(if neg { BinOp::Sub } else { BinOp::Add }, a, v),
            });
        };
        for (t, coeff) in terms.iter().zip(coeffs) {
            match t.mats.len() {
                0 => {
                    // constant fill (coefficient broadcast)
                    let c = coeff.unwrap_or(SOperand::Imm(1.0));
                    let bc = self.fb.vbroadcast(c);
                    for r in 0..tr {
                        add(&mut self.fb, &mut acc, r, bc, t.neg);
                    }
                }
                1 => {
                    let v = t.mats[0];
                    let cb = coeff.map(|c| self.fb.vbroadcast(c));
                    for r in 0..tr {
                        if let Some(mut chunk) = self.load_row_chunk(&v, ti + r, tj, tc) {
                            if let Some(cb) = cb {
                                chunk = self.fb.vbin(BinOp::Mul, chunk, cb);
                            }
                            add(&mut self.fb, &mut acc, r, chunk, t.neg);
                        }
                    }
                }
                2 => {
                    let (a, b) = (t.mats[0], t.mats[1]);
                    let k_len = a.cols();
                    if b.rows() != k_len {
                        return Err(LgenError::Shape("product inner dims".into()));
                    }
                    let cb = coeff.map(|c| self.fb.vbroadcast(c));
                    for k in 0..k_len {
                        let vb = match self.load_row_chunk(&b, k, tj, tc) {
                            Some(v) => v,
                            None => continue,
                        };
                        let vb = match cb {
                            Some(cb) => self.fb.vbin(BinOp::Mul, vb, cb),
                            None => vb,
                        };
                        for r in 0..tr {
                            if self.elem_zero(&a, ti + r, k) {
                                continue;
                            }
                            let va = self.load_bcast(&a, ti + r, k);
                            let p = self.fb.vbin(BinOp::Mul, va, vb);
                            add(&mut self.fb, &mut acc, r, p, t.neg);
                        }
                    }
                }
                _ => unreachable!("flatten bounds products at 2"),
            }
        }
        for (r, lanes) in store_lanes.iter().enumerate() {
            if lanes.iter().all(Option::is_none) {
                continue;
            }
            let v = match acc[r] {
                Some(v) => v,
                None => self.fb.vbroadcast(0.0),
            };
            let base = self.elem_addr_c(lhs, ti + r, tj);
            self.fb.vstore(v, base, lanes.clone());
        }
        Ok(())
    }

    /// Scalar (ν = 1) tile emission.
    #[allow(clippy::too_many_arguments)]
    fn emit_tile_scalar(
        &mut self,
        lhs: &View,
        terms: &[ProductTerm],
        coeffs: &[Option<SOperand>],
        ti: usize,
        tr: usize,
        tj: usize,
        tc: usize,
        _store_lanes: &[Vec<Option<i64>>],
    ) -> Result<(), LgenError> {
        for r in 0..tr {
            for c in 0..tc {
                if self.store_dead(lhs, ti + r, tj + c) {
                    continue;
                }
                let mut acc: Option<SReg> = None;
                for (t, coeff) in terms.iter().zip(coeffs) {
                    let contrib: Option<SOperand> = match t.mats.len() {
                        0 => Some(coeff.unwrap_or(SOperand::Imm(1.0))),
                        1 => {
                            let v = t.mats[0];
                            if self.elem_zero(&v, ti + r, tj + c) {
                                None
                            } else {
                                let x = self.fb.sload(self.elem_addr_c(&v, ti + r, tj + c));
                                Some(match coeff {
                                    Some(cf) => self.fb.sbin(BinOp::Mul, x, *cf).into(),
                                    None => x.into(),
                                })
                            }
                        }
                        2 => {
                            let (a, b) = (t.mats[0], t.mats[1]);
                            let mut sum: Option<SReg> = None;
                            for k in 0..a.cols() {
                                if self.elem_zero(&a, ti + r, k) || self.elem_zero(&b, k, tj + c) {
                                    continue;
                                }
                                let xa = self.fb.sload(self.elem_addr_c(&a, ti + r, k));
                                let xb = self.fb.sload(self.elem_addr_c(&b, k, tj + c));
                                let p = self.fb.sbin(BinOp::Mul, xa, xb);
                                sum = Some(match sum {
                                    None => p,
                                    Some(s) => self.fb.sbin(BinOp::Add, s, p),
                                });
                            }
                            sum.map(|s| match coeff {
                                Some(cf) => self.fb.sbin(BinOp::Mul, s, *cf).into(),
                                None => s.into(),
                            })
                        }
                        _ => unreachable!(),
                    };
                    if let Some(x) = contrib {
                        acc = Some(match acc {
                            None => {
                                if t.neg {
                                    self.fb.sbin(BinOp::Sub, 0.0, x)
                                } else {
                                    match x {
                                        SOperand::Reg(rg) => rg,
                                        imm => self.fb.smov(imm),
                                    }
                                }
                            }
                            Some(aa) => {
                                self.fb.sbin(if t.neg { BinOp::Sub } else { BinOp::Add }, aa, x)
                            }
                        });
                    }
                }
                let out: SOperand = match acc {
                    Some(a) => a.into(),
                    None => 0.0.into(),
                };
                let addr = self.elem_addr_c(lhs, ti + r, tj + c);
                self.fb.sstore(out, addr);
            }
        }
        Ok(())
    }

    /// Column-vector left-hand sides: lanes along rows, dot-row products.
    fn emit_vector(
        &mut self,
        lhs: &View,
        terms: &[ProductTerm],
        coeffs: &[Option<SOperand>],
    ) -> Result<(), LgenError> {
        let nu = self.nu();
        let rows = lhs.rows();
        let mut i0 = 0;
        while i0 < rows {
            let len = nu.min(rows - i0);
            let mut acc: Option<VReg> = None;
            for (t, coeff) in terms.iter().zip(coeffs) {
                let contrib: Option<VReg> = match t.mats.len() {
                    0 => {
                        let c = coeff.unwrap_or(SOperand::Imm(1.0));
                        Some(self.fb.vbroadcast(c))
                    }
                    1 => {
                        let v = t.mats[0];
                        let chunk = self.load_col_chunk(&v, i0, 0, len);
                        match (chunk, coeff) {
                            (Some(ch), Some(cf)) => {
                                let cb = self.fb.vbroadcast(*cf);
                                Some(self.fb.vbin(BinOp::Mul, ch, cb))
                            }
                            (Some(ch), None) => Some(ch),
                            (None, _) => None,
                        }
                    }
                    2 => {
                        // A·x accumulated column-wise: per k broadcast x[k]
                        let (a, x) = (t.mats[0], t.mats[1]);
                        let mut sum: Option<VReg> = None;
                        for k in 0..a.cols() {
                            if self.elem_zero(&x, k, 0) {
                                continue;
                            }
                            let va = match self.load_col_chunk(&a, i0, k, len) {
                                Some(v) => v,
                                None => continue,
                            };
                            let xb = self.load_bcast(&x, k, 0);
                            let p = self.fb.vbin(BinOp::Mul, va, xb);
                            sum = Some(match sum {
                                None => p,
                                Some(s) => self.fb.vbin(BinOp::Add, s, p),
                            });
                        }
                        match (sum, coeff) {
                            (Some(s), Some(cf)) => {
                                let cb = self.fb.vbroadcast(*cf);
                                Some(self.fb.vbin(BinOp::Mul, s, cb))
                            }
                            (Some(s), None) => Some(s),
                            (None, _) => None,
                        }
                    }
                    _ => unreachable!(),
                };
                if let Some(v) = contrib {
                    acc = Some(match acc {
                        None => {
                            if t.neg {
                                let z = self.fb.vbroadcast(0.0);
                                self.fb.vbin(BinOp::Sub, z, v)
                            } else {
                                v
                            }
                        }
                        Some(a) => self.fb.vbin(if t.neg { BinOp::Sub } else { BinOp::Add }, a, v),
                    });
                }
            }
            let out = match acc {
                Some(v) => v,
                None => self.fb.vbroadcast(0.0),
            };
            let delta = self.col_delta(lhs);
            let lanes: Vec<Option<i64>> =
                (0..nu).map(|l| if l < len { Some(l as i64 * delta) } else { None }).collect();
            let base = self.elem_addr_c(lhs, i0, 0);
            self.fb.vstore(out, base, lanes);
            i0 += len;
        }
        Ok(())
    }

    /// Affine loop nest over full tiles (dense statements only), with
    /// peeled edges.
    fn emit_looped(
        &mut self,
        lhs: &View,
        terms: &[ProductTerm],
        coeffs: &[Option<SOperand>],
    ) -> Result<(), LgenError> {
        let nu = self.nu();
        let (rows, cols) = (lhs.rows(), lhs.cols());
        let full_r = rows / nu * nu;
        let full_c = cols / nu * nu;
        if full_r > 0 && full_c > 0 {
            let bi = self.fb.begin_for(0, full_r as i64, nu as i64);
            let bj = self.fb.begin_for(0, full_c as i64, nu as i64);
            let iv = Affine::var(bi);
            let jv = Affine::var(bj);
            let mut acc: Vec<Option<VReg>> = vec![None; nu];
            for (t, coeff) in terms.iter().zip(coeffs) {
                match t.mats.len() {
                    0 => {
                        let c = coeff.unwrap_or(SOperand::Imm(1.0));
                        let bc = self.fb.vbroadcast(c);
                        for slot in acc.iter_mut() {
                            *slot = Some(accumulate(&mut self.fb, *slot, bc, t.neg));
                        }
                    }
                    1 => {
                        let v = t.mats[0];
                        let cb = coeff.map(|c| self.fb.vbroadcast(c));
                        #[allow(clippy::needless_range_loop)]
                        for r in 0..nu {
                            let base = self.elem_addr(&v, &iv.offset(r as i64), &jv);
                            let delta = self.row_delta(&v);
                            let lanes = (0..nu).map(|l| Some(l as i64 * delta)).collect();
                            let mut chunk = self.fb.vload(base, lanes);
                            if let Some(cb) = cb {
                                chunk = self.fb.vbin(BinOp::Mul, chunk, cb);
                            }
                            acc[r] = Some(accumulate(&mut self.fb, acc[r], chunk, t.neg));
                        }
                    }
                    2 => {
                        let (a, b) = (t.mats[0], t.mats[1]);
                        let k_len = a.cols() as i64;
                        let cb = coeff.map(|c| self.fb.vbroadcast(c));
                        // accumulators must live across loop iterations:
                        // materialize them before entering the k loop
                        for slot in acc.iter_mut() {
                            if slot.is_none() {
                                *slot = Some(self.fb.vbroadcast(0.0));
                            }
                        }
                        let kv = self.fb.begin_for(0, k_len, 1);
                        let kvv = Affine::var(kv);
                        let bbase = self.elem_addr(&b, &kvv, &jv);
                        let bdelta = self.row_delta(&b);
                        let blanes: Vec<Option<i64>> =
                            (0..nu).map(|l| Some(l as i64 * bdelta)).collect();
                        let mut vb = self.fb.vload(bbase, blanes);
                        if let Some(cb) = cb {
                            vb = self.fb.vbin(BinOp::Mul, vb, cb);
                        }
                        #[allow(clippy::needless_range_loop)]
                        for r in 0..nu {
                            let va = self.load_bcast_affine(&a, &iv.offset(r as i64), &kvv);
                            let p = self.fb.vbin(BinOp::Mul, va, vb);
                            let slot = acc[r].expect("accumulator initialized");
                            let op = if t.neg { BinOp::Sub } else { BinOp::Add };
                            self.fb.instr(slingen_cir::Instr::VBin {
                                op,
                                dst: slot,
                                a: slot,
                                b: p,
                            });
                        }
                        self.fb.end_for();
                    }
                    _ => unreachable!(),
                }
            }
            // store the tile
            for (r, slot) in acc.iter().enumerate() {
                let v = match slot {
                    Some(v) => *v,
                    None => self.fb.vbroadcast(0.0),
                };
                let base = self.elem_addr(lhs, &iv.offset(r as i64), &jv);
                let delta = self.row_delta(lhs);
                let lanes = (0..nu).map(|l| Some(l as i64 * delta)).collect();
                self.fb.vstore(v, base, lanes);
            }
            self.fb.end_for();
            self.fb.end_for();
        }
        // peeled edges: bottom strip and right strip (straight-line)
        let mut ti = 0;
        while ti < rows {
            let tr = nu.min(rows - ti);
            let mut tj = 0;
            while tj < cols {
                let tc = nu.min(cols - tj);
                let in_loop = ti + tr <= full_r && tj + tc <= full_c;
                if !in_loop {
                    self.emit_tile(lhs, terms, coeffs, ti, tr, tj, tc)?;
                }
                tj += tc;
            }
            ti += tr;
        }
        Ok(())
    }
}

fn accumulate(fb: &mut FunctionBuilder, acc: Option<VReg>, v: VReg, neg: bool) -> VReg {
    match acc {
        None => {
            if neg {
                let z = fb.vbroadcast(0.0);
                fb.vbin(BinOp::Sub, z, v)
            } else {
                v
            }
        }
        Some(a) => fb.vbin(if neg { BinOp::Sub } else { BinOp::Add }, a, v),
    }
}
