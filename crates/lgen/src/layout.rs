//! Operand-to-buffer layout.
//!
//! Each LA operand maps to one row-major buffer; operands related by
//! `ow(..)` share a buffer (which is how the paper's Fig. 5 Cholesky
//! overwrites `S` with `U` without a copy). Distinct buffers never alias —
//! the invariant the C-IR passes rely on.

use slingen_cir::{BufId, BufKind, FunctionBuilder};
use slingen_ir::{OpId, Program};

/// The operand → buffer mapping for one generated function.
///
/// Temporaries introduced during lowering (for nested products) are
/// registered as pseudo-operands with ids beyond the program's operand
/// table; they are always dense (`General`).
#[derive(Debug, Clone)]
pub struct BufferMap {
    buf_of: Vec<BufId>,
    stride_of: Vec<usize>,
    temps: Vec<(BufId, usize)>,
}

impl BufferMap {
    /// Declare buffers for all of `program`'s operands in `fb`, honoring
    /// `ow(..)` storage sharing.
    pub fn build(program: &Program, fb: &mut FunctionBuilder) -> BufferMap {
        let n = program.operands().len();
        let mut buf_of: Vec<Option<BufId>> = vec![None; n];
        let mut stride_of = vec![0usize; n];
        // resolve ow chains to their root operand
        let root = |mut id: OpId| -> OpId {
            let mut guard = 0;
            while let Some(target) = program.operand(id).overwrites {
                id = target;
                guard += 1;
                assert!(guard <= n, "cyclic ow(..) chain");
            }
            id
        };
        // an ow-shared buffer is readable if any member reads it and
        // writable if any member writes it
        for i in 0..n {
            let id = OpId(i);
            let decl = program.operand(id);
            stride_of[i] = decl.shape.cols;
            let r = root(id);
            if let Some(existing) = buf_of[r.0] {
                buf_of[i] = Some(existing);
                continue;
            }
            // collect io across all sharers of this root
            let mut readable = false;
            let mut writable = false;
            for j in 0..n {
                if root(OpId(j)) == r {
                    let io = program.operand(OpId(j)).io;
                    readable |= io.readable_at_entry();
                    writable |= io.writable();
                }
            }
            let kind = match (readable, writable) {
                (true, true) => BufKind::ParamInOut,
                (true, false) => BufKind::ParamIn,
                (false, true) => BufKind::ParamOut,
                (false, false) => BufKind::ParamIn,
            };
            let rdecl = program.operand(r);
            let len = rdecl.shape.rows * rdecl.shape.cols;
            let b = fb.buffer(&rdecl.name, len, kind);
            buf_of[r.0] = Some(b);
            buf_of[i] = Some(b);
        }
        BufferMap {
            buf_of: buf_of.into_iter().map(Option::unwrap).collect(),
            stride_of,
            temps: Vec::new(),
        }
    }

    /// Register a lowering temporary; returns its pseudo operand id.
    pub fn register_temp(&mut self, buf: BufId, _rows: usize, cols: usize) -> OpId {
        self.temps.push((buf, cols));
        OpId(self.buf_of.len() + self.temps.len() - 1)
    }

    /// Whether `op` is a lowering temporary (not in the program's table).
    pub fn is_temp(&self, op: OpId) -> bool {
        op.0 >= self.buf_of.len()
    }

    /// The buffer holding `op`'s data.
    pub fn buf(&self, op: OpId) -> BufId {
        if op.0 < self.buf_of.len() {
            self.buf_of[op.0]
        } else {
            self.temps[op.0 - self.buf_of.len()].0
        }
    }

    /// Row stride (elements) of `op`'s storage.
    pub fn stride(&self, op: OpId) -> usize {
        if op.0 < self.stride_of.len() {
            self.stride_of[op.0]
        } else {
            self.temps[op.0 - self.stride_of.len()].1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slingen_ir::{Expr, OperandDecl, ProgramBuilder, Structure};

    #[test]
    fn ow_shares_buffers() {
        let mut b = ProgramBuilder::new("t");
        let s = b.declare(OperandDecl::mat_in("S", 4, 4));
        let mut u = OperandDecl::mat_out("U", 4, 4).with_structure(Structure::UpperTriangular);
        u.overwrites = Some(s);
        let u = b.declare(u);
        let w = b.declare(OperandDecl::mat_out("W", 4, 4));
        b.assign(w, Expr::op(s));
        b.equation(Expr::op(u).t().mul(Expr::op(u)), Expr::op(s));
        let p = b.build().unwrap();
        let mut fb = FunctionBuilder::new("f", 4);
        let map = BufferMap::build(&p, &mut fb);
        assert_eq!(map.buf(s), map.buf(u), "ow(..) shares storage");
        assert_ne!(map.buf(s), map.buf(w));
        let f = fb.finish();
        // shared buffer must be inout (read as S, written as U)
        let shared = &f.buffers[map.buf(s).0];
        assert_eq!(shared.kind, BufKind::ParamInOut);
        assert_eq!(f.buffers.len(), 2);
    }

    #[test]
    fn strides_follow_declared_cols() {
        let mut b = ProgramBuilder::new("t");
        let a = b.declare(OperandDecl::mat_in("A", 3, 7));
        let x = b.declare(OperandDecl::vec_in("x", 7));
        let y = b.declare(OperandDecl::vec_out("y", 3));
        b.assign(y, Expr::op(a).mul(Expr::op(x)));
        let p = b.build().unwrap();
        let mut fb = FunctionBuilder::new("f", 4);
        let map = BufferMap::build(&p, &mut fb);
        assert_eq!(map.stride(a), 7);
        assert_eq!(map.stride(x), 1);
        assert_eq!(map.stride(y), 1);
    }

    #[test]
    fn temps_are_dense_pseudo_operands() {
        let mut b = ProgramBuilder::new("t");
        let a = b.declare(OperandDecl::mat_in("A", 4, 4));
        let y = b.declare(OperandDecl::mat_out("Y", 4, 4));
        b.assign(y, Expr::op(a));
        let p = b.build().unwrap();
        let mut fb = FunctionBuilder::new("f", 4);
        let mut map = BufferMap::build(&p, &mut fb);
        let tbuf = fb.buffer("tmp1", 12, slingen_cir::BufKind::Local);
        let t = map.register_temp(tbuf, 3, 4);
        assert!(map.is_temp(t));
        assert!(!map.is_temp(a));
        assert_eq!(map.buf(t), tbuf);
        assert_eq!(map.stride(t), 4);
    }
}
