//! # slingen-synth
//!
//! The Cl1ck-style algorithm synthesis engine (paper §2.2 and §3.1).
//!
//! Given an HLAC — an equation such as `Uᵀ·U = S` whose left-hand side
//! contains the unknown — this crate derives loop-based algorithms that
//! compute the unknown using only *basic* statements: sBLACs over operand
//! regions plus scalar divisions and square roots. The derivation follows
//! the FLAME/Cl1ck methodology:
//!
//! 1. **Conformality analysis** ([`conform`]) unifies the dimensions that
//!    must be partitioned together (a triangular operand ties its rows to
//!    its columns; a product ties the inner dimensions; ...).
//! 2. **PME generation** ([`pme`]): the chosen dimension group is split
//!    symbolically into Top/Bottom segments, operands become 2×2 block
//!    matrices with structure-derived zero and mirrored blocks, the block
//!    product is flattened, transposed-duplicate cells are discarded, and
//!    each remaining cell equation is *sequenced*: known terms become
//!    updates, and the residual pattern is matched against the operation
//!    knowledge base (Cholesky, triangular solve, triangular inverse,
//!    Sylvester/Lyapunov, assignment).
//! 3. **Algorithm construction** ([`mod@derive`]): a loop moves the partition
//!    boundary; the classic loop-invariant families correspond to *when*
//!    the PME's update atoms are applied — as late as possible
//!    ([`Policy::Lazy`], left-looking) or as early as possible
//!    ([`Policy::Eager`], right-looking). Because SLinGen targets fixed
//!    operand sizes, the loop is emitted unrolled over concrete regions,
//!    recursing into sub-HLACs with block size ν and then 1 (the paper's
//!    Figs. 7–9), down to scalar `sqrt`/`div` statements.
//!
//! Derived PMEs are memoized in an [`AlgorithmDb`] keyed by the
//! equation's shape — the paper's Stage 1a "algorithm reuse".
//!
//! The output is a [`BasicProgram`]: a straight-line sequence of
//! region-level statements consumed by the LGen-style tiling stage.

pub mod conform;
pub mod derive;
pub mod pme;
pub mod program;
pub mod term;

pub use derive::{synthesize_equation, synthesize_program, AlgorithmDb, Policy};
pub use program::{BasicProgram, BasicStmt, VExpr};
pub use term::{Term, View};

use std::fmt;

/// Errors from the synthesis engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthError {
    /// The equation's unknown-containing part matches no known operation.
    Unrecognized(String),
    /// Dimensions in one conformality group disagree.
    NonConformal(String),
    /// The equation references an unsupported construct.
    Unsupported(String),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::Unrecognized(s) => write!(f, "unrecognized operation pattern: {s}"),
            SynthError::NonConformal(s) => write!(f, "non-conformal partition: {s}"),
            SynthError::Unsupported(s) => write!(f, "unsupported construct: {s}"),
        }
    }
}

impl std::error::Error for SynthError {}
