//! Partitioned Matrix Expression (PME) generation and cell solving.
//!
//! Given an equation, a dimension group, and two concrete segment ranges
//! (Top and Bottom), this module:
//!
//! 1. partitions every term into a block grid (structure-aware: zero
//!    blocks of triangular operands fold away, the unreferenced half of a
//!    symmetric operand reads as the transpose of the stored half);
//! 2. flattens the block algebra into per-cell equations;
//! 3. *sequences* each cell: terms referencing other cells' outputs become
//!    updates with dependencies, and the residual unknown pattern is
//!    matched against the operation knowledge base.
//!
//! The caller (the derivation engine) instantiates the segments according
//! to its loop policy, so the same machinery yields left- and
//! right-looking algorithm families.

use crate::conform::{Dims, GroupId};
use crate::term::{region_term, Term, View};
use crate::SynthError;
use slingen_ir::{OpId, Program, Structure};

/// A block grid of terms (1 or 2 segments per axis).
#[derive(Debug, Clone)]
pub struct Grid {
    rows: usize,
    cols: usize,
    cells: Vec<Term>,
}

impl Grid {
    fn new(rows: usize, cols: usize, cells: Vec<Term>) -> Grid {
        debug_assert_eq!(cells.len(), rows * cols);
        Grid { rows, cols, cells }
    }

    fn single(t: Term) -> Grid {
        Grid::new(1, 1, vec![t])
    }

    /// Cell accessor.
    pub fn cell(&self, i: usize, j: usize) -> &Term {
        &self.cells[i * self.cols + j]
    }

    fn transposed(&self) -> Grid {
        let mut cells = Vec::with_capacity(self.cells.len());
        for j in 0..self.cols {
            for i in 0..self.rows {
                cells.push(self.cell(i, j).transposed());
            }
        }
        Grid::new(self.cols, self.rows, cells)
    }

    fn map(&self, f: impl Fn(&Term) -> Term) -> Grid {
        Grid::new(self.rows, self.cols, self.cells.iter().map(f).collect())
    }
}

/// Segment ranges (relative to the axis origin) for Top and Bottom.
#[derive(Debug, Clone, Copy)]
pub struct SegRanges {
    /// Top segment `[t.0, t.1)`.
    pub t: (usize, usize),
    /// Bottom segment `[b.0, b.1)`.
    pub b: (usize, usize),
}

/// Coerce a grid of literals to the requested split along rows/cols.
fn coerce(
    g: Grid,
    want_rows: usize,
    want_cols: usize,
    segs: SegRanges,
) -> Result<Grid, SynthError> {
    if g.rows == want_rows && g.cols == want_cols {
        return Ok(g);
    }
    if g.rows != 1 && g.cols != 1 {
        return Err(SynthError::NonConformal(format!(
            "cannot coerce {}x{} grid to {}x{}",
            g.rows, g.cols, want_rows, want_cols
        )));
    }
    let t_len = segs.t.1 - segs.t.0;
    let b_len = segs.b.1 - segs.b.0;
    match g.cells.first() {
        Some(Term::Ident(_)) if want_rows == 2 && want_cols == 2 => Ok(Grid::new(
            2,
            2,
            vec![
                Term::Ident(t_len),
                Term::Zero(t_len, b_len),
                Term::Zero(b_len, t_len),
                Term::Ident(b_len),
            ],
        )),
        Some(Term::Zero(r, c)) => {
            let rows: Vec<usize> = if want_rows == 2 { vec![t_len, b_len] } else { vec![*r] };
            let cols: Vec<usize> = if want_cols == 2 { vec![t_len, b_len] } else { vec![*c] };
            let mut cells = Vec::new();
            for rr in &rows {
                for cc in &cols {
                    cells.push(Term::Zero(*rr, *cc));
                }
            }
            Ok(Grid::new(rows.len(), cols.len(), cells))
        }
        other => Err(SynthError::NonConformal(format!(
            "grid shape mismatch on non-literal term {other:?}"
        ))),
    }
}

/// Partition a term into a block grid given the group and segments.
pub fn partition_term(
    program: &Program,
    term: &Term,
    dims: &mut Dims,
    group: GroupId,
    segs: SegRanges,
) -> Result<Grid, SynthError> {
    match term {
        Term::V(v) => {
            let row_in = dims.view_row_group(v).map(|g| g == group).unwrap_or(false);
            let col_in = dims.view_col_group(v).map(|g| g == group).unwrap_or(false);
            let row_ranges: Vec<(usize, usize)> = if row_in {
                vec![(v.r0 + segs.t.0, v.r0 + segs.t.1), (v.r0 + segs.b.0, v.r0 + segs.b.1)]
            } else {
                vec![(v.r0, v.r1)]
            };
            let col_ranges: Vec<(usize, usize)> = if col_in {
                vec![(v.c0 + segs.t.0, v.c0 + segs.t.1), (v.c0 + segs.b.0, v.c0 + segs.b.1)]
            } else {
                vec![(v.c0, v.c1)]
            };
            let mut cells = Vec::new();
            for (r0, r1) in &row_ranges {
                for (c0, c1) in &col_ranges {
                    cells.push(region_term(program, v.op, *r0, *r1, *c0, *c1));
                }
            }
            let g = Grid::new(row_ranges.len(), col_ranges.len(), cells);
            Ok(if v.trans { g.transposed() } else { g })
        }
        Term::Ident(n) => Ok(Grid::single(Term::Ident(*n))),
        Term::Zero(r, c) => Ok(Grid::single(Term::Zero(*r, *c))),
        Term::T(inner) => Ok(partition_term(program, inner, dims, group, segs)?.transposed()),
        Term::Neg(inner) => Ok(partition_term(program, inner, dims, group, segs)?
            .map(|t| Term::Neg(Box::new(t.clone())))),
        Term::Mul(a, b) => {
            let ga = partition_term(program, a, dims, group, segs)?;
            let gb = partition_term(program, b, dims, group, segs)?;
            // reconcile inner dimension split
            let inner = ga.cols.max(gb.rows);
            let (ga_rows, gb_cols) = (ga.rows, gb.cols);
            let ga = coerce(ga, ga_rows, inner, segs)?;
            let gb = coerce(gb, inner, gb_cols, segs)?;
            let mut cells = Vec::new();
            for i in 0..ga.rows {
                for j in 0..gb.cols {
                    let mut sum = Vec::new();
                    for k in 0..inner {
                        sum.push(Term::Mul(
                            Box::new(ga.cell(i, k).clone()),
                            Box::new(gb.cell(k, j).clone()),
                        ));
                    }
                    cells.push(Term::Add(sum));
                }
            }
            Ok(Grid::new(ga.rows, gb.cols, cells))
        }
        Term::Add(ts) => {
            let mut grids = Vec::new();
            let mut rows = 1;
            let mut cols = 1;
            for t in ts {
                let g = partition_term(program, t, dims, group, segs)?;
                rows = rows.max(g.rows);
                cols = cols.max(g.cols);
                grids.push(g);
            }
            let grids: Vec<Grid> =
                grids.into_iter().map(|g| coerce(g, rows, cols, segs)).collect::<Result<_, _>>()?;
            let mut cells = Vec::new();
            for i in 0..rows {
                for j in 0..cols {
                    cells.push(Term::Add(grids.iter().map(|g| g.cell(i, j).clone()).collect()));
                }
            }
            Ok(Grid::new(rows, cols, cells))
        }
    }
}

/// The operation solving a cell (the knowledge base of recognized
/// patterns).
#[derive(Debug, Clone, PartialEq)]
pub enum SolveOp {
    /// `X = rhs`.
    Assign,
    /// `t · X = rhs` (`t` read as stored/transposed per its view).
    TrsmLeft {
        /// The triangular coefficient view.
        t: View,
    },
    /// `X · t = rhs`.
    TrsmRight {
        /// The triangular coefficient view.
        t: View,
    },
    /// `Xᵀ·X = rhs` (upper) or `X·Xᵀ = rhs` (lower).
    Potrf {
        /// Lower variant (`X·Xᵀ`).
        lower: bool,
    },
    /// `l · X = I` with triangular `X` (triangular inversion).
    Trtri {
        /// The inverted operand's view.
        l: View,
    },
    /// `l·X + X·u = rhs`.
    Sylvester {
        /// Left (effectively lower-triangular) coefficient.
        l: View,
        /// Right (effectively upper-triangular) coefficient.
        u: View,
    },
    /// `L·U = rhs` with *both* factors unknown (LU factorization; `L`
    /// carries the unit diagonal explicitly).
    Getrf {
        /// The lower factor's region (the cell's second output).
        l: View,
    },
}

/// A sequenced cell: updates + base + the solving operation.
#[derive(Debug, Clone)]
pub struct CellSolve {
    /// The unknown region this cell computes (stored orientation).
    pub out: View,
    /// Second output for coupled two-factor cells (LU diagonal blocks).
    pub out2: Option<View>,
    /// Row segment index in the PME grid (0 = Top).
    pub row_seg: usize,
    /// Column segment index in the PME grid (0 = Top).
    pub col_seg: usize,
    /// Signed terms added to the base to form the right-hand side.
    pub updates: Vec<Term>,
    /// The base right-hand-side term (leaf view, identity, or zero).
    pub base: Term,
    /// The recognized solving operation.
    pub op: SolveOp,
    /// Outputs of sibling cells this cell reads (sequencing order).
    pub deps: Vec<View>,
    /// Whether the PME grid split rows / columns (2 segments).
    pub grid: (usize, usize),
}

fn split_sign(t: &Term) -> (bool, Term) {
    match t {
        Term::Neg(inner) => {
            let (s, core) = split_sign(inner);
            (!s, core)
        }
        other => (false, other.clone()),
    }
}

fn as_view(t: &Term) -> Option<View> {
    match t {
        Term::V(v) => Some(*v),
        Term::T(inner) => match inner.as_ref() {
            Term::V(v) => Some(v.t()),
            _ => None,
        },
        _ => None,
    }
}

fn flatten_terms(t: &Term, out: &mut Vec<Term>) {
    match t {
        Term::Add(ts) => ts.iter().for_each(|x| flatten_terms(x, out)),
        z if z.is_zero() => {}
        other => out.push(other.clone()),
    }
}

fn mentions_region(t: &Term, v: &View) -> bool {
    let mut found = false;
    t.for_each_view(&mut |w| {
        if w.op == v.op && w.same_region(v) {
            found = true;
        }
    });
    found
}

/// Generate and sequence the PME cells for `lhs = rhs` over `group`.
///
/// `unknown_view` is the region of the unknown operand being computed by
/// this equation instance.
///
/// # Errors
///
/// Returns [`SynthError::Unrecognized`] if a cell's unknown pattern does
/// not match the knowledge base, or conformality errors from partitioning.
#[allow(clippy::too_many_arguments)]
pub fn pme_cells(
    program: &Program,
    lhs: &Term,
    rhs: &Term,
    unknowns: &[(OpId, View)],
    dims: &mut Dims,
    group: GroupId,
    segs: SegRanges,
) -> Result<Vec<CellSolve>, SynthError> {
    let gl = partition_term(program, lhs, dims, group, segs)?;
    let gr = partition_term(program, rhs, dims, group, segs)?;
    let rows = gl.rows.max(gr.rows);
    let cols = gl.cols.max(gr.cols);
    let gl = coerce(gl, rows, cols, segs)?;
    let gr = coerce(gr, rows, cols, segs)?;
    let mut ugs = Vec::new();
    for (op, view) in unknowns {
        let ug = partition_term(program, &Term::V(*view), dims, group, segs)?;
        ugs.push((*op, broadcast(ug, rows, cols)?));
    }
    build_cells(program, &gl, &gr, &ugs, rows, cols)
}

fn broadcast(g: Grid, rows: usize, cols: usize) -> Result<Grid, SynthError> {
    if g.rows == rows && g.cols == cols {
        return Ok(g);
    }
    Err(SynthError::NonConformal(format!(
        "unknown grid {}x{} does not match equation grid {}x{}",
        g.rows, g.cols, rows, cols
    )))
}

fn build_cells(
    _program: &Program,
    gl: &Grid,
    gr: &Grid,
    ugs: &[(OpId, Grid)],
    rows: usize,
    cols: usize,
) -> Result<Vec<CellSolve>, SynthError> {
    // outputs of every cell, per unknown (None for zero/mirror blocks)
    let mut outputs: Vec<Vec<View>> = vec![Vec::new(); rows * cols];
    let mut canonical: Vec<bool> = vec![true; rows * cols];
    for (_, ug) in ugs {
        for i in 0..rows {
            for j in 0..cols {
                match ug.cell(i, j) {
                    Term::V(v) => outputs[i * cols + j].push(*v),
                    Term::T(_) => {
                        // the mirrored half of a symmetric unknown: solved
                        // via its canonical sibling + a mirror statement
                        canonical[i * cols + j] = false;
                    }
                    _ => {}
                }
            }
        }
    }
    let mut cells = Vec::new();
    for i in 0..rows {
        for j in 0..cols {
            let idx = i * cols + j;
            if !canonical[idx] || outputs[idx].is_empty() {
                continue; // consistency / mirrored cell
            }
            let cell_outs = outputs[idx].clone();
            let out = cell_outs[0];
            if out.is_empty() {
                continue;
            }
            // Left-hand terms may contain the unknown; right-hand terms
            // are known by construction (in-place algorithms read the
            // unknown's storage for *values*, which must not be mistaken
            // for the quantity being solved).
            let mut lhs_terms = Vec::new();
            flatten_terms(&gl.cell(i, j).clone().simplify(), &mut lhs_terms);
            let mut rhs_terms = Vec::new();
            flatten_terms(&gr.cell(i, j).clone().simplify(), &mut rhs_terms);

            let mut active = Vec::new();
            let mut passive = Vec::new();
            for t in lhs_terms {
                if cell_outs.iter().any(|o| mentions_region(&t, o)) {
                    active.push(t);
                } else {
                    passive.push(t);
                }
            }
            passive.extend(rhs_terms.into_iter().map(|t| Term::Neg(Box::new(t)).simplify()));
            let op = recognize(&active, &cell_outs)?;
            let out2 = match &op {
                SolveOp::Getrf { l } => Some(*l),
                _ => None,
            };
            // the primary output is the factor *not* reported as `l`
            let out = match &op {
                SolveOp::Getrf { l } => {
                    *cell_outs.iter().find(|o| !o.same_region(l)).unwrap_or(&out)
                }
                _ => out,
            };
            // move passive terms to the right-hand side (flip signs); a
            // plain view may serve as the base unless it is a *sibling*
            // cell's output (then it is an update with a dependency)
            let mut base = Term::Zero(out.r1 - out.r0, out.c1 - out.c0);
            let mut updates = Vec::new();
            for t in passive {
                let flipped = Term::Neg(Box::new(t)).simplify();
                let is_leaf = as_view(&flipped)
                    .map(|v| {
                        !outputs
                            .iter()
                            .enumerate()
                            .any(|(k, os)| k != idx && os.iter().any(|ov| ov.same_region(&v)))
                    })
                    .unwrap_or(matches!(flipped, Term::Ident(_)));
                let (sign, _) = split_sign(&flipped);
                if is_leaf && !sign && base.is_zero() {
                    base = flipped;
                } else {
                    updates.push(flipped);
                }
            }
            // dependencies: sibling outputs read by this cell
            let mut deps = Vec::new();
            for (k, others) in outputs.iter().enumerate() {
                if k == idx {
                    continue;
                }
                for o in others {
                    let mentioned = updates.iter().any(|t| mentions_region(t, o))
                        || active.iter().any(|t| mentions_region(t, o))
                        || mentions_region(&base, o);
                    if mentioned && !deps.contains(o) {
                        deps.push(*o);
                    }
                }
            }
            cells.push(CellSolve {
                out,
                out2,
                row_seg: i,
                col_seg: j,
                updates,
                base,
                op,
                deps,
                grid: (rows, cols),
            });
        }
    }
    // topological order by dependencies
    let mut ordered: Vec<CellSolve> = Vec::with_capacity(cells.len());
    let mut remaining = cells;
    while !remaining.is_empty() {
        let ready: Vec<usize> = remaining
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.deps.iter().all(|d| {
                    let produced_by = |x: &CellSolve| {
                        x.out.same_region(d) || x.out2.is_some_and(|o2| o2.same_region(d))
                    };
                    ordered.iter().any(&produced_by) || !remaining.iter().any(produced_by)
                })
            })
            .map(|(k, _)| k)
            .collect();
        if ready.is_empty() {
            return Err(SynthError::Unrecognized("cyclic dependency among PME cells".into()));
        }
        // remove in reverse index order to keep indices valid
        for &k in ready.iter().rev() {
            ordered.push(remaining.remove(k));
        }
        // restore textual order among the ready batch
        let n = ordered.len();
        let batch = &mut ordered[n - ready.len()..];
        batch.sort_by_key(|c| (c.row_seg, c.col_seg));
    }
    Ok(ordered)
}

/// Sequence an *unpartitioned* equation as a single cell — used for the
/// top-level HLAC statements before any partitioning.
///
/// # Errors
///
/// Returns [`SynthError::Unrecognized`] if the unknown pattern is not in
/// the knowledge base.
pub fn single_cell(
    program: &Program,
    lhs: &Term,
    rhs: &Term,
    unknowns: &[(OpId, View)],
) -> Result<CellSolve, SynthError> {
    let gl = Grid::single(lhs.clone().simplify());
    let gr = Grid::single(rhs.clone().simplify());
    let ugs: Vec<(OpId, Grid)> =
        unknowns.iter().map(|(op, v)| (*op, Grid::single(Term::V(*v)))).collect();
    let cells = build_cells(program, &gl, &gr, &ugs, 1, 1)?;
    cells
        .into_iter()
        .next()
        .ok_or_else(|| SynthError::Unrecognized("equation yields no solvable cell".into()))
}

fn recognize(active: &[Term], outs: &[View]) -> Result<SolveOp, SynthError> {
    let out = &outs[0];
    let is_out = |v: &View| outs.iter().any(|o| v.op == o.op && v.same_region(o));
    let cores: Vec<(bool, Term)> = active.iter().map(split_sign).collect();
    match cores.len() {
        1 => {
            let (neg, core) = &cores[0];
            if *neg {
                return Err(SynthError::Unrecognized(format!("negated solve term for {out}")));
            }
            match core {
                Term::V(v) if is_out(v) => Ok(SolveOp::Assign),
                Term::Mul(a, b) => {
                    let av = as_view(a);
                    let bv = as_view(b);
                    // two distinct unknown factors: LU factorization
                    // (lower-unit factor from the left, upper from the
                    // right — anything else is outside the knowledge base)
                    if outs.len() == 2 {
                        if let (Some(x), Some(y)) = (av, bv) {
                            if x.op != y.op && is_out(&x) && is_out(&y) {
                                if x.read_structure() == slingen_ir::Structure::LowerTriangular
                                    && y.read_structure() == slingen_ir::Structure::UpperTriangular
                                {
                                    return Ok(SolveOp::Getrf { l: x });
                                }
                                return Err(SynthError::Unrecognized(format!(
                                    "two-factor pattern {core} is not L·U"
                                )));
                            }
                        }
                    }
                    match (av, bv) {
                        (Some(x), Some(y))
                            if x.op == out.op
                                && y.op == out.op
                                && x.same_region(out)
                                && y.same_region(out) =>
                        {
                            // Xᵀ·X (upper) or X·Xᵀ (lower)
                            if x.trans && !y.trans {
                                Ok(SolveOp::Potrf { lower: false })
                            } else if !x.trans && y.trans {
                                Ok(SolveOp::Potrf { lower: true })
                            } else {
                                Err(SynthError::Unrecognized(format!(
                                    "quadratic pattern {core} for {out}"
                                )))
                            }
                        }
                        (Some(t), Some(x)) if x.op == out.op && x.same_region(out) => {
                            // the coefficient may be an earlier-solved
                            // region of the unknown itself (e.g. U_TL in
                            // the potrf panel solve), but never the region
                            // being solved
                            if t.op == out.op && t.same_region(out) {
                                return Err(SynthError::Unrecognized(format!(
                                    "unknown coefficient {t} for {out}"
                                )));
                            }
                            Ok(SolveOp::TrsmLeft { t })
                        }
                        (Some(x), Some(t)) if x.op == out.op && x.same_region(out) => {
                            if t.op == out.op && t.same_region(out) {
                                return Err(SynthError::Unrecognized(format!(
                                    "unknown coefficient {t} for {out}"
                                )));
                            }
                            Ok(SolveOp::TrsmRight { t })
                        }
                        _ => Err(SynthError::Unrecognized(format!(
                            "product pattern {core} for {out}"
                        ))),
                    }
                }
                other => Err(SynthError::Unrecognized(format!("solve pattern {other} for {out}"))),
            }
        }
        2 => {
            // l·X + X·u
            let mut left: Option<View> = None;
            let mut right: Option<View> = None;
            for (neg, core) in &cores {
                if *neg {
                    return Err(SynthError::Unrecognized(format!(
                        "negated Sylvester term for {out}"
                    )));
                }
                if let Term::Mul(a, b) = core {
                    let av = as_view(a);
                    let bv = as_view(b);
                    match (av, bv) {
                        (Some(k), Some(x))
                            if x.op == out.op
                                && x.same_region(out)
                                && !(k.op == out.op && k.same_region(out)) =>
                        {
                            left = Some(k);
                        }
                        (Some(x), Some(k))
                            if x.op == out.op
                                && x.same_region(out)
                                && !(k.op == out.op && k.same_region(out)) =>
                        {
                            right = Some(k);
                        }
                        _ => {}
                    }
                }
            }
            match (left, right) {
                (Some(l), Some(u)) => Ok(SolveOp::Sylvester { l, u }),
                _ => Err(SynthError::Unrecognized(format!(
                    "two-term pattern for {out}: {:?}",
                    active.iter().map(|t| t.to_string()).collect::<Vec<_>>()
                ))),
            }
        }
        0 => Err(SynthError::Unrecognized(format!("cell for {out} has no unknown-bearing term"))),
        n => Err(SynthError::Unrecognized(format!("{n} unknown-bearing terms for {out}"))),
    }
}

/// Re-classify a [`SolveOp::TrsmLeft`] with an identity base as a
/// triangular inversion when the unknown is triangular.
pub fn refine_trtri(op: SolveOp, base: &Term, out: &View) -> SolveOp {
    if let SolveOp::TrsmLeft { t } = &op {
        if matches!(base, Term::Ident(_))
            && matches!(out.structure, Structure::LowerTriangular | Structure::UpperTriangular)
        {
            return SolveOp::Trtri { l: *t };
        }
    }
    op
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conform::analyze;
    use slingen_ir::structure::StorageHalf;
    use slingen_ir::{Expr, OperandDecl, ProgramBuilder};

    /// Build the paper's running example: Uᵀ·U = S (eq. 5), m = 8.
    fn potrf_setup() -> (Program, Term, Term, OpId, View) {
        let mut b = ProgramBuilder::new("potrf");
        let s = b.declare(
            OperandDecl::mat_in("S", 8, 8).with_structure(Structure::Symmetric(StorageHalf::Upper)),
        );
        let u =
            b.declare(OperandDecl::mat_out("U", 8, 8).with_structure(Structure::UpperTriangular));
        b.equation(Expr::op(u).t().mul(Expr::op(u)), Expr::op(s));
        let p = b.build().unwrap();
        let uv = View::full(&p, u);
        let lhs = Term::Mul(Box::new(Term::V(uv.t())), Box::new(Term::V(uv)));
        let rhs = region_term(&p, s, 0, 8, 0, 8);
        (p, lhs, rhs, u, uv)
    }

    use slingen_ir::Program;

    #[test]
    fn potrf_pme_has_three_cells() {
        let (p, lhs, rhs, u, uv) = potrf_setup();
        let mut dims = analyze(&lhs, &rhs).unwrap();
        let g = dims.groups()[0].0;
        let segs = SegRanges { t: (0, 4), b: (4, 8) };
        let cells = pme_cells(&p, &lhs, &rhs, &[(u, uv)], &mut dims, g, segs).unwrap();
        // (T,T): potrf; (T,B): trsm; (B,B): syrk update + potrf.
        // The (B,T) transposed duplicate must have been dropped.
        assert_eq!(cells.len(), 3, "{cells:#?}");
        assert!(matches!(cells[0].op, SolveOp::Potrf { lower: false }));
        assert!(cells[0].updates.is_empty());
        assert!(matches!(cells[1].op, SolveOp::TrsmLeft { .. }));
        match &cells[1].op {
            SolveOp::TrsmLeft { t } => {
                assert!(t.trans, "coefficient is U_TLᵀ");
                assert_eq!((t.r0, t.r1, t.c0, t.c1), (0, 4, 0, 4));
            }
            _ => unreachable!(),
        }
        assert!(matches!(cells[2].op, SolveOp::Potrf { lower: false }));
        assert_eq!(cells[2].updates.len(), 1, "S_BR -= U_TBᵀ U_TB");
        // cell 2 depends on cell 1's output (the U_TB panel)
        assert_eq!(cells[2].deps.len(), 1);
        assert!(cells[2].deps[0].same_region(&cells[1].out));
    }

    #[test]
    fn potrf_cells_read_only_the_stored_half() {
        let (p, lhs, rhs, u, uv) = potrf_setup();
        let s = p.find("S").unwrap();
        let mut dims = analyze(&lhs, &rhs).unwrap();
        let g = dims.groups()[0].0;
        let segs = SegRanges { t: (0, 4), b: (4, 8) };
        let cells = pme_cells(&p, &lhs, &rhs, &[(u, uv)], &mut dims, g, segs).unwrap();
        for c in &cells {
            c.base.for_each_view(&mut |v| {
                if v.op == s {
                    assert!(v.r0 <= v.c0, "read of S must stay in the upper half: {v}");
                }
            });
        }
    }

    #[test]
    fn trsm_pme_rows_partition() {
        // Uᵀ X = B: partition the solve dimension
        let mut b = ProgramBuilder::new("trsm");
        let u =
            b.declare(OperandDecl::mat_in("U", 8, 8).with_structure(Structure::UpperTriangular));
        let bb = b.declare(OperandDecl::mat_in("B", 8, 5));
        let x = b.declare(OperandDecl::mat_out("X", 8, 5));
        b.assign(x, Expr::op(bb));
        let p = b.build().unwrap();
        let uv = View::full(&p, u);
        let xv = View::full(&p, x);
        let lhs = Term::Mul(Box::new(Term::V(uv.t())), Box::new(Term::V(xv)));
        let rhs = region_term(&p, bb, 0, 8, 0, 5);
        let mut dims = analyze(&lhs, &rhs).unwrap();
        let solve_group = dims.view_row_group(&xv).unwrap();
        let segs = SegRanges { t: (0, 4), b: (4, 8) };
        let cells = pme_cells(&p, &lhs, &rhs, &[(x, xv)], &mut dims, solve_group, segs).unwrap();
        assert_eq!(cells.len(), 2);
        // Uᵀ is lower triangular: forward substitution, cell T first with
        // no updates, cell B updated by U_TBᵀ X_T.
        assert!(matches!(cells[0].op, SolveOp::TrsmLeft { .. }));
        assert!(cells[0].updates.is_empty());
        assert_eq!(cells[1].updates.len(), 1);
        assert_eq!(cells[1].deps.len(), 1);
    }

    #[test]
    fn trtri_pme() {
        // L X = I, X lower triangular
        let mut b = ProgramBuilder::new("trtri");
        let l = b.declare(
            OperandDecl::mat_in("L", 8, 8)
                .with_structure(Structure::LowerTriangular)
                .with_properties(slingen_ir::Properties::ns()),
        );
        let x =
            b.declare(OperandDecl::mat_out("X", 8, 8).with_structure(Structure::LowerTriangular));
        b.assign(x, Expr::op(l));
        let p = b.build().unwrap();
        let lv = View::full(&p, l);
        let xv = View::full(&p, x);
        let lhs = Term::Mul(Box::new(Term::V(lv)), Box::new(Term::V(xv)));
        let rhs = Term::Ident(8);
        let mut dims = analyze(&lhs, &rhs).unwrap();
        let g = dims.groups()[0].0;
        let segs = SegRanges { t: (0, 4), b: (4, 8) };
        let cells = pme_cells(&p, &lhs, &rhs, &[(x, xv)], &mut dims, g, segs).unwrap();
        // (T,T): L_TT X_TT = I; (B,T): L_BB X_BT = -L_BT X_TT; (B,B): I.
        // (T,B) vanishes (X_TB is structurally zero).
        assert_eq!(cells.len(), 3, "{cells:#?}");
        let diag: Vec<_> = cells.iter().filter(|c| c.row_seg == c.col_seg).collect();
        assert_eq!(diag.len(), 2);
        for c in diag {
            let refined = refine_trtri(c.op.clone(), &c.base, &c.out);
            assert!(matches!(refined, SolveOp::Trtri { .. }), "{refined:?}");
        }
        let off = cells.iter().find(|c| c.row_seg != c.col_seg).unwrap();
        assert!(matches!(off.op, SolveOp::TrsmLeft { .. }));
        assert_eq!(off.updates.len(), 1);
        assert!(off.base.is_zero());
    }

    #[test]
    fn lyapunov_pme_drops_mirrored_cell() {
        // L X + X Lᵀ = S with X symmetric
        let mut b = ProgramBuilder::new("trlya");
        let l =
            b.declare(OperandDecl::mat_in("L", 8, 8).with_structure(Structure::LowerTriangular));
        let s = b.declare(
            OperandDecl::mat_in("S", 8, 8).with_structure(Structure::Symmetric(StorageHalf::Lower)),
        );
        let x = b.declare(
            OperandDecl::mat_out("X", 8, 8)
                .with_structure(Structure::Symmetric(StorageHalf::Lower)),
        );
        b.assign(x, Expr::op(s));
        let p = b.build().unwrap();
        let lv = View::full(&p, l);
        let xv = View::full(&p, x);
        let lhs = Term::Add(vec![
            Term::Mul(Box::new(Term::V(lv)), Box::new(Term::V(xv))),
            Term::Mul(Box::new(Term::V(xv)), Box::new(Term::V(lv.t()))),
        ]);
        let rhs = region_term(&p, s, 0, 8, 0, 8);
        let mut dims = analyze(&lhs, &rhs).unwrap();
        let g = dims.groups()[0].0;
        let segs = SegRanges { t: (0, 4), b: (4, 8) };
        let cells = pme_cells(&p, &lhs, &rhs, &[(x, xv)], &mut dims, g, segs).unwrap();
        // (T,T) lyapunov, (B,T) sylvester, (B,B) lyapunov; (T,B) mirrored.
        assert_eq!(cells.len(), 3, "{cells:#?}");
        assert!(matches!(cells[0].op, SolveOp::Sylvester { .. }));
        assert!(matches!(cells[1].op, SolveOp::Sylvester { .. }));
        assert!(matches!(cells[2].op, SolveOp::Sylvester { .. }));
        let off = cells.iter().find(|c| (c.row_seg, c.col_seg) == (1, 0)).unwrap();
        match &off.op {
            SolveOp::Sylvester { l: lft, u } => {
                assert!(!lft.trans);
                assert!(u.trans, "right coefficient is L_TTᵀ");
            }
            other => panic!("unexpected {other:?}"),
        }
        // (B,B) updates reference the mirrored panel (canonical region)
        let bb = cells.iter().find(|c| (c.row_seg, c.col_seg) == (1, 1)).unwrap();
        assert_eq!(bb.updates.len(), 2, "{bb:#?}");
    }

    #[test]
    fn empty_segments_produce_empty_cells() {
        let (p, lhs, rhs, u, uv) = potrf_setup();
        let mut dims = analyze(&lhs, &rhs).unwrap();
        let g = dims.groups()[0].0;
        // first lazy iteration: T is empty
        let segs = SegRanges { t: (0, 0), b: (0, 4) };
        let cells = pme_cells(&p, &lhs, &rhs, &[(u, uv)], &mut dims, g, segs).unwrap();
        // only the (B,B) cell has a nonempty output
        let nonempty: Vec<_> = cells.iter().filter(|c| !c.out.is_empty()).collect();
        assert_eq!(nonempty.len(), 1);
        assert!(matches!(nonempty[0].op, SolveOp::Potrf { lower: false }));
        assert!(nonempty[0].updates.iter().all(|t| t.is_zero()) || nonempty[0].updates.is_empty());
    }
}
