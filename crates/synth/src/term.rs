//! Views and the block-term language of the synthesis engine.

use slingen_ir::structure::StorageHalf;
use slingen_ir::{OpId, Program, Structure};
use std::fmt;

/// A rectangular region of a declared operand, optionally transposed.
///
/// Regions are half-open: rows `r0..r1`, columns `c0..c1`. The `structure`
/// describes the region *as stored* (e.g. the diagonal block of an upper
/// triangular operand is upper triangular; an off-diagonal block is
/// general).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct View {
    /// The underlying operand.
    pub op: OpId,
    /// First row (inclusive).
    pub r0: usize,
    /// Last row (exclusive).
    pub r1: usize,
    /// First column (inclusive).
    pub c0: usize,
    /// Last column (exclusive).
    pub c1: usize,
    /// Read transposed.
    pub trans: bool,
    /// Structure of the stored region.
    pub structure: Structure,
}

impl View {
    /// The full (untransposed) view of an operand.
    pub fn full(program: &Program, op: OpId) -> View {
        let d = program.operand(op);
        View {
            op,
            r0: 0,
            r1: d.shape.rows,
            c0: 0,
            c1: d.shape.cols,
            trans: false,
            structure: d.structure,
        }
    }

    /// Rows of the view as read (after transposition).
    pub fn rows(&self) -> usize {
        if self.trans {
            self.c1 - self.c0
        } else {
            self.r1 - self.r0
        }
    }

    /// Columns of the view as read.
    pub fn cols(&self) -> usize {
        if self.trans {
            self.r1 - self.r0
        } else {
            self.c1 - self.c0
        }
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.r0 >= self.r1 || self.c0 >= self.c1
    }

    /// Whether the region is a single element.
    pub fn is_scalar(&self) -> bool {
        self.r1 - self.r0 == 1 && self.c1 - self.c0 == 1
    }

    /// The transposed view.
    pub fn t(mut self) -> View {
        self.trans = !self.trans;
        self
    }

    /// Structure as *read* (transposition flips triangles).
    pub fn read_structure(&self) -> Structure {
        if self.trans {
            self.structure.transposed()
        } else {
            self.structure
        }
    }

    /// Canonical coordinates for region identity: transposition is a read
    /// mode, not a different region, and the two mirror coordinates of a
    /// symmetric operand name the same stored data.
    fn canonical_coords(&self) -> (usize, usize, usize, usize) {
        if self.structure.is_symmetric() && (self.c0, self.r0) < (self.r0, self.c0) {
            (self.c0, self.c1, self.r0, self.r1)
        } else {
            (self.r0, self.r1, self.c0, self.c1)
        }
    }

    /// Whether two views name the same stored region (ignoring the
    /// transposition read flag; mirror coordinates of symmetric operands
    /// compare equal).
    pub fn same_region(&self, other: &View) -> bool {
        self.op == other.op && self.canonical_coords() == other.canonical_coords()
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "%{}[{}:{}, {}:{}]{}",
            self.op.0,
            self.r0,
            self.r1,
            self.c0,
            self.c1,
            if self.trans { "'" } else { "" }
        )
    }
}

/// Structure of a sub-region of an operand with structure `s`.
///
/// Regions are classified relative to the operand's diagonal. Off-diagonal
/// blocks of triangular operands are `Zero` (above a lower triangle) or
/// `General`; diagonal blocks keep the structure.
pub fn region_structure(s: Structure, r0: usize, r1: usize, c0: usize, c1: usize) -> Structure {
    use Structure::*;
    match s {
        General => General,
        Zero => Zero,
        LowerTriangular => {
            if r0 == c0 && r1 == c1 {
                LowerTriangular
            } else if r0 >= c1 {
                // strictly below the diagonal
                General
            } else if c0 >= r1 {
                Zero
            } else {
                // straddles the diagonal (only happens for unaligned
                // partitions, which the engine never produces)
                General
            }
        }
        UpperTriangular => {
            if r0 == c0 && r1 == c1 {
                UpperTriangular
            } else if c0 >= r1 {
                General
            } else if r0 >= c1 {
                Zero
            } else {
                General
            }
        }
        Symmetric(h) => {
            if r0 == c0 && r1 == c1 {
                Symmetric(h)
            } else {
                General
            }
        }
        Diagonal => {
            if r0 == c0 && r1 == c1 {
                Diagonal
            } else {
                Zero
            }
        }
        Identity => {
            if r0 == c0 && r1 == c1 {
                Identity
            } else {
                Zero
            }
        }
    }
}

/// Construct the term for region `(r0..r1, c0..c1)` of operand `op`.
///
/// For symmetric operands stored in one half, a region in the *other*
/// half is returned as the transpose of the mirrored stored region —
/// this is what makes transposed-duplicate PME cells recognizable.
pub fn region_term(
    program: &Program,
    op: OpId,
    r0: usize,
    r1: usize,
    c0: usize,
    c1: usize,
) -> Term {
    if r0 >= r1 || c0 >= c1 {
        // empty regions behave as zero blocks so boundary iterations of
        // the derivation fold away
        return Term::Zero(r1.saturating_sub(r0), c1.saturating_sub(c0));
    }
    let s = program.operand(op).structure;
    let rs = region_structure(s, r0, r1, c0, c1);
    if rs == Structure::Zero {
        return Term::Zero(r1 - r0, c1 - c0);
    }
    if rs == Structure::Identity {
        return Term::Ident(r1 - r0);
    }
    if let Structure::Symmetric(half) = s {
        let mirrored = match half {
            StorageHalf::Upper => r0 > c0 || (r0 == c0 && r1 != c1 && r0 >= c1),
            StorageHalf::Lower => c0 > r0 || (r0 == c0 && r1 != c1 && c0 >= r1),
        };
        // Only off-diagonal blocks mirror; diagonal blocks stay.
        if !(r0 == c0 && r1 == c1) && mirrored {
            return Term::T(Box::new(Term::V(View {
                op,
                r0: c0,
                r1: c1,
                c0: r0,
                c1: r1,
                trans: false,
                structure: region_structure(s, c0, c1, r0, r1),
            })));
        }
    }
    Term::V(View { op, r0, r1, c0, c1, trans: false, structure: rs })
}

/// A block term: the expression language the PME engine rewrites.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// A view of an operand region.
    V(View),
    /// An identity block of the given order.
    Ident(usize),
    /// A zero block (`rows × cols`).
    Zero(usize, usize),
    /// Transpose.
    T(Box<Term>),
    /// Negation.
    Neg(Box<Term>),
    /// Product.
    Mul(Box<Term>, Box<Term>),
    /// Sum of terms.
    Add(Vec<Term>),
}

impl Term {
    /// Rows of the term as read.
    pub fn rows(&self) -> usize {
        match self {
            Term::V(v) => v.rows(),
            Term::Ident(n) => *n,
            Term::Zero(r, _) => *r,
            Term::T(t) => t.cols(),
            Term::Neg(t) => t.rows(),
            Term::Mul(a, _) => a.rows(),
            Term::Add(ts) => ts.first().map_or(0, Term::rows),
        }
    }

    /// Columns of the term as read.
    pub fn cols(&self) -> usize {
        match self {
            Term::V(v) => v.cols(),
            Term::Ident(n) => *n,
            Term::Zero(_, c) => *c,
            Term::T(t) => t.rows(),
            Term::Neg(t) => t.cols(),
            Term::Mul(_, b) => b.cols(),
            Term::Add(ts) => ts.first().map_or(0, Term::cols),
        }
    }

    /// Whether the term is identically zero.
    pub fn is_zero(&self) -> bool {
        match self {
            Term::Zero(..) => true,
            Term::Neg(t) | Term::T(t) => t.is_zero(),
            Term::Mul(a, b) => a.is_zero() || b.is_zero(),
            Term::Add(ts) => ts.iter().all(Term::is_zero),
            _ => false,
        }
    }

    /// Visit all views.
    pub fn for_each_view(&self, f: &mut impl FnMut(&View)) {
        match self {
            Term::V(v) => f(v),
            Term::T(t) | Term::Neg(t) => t.for_each_view(f),
            Term::Mul(a, b) => {
                a.for_each_view(f);
                b.for_each_view(f);
            }
            Term::Add(ts) => ts.iter().for_each(|t| t.for_each_view(f)),
            _ => {}
        }
    }

    /// Whether any view belongs to `op`.
    pub fn mentions(&self, op: OpId) -> bool {
        let mut found = false;
        self.for_each_view(&mut |v| {
            if v.op == op {
                found = true;
            }
        });
        found
    }

    /// Simplify: remove zero summands, fold `T(T(x))`, push transposes and
    /// negations inward, collapse products with identity, flatten nested
    /// sums.
    pub fn simplify(self) -> Term {
        match self {
            Term::T(inner) => match inner.simplify() {
                Term::T(x) => *x,
                Term::V(v) => Term::V(v.t()),
                Term::Ident(n) => Term::Ident(n),
                Term::Zero(r, c) => Term::Zero(c, r),
                Term::Neg(x) => Term::Neg(Box::new(Term::T(x).simplify())),
                Term::Mul(a, b) => {
                    Term::Mul(Box::new(Term::T(b).simplify()), Box::new(Term::T(a).simplify()))
                }
                Term::Add(ts) => {
                    Term::Add(ts.into_iter().map(|t| Term::T(Box::new(t)).simplify()).collect())
                }
            },
            Term::Neg(inner) => match inner.simplify() {
                Term::Neg(x) => *x,
                Term::Zero(r, c) => Term::Zero(r, c),
                Term::Add(ts) => {
                    Term::Add(ts.into_iter().map(|t| Term::Neg(Box::new(t)).simplify()).collect())
                }
                x => Term::Neg(Box::new(x)),
            },
            Term::Mul(a, b) => {
                let a = a.simplify();
                let b = b.simplify();
                if a.is_zero() || b.is_zero() {
                    return Term::Zero(a.rows(), b.cols());
                }
                if let Term::Ident(_) = a {
                    return b;
                }
                if let Term::Ident(_) = b {
                    return a;
                }
                // pull negations out of products
                match (a, b) {
                    (Term::Neg(x), Term::Neg(y)) => Term::Mul(x, y),
                    (Term::Neg(x), y) => Term::Neg(Box::new(Term::Mul(x, Box::new(y)))),
                    (x, Term::Neg(y)) => Term::Neg(Box::new(Term::Mul(Box::new(x), y))),
                    (x, y) => Term::Mul(Box::new(x), Box::new(y)),
                }
            }
            Term::Add(ts) => {
                let mut flat = Vec::new();
                for t in ts {
                    match t.simplify() {
                        Term::Add(inner) => flat.extend(inner),
                        z if z.is_zero() => {}
                        other => flat.push(other),
                    }
                }
                match flat.len() {
                    0 => Term::Zero(0, 0),
                    1 => flat.pop().unwrap(),
                    _ => Term::Add(flat),
                }
            }
            leaf => leaf,
        }
    }

    /// The transpose, simplified.
    pub fn transposed(&self) -> Term {
        Term::T(Box::new(self.clone())).simplify()
    }

    /// Structural equality modulo symmetric-view canonicalization.
    pub fn equivalent(&self, other: &Term) -> bool {
        match (self, other) {
            (Term::V(a), Term::V(b)) => a.same_region(b),
            (Term::Ident(a), Term::Ident(b)) => a == b,
            (Term::Zero(r1, c1), Term::Zero(r2, c2)) => r1 == r2 && c1 == c2,
            (Term::T(a), Term::T(b)) => a.equivalent(b),
            (Term::Neg(a), Term::Neg(b)) => a.equivalent(b),
            (Term::Mul(a1, b1), Term::Mul(a2, b2)) => a1.equivalent(a2) && b1.equivalent(b2),
            (Term::Add(x), Term::Add(y)) => {
                x.len() == y.len() && x.iter().all(|t| y.iter().any(|u| t.equivalent(u)))
            }
            // symmetric view read through its transpose
            (Term::V(a), Term::T(b)) | (Term::T(b), Term::V(a)) => match b.as_ref() {
                Term::V(bv) => a.same_region(&bv.t()),
                _ => false,
            },
            _ => false,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::V(v) => write!(f, "{v}"),
            Term::Ident(n) => write!(f, "I{n}"),
            Term::Zero(r, c) => write!(f, "0({r}x{c})"),
            Term::T(t) => write!(f, "({t})'"),
            Term::Neg(t) => write!(f, "-({t})"),
            Term::Mul(a, b) => write!(f, "({a} * {b})"),
            Term::Add(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slingen_ir::{OperandDecl, ProgramBuilder};

    fn test_program() -> (Program, OpId, OpId, OpId) {
        let mut b = ProgramBuilder::new("t");
        let l =
            b.declare(OperandDecl::mat_in("L", 8, 8).with_structure(Structure::LowerTriangular));
        let s = b.declare(
            OperandDecl::mat_in("S", 8, 8).with_structure(Structure::Symmetric(StorageHalf::Upper)),
        );
        let x = b.declare(OperandDecl::mat_out("X", 8, 8));
        // trivial statement so the program validates
        b.assign(x, slingen_ir::Expr::op(l).mul(slingen_ir::Expr::op(s)));
        (b.build().unwrap(), l, s, x)
    }

    #[test]
    fn region_structures() {
        use Structure::*;
        assert_eq!(region_structure(LowerTriangular, 0, 4, 0, 4), LowerTriangular);
        assert_eq!(region_structure(LowerTriangular, 4, 8, 0, 4), General);
        assert_eq!(region_structure(LowerTriangular, 0, 4, 4, 8), Zero);
        assert_eq!(region_structure(UpperTriangular, 0, 4, 4, 8), General);
        assert_eq!(region_structure(UpperTriangular, 4, 8, 0, 4), Zero);
        assert_eq!(
            region_structure(Symmetric(StorageHalf::Upper), 4, 8, 4, 8),
            Symmetric(StorageHalf::Upper)
        );
        assert_eq!(region_structure(Identity, 0, 4, 0, 4), Identity);
        assert_eq!(region_structure(Identity, 4, 8, 0, 4), Zero);
    }

    #[test]
    fn region_terms_fold_zero_blocks() {
        let (p, l, _, _) = test_program();
        assert!(matches!(region_term(&p, l, 0, 4, 4, 8), Term::Zero(4, 4)));
        match region_term(&p, l, 4, 8, 4, 8) {
            Term::V(v) => assert_eq!(v.structure, Structure::LowerTriangular),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn symmetric_lower_half_mirrors() {
        let (p, _, s, _) = test_program();
        // below-diagonal block of an UpSym operand reads as the transpose
        // of the stored block
        match region_term(&p, s, 4, 8, 0, 4) {
            Term::T(inner) => match *inner {
                Term::V(v) => {
                    assert_eq!((v.r0, v.r1, v.c0, v.c1), (0, 4, 4, 8));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        // stored half reads directly
        assert!(matches!(region_term(&p, s, 0, 4, 4, 8), Term::V(_)));
    }

    #[test]
    fn simplify_folds() {
        let (p, l, _, x) = test_program();
        let lv = region_term(&p, l, 4, 8, 0, 4);
        let z = Term::Zero(4, 4);
        // 0 * L + L = L
        let t = Term::Add(vec![Term::Mul(Box::new(z.clone()), Box::new(lv.clone())), lv.clone()])
            .simplify();
        assert!(t.equivalent(&lv));
        // T(T(x)) = x
        let xv = region_term(&p, x, 0, 4, 0, 4);
        assert!(xv.transposed().transposed().equivalent(&xv));
        // T(A*B) = T(B)*T(A)
        let prod = Term::Mul(Box::new(lv.clone()), Box::new(xv.clone()));
        let tp = prod.transposed();
        match tp {
            Term::Mul(a, b) => {
                assert!(a.equivalent(&xv.transposed()));
                assert!(b.equivalent(&lv.transposed()));
            }
            other => panic!("unexpected {other:?}"),
        }
        // I * x = x
        let t = Term::Mul(Box::new(Term::Ident(4)), Box::new(xv.clone())).simplify();
        assert!(t.equivalent(&xv));
        // -(-x) = x
        let t = Term::Neg(Box::new(Term::Neg(Box::new(xv.clone())))).simplify();
        assert!(t.equivalent(&xv));
    }

    #[test]
    fn transposed_duplicate_detection() {
        // cell (B,T) of the potrf PME is the transpose of cell (T,B)
        let (p, _, s, x) = test_program();
        let xtt = region_term(&p, x, 0, 4, 0, 4);
        let xtb = region_term(&p, x, 0, 4, 4, 8);
        let stb = region_term(&p, s, 0, 4, 4, 8);
        // (T,B): X_TT' X_TB = S_TB
        let tb = Term::Mul(Box::new(xtt.transposed()), Box::new(xtb.clone())).simplify();
        // (B,T): X_TB' X_TT = S_TB'  — its transpose should equal (T,B)
        let bt = Term::Mul(Box::new(xtb.transposed()), Box::new(xtt.clone())).simplify();
        assert!(bt.transposed().equivalent(&tb));
        let sbt = region_term(&p, s, 4, 8, 0, 4); // mirrors to T(S_TB)
        assert!(sbt.transposed().equivalent(&stb));
    }

    #[test]
    fn dims_of_terms() {
        let (p, l, _, x) = test_program();
        let lv = region_term(&p, l, 4, 8, 0, 4);
        let xv = region_term(&p, x, 0, 4, 0, 8);
        let prod = Term::Mul(Box::new(lv), Box::new(xv));
        assert_eq!((prod.rows(), prod.cols()), (4, 8));
        assert_eq!((prod.transposed().rows(), prod.transposed().cols()), (8, 4));
    }
}
