//! Conformality analysis: which dimensions must partition together.
//!
//! Every view axis (rows/columns of a referenced region) is a *slot*;
//! slots are unified when the algebra ties them together:
//!
//! * a structured square view (triangular, symmetric, diagonal) ties its
//!   rows to its columns — splitting one splits the other;
//! * a product ties the left operand's columns to the right operand's
//!   rows;
//! * sums and the equation itself tie corresponding axes.
//!
//! The resulting equivalence classes are the *dimension groups* the
//! derivation can partition (paper §3.1: "the first decision is how to
//! partition the dimensions").

use crate::term::{Term, View};
use crate::SynthError;
use slingen_ir::OpId;
use std::collections::HashMap;

type SlotKey = (OpId, usize, usize, usize, usize, u8);

/// The result of conformality analysis: a union-find over dimension slots.
#[derive(Debug)]
pub struct Dims {
    parent: Vec<usize>,
    extent: Vec<usize>,
    slots: HashMap<SlotKey, usize>,
}

/// Identifier of a dimension group (the class representative).
pub type GroupId = usize;

impl Dims {
    fn new() -> Self {
        Dims { parent: Vec::new(), extent: Vec::new(), slots: HashMap::new() }
    }

    fn fresh(&mut self, extent: usize) -> usize {
        self.parent.push(self.parent.len());
        self.extent.push(extent);
        self.parent.len() - 1
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) -> Result<(), SynthError> {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return Ok(());
        }
        if self.extent[ra] != self.extent[rb] {
            return Err(SynthError::NonConformal(format!(
                "dimension extents {} vs {}",
                self.extent[ra], self.extent[rb]
            )));
        }
        self.parent[rb] = ra;
        Ok(())
    }

    fn slot(&mut self, key: SlotKey, extent: usize) -> usize {
        if let Some(&n) = self.slots.get(&key) {
            return n;
        }
        let n = self.fresh(extent);
        self.slots.insert(key, n);
        n
    }

    fn view_nodes(&mut self, v: &View) -> Result<(usize, usize), SynthError> {
        // slots key on the *stored* region so transposed and plain reads of
        // the same region share axes
        let rkey = (v.op, v.r0, v.r1, v.c0, v.c1, 0u8);
        let ckey = (v.op, v.r0, v.r1, v.c0, v.c1, 1u8);
        let rn = self.slot(rkey, v.r1 - v.r0);
        let cn = self.slot(ckey, v.c1 - v.c0);
        // structured square regions tie rows to columns
        let s = v.structure;
        if s != slingen_ir::Structure::General && v.r1 - v.r0 == v.c1 - v.c0 {
            self.union(rn, cn)?;
        }
        if v.trans {
            Ok((cn, rn))
        } else {
            Ok((rn, cn))
        }
    }

    fn term_nodes(&mut self, t: &Term) -> Result<(usize, usize), SynthError> {
        match t {
            Term::V(v) => self.view_nodes(v),
            Term::Ident(n) => {
                let a = self.fresh(*n);
                let b = self.fresh(*n);
                self.union(a, b)?;
                Ok((a, b))
            }
            Term::Zero(r, c) => Ok((self.fresh(*r), self.fresh(*c))),
            Term::T(inner) => {
                let (r, c) = self.term_nodes(inner)?;
                Ok((c, r))
            }
            Term::Neg(inner) => self.term_nodes(inner),
            Term::Mul(a, b) => {
                let (ar, ac) = self.term_nodes(a)?;
                let (br, bc) = self.term_nodes(b)?;
                self.union(ac, br)?;
                Ok((ar, bc))
            }
            Term::Add(ts) => {
                let mut it = ts.iter();
                let first = it
                    .next()
                    .ok_or_else(|| SynthError::Unsupported("empty sum in equation".into()))?;
                let (mut r, mut c) = self.term_nodes(first)?;
                for t in it {
                    let (tr, tc) = self.term_nodes(t)?;
                    self.union(r, tr)?;
                    self.union(c, tc)?;
                    r = tr;
                    c = tc;
                }
                Ok((r, c))
            }
        }
    }

    /// The group of a view's stored-rows axis.
    pub fn view_row_group(&mut self, v: &View) -> Option<GroupId> {
        let key = (v.op, v.r0, v.r1, v.c0, v.c1, 0u8);
        self.slots.get(&key).copied().map(|n| self.find(n))
    }

    /// The group of a view's stored-columns axis.
    pub fn view_col_group(&mut self, v: &View) -> Option<GroupId> {
        let key = (v.op, v.r0, v.r1, v.c0, v.c1, 1u8);
        self.slots.get(&key).copied().map(|n| self.find(n))
    }

    /// All groups with their extents, ordered by descending extent.
    pub fn groups(&mut self) -> Vec<(GroupId, usize)> {
        let mut out: Vec<(GroupId, usize)> = Vec::new();
        for i in 0..self.parent.len() {
            let r = self.find(i);
            if !out.iter().any(|(g, _)| *g == r) {
                out.push((r, self.extent[r]));
            }
        }
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Extent of a group.
    pub fn extent(&mut self, g: GroupId) -> usize {
        let r = self.find(g);
        self.extent[r]
    }
}

/// Analyze the equation `lhs = rhs`.
///
/// # Errors
///
/// Returns [`SynthError::NonConformal`] if tied dimensions disagree.
pub fn analyze(lhs: &Term, rhs: &Term) -> Result<Dims, SynthError> {
    let mut dims = Dims::new();
    let (lr, lc) = dims.term_nodes(lhs)?;
    let (rr, rc) = dims.term_nodes(rhs)?;
    dims.union(lr, rr)?;
    dims.union(lc, rc)?;
    Ok(dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{region_term, View};
    use slingen_ir::{Expr, OperandDecl, ProgramBuilder, Structure};

    fn trsm_terms() -> (slingen_ir::Program, Term, Term) {
        // U' X = B with U 8x8 upper triangular, X/B 8x5
        let mut b = ProgramBuilder::new("t");
        let u =
            b.declare(OperandDecl::mat_in("U", 8, 8).with_structure(Structure::UpperTriangular));
        let bb = b.declare(OperandDecl::mat_in("B", 8, 5));
        let x = b.declare(OperandDecl::mat_out("X", 8, 5));
        b.assign(x, Expr::op(bb));
        let p = b.build().unwrap();
        let uv = View::full(&p, u);
        let xv = View::full(&p, x);
        let lhs = Term::Mul(Box::new(Term::V(uv.t())), Box::new(Term::V(xv)));
        let rhs = region_term(&p, bb, 0, 8, 0, 5);
        (p, lhs, rhs)
    }

    #[test]
    fn trsm_has_two_groups() {
        let (_, lhs, rhs) = trsm_terms();
        let mut dims = analyze(&lhs, &rhs).unwrap();
        let groups = dims.groups();
        assert_eq!(groups.len(), 2, "{groups:?}");
        assert_eq!(groups[0].1, 8);
        assert_eq!(groups[1].1, 5);
    }

    #[test]
    fn potrf_has_one_group() {
        // U'U = S: triangular U ties everything into one group
        let mut b = ProgramBuilder::new("t");
        let s = b.declare(
            OperandDecl::mat_in("S", 8, 8)
                .with_structure(Structure::Symmetric(slingen_ir::structure::StorageHalf::Upper)),
        );
        let u =
            b.declare(OperandDecl::mat_out("U", 8, 8).with_structure(Structure::UpperTriangular));
        b.equation(Expr::op(u).t().mul(Expr::op(u)), Expr::op(s));
        let p = b.build().unwrap();
        let uv = View::full(&p, u);
        let lhs = Term::Mul(Box::new(Term::V(uv.t())), Box::new(Term::V(uv)));
        let rhs = region_term(&p, s, 0, 8, 0, 8);
        let mut dims = analyze(&lhs, &rhs).unwrap();
        assert_eq!(dims.groups().len(), 1);
        assert_eq!(dims.groups()[0].1, 8);
    }

    #[test]
    fn view_axes_resolve_to_groups() {
        let (p, lhs, rhs) = trsm_terms();
        let mut dims = analyze(&lhs, &rhs).unwrap();
        let x = p.find("X").unwrap();
        let u = p.find("U").unwrap();
        let xv = View::full(&p, x);
        let uv = View::full(&p, u);
        let xr = dims.view_row_group(&xv).unwrap();
        let xc = dims.view_col_group(&xv).unwrap();
        let ur = dims.view_row_group(&uv).unwrap();
        let uc = dims.view_col_group(&uv).unwrap();
        assert_eq!(ur, uc, "triangular U rows ~ cols");
        assert_eq!(xr, ur, "solve dimension shared");
        assert_ne!(xc, xr, "free dimension separate");
    }

    #[test]
    fn nonconformal_rejected() {
        let mut b = ProgramBuilder::new("t");
        let a = b.declare(OperandDecl::mat_in("A", 4, 4));
        let c = b.declare(OperandDecl::mat_out("C", 4, 4));
        b.assign(c, Expr::op(a));
        let p = b.build().unwrap();
        let av = View::full(&p, a);
        // A (4x4) + Zero(3x3): ill-formed sum
        let bad = Term::Add(vec![Term::V(av), Term::Zero(3, 3)]);
        let rhs = Term::Zero(4, 4);
        assert!(matches!(analyze(&bad, &rhs), Err(SynthError::NonConformal(_))));
    }

    #[test]
    fn sylvester_groups() {
        // L X + X U = C, L 6x6 lower, U 4x4 upper, X 6x4
        let mut b = ProgramBuilder::new("t");
        let l =
            b.declare(OperandDecl::mat_in("L", 6, 6).with_structure(Structure::LowerTriangular));
        let u =
            b.declare(OperandDecl::mat_in("U", 4, 4).with_structure(Structure::UpperTriangular));
        let c = b.declare(OperandDecl::mat_in("C", 6, 4));
        let x = b.declare(OperandDecl::mat_out("X", 6, 4));
        b.assign(x, Expr::op(c));
        let p = b.build().unwrap();
        let lv = View::full(&p, l);
        let uv = View::full(&p, u);
        let xv = View::full(&p, x);
        let lhs = Term::Add(vec![
            Term::Mul(Box::new(Term::V(lv)), Box::new(Term::V(xv))),
            Term::Mul(Box::new(Term::V(xv)), Box::new(Term::V(uv))),
        ]);
        let rhs = region_term(&p, c, 0, 6, 0, 4);
        let mut dims = analyze(&lhs, &rhs).unwrap();
        let groups = dims.groups();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].1, 6);
        assert_eq!(groups[1].1, 4);
    }
}
