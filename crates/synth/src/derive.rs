//! Algorithm construction: from PMEs to basic LA programs.
//!
//! The derivation walks a partition boundary across the chosen dimension
//! group. The classic FLAME loop-invariant families correspond to *when*
//! update atoms run:
//!
//! * [`Policy::Lazy`] (left-looking): at each step, instantiate the PME
//!   with Top ↦ the *done* region and Bottom ↦ the *current* block; every
//!   cell that touches the current block applies all its updates and is
//!   solved.
//! * [`Policy::Eager`] (right-looking): instantiate with Top ↦ the
//!   *current* block and Bottom ↦ the *rest*; cells touching the current
//!   block are solved, and cells fully in the rest only apply the update
//!   atoms that read the freshly solved blocks.
//!
//! Because operand sizes are fixed, loops are emitted unrolled over
//! concrete regions: sub-HLACs recurse with block size ν, then 1, ending
//! in scalar `sqrt`/`div` statements (the paper's Figs. 7–9).
//!
//! Derivations are memoized in the [`AlgorithmDb`] keyed by a
//! translation-invariant signature of the equation instance — the paper's
//! Stage 1a algorithm reuse. Cached algorithms are *relocated* (operand
//! and region offsets substituted) on reuse.

use crate::conform::analyze;
use crate::pme::{pme_cells, refine_trtri, CellSolve, SegRanges, SolveOp};
use crate::program::{BasicProgram, BasicStmt, VExpr};
use crate::term::{region_term, Term, View};
use crate::SynthError;
use slingen_ir::{Expr, OpId, Program, Stmt, Structure};
use std::collections::HashMap;

/// Loop-invariant family selector (algorithmic variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Left-looking: updates run as late as possible.
    Lazy,
    /// Right-looking: updates run as early as possible.
    Eager,
}

impl Policy {
    /// All policies (the variant space explored by autotuning).
    pub const ALL: [Policy; 2] = [Policy::Lazy, Policy::Eager];

    /// Inverse of the `Display` names — used by the persistent tuning
    /// cache, so the names are a stable wire format.
    pub fn parse(s: &str) -> Option<Policy> {
        match s {
            "lazy" => Some(Policy::Lazy),
            "eager" => Some(Policy::Eager),
            _ => None,
        }
    }
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Policy::Lazy => "lazy",
            Policy::Eager => "eager",
        })
    }
}

/// Role of a PME segment at one loop iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Label {
    /// Already computed in earlier iterations.
    Done,
    /// The block being computed now.
    Current,
    /// Not yet computed (receives eager updates only).
    Rest,
}

/// One equation instance to derive: `op` applied to region `out` with
/// right-hand side `base`.
#[derive(Debug, Clone)]
struct EqInstance {
    op: SolveOp,
    out: View,
    base: Term,
}

impl EqInstance {
    /// The unknowns this instance computes (one, or two for LU).
    fn unknowns(&self) -> Vec<(slingen_ir::OpId, View)> {
        let mut out = vec![(self.out.op, self.out)];
        if let SolveOp::Getrf { l } = &self.op {
            out.push((l.op, *l));
        }
        out
    }
}

/// An interned signature symbol: index into [`AlgorithmDb`]'s tables.
type Sym = u32;

/// Memoization of derived algorithms (paper Stage 1a).
///
/// Keys are translation-invariant signatures, *interned*: every distinct
/// signature string is stored once and mapped to a dense symbol, and the
/// hot path (a cache hit) builds its key in a reusable scratch buffer and
/// looks it up by `&str` — no per-derivation allocation. Values are
/// basic-program templates over *roles* that are relocated on reuse.
/// Disable with [`AlgorithmDb::set_enabled`] to force fresh derivations
/// (used by tests to validate the cache).
#[derive(Debug, Default)]
pub struct AlgorithmDb {
    /// Signature string -> symbol (allocates only on first sight).
    symbols: HashMap<Box<str>, Sym>,
    /// Symbol -> cached template (`None`: derived but not relocatable).
    templates: Vec<Option<Vec<BasicStmt>>>,
    stored: usize,
    hits: usize,
    misses: usize,
    enabled: bool,
}

impl AlgorithmDb {
    /// An empty, enabled database.
    pub fn new() -> Self {
        AlgorithmDb { enabled: true, ..AlgorithmDb::default() }
    }

    /// Enable or disable memoization.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Cache hits so far.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Cache misses (fresh derivations) so far.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Number of distinct algorithms stored.
    pub fn len(&self) -> usize {
        self.stored
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.stored == 0
    }

    /// Number of interned signature symbols (≥ [`AlgorithmDb::len`]:
    /// non-relocatable derivations intern their signature without storing
    /// a template).
    pub fn interned(&self) -> usize {
        self.symbols.len()
    }

    /// The symbol for `sig`, interning it on first sight.
    fn intern(&mut self, sig: &str) -> Sym {
        if let Some(&s) = self.symbols.get(sig) {
            return s;
        }
        let s = self.templates.len() as Sym;
        self.symbols.insert(Box::from(sig), s);
        self.templates.push(None);
        s
    }
}

/// Roles: operand slots of an instance, in deterministic order.
#[derive(Debug, Clone)]
struct Roles {
    /// (operand, row origin, col origin) per role.
    slots: Vec<(OpId, usize, usize)>,
}

impl Roles {
    fn of_instance(inst: &EqInstance) -> Roles {
        let mut slots = vec![(inst.out.op, inst.out.r0, inst.out.c0)];
        let push = |v: &View, slots: &mut Vec<(OpId, usize, usize)>| {
            slots.push((v.op, v.r0, v.c0));
        };
        match &inst.op {
            SolveOp::TrsmLeft { t } | SolveOp::TrsmRight { t } => push(t, &mut slots),
            SolveOp::Trtri { l } | SolveOp::Getrf { l } => push(l, &mut slots),
            SolveOp::Sylvester { l, u } => {
                push(l, &mut slots);
                push(u, &mut slots);
            }
            SolveOp::Potrf { .. } | SolveOp::Assign => {}
        }
        if let Term::V(v) = &inst.base {
            push(v, &mut slots);
        }
        Roles { slots }
    }

    /// Find the role of `op`, given that every operand in an instance's
    /// emitted statements appears in some slot.
    fn role_of(&self, op: OpId) -> Option<usize> {
        self.slots.iter().position(|(o, _, _)| *o == op)
    }

    /// Relativize a view against its role's origin.
    fn relativize(&self, v: &View) -> Option<View> {
        let role = self.role_of(v.op)?;
        let (_, r, c) = self.slots[role];
        if v.r0 < r || v.c0 < c {
            return None;
        }
        Some(View { op: OpId(role), r0: v.r0 - r, r1: v.r1 - r, c0: v.c0 - c, c1: v.c1 - c, ..*v })
    }

    /// Materialize a relative view against this role set.
    fn instantiate(&self, v: &View) -> View {
        let (op, r, c) = self.slots[v.op.0];
        View { op, r0: v.r0 + r, r1: v.r1 + r, c0: v.c0 + c, c1: v.c1 + c, ..*v }
    }
}

fn relativize_expr(roles: &Roles, e: &VExpr) -> Option<VExpr> {
    Some(match e {
        VExpr::View(v) => VExpr::View(roles.relativize(v)?),
        VExpr::Lit(x) => VExpr::Lit(*x),
        VExpr::Add(a, b) => {
            VExpr::Add(Box::new(relativize_expr(roles, a)?), Box::new(relativize_expr(roles, b)?))
        }
        VExpr::Sub(a, b) => {
            VExpr::Sub(Box::new(relativize_expr(roles, a)?), Box::new(relativize_expr(roles, b)?))
        }
        VExpr::Mul(a, b) => {
            VExpr::Mul(Box::new(relativize_expr(roles, a)?), Box::new(relativize_expr(roles, b)?))
        }
        VExpr::Div(a, b) => {
            VExpr::Div(Box::new(relativize_expr(roles, a)?), Box::new(relativize_expr(roles, b)?))
        }
        VExpr::Neg(a) => VExpr::Neg(Box::new(relativize_expr(roles, a)?)),
        VExpr::Sqrt(a) => VExpr::Sqrt(Box::new(relativize_expr(roles, a)?)),
    })
}

fn instantiate_expr(roles: &Roles, e: &VExpr) -> VExpr {
    match e {
        VExpr::View(v) => VExpr::View(roles.instantiate(v)),
        VExpr::Lit(x) => VExpr::Lit(*x),
        VExpr::Add(a, b) => {
            VExpr::Add(Box::new(instantiate_expr(roles, a)), Box::new(instantiate_expr(roles, b)))
        }
        VExpr::Sub(a, b) => {
            VExpr::Sub(Box::new(instantiate_expr(roles, a)), Box::new(instantiate_expr(roles, b)))
        }
        VExpr::Mul(a, b) => {
            VExpr::Mul(Box::new(instantiate_expr(roles, a)), Box::new(instantiate_expr(roles, b)))
        }
        VExpr::Div(a, b) => {
            VExpr::Div(Box::new(instantiate_expr(roles, a)), Box::new(instantiate_expr(roles, b)))
        }
        VExpr::Neg(a) => VExpr::Neg(Box::new(instantiate_expr(roles, a))),
        VExpr::Sqrt(a) => VExpr::Sqrt(Box::new(instantiate_expr(roles, a))),
    }
}

fn write_view_signature(sig: &mut String, v: &View) {
    use std::fmt::Write;
    let _ = write!(
        sig,
        "{}x{}{}{:?}d{}",
        v.r1 - v.r0,
        v.c1 - v.c0,
        if v.trans { "t" } else { "" },
        v.structure,
        v.r0 as i64 - v.c0 as i64
    );
}

/// Whether `derive_fresh` would emit this instance entirely through one of
/// its scalar leaf cases. Leaf emission never consults the loop-invariant
/// policy, so leaf templates are cached policy-neutrally and shared across
/// variants (the autotuner threads one database through all policies).
fn is_scalar_leaf(inst: &EqInstance) -> bool {
    match &inst.op {
        SolveOp::Assign => true,
        SolveOp::Potrf { .. } | SolveOp::Trtri { .. } | SolveOp::Getrf { .. } => {
            inst.out.is_scalar()
        }
        SolveOp::TrsmLeft { t } | SolveOp::TrsmRight { t } => t.is_scalar(),
        SolveOp::Sylvester { l, u } => l.is_scalar() && u.is_scalar(),
    }
}

/// Build the instance's signature into `sig` (a reusable scratch buffer;
/// the caller clears and recycles it so cache hits never allocate).
fn instance_signature(
    sig: &mut String,
    inst: &EqInstance,
    policy: Policy,
    nu: usize,
    roles: &Roles,
) {
    use std::fmt::Write;
    // Scalar-leaf emission consults neither the loop-invariant policy nor
    // the block size ν, so leaf templates live in one fully neutral
    // keyspace shared across the whole (policy × ν) variant space the
    // autotuner explores. Block-level derivations stay qualified by both
    // because their loop schedules (and those of their descendants)
    // differ.
    if is_scalar_leaf(inst) {
        sig.push_str("any/");
    } else {
        let _ = write!(sig, "{policy}/nu{nu}/");
    }
    match &inst.op {
        SolveOp::Assign => sig.push_str("assign"),
        SolveOp::TrsmLeft { t } => {
            sig.push_str("trsml[");
            write_view_signature(sig, t);
            sig.push(']');
        }
        SolveOp::TrsmRight { t } => {
            sig.push_str("trsmr[");
            write_view_signature(sig, t);
            sig.push(']');
        }
        SolveOp::Potrf { lower } => {
            sig.push_str(if *lower { "potrfl" } else { "potrfu" });
        }
        SolveOp::Trtri { l } => {
            sig.push_str("trtri[");
            write_view_signature(sig, l);
            sig.push(']');
        }
        SolveOp::Sylvester { l, u } => {
            sig.push_str("sylv[");
            write_view_signature(sig, l);
            sig.push(';');
            write_view_signature(sig, u);
            sig.push(']');
        }
        SolveOp::Getrf { l } => {
            sig.push_str("getrf[");
            write_view_signature(sig, l);
            sig.push(']');
        }
    }
    sig.push_str("/out[");
    write_view_signature(sig, &inst.out);
    sig.push(']');
    match &inst.base {
        Term::V(v) => {
            sig.push_str("/base[");
            write_view_signature(sig, v);
            sig.push(']');
        }
        Term::Ident(n) => {
            let _ = write!(sig, "/baseI{n}");
        }
        Term::Zero(r, c) => {
            let _ = write!(sig, "/base0_{r}x{c}");
        }
        other => {
            let _ = write!(sig, "/base?{other}");
        }
    }
    // operand aliasing pattern across roles
    sig.push_str("/alias");
    for (i, (op, _, _)) in roles.slots.iter().enumerate() {
        let first = roles.slots.iter().position(|(o, _, _)| o == op).unwrap();
        let _ = write!(sig, "_{i}:{first}");
    }
}

/// The derivation context.
struct Deriver<'p, 'd> {
    program: &'p Program,
    policy: Policy,
    nu: usize,
    db: &'d mut AlgorithmDb,
    /// Scratch-buffer pool for signature building (one per active
    /// recursion level; buffers are recycled, so steady-state derivation
    /// allocates no signature strings).
    scratch: Vec<String>,
}

impl<'p, 'd> Deriver<'p, 'd> {
    fn term_to_vexpr(&self, t: &Term) -> Result<VExpr, SynthError> {
        match t {
            Term::V(v) => Ok(VExpr::View(*v)),
            Term::T(inner) => match inner.as_ref() {
                Term::V(v) => Ok(VExpr::View(v.t())),
                other => Err(SynthError::Unsupported(format!(
                    "transpose of non-view in emission: {other}"
                ))),
            },
            Term::Neg(inner) => Ok(VExpr::Neg(Box::new(self.term_to_vexpr(inner)?))),
            Term::Mul(a, b) => {
                Ok(VExpr::Mul(Box::new(self.term_to_vexpr(a)?), Box::new(self.term_to_vexpr(b)?)))
            }
            Term::Add(ts) => {
                let mut it = ts.iter();
                let first = it
                    .next()
                    .ok_or_else(|| SynthError::Unsupported("empty sum in emission".into()))?;
                let mut acc = self.term_to_vexpr(first)?;
                for t in it {
                    acc = VExpr::Add(Box::new(acc), Box::new(self.term_to_vexpr(t)?));
                }
                Ok(acc)
            }
            Term::Ident(1) => Ok(VExpr::Lit(1.0)),
            Term::Zero(1, 1) => Ok(VExpr::Lit(0.0)),
            other => Err(SynthError::Unsupported(format!("literal block in emission: {other}"))),
        }
    }

    /// `base ± updates` as a single expression.
    fn combine_rhs(&self, base: &Term, updates: &[Term]) -> Result<VExpr, SynthError> {
        let mut acc: Option<VExpr> = match base {
            z if z.is_zero() => None,
            t => Some(self.term_to_vexpr(t)?),
        };
        for u in updates {
            let (neg, core) = match u {
                Term::Neg(inner) => (true, inner.as_ref()),
                other => (false, other),
            };
            let e = self.term_to_vexpr(core)?;
            acc = Some(match acc {
                None => {
                    if neg {
                        VExpr::Neg(Box::new(e))
                    } else {
                        e
                    }
                }
                Some(a) => {
                    if neg {
                        VExpr::Sub(Box::new(a), Box::new(e))
                    } else {
                        VExpr::Add(Box::new(a), Box::new(e))
                    }
                }
            });
        }
        Ok(acc.unwrap_or(VExpr::Lit(0.0)))
    }

    /// Emit the statements for one equation instance.
    fn derive(&mut self, inst: &EqInstance, out: &mut BasicProgram) -> Result<(), SynthError> {
        if inst.out.is_empty() {
            return Ok(());
        }
        // Stage 1a: algorithm reuse through the database. The signature is
        // built in a recycled scratch buffer and matched against interned
        // symbols; the hit path performs no allocation beyond the emitted
        // statements themselves.
        let roles = Roles::of_instance(inst);
        let mut sig = self.scratch.pop().unwrap_or_default();
        sig.clear();
        instance_signature(&mut sig, inst, self.policy, self.nu, &roles);
        if self.db.enabled {
            let known = self.db.symbols.get(sig.as_str()).copied();
            if let Some(s) = known {
                if self.db.templates[s as usize].is_some() {
                    self.db.hits += 1;
                    let template = self.db.templates[s as usize].as_ref().unwrap();
                    for stmt in template {
                        out.push(BasicStmt {
                            lhs: roles.instantiate(&stmt.lhs),
                            rhs: instantiate_expr(&roles, &stmt.rhs),
                        });
                    }
                    self.scratch.push(sig);
                    return Ok(());
                }
            }
            self.db.misses += 1;
        }
        let start = out.stmts.len();
        // Intern before recursing so the scratch buffer can be recycled
        // by nested derivations.
        let sym = if self.db.enabled { Some(self.db.intern(&sig)) } else { None };
        self.scratch.push(sig);
        self.derive_fresh(inst, out)?;
        if let Some(sym) = sym {
            // relativize; skip caching if any view escapes the roles
            let relative: Option<Vec<BasicStmt>> = out.stmts[start..]
                .iter()
                .map(|s| {
                    Some(BasicStmt {
                        lhs: roles.relativize(&s.lhs)?,
                        rhs: relativize_expr(&roles, &s.rhs)?,
                    })
                })
                .collect();
            if let Some(t) = relative {
                let slot = &mut self.db.templates[sym as usize];
                if slot.is_none() {
                    self.db.stored += 1;
                }
                *slot = Some(t);
            }
        }
        Ok(())
    }

    /// Emit a policy-independent scalar leaf. Reaching this requires
    /// [`is_scalar_leaf`] — the same predicate that selects the
    /// policy-neutral cache keyspace — so cache key and emission cannot
    /// drift apart.
    fn emit_scalar_leaf(
        &mut self,
        inst: &EqInstance,
        out: &mut BasicProgram,
    ) -> Result<(), SynthError> {
        match &inst.op {
            SolveOp::Assign => {
                let rhs = self.term_to_vexpr(&inst.base)?;
                out.push(BasicStmt { lhs: inst.out, rhs });
            }
            SolveOp::Potrf { .. } => {
                let rhs = VExpr::Sqrt(Box::new(self.term_to_vexpr(&inst.base)?));
                out.push(BasicStmt { lhs: inst.out, rhs });
            }
            SolveOp::TrsmLeft { t } | SolveOp::TrsmRight { t } => {
                let rhs = VExpr::Div(
                    Box::new(self.term_to_vexpr(&inst.base)?),
                    Box::new(VExpr::View(*t)),
                );
                out.push(BasicStmt { lhs: inst.out, rhs });
            }
            SolveOp::Trtri { l } => {
                let rhs = VExpr::Div(Box::new(VExpr::Lit(1.0)), Box::new(VExpr::View(*l)));
                out.push(BasicStmt { lhs: inst.out, rhs });
            }
            SolveOp::Sylvester { l, u } => {
                let rhs = VExpr::Div(
                    Box::new(self.term_to_vexpr(&inst.base)?),
                    Box::new(VExpr::Add(Box::new(VExpr::View(*l)), Box::new(VExpr::View(*u)))),
                );
                out.push(BasicStmt { lhs: inst.out, rhs });
            }
            SolveOp::Getrf { l } => {
                // 1×1 LU: the unit diagonal of L is stored explicitly,
                // and U takes the pivot value
                out.push(BasicStmt { lhs: *l, rhs: VExpr::Lit(1.0) });
                let rhs = self.term_to_vexpr(&inst.base)?;
                out.push(BasicStmt { lhs: inst.out, rhs });
            }
        }
        Ok(())
    }

    fn derive_fresh(
        &mut self,
        inst: &EqInstance,
        out: &mut BasicProgram,
    ) -> Result<(), SynthError> {
        if is_scalar_leaf(inst) {
            return self.emit_scalar_leaf(inst, out);
        }

        // build the equation terms
        let out_term = Term::V(inst.out);
        let view_term = |v: &View| -> Term {
            if v.trans {
                Term::T(Box::new(Term::V(v.t()))) // store untransposed leaf
            } else {
                Term::V(*v)
            }
        };
        let (lhs, rhs) = match &inst.op {
            SolveOp::Potrf { lower: false } => (
                Term::Mul(Box::new(out_term.transposed()), Box::new(out_term.clone())),
                inst.base.clone(),
            ),
            SolveOp::Potrf { lower: true } => (
                Term::Mul(Box::new(out_term.clone()), Box::new(out_term.transposed())),
                inst.base.clone(),
            ),
            SolveOp::TrsmLeft { t } => {
                (Term::Mul(Box::new(view_term(t)), Box::new(out_term.clone())), inst.base.clone())
            }
            SolveOp::TrsmRight { t } => {
                (Term::Mul(Box::new(out_term.clone()), Box::new(view_term(t))), inst.base.clone())
            }
            SolveOp::Trtri { l } => (
                Term::Mul(Box::new(view_term(l)), Box::new(out_term.clone())),
                Term::Ident(inst.out.rows()),
            ),
            SolveOp::Sylvester { l, u } => (
                Term::Add(vec![
                    Term::Mul(Box::new(view_term(l)), Box::new(out_term.clone())),
                    Term::Mul(Box::new(out_term.clone()), Box::new(view_term(u))),
                ]),
                inst.base.clone(),
            ),
            SolveOp::Getrf { l } => {
                (Term::Mul(Box::new(view_term(l)), Box::new(out_term.clone())), inst.base.clone())
            }
            SolveOp::Assign => unreachable!("handled above"),
        };

        let mut dims = analyze(&lhs, &rhs)?;
        let groups = dims.groups();
        let (group, extent) = groups.iter().copied().find(|(_, e)| *e > 1).ok_or_else(|| {
            SynthError::Unsupported(format!(
                "no partitionable dimension for {:?} at {}",
                inst.op, inst.out
            ))
        })?;
        // LU writes its intermediate values into the factors' structured
        // storage, which is only well-formed at element granularity with
        // lazy (left-looking) scheduling: force both for Getrf.
        let getrf = matches!(inst.op, SolveOp::Getrf { .. });
        let nb = if getrf {
            1
        } else if extent > self.nu {
            self.nu
        } else {
            1
        };
        // Eager (right-looking) scheduling accumulates updates *into the
        // unknown's storage*; that is only sound when the base already
        // lives there (in-place semantics). With a foreign read-only base
        // (e.g. the trsm sub-solves of LU reading `A`), fall back to lazy.
        let foreign_base = matches!(&inst.base, Term::V(v)
            if !(v.op == inst.out.op && v.same_region(&inst.out)));
        let policy = if getrf || foreign_base { Policy::Lazy } else { self.policy };

        // Traversal direction from the PME's dependency structure: if a
        // Top-indexed cell depends on a Bottom-indexed cell's output, the
        // boundary must move backward (e.g. X·L = B with lower L is a
        // back substitution).
        let mid = (extent / 2).max(1);
        let unknowns = inst.unknowns();
        let probe = pme_cells(
            self.program,
            &lhs,
            &rhs,
            &unknowns,
            &mut dims,
            group,
            SegRanges { t: (0, mid), b: (mid, extent) },
        )?;
        let ord = |c: &CellSolve| c.row_seg.max(c.col_seg);
        let mut fwd_violations = 0usize;
        let mut bwd_violations = 0usize;
        for c in &probe {
            for d in &c.deps {
                if let Some(p) = probe.iter().find(|p| p.out.same_region(d)) {
                    if ord(p) > ord(c) {
                        fwd_violations += 1;
                    }
                    if ord(p) < ord(c) {
                        bwd_violations += 1;
                    }
                }
            }
        }
        let forward = fwd_violations == 0;
        if !forward && bwd_violations > 0 {
            return Err(SynthError::Unrecognized(format!(
                "PME of {:?} has no consistent traversal direction",
                inst.op
            )));
        }

        // block boundaries, in traversal order
        let mut blocks: Vec<(usize, usize)> = Vec::new();
        let mut i = 0;
        while i < extent {
            let hi = (i + nb).min(extent);
            blocks.push((i, hi));
            i = hi;
        }
        if !forward {
            blocks.reverse();
        }

        for (lo, hi) in blocks {
            // segment ranges and labels per policy × direction
            let (segs, t_label, b_label) = match (policy, forward) {
                (Policy::Lazy, true) => {
                    (SegRanges { t: (0, lo), b: (lo, hi) }, Label::Done, Label::Current)
                }
                (Policy::Lazy, false) => {
                    (SegRanges { t: (lo, hi), b: (hi, extent) }, Label::Current, Label::Done)
                }
                (Policy::Eager, true) => {
                    (SegRanges { t: (lo, hi), b: (hi, extent) }, Label::Current, Label::Rest)
                }
                (Policy::Eager, false) => {
                    (SegRanges { t: (0, lo), b: (lo, hi) }, Label::Rest, Label::Current)
                }
            };
            let cells = pme_cells(self.program, &lhs, &rhs, &unknowns, &mut dims, group, segs)?;
            for cell in &cells {
                self.emit_cell(inst, cell, &cells, t_label, b_label, out)?;
            }
        }
        Ok(())
    }

    fn emit_cell(
        &mut self,
        parent: &EqInstance,
        cell: &CellSolve,
        siblings: &[CellSolve],
        t_label: Label,
        b_label: Label,
        out: &mut BasicProgram,
    ) -> Result<(), SynthError> {
        if cell.out.is_empty() {
            return Ok(());
        }
        // labels this cell touches (only along split axes)
        let mut labels = Vec::new();
        if cell.grid.0 > 1 {
            labels.push(if cell.row_seg == 0 { t_label } else { b_label });
        }
        if cell.grid.1 > 1 {
            labels.push(if cell.col_seg == 0 { t_label } else { b_label });
        }
        let touches = |l: Label| labels.contains(&l);
        if !touches(Label::Current) {
            if touches(Label::Rest) {
                // eager trailing update: apply only the update atoms that
                // read freshly solved (Current) outputs
                let current_outputs: Vec<View> = siblings
                    .iter()
                    .filter(|c| {
                        let row_cur = c.grid.0 > 1
                            && (if c.row_seg == 0 { t_label } else { b_label }) == Label::Current;
                        let col_cur = c.grid.1 > 1
                            && (if c.col_seg == 0 { t_label } else { b_label }) == Label::Current;
                        row_cur || col_cur
                    })
                    .map(|c| c.out)
                    .collect();
                let updates: Vec<Term> = cell
                    .updates
                    .iter()
                    .filter(|u| {
                        !u.is_zero()
                            && current_outputs.iter().any(|o| {
                                let mut found = false;
                                u.for_each_view(&mut |v| {
                                    if v.op == o.op && v.same_region(o) {
                                        found = true;
                                    }
                                });
                                found
                            })
                    })
                    .cloned()
                    .collect();
                if updates.is_empty() {
                    return Ok(());
                }
                let rhs = self.combine_rhs(&Term::V(cell.out), &updates)?;
                out.push(BasicStmt { lhs: cell.out, rhs });
            }
            return Ok(());
        }
        let updates: Vec<Term> = cell.updates.iter().filter(|u| !u.is_zero()).cloned().collect();
        let op = refine_trtri(cell.op.clone(), &cell.base, &cell.out);
        // Fuse updates into the scalar solves; otherwise combine first and
        // solve in place.
        let scalar_fusable = match &op {
            SolveOp::Potrf { .. } | SolveOp::Trtri { .. } | SolveOp::Getrf { .. } => {
                cell.out.is_scalar()
            }
            SolveOp::TrsmLeft { t } | SolveOp::TrsmRight { t } => t.is_scalar(),
            SolveOp::Sylvester { l, u } => l.is_scalar() && u.is_scalar(),
            SolveOp::Assign => true,
        };
        let base = if updates.is_empty() || scalar_fusable {
            if updates.is_empty() {
                cell.base.clone()
            } else {
                // fold base and updates into one right-hand side term
                let mut ts = vec![cell.base.clone()];
                ts.extend(updates.iter().cloned());
                Term::Add(ts).simplify()
            }
        } else {
            let rhs = self.combine_rhs(&cell.base, &updates)?;
            out.push(BasicStmt { lhs: cell.out, rhs });
            Term::V(cell.out)
        };
        let inst = EqInstance { op, out: cell.out, base };
        self.derive(&inst, out)?;
        // maintain full storage of symmetric unknowns
        if parent.out.structure.is_symmetric()
            && matches!(parent.out.structure, Structure::Symmetric(_))
            && (cell.out.r0, cell.out.r1) != (cell.out.c0, cell.out.c1)
        {
            let mirror = View {
                op: cell.out.op,
                r0: cell.out.c0,
                r1: cell.out.c1,
                c0: cell.out.r0,
                c1: cell.out.r1,
                trans: false,
                structure: Structure::General,
            };
            out.push(BasicStmt { lhs: mirror, rhs: VExpr::View(cell.out.t()) });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Entry points: LA program -> basic program
// ---------------------------------------------------------------------

fn expr_to_term(program: &Program, e: &Expr) -> Result<Term, SynthError> {
    match e {
        Expr::Operand(id) => {
            let d = program.operand(*id);
            Ok(region_term(program, *id, 0, d.shape.rows, 0, d.shape.cols))
        }
        Expr::Transpose(inner) => Ok(expr_to_term(program, inner)?.transposed()),
        Expr::Neg(inner) => Ok(Term::Neg(Box::new(expr_to_term(program, inner)?)).simplify()),
        Expr::Add(a, b) => {
            Ok(Term::Add(vec![expr_to_term(program, a)?, expr_to_term(program, b)?]))
        }
        Expr::Sub(a, b) => Ok(Term::Add(vec![
            expr_to_term(program, a)?,
            Term::Neg(Box::new(expr_to_term(program, b)?)),
        ])),
        Expr::Mul(a, b) => {
            Ok(Term::Mul(Box::new(expr_to_term(program, a)?), Box::new(expr_to_term(program, b)?)))
        }
        other => Err(SynthError::Unsupported(format!("expression form in HLAC: {other:?}"))),
    }
}

fn expr_to_vexpr(program: &Program, e: &Expr) -> Result<VExpr, SynthError> {
    match e {
        Expr::Operand(id) => Ok(VExpr::View(View::full(program, *id))),
        Expr::Lit(v) => Ok(VExpr::Lit(*v)),
        Expr::Transpose(inner) => match inner.as_ref() {
            Expr::Operand(id) => Ok(VExpr::View(View::full(program, *id).t())),
            other => Err(SynthError::Unsupported(format!(
                "transpose of a compound expression: {other:?}"
            ))),
        },
        Expr::Add(a, b) => Ok(VExpr::Add(
            Box::new(expr_to_vexpr(program, a)?),
            Box::new(expr_to_vexpr(program, b)?),
        )),
        Expr::Sub(a, b) => Ok(VExpr::Sub(
            Box::new(expr_to_vexpr(program, a)?),
            Box::new(expr_to_vexpr(program, b)?),
        )),
        Expr::Mul(a, b) => Ok(VExpr::Mul(
            Box::new(expr_to_vexpr(program, a)?),
            Box::new(expr_to_vexpr(program, b)?),
        )),
        Expr::Neg(a) => Ok(VExpr::Neg(Box::new(expr_to_vexpr(program, a)?))),
        Expr::Div(a, b) => Ok(VExpr::Div(
            Box::new(expr_to_vexpr(program, a)?),
            Box::new(expr_to_vexpr(program, b)?),
        )),
        Expr::Sqrt(a) => Ok(VExpr::Sqrt(Box::new(expr_to_vexpr(program, a)?))),
        Expr::Inverse(_) => {
            Err(SynthError::Unsupported("inverse outside `X = inv(A)` form".into()))
        }
    }
}

/// Synthesize one HLAC equation into basic statements.
///
/// `defined` tracks already-computed operands (updated on return);
/// `nu` is the vector width the recursion blocks toward.
///
/// # Errors
///
/// Returns [`SynthError`] when the equation does not match the supported
/// operation class.
#[allow(clippy::too_many_arguments)]
pub fn synthesize_equation(
    program: &Program,
    lhs: &Expr,
    rhs: &Expr,
    defined: &mut [bool],
    policy: Policy,
    nu: usize,
    db: &mut AlgorithmDb,
    out: &mut BasicProgram,
) -> Result<(), SynthError> {
    let unknown_ids = slingen_ir::typecheck::equation_unknowns(program, defined, lhs);
    let unknown = *unknown_ids
        .first()
        .ok_or_else(|| SynthError::Unsupported("equation without an unknown".into()))?;
    let out_view = View::full(program, unknown);
    let unknowns: Vec<(slingen_ir::OpId, View)> =
        unknown_ids.iter().map(|id| (*id, View::full(program, *id))).collect();

    // `X = inv(A)` becomes `A·X = I`
    let (lhs_term, rhs_term) = if let Expr::Inverse(a) = rhs {
        let a_term = expr_to_term(program, a)?;
        let n = a_term.rows();
        (Term::Mul(Box::new(a_term), Box::new(Term::V(out_view))), Term::Ident(n))
    } else {
        (expr_to_term(program, lhs)?, expr_to_term(program, rhs)?)
    };

    let cell = crate::pme::single_cell(program, &lhs_term, &rhs_term, &unknowns)?;
    let op = refine_trtri(cell.op.clone(), &cell.base, &cell.out);

    // In-place setup: the unknown's storage receives the base values
    // (paper: `ow(..)` avoids this copy by sharing storage).
    let mut base = cell.base.clone();
    if let Term::V(bv) = &base {
        let shares_storage = program.operand(unknown).overwrites == Some(bv.op)
            || program.operand(bv.op).overwrites == Some(unknown)
            || bv.op == unknown;
        if !matches!(op, SolveOp::Trtri { .. } | SolveOp::Getrf { .. }) {
            if !shares_storage {
                out.push(BasicStmt { lhs: out_view, rhs: VExpr::View(*bv) });
            }
            base = Term::V(out_view);
        }
    }
    // updates at the top level (e.g. `Uᵀ·U = S - x·xᵀ`) fold into the copy
    let updates: Vec<Term> = cell.updates.iter().filter(|u| !u.is_zero()).cloned().collect();
    let mut deriver = Deriver { program, policy, nu, db, scratch: Vec::new() };
    if !updates.is_empty() {
        let rhs = deriver.combine_rhs(&base, &updates)?;
        out.push(BasicStmt { lhs: out_view, rhs });
        base = Term::V(out_view);
    }

    let inst = EqInstance { op, out: cell.out, base };
    deriver.derive(&inst, out)?;
    for id in &unknown_ids {
        defined[id.0] = true;
    }
    Ok(())
}

/// Synthesize a whole LA program (Stage 1): sBLACs pass through as
/// region-level statements; HLACs are expanded into basic form.
///
/// # Errors
///
/// Returns [`SynthError`] if any HLAC falls outside the supported class.
pub fn synthesize_program(
    program: &Program,
    policy: Policy,
    nu: usize,
    db: &mut AlgorithmDb,
) -> Result<BasicProgram, SynthError> {
    let mut out = BasicProgram::new();
    let mut defined: Vec<bool> =
        program.operands().iter().map(|o| o.io.readable_at_entry()).collect();
    synth_stmts(program, program.statements(), &mut defined, policy, nu, db, &mut out)?;
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn synth_stmts(
    program: &Program,
    stmts: &[Stmt],
    defined: &mut [bool],
    policy: Policy,
    nu: usize,
    db: &mut AlgorithmDb,
    out: &mut BasicProgram,
) -> Result<(), SynthError> {
    for stmt in stmts {
        match stmt {
            Stmt::Assign { lhs, rhs } => {
                let mut lv = View::full(program, *lhs);
                // symmetric outputs of plain sBLACs are computed in full
                // storage (both halves valid for later reads)
                if lv.structure.is_symmetric() {
                    lv.structure = Structure::General;
                }
                out.push(BasicStmt { lhs: lv, rhs: expr_to_vexpr(program, rhs)? });
                defined[lhs.0] = true;
            }
            Stmt::Equation { lhs, rhs } => {
                synthesize_equation(program, lhs, rhs, defined, policy, nu, db, out)?;
            }
            Stmt::For { count, body } => {
                for _ in 0..*count {
                    synth_stmts(program, body, defined, policy, nu, db, out)?;
                }
            }
        }
    }
    Ok(())
}
