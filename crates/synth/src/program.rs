//! Basic LA programs: the output of Stage 1.
//!
//! A basic program is a straight-line sequence of statements over operand
//! *regions*: sBLACs (`lhs-view = ±view·view ± ...`), element-wise
//! divisions by a scalar region, scalar square roots, and region copies
//! (including the transposed copies that maintain full storage of
//! symmetric results). Stage 2 (`slingen-lgen`) lowers each statement to
//! tiled, vectorized C-IR.

use crate::term::View;
use slingen_ir::Program;

/// Right-hand sides of basic statements.
#[derive(Debug, Clone, PartialEq)]
pub enum VExpr {
    /// A region read.
    View(View),
    /// A scalar literal (1×1).
    Lit(f64),
    /// Sum.
    Add(Box<VExpr>, Box<VExpr>),
    /// Difference.
    Sub(Box<VExpr>, Box<VExpr>),
    /// Product (matrix × matrix, matrix × scalar-region, ...).
    Mul(Box<VExpr>, Box<VExpr>),
    /// Negation.
    Neg(Box<VExpr>),
    /// Element-wise division by a 1×1 region (paper rule R0 shape).
    Div(Box<VExpr>, Box<VExpr>),
    /// Scalar square root (1×1).
    Sqrt(Box<VExpr>),
}

impl VExpr {
    /// Rows of the expression.
    pub fn rows(&self) -> usize {
        match self {
            VExpr::View(v) => v.rows(),
            VExpr::Lit(_) => 1,
            VExpr::Add(a, _) | VExpr::Sub(a, _) => a.rows(),
            VExpr::Mul(a, b) => {
                if a.rows() == 1 && a.cols() == 1 {
                    b.rows()
                } else {
                    a.rows()
                }
            }
            VExpr::Neg(a) | VExpr::Div(a, _) | VExpr::Sqrt(a) => a.rows(),
        }
    }

    /// Columns of the expression.
    pub fn cols(&self) -> usize {
        match self {
            VExpr::View(v) => v.cols(),
            VExpr::Lit(_) => 1,
            VExpr::Add(a, _) | VExpr::Sub(a, _) => a.cols(),
            VExpr::Mul(a, b) => {
                if b.rows() == 1 && b.cols() == 1 && !(a.rows() == 1 && a.cols() == 1) {
                    a.cols()
                } else {
                    b.cols()
                }
            }
            VExpr::Neg(a) | VExpr::Div(a, _) | VExpr::Sqrt(a) => a.cols(),
        }
    }

    /// Visit all views.
    pub fn for_each_view(&self, f: &mut impl FnMut(&View)) {
        match self {
            VExpr::View(v) => f(v),
            VExpr::Lit(_) => {}
            VExpr::Add(a, b) | VExpr::Sub(a, b) | VExpr::Mul(a, b) | VExpr::Div(a, b) => {
                a.for_each_view(f);
                b.for_each_view(f);
            }
            VExpr::Neg(a) | VExpr::Sqrt(a) => a.for_each_view(f),
        }
    }
}

/// One basic statement: `lhs = rhs` over regions.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicStmt {
    /// Written region (never transposed; transposition lives in reads).
    pub lhs: View,
    /// Right-hand side.
    pub rhs: VExpr,
}

/// A straight-line basic LA program over a [`Program`]'s operands.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BasicProgram {
    /// The statements in execution order.
    pub stmts: Vec<BasicStmt>,
}

impl BasicProgram {
    /// An empty program.
    pub fn new() -> Self {
        BasicProgram::default()
    }

    /// Append a statement, dropping empty-region no-ops.
    pub fn push(&mut self, stmt: BasicStmt) {
        if stmt.lhs.is_empty() {
            return;
        }
        self.stmts.push(stmt);
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// Render against the operand names of `program`.
    pub fn render(&self, program: &Program) -> String {
        let mut out = String::new();
        for s in &self.stmts {
            out.push_str(&render_stmt(program, s));
            out.push('\n');
        }
        out
    }
}

fn render_view(program: &Program, v: &View) -> String {
    format!(
        "{}[{}:{}, {}:{}]{}",
        program.operand(v.op).name,
        v.r0,
        v.r1,
        v.c0,
        v.c1,
        if v.trans { "'" } else { "" }
    )
}

fn render_expr(program: &Program, e: &VExpr) -> String {
    match e {
        VExpr::View(v) => render_view(program, v),
        VExpr::Lit(x) => format!("{x}"),
        VExpr::Add(a, b) => format!("({} + {})", render_expr(program, a), render_expr(program, b)),
        VExpr::Sub(a, b) => format!("({} - {})", render_expr(program, a), render_expr(program, b)),
        VExpr::Mul(a, b) => format!("{} * {}", render_expr(program, a), render_expr(program, b)),
        VExpr::Neg(a) => format!("-{}", render_expr(program, a)),
        VExpr::Div(a, b) => format!("{} / {}", render_expr(program, a), render_expr(program, b)),
        VExpr::Sqrt(a) => format!("sqrt({})", render_expr(program, a)),
    }
}

fn render_stmt(program: &Program, s: &BasicStmt) -> String {
    format!("{} = {};", render_view(program, &s.lhs), render_expr(program, &s.rhs))
}

/// Reference evaluation of a basic program on dense row-major buffers —
/// the semantic ground truth used by synthesis and lowering tests, and by
/// the driver's self-checks.
pub mod eval {
    use super::{BasicProgram, BasicStmt, VExpr};
    use crate::term::View;
    use slingen_ir::{OpId, Program};
    use std::collections::HashMap;

    /// Dense value of an expression: `rows × cols` in row-major order.
    #[derive(Debug, Clone)]
    struct Val {
        rows: usize,
        cols: usize,
        data: Vec<f64>,
    }

    fn read_view(program: &Program, bufs: &HashMap<OpId, Vec<f64>>, v: &View) -> Val {
        let stride = program.operand(v.op).shape.cols;
        let buf = &bufs[&v.op];
        let (rows, cols) = (v.rows(), v.cols());
        let mut data = vec![0.0; rows * cols];
        for i in 0..rows {
            for j in 0..cols {
                let (si, sj) = if v.trans { (j, i) } else { (i, j) };
                data[i * cols + j] = buf[(v.r0 + si) * stride + (v.c0 + sj)];
            }
        }
        Val { rows, cols, data }
    }

    fn eval_expr(program: &Program, bufs: &HashMap<OpId, Vec<f64>>, e: &VExpr) -> Val {
        match e {
            VExpr::View(v) => read_view(program, bufs, v),
            VExpr::Lit(x) => Val { rows: 1, cols: 1, data: vec![*x] },
            VExpr::Add(a, b) | VExpr::Sub(a, b) => {
                let x = eval_expr(program, bufs, a);
                let y = eval_expr(program, bufs, b);
                assert_eq!((x.rows, x.cols), (y.rows, y.cols), "elementwise shape");
                let sign = if matches!(e, VExpr::Sub(..)) { -1.0 } else { 1.0 };
                Val {
                    rows: x.rows,
                    cols: x.cols,
                    data: x.data.iter().zip(&y.data).map(|(p, q)| p + sign * q).collect(),
                }
            }
            VExpr::Mul(a, b) => {
                let x = eval_expr(program, bufs, a);
                let y = eval_expr(program, bufs, b);
                if x.rows == 1 && x.cols == 1 {
                    return Val {
                        rows: y.rows,
                        cols: y.cols,
                        data: y.data.iter().map(|q| x.data[0] * q).collect(),
                    };
                }
                if y.rows == 1 && y.cols == 1 {
                    return Val {
                        rows: x.rows,
                        cols: x.cols,
                        data: x.data.iter().map(|p| p * y.data[0]).collect(),
                    };
                }
                assert_eq!(x.cols, y.rows, "product shapes");
                let mut data = vec![0.0; x.rows * y.cols];
                for i in 0..x.rows {
                    for k in 0..x.cols {
                        let v = x.data[i * x.cols + k];
                        for j in 0..y.cols {
                            data[i * y.cols + j] += v * y.data[k * y.cols + j];
                        }
                    }
                }
                Val { rows: x.rows, cols: y.cols, data }
            }
            VExpr::Neg(a) => {
                let x = eval_expr(program, bufs, a);
                Val { rows: x.rows, cols: x.cols, data: x.data.iter().map(|p| -p).collect() }
            }
            VExpr::Div(a, b) => {
                let x = eval_expr(program, bufs, a);
                let y = eval_expr(program, bufs, b);
                assert_eq!((y.rows, y.cols), (1, 1), "divisor must be scalar");
                Val {
                    rows: x.rows,
                    cols: x.cols,
                    data: x.data.iter().map(|p| p / y.data[0]).collect(),
                }
            }
            VExpr::Sqrt(a) => {
                let x = eval_expr(program, bufs, a);
                Val { rows: x.rows, cols: x.cols, data: x.data.iter().map(|p| p.sqrt()).collect() }
            }
        }
    }

    fn write_view(program: &Program, bufs: &mut HashMap<OpId, Vec<f64>>, v: &View, val: &Val) {
        assert_eq!((val.rows, val.cols), (v.rows(), v.cols()), "store shape");
        let stride = program.operand(v.op).shape.cols;
        let buf = bufs.get_mut(&v.op).expect("destination buffer");
        for i in 0..val.rows {
            for j in 0..val.cols {
                buf[(v.r0 + i) * stride + (v.c0 + j)] = val.data[i * val.cols + j];
            }
        }
    }

    /// Execute one statement.
    pub fn run_stmt(program: &Program, bufs: &mut HashMap<OpId, Vec<f64>>, stmt: &BasicStmt) {
        let val = eval_expr(program, bufs, &stmt.rhs);
        write_view(program, bufs, &stmt.lhs, &val);
    }

    /// Execute a whole basic program. `bufs` maps every referenced operand
    /// to its row-major storage.
    pub fn run(program: &Program, basic: &BasicProgram, bufs: &mut HashMap<OpId, Vec<f64>>) {
        for s in &basic.stmts {
            run_stmt(program, bufs, s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slingen_ir::{Expr, OperandDecl, ProgramBuilder, Structure};

    #[test]
    fn push_drops_empty_regions() {
        let mut b = ProgramBuilder::new("t");
        let a = b.declare(OperandDecl::mat_in("A", 4, 4));
        let c = b.declare(OperandDecl::mat_out("C", 4, 4));
        b.assign(c, Expr::op(a));
        let p = b.build().unwrap();
        let mut bp = BasicProgram::new();
        let full = View::full(&p, c);
        let empty = View { r0: 2, r1: 2, ..full };
        bp.push(BasicStmt { lhs: empty, rhs: VExpr::View(full) });
        assert!(bp.is_empty());
        bp.push(BasicStmt { lhs: full, rhs: VExpr::View(View::full(&p, a)) });
        assert_eq!(bp.len(), 1);
    }

    #[test]
    fn rendering_names_operands() {
        let mut b = ProgramBuilder::new("t");
        let l =
            b.declare(OperandDecl::mat_in("L", 4, 4).with_structure(Structure::LowerTriangular));
        let x = b.declare(OperandDecl::mat_out("X", 4, 4));
        b.assign(x, Expr::op(l));
        let p = b.build().unwrap();
        let mut bp = BasicProgram::new();
        let lv = View::full(&p, l);
        let xv = View::full(&p, x);
        bp.push(BasicStmt {
            lhs: xv,
            rhs: VExpr::Sub(
                Box::new(VExpr::View(xv)),
                Box::new(VExpr::Mul(Box::new(VExpr::View(lv.t())), Box::new(VExpr::View(lv)))),
            ),
        });
        let text = bp.render(&p);
        assert!(
            text.contains("X[0:4, 0:4] = (X[0:4, 0:4] - L[0:4, 0:4]' * L[0:4, 0:4]);"),
            "{text}"
        );
    }

    #[test]
    fn expr_shapes() {
        let mut b = ProgramBuilder::new("t");
        let a = b.declare(OperandDecl::mat_in("A", 4, 2));
        let c = b.declare(OperandDecl::mat_out("C", 4, 4));
        b.assign(c, Expr::op(a).mul(Expr::op(a).t()));
        let p = b.build().unwrap();
        let av = View::full(&p, a);
        let prod = VExpr::Mul(Box::new(VExpr::View(av)), Box::new(VExpr::View(av.t())));
        assert_eq!((prod.rows(), prod.cols()), (4, 4));
        let scaled = VExpr::Mul(Box::new(VExpr::Lit(2.0)), Box::new(VExpr::View(av)));
        assert_eq!((scaled.rows(), scaled.cols()), (4, 2));
    }
}
